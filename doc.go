// Package metadataflow implements meta-dataflows (MDFs), the model for
// efficient exploratory dataflow jobs introduced by Castro Fernandez et al.,
// "Meta-Dataflows: Efficient Exploratory Dataflow Jobs", SIGMOD 2018.
//
// An MDF expresses a whole family of related dataflow jobs as one graph
// using two primitives: Explore forks the dataflow into branches, one per
// algorithmic or parameter choice; Choose scores each branch with an
// evaluator function and keeps a subset via a selection function. The
// runtime executes MDFs with branch-aware scheduling (BAS), which runs
// branches depth-first so choose operators can evaluate incrementally,
// discard losing datasets early and prune superfluous branches, and with
// anticipatory memory management (AMM), which evicts the dataset partitions
// with the fewest remaining reads weighted by reload cost.
//
// Execution happens on a deterministic simulated cluster: operator functions
// run for real over in-process data (so choose decisions are genuine) while
// compute and I/O are charged virtual seconds from a calibrated cost model,
// which makes runs reproducible and lets benchmarks model terabyte-scale
// inputs.
//
// A minimal MDF:
//
//	b := metadataflow.NewMDF()
//	src := b.Source("src", metadataflow.SourceFromDataset(input), 0.001)
//	best := src.Explore("threshold",
//		[]metadataflow.BranchSpec{{Label: "1.5", Hint: 1.5}, {Label: "2.0", Hint: 2.0}},
//		metadataflow.NewChooser(metadataflow.SizeEvaluator(), metadataflow.Max()),
//		func(start *metadataflow.Node, spec metadataflow.BranchSpec) *metadataflow.Node {
//			return start.Then("filter", myFilter(spec.Hint), 0.002)
//		})
//	best.Then("sink", metadataflow.Identity("result"), 0)
//	g, err := b.Build()
//	res, err := metadataflow.Run(g, metadataflow.DefaultRunConfig())
package metadataflow
