module metadataflow

go 1.22
