package metadataflow

import (
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/synthetic"
)

// probeOverheadRatioBound caps how much slower a fully recorded run may be
// than a probe-less one. The measured ratio on the reference workload sits
// around 1.6× (spans, counters, decisions, and the full series layer:
// per-stage latency observations, branch progress gauges, rank churn);
// 3× leaves room for machine noise while still catching a probe call
// leaking into a hot loop or a series emission turning quadratic.
const probeOverheadRatioBound = 3.0

// TestProbeOverheadBounded turns the BenchmarkEngineRun /
// BenchmarkEngineRunRecorded pair into an asserted bound: telemetry must
// stay a bounded constant factor on a full engine run, and a nil probe is
// the zero-cost baseline. Run as part of the plain test suite; skipped
// under -short (it runs two real benchmarks).
func TestProbeOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed bound; skipped in short mode")
	}
	execute := func(probe obs.Probe) func(b *testing.B) {
		return func(b *testing.B) {
			p := synthetic.Defaults()
			p.Rows = 400
			p.OuterBranches, p.InnerBranches = 5, 5
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := synthetic.BuildMDF(p)
				if err != nil {
					b.Fatal(err)
				}
				pr := probe
				if pr != nil {
					// A fresh recorder per run, as the service attaches one.
					pr = obs.NewRecorder()
				}
				_, err = engine.Execute(g, engine.Options{
					Cluster:     cluster.MustNew(cluster.DefaultConfig()),
					Policy:      memorymgr.AMM,
					Scheduler:   scheduler.BAS(nil),
					Incremental: true,
					Probe:       pr,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	plain := testing.Benchmark(execute(nil))
	recorded := testing.Benchmark(execute(obs.NewRecorder()))
	if plain.N == 0 || plain.NsPerOp() <= 0 {
		t.Skipf("degenerate baseline measurement: %v", plain)
	}
	ratio := float64(recorded.NsPerOp()) / float64(plain.NsPerOp())
	t.Logf("plain %v/op, recorded %v/op, ratio %.2f (bound %.1f)",
		plain.NsPerOp(), recorded.NsPerOp(), ratio, probeOverheadRatioBound)
	if ratio > probeOverheadRatioBound {
		t.Errorf("recorded run is %.2f× the probe-less run, bound %.1f×: telemetry overhead regressed",
			ratio, probeOverheadRatioBound)
	}
}
