// Iterative computation with in-loop early termination (§3.2): explore
// gradient-descent step sizes for a least-squares fit; each branch runs an
// unrolled fixpoint iteration whose in-loop check terminates diverging step
// sizes after their first exploding round, so the remaining rounds of those
// branches cost nothing. The choose keeps the converged model with the
// lowest error.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdf "metadataflow"
)

type state struct {
	w, b    float64 // model y = w*x + b
	loss    float64
	samples []point
}

type point struct{ x, y float64 }

const rounds = 20

func main() {
	rng := rand.New(rand.NewSource(9))
	samples := make([]point, 800)
	for i := range samples {
		x := rng.Float64() * 4
		samples[i] = point{x: x, y: 2.5*x - 1 + 0.2*rng.NormFloat64()}
	}
	init := state{samples: samples, loss: math.Inf(1)}
	input := mdf.FromRows("state", []mdf.Row{init}, 1, 0)
	input.SetVirtualBytes(1 << 28)

	steps := []mdf.BranchSpec{
		{Label: "lr=0.001", Hint: 0.001},
		{Label: "lr=0.01", Hint: 0.01},
		{Label: "lr=0.05", Hint: 0.05},
		{Label: "lr=0.3", Hint: 0.3}, // diverges
		{Label: "lr=0.6", Hint: 0.6}, // diverges
	}

	// Score: negative loss of a converged model; terminated branches last.
	eval := mdf.FuncEvaluator("neg-loss", func(d *mdf.Dataset) float64 {
		if mdf.Terminated(d) {
			return math.Inf(-1)
		}
		return -d.Parts[0].Rows[0].(state).loss
	})

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	best := src.Explore("step-size", steps, mdf.NewChooser(eval, mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			lr := spec.Hint
			return start.Iterate(mdf.IterationSpec{
				Name:      "gd(" + spec.Label + ")",
				Rounds:    rounds,
				CostPerMB: 0.02,
				Step: func(round int, d *mdf.Dataset) (*mdf.Dataset, error) {
					s := d.Parts[0].Rows[0].(state)
					next := sgdRound(s, lr)
					out := mdf.FromRows("state", []mdf.Row{next}, 1, 0)
					out.SetVirtualBytes(d.VirtualBytes())
					return out, nil
				},
				Diverged: func(round int, d *mdf.Dataset) bool {
					s := d.Parts[0].Rows[0].(state)
					return math.IsNaN(s.loss) || s.loss > 1e6
				},
			})
		})
	best.Then("sink", mdf.Identity("model"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	m := res.Output.Parts[0].Rows[0].(state)
	fmt.Printf("explored %d step sizes over %d unrolled rounds\n", len(steps), rounds)
	fmt.Printf("best model: y = %.3f*x + %.3f, loss %.4f (true: 2.5x - 1)\n", m.w, m.b, m.loss)
	fmt.Printf("completion time: %.2f virtual seconds\n", res.CompletionTime())
	fmt.Println("diverging step sizes were cut after their first exploding round;")
	fmt.Println("their remaining rounds forwarded an empty marker at zero cost")
}

func sgdRound(s state, lr float64) state {
	var gw, gb, loss float64
	n := float64(len(s.samples))
	for _, p := range s.samples {
		e := s.w*p.x + s.b - p.y
		gw += 2 * e * p.x / n
		gb += 2 * e / n
		loss += e * e / n
	}
	return state{w: s.w - lr*gw, b: s.b - lr*gb, loss: loss, samples: s.samples}
}
