// Hyper-parameter search with early choose (§6 workload 1): train a simple
// classifier while exploring learning rates and regularisation in two
// sequential exploration scopes — first pick the best learning rate, then
// explore regularisation starting from the chosen model. The explored path
// count drops from |R × L| to |R| + |L| (the Fig. 5 "early choose" effect).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdf "metadataflow"
)

type example struct {
	x []float64
	y float64 // ±1
}

type model struct {
	w  []float64
	lr float64
}

func main() {
	rng := rand.New(rand.NewSource(11))
	train := genData(rng, 600)
	val := genData(rng, 200)

	dataRows := []mdf.Row{train}
	input := mdf.FromRows("train", dataRows, 1, 0)
	input.SetVirtualBytes(1 << 28)

	accuracy := mdf.FuncEvaluator("val-accuracy", func(d *mdf.Dataset) float64 {
		m := d.Parts[0].Rows[0].(*model)
		return evaluate(m, val)
	})

	rates := []mdf.BranchSpec{
		{Label: "lr=0.001", Hint: 0.001},
		{Label: "lr=0.01", Hint: 0.01},
		{Label: "lr=0.1", Hint: 0.1},
		{Label: "lr=0.5", Hint: 0.5},
	}
	regs := []mdf.BranchSpec{
		{Label: "l2=0", Hint: 0},
		{Label: "l2=0.0001", Hint: 0.0001},
		{Label: "l2=0.001", Hint: 0.001},
		{Label: "l2=0.01", Hint: 0.01},
	}

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	// Scope 1: pick the best learning rate with no regularisation.
	bestLR := src.Explore("learning-rate", rates, mdf.NewChooser(accuracy, mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			lr := spec.Hint
			n := start.Then("train("+spec.Label+")", trainOp(lr, 0), 0)
			n.Op().FixedCost = 30 // virtual seconds per training run
			return n
		})
	// Scope 2: explore regularisation continuing from the chosen model.
	best := bestLR.Explore("regularisation", regs, mdf.NewChooser(accuracy, mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			l2 := spec.Hint
			n := start.Then("retrain("+spec.Label+")", retrainOp(train, l2), 0)
			n.Op().FixedCost = 30
			return n
		})
	best.Then("sink", mdf.Identity("model"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	m := res.Output.Parts[0].Rows[0].(*model)
	fmt.Printf("explored %d + %d configurations (instead of %d exhaustive)\n",
		len(rates), len(regs), len(rates)*len(regs))
	fmt.Printf("best model: lr=%g, validation accuracy %.1f%%\n", m.lr, 100*evaluate(m, val))
	fmt.Printf("completion time: %.2f virtual seconds\n", res.CompletionTime())
}

func genData(rng *rand.Rand, n int) []example {
	out := make([]example, n)
	for i := range out {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), 1}
		y := 1.0
		if 0.8*x[0]-0.5*x[1]+0.1+0.3*rng.NormFloat64() < 0 {
			y = -1
		}
		out[i] = example{x: x, y: y}
	}
	return out
}

// trainOp fits a logistic model from scratch at the given rate.
func trainOp(lr, l2 float64) mdf.TransformFunc {
	return mdf.WholeDataset("train", func(in *mdf.Dataset) (*mdf.Dataset, error) {
		train := in.Parts[0].Rows[0].([]example)
		m := &model{w: make([]float64, 3), lr: lr}
		fit(m, train, lr, l2, 5)
		out := mdf.FromRows("model", []mdf.Row{m}, 1, 0)
		out.SetVirtualBytes(1 << 16)
		return out, nil
	})
}

// retrainOp continues from a chosen model with regularisation.
func retrainOp(train []example, l2 float64) mdf.TransformFunc {
	return mdf.WholeDataset("retrain", func(in *mdf.Dataset) (*mdf.Dataset, error) {
		base := in.Parts[0].Rows[0].(*model)
		m := &model{w: append([]float64(nil), base.w...), lr: base.lr}
		fit(m, train, base.lr, l2, 5)
		out := mdf.FromRows("model", []mdf.Row{m}, 1, 0)
		out.SetVirtualBytes(1 << 16)
		return out, nil
	})
}

func fit(m *model, data []example, lr, l2 float64, epochs int) {
	for e := 0; e < epochs; e++ {
		for _, ex := range data {
			var z float64
			for i, xi := range ex.x {
				z += m.w[i] * xi
			}
			g := -ex.y / (1 + math.Exp(ex.y*z))
			for i, xi := range ex.x {
				m.w[i] -= lr * (g*xi + l2*m.w[i])
			}
		}
	}
}

func evaluate(m *model, data []example) float64 {
	correct := 0
	for _, ex := range data {
		var z float64
		for i, xi := range ex.x {
			z += m.w[i] * xi
		}
		if (z >= 0) == (ex.y > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}
