// Quickstart: express an exploratory workflow as a single meta-dataflow.
//
// The job filters a numeric dataset with three candidate outlier thresholds
// (the explorable), scores each branch by how much data survives, and keeps
// the first branch that retains at least 80% of the input — at which point
// the remaining branches are pruned without ever executing.
package main

import (
	"fmt"
	"log"
	"math"

	mdf "metadataflow"
)

func main() {
	// Input: 10,000 noisy measurements around 100, with a few outliers.
	rows := make([]mdf.Row, 10000)
	for i := range rows {
		v := 100 + 5*math.Sin(float64(i)/10) + float64(i%7)
		if i%500 == 0 {
			v += 80 // outlier
		}
		rows[i] = v
	}
	input := mdf.FromRows("sensor", rows, 8, 64)
	// Account the input as a 4 GB dataset on the simulated cluster.
	input.SetVirtualBytes(4 << 30)

	mean, std := summarize(rows)

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)

	// Explore three outlier thresholds; keep the first branch retaining
	// >= 80% of the rows. The evaluator is monotone in the threshold, so
	// with sorted scheduling the engine can stop early.
	thresholds := []mdf.BranchSpec{
		{Label: "3.0x std", Hint: 3.0},
		{Label: "2.0x std", Hint: 2.0},
		{Label: "1.0x std", Hint: 1.0},
	}
	eval := mdf.RatioEvaluator(len(rows))
	eval.Monotone = true
	chooser := mdf.NewChooser(eval, mdf.KThreshold(1, 0.8, false))

	filtered := src.Explore("outlier-threshold", thresholds, chooser,
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			k := spec.Hint
			return start.Then("filter("+spec.Label+")",
				mdf.FilterRows("inliers", func(r mdf.Row) bool {
					return math.Abs(r.(float64)-mean) <= k*std
				}), 0.002)
		})
	filtered.Then("sink", mdf.Identity("result"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kept %d of %d rows\n", res.Output.NumRows(), len(rows))
	fmt.Printf("completion time:    %.2f virtual seconds\n", res.CompletionTime())
	fmt.Printf("branches pruned:    %d (never executed)\n", res.Metrics.BranchesPruned)
	fmt.Printf("choose evaluations: %d of %d branches\n", res.Metrics.ChooseEvals, len(thresholds))
}

func summarize(rows []mdf.Row) (mean, std float64) {
	for _, r := range rows {
		mean += r.(float64)
	}
	mean /= float64(len(rows))
	for _, r := range rows {
		d := r.(float64) - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(rows)))
	return mean, std
}
