// KDE data profiling (the paper's running example, Fig. 3): explore kernel
// functions and bandwidths for a kernel density estimator over sensor data,
// and choose the configuration with the highest hold-out log likelihood —
// all as one MDF job instead of one job per configuration.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdf "metadataflow"
)

// kernel is a symmetric probability kernel.
type kernel struct {
	name string
	fn   func(u float64) float64
}

var kernels = []kernel{
	{"gaussian", func(u float64) float64 { return math.Exp(-0.5*u*u) / math.Sqrt(2*math.Pi) }},
	{"top-hat", func(u float64) float64 {
		if u < -1 || u > 1 {
			return 0
		}
		return 0.5
	}},
	{"linear", func(u float64) float64 {
		if u < -1 || u > 1 {
			return 0
		}
		return 1 - math.Abs(u)
	}},
}

var bandwidths = []float64{0.1, 0.3, 0.8}

func main() {
	// A bimodal sample: kernel and bandwidth choices genuinely matter.
	rng := rand.New(rand.NewSource(42))
	rows := make([]mdf.Row, 5000)
	for i := range rows {
		if rng.Float64() < 0.6 {
			rows[i] = rng.NormFloat64()
		} else {
			rows[i] = 4 + 0.5*rng.NormFloat64()
		}
	}
	input := mdf.FromRows("sample", rows, 8, 8)
	// Account the input as an 8 GB dataset on the simulated cluster.
	input.SetVirtualBytes(8 << 30)
	holdout := make([]float64, 200)
	for i := range holdout {
		if rng.Float64() < 0.6 {
			holdout[i] = rng.NormFloat64()
		} else {
			holdout[i] = 4 + 0.5*rng.NormFloat64()
		}
	}

	var specs []mdf.BranchSpec
	type cfg struct {
		k kernel
		h float64
	}
	var cfgs []cfg
	for ki, k := range kernels {
		for bi, h := range bandwidths {
			specs = append(specs, mdf.BranchSpec{
				Label: fmt.Sprintf("%s h=%g", k.name, h),
				Hint:  float64(ki*len(bandwidths) + bi),
			})
			cfgs = append(cfgs, cfg{k, h})
		}
	}

	// Evaluator: mean log density of the hold-out points under the
	// branch's estimator (each branch outputs density values).
	eval := mdf.FuncEvaluator("holdout-loglik", func(d *mdf.Dataset) float64 {
		ll := 0.0
		n := 0
		for _, p := range d.Parts {
			for _, r := range p.Rows {
				v := r.(float64)
				if v < 1e-12 {
					v = 1e-12
				}
				ll += math.Log(v)
				n++
			}
		}
		return ll / float64(n)
	})

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	best := src.Explore("kde-config", specs, mdf.NewChooser(eval, mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := cfgs[int(spec.Hint)]
			return start.Then("estimate("+spec.Label+")",
				mdf.WholeDataset("kde", func(in *mdf.Dataset) (*mdf.Dataset, error) {
					sample := make([]float64, 0, in.NumRows())
					for _, p := range in.Parts {
						for _, r := range p.Rows {
							sample = append(sample, r.(float64))
						}
					}
					// Predicted densities at the hold-out points.
					out := make([]mdf.Row, len(holdout))
					for i, x := range holdout {
						out[i] = density(c.k, c.h, sample[:500], x)
					}
					return mdf.FromRows("densities", out, in.NumPartitions(), 8), nil
				}), 0.01)
		})
	best.Then("sink", mdf.Identity("profile"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d kernel/bandwidth configurations in one MDF job\n", len(specs))
	fmt.Printf("completion time:   %.2f virtual seconds\n", res.CompletionTime())
	fmt.Printf("datasets discarded early: %d\n", res.Metrics.DatasetsDiscarded)

	// Compare with the separate-jobs workflow a Spark user would run.
	seq, err := mdf.RunSequential(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential jobs:   %.2f virtual seconds (%d jobs, %.0f%% slower)\n",
		seq.CompletionTime, seq.Jobs,
		100*(seq.CompletionTime-res.CompletionTime().Seconds())/res.CompletionTime().Seconds())
}

func density(k kernel, h float64, sample []float64, x float64) float64 {
	var sum float64
	for _, xi := range sample {
		sum += k.fn((x - xi) / h)
	}
	return sum / (float64(len(sample)) * h)
}
