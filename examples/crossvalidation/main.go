// Cross validation as an MDF (§3.2): the explore operator splits the input
// into k folds, each branch trains on k-1 folds and validates on the held
// out fold, and the choose keeps the best-scoring model. The fold branches
// share the preprocessed input dataset, which the engine materialises once.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdf "metadataflow"
)

type sample struct {
	x, y float64
}

type fit struct {
	slope, intercept float64
	fold             int
}

const folds = 5

func main() {
	rng := rand.New(rand.NewSource(3))
	data := make([]mdf.Row, 2000)
	for i := range data {
		x := rng.Float64() * 10
		data[i] = sample{x: x, y: 3*x + 2 + rng.NormFloat64()}
	}
	input := mdf.FromRows("observations", data, 8, 16)
	input.SetVirtualBytes(1 << 28)

	// Evaluator: negative validation RMSE of the branch's fitted model
	// (higher is better, so Max selects the best fold split).
	rmse := mdf.FuncEvaluator("neg-rmse", func(d *mdf.Dataset) float64 {
		f := d.Parts[0].Rows[0].(fit)
		var sum float64
		n := 0
		for i, r := range data {
			if i%folds != f.fold {
				continue
			}
			s := r.(sample)
			e := s.y - (f.slope*s.x + f.intercept)
			sum += e * e
			n++
		}
		return -math.Sqrt(sum / float64(n))
	})

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	// CrossValidate builds the explore/choose scope of §3.2: one branch per
	// fold, all sharing the materialised input.
	best := src.CrossValidate(mdf.CrossValidationSpec{
		Name:      "cv",
		Folds:     folds,
		Train:     func(fold, folds int) mdf.TransformFunc { return trainFold(fold) },
		Evaluate:  rmse,
		CostPerMB: 0.02,
	})
	best.Then("sink", mdf.Identity("model"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	m := res.Output.Parts[0].Rows[0].(fit)
	fmt.Printf("%d-fold cross validation in one MDF job\n", folds)
	fmt.Printf("best fold: %d, model y = %.3f*x + %.3f (true: 3x + 2)\n", m.fold, m.slope, m.intercept)
	fmt.Printf("completion time: %.2f virtual seconds\n", res.CompletionTime())
	fmt.Printf("the shared input was materialised once and read by %d branches\n", folds)
}

// trainFold fits least squares on all samples outside the validation fold.
func trainFold(fold int) mdf.TransformFunc {
	return mdf.WholeDataset("train", func(in *mdf.Dataset) (*mdf.Dataset, error) {
		var sx, sy, sxx, sxy, n float64
		i := 0
		for _, p := range in.Parts {
			for _, r := range p.Rows {
				if i%folds != fold {
					s := r.(sample)
					sx += s.x
					sy += s.y
					sxx += s.x * s.x
					sxy += s.x * s.y
					n++
				}
				i++
			}
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		intercept := (sy - slope*sx) / n
		out := mdf.FromRows("model", []mdf.Row{fit{slope: slope, intercept: intercept, fold: fold}}, 1, 0)
		out.SetVirtualBytes(1 << 12)
		return out, nil
	})
}
