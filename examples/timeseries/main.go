// Time series analysis (§6 workload 2): mask sensor measurements with
// explorable sliding-window settings, keep only maskings that are not overly
// aggressive, then mark and detect event sequences on the surviving data.
// Demonstrates the scoped-exploration pattern of Ex. 3.5: the choose closes
// the masking scope early, so losing branches are discarded before the
// downstream stages run.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdf "metadataflow"
)

type point struct {
	t int64
	v float64
}

func main() {
	// Synthetic well-pressure series: drift + periodic + noise + spikes.
	rng := rand.New(rand.NewSource(7))
	rows := make([]mdf.Row, 20000)
	for i := range rows {
		v := 100 + 0.001*float64(i) + 2*math.Sin(float64(i)/300) + 0.3*rng.NormFloat64()
		if rng.Float64() < 0.002 {
			v += 10 * rng.NormFloat64()
		}
		rows[i] = point{t: int64(i), v: v}
	}
	input := mdf.FromRows("well-sensor", rows, 8, 16)
	// Account the input as a 4 GB dataset on the simulated cluster.
	input.SetVirtualBytes(4 << 30)

	// Explorable masking settings: window length x ratio threshold.
	var specs []mdf.BranchSpec
	type wt struct {
		w int
		t float64
	}
	var wts []wt
	for _, w := range []int{2, 4, 8} {
		for _, t := range []float64{1.0002, 1.001, 1.005} {
			specs = append(specs, mdf.BranchSpec{
				Label: fmt.Sprintf("w=%d t=%g", w, t),
				Hint:  t*1000 + float64(w),
			})
			wts = append(wts, wt{w, t})
		}
	}

	// Branch quality: fraction of points kept; select every branch that
	// keeps at least 30% (threshold selection, Fig. 22's pattern).
	eval := mdf.RatioEvaluator(len(rows))
	chooser := mdf.NewChooser(eval, mdf.Threshold(0.3, false))

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	masked := src.Explore("masking", specs, chooser,
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := wts[0]
			for i, s := range specs {
				if s.Label == spec.Label {
					c = wts[i]
				}
			}
			return start.Then("mask("+spec.Label+")", maskOp(c.w, c.t), 0.004)
		})
	marked := masked.Then("mark", markOp(4, 1.0), 0.003)
	marked.Then("sink", mdf.Identity("events"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("masking settings explored: %d\n", len(specs))
	fmt.Printf("events detected:           %d\n", res.Output.NumRows())
	fmt.Printf("completion time:           %.2f virtual seconds\n", res.CompletionTime())
	fmt.Printf("branch datasets discarded: %d\n", res.Metrics.BranchesDiscarded)
}

// maskOp keeps points whose sliding window max/min ratio exceeds t.
func maskOp(w int, t float64) mdf.TransformFunc {
	return mdf.WholeDataset("mask", func(in *mdf.Dataset) (*mdf.Dataset, error) {
		pts := make([]point, 0, in.NumRows())
		for _, p := range in.Parts {
			for _, r := range p.Rows {
				pts = append(pts, r.(point))
			}
		}
		var kept []mdf.Row
		for i := range pts {
			lo, hi := pts[i].v, pts[i].v
			for j := max(0, i-w+1); j <= i; j++ {
				lo = math.Min(lo, pts[j].v)
				hi = math.Max(hi, pts[j].v)
			}
			if hi/lo > t {
				kept = append(kept, pts[i])
			}
		}
		out := mdf.FromRows("masked", kept, in.NumPartitions(), 16)
		return out, nil
	})
}

// markOp emits one row per drastic change relative to the trailing mean.
func markOp(l int, magDiff float64) mdf.TransformFunc {
	return mdf.WholeDataset("mark", func(in *mdf.Dataset) (*mdf.Dataset, error) {
		pts := make([]point, 0, in.NumRows())
		for _, p := range in.Parts {
			for _, r := range p.Rows {
				pts = append(pts, r.(point))
			}
		}
		var events []mdf.Row
		for i := l; i < len(pts); i++ {
			var sum float64
			for j := i - l; j < i; j++ {
				sum += pts[j].v
			}
			if math.Abs(pts[i].v-sum/float64(l)) > magDiff {
				events = append(events, pts[i])
			}
		}
		return mdf.FromRows("events", events, in.NumPartitions(), 16), nil
	})
}
