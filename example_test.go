package metadataflow_test

import (
	"fmt"
	"log"

	mdf "metadataflow"
)

// ExampleRun builds a minimal MDF — explore three filter limits, keep the
// largest result — and executes it on the simulated cluster.
func ExampleRun() {
	rows := make([]mdf.Row, 1000)
	for i := range rows {
		rows[i] = i
	}
	input := mdf.FromRows("numbers", rows, 8, 64)

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	specs := []mdf.BranchSpec{
		{Label: "limit=300", Hint: 300},
		{Label: "limit=700", Hint: 700},
		{Label: "limit=500", Hint: 500},
	}
	out := src.Explore("limits", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			limit := int(spec.Hint)
			return start.Then("filter<"+spec.Label,
				mdf.FilterRows("kept", func(r mdf.Row) bool { return r.(int) < limit }), 0.002)
		})
	out.Then("sink", mdf.Identity("result"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected rows:", res.Output.NumRows())
	fmt.Println("branches evaluated:", res.Metrics.ChooseEvals)
	// Output:
	// selected rows: 700
	// branches evaluated: 3
}

// ExampleKThreshold shows superfluous-branch pruning: the first branch
// passing the threshold ends the exploration, so later branches never run.
func ExampleKThreshold() {
	rows := make([]mdf.Row, 1000)
	for i := range rows {
		rows[i] = i
	}
	input := mdf.FromRows("numbers", rows, 8, 64)

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	specs := []mdf.BranchSpec{
		{Label: "limit=900", Hint: 900},
		{Label: "limit=600", Hint: 600},
		{Label: "limit=300", Hint: 300},
	}
	// Keep the first branch retaining at least 80% of the rows.
	chooser := mdf.NewChooser(mdf.RatioEvaluator(len(rows)), mdf.KThreshold(1, 0.8, false))
	out := src.Explore("limits", specs, chooser,
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			limit := int(spec.Hint)
			return start.Then("filter<"+spec.Label,
				mdf.FilterRows("kept", func(r mdf.Row) bool { return r.(int) < limit }), 0.002)
		})
	out.Then("sink", mdf.Identity("result"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected rows:", res.Output.NumRows())
	fmt.Println("branches pruned without executing:", res.Metrics.BranchesPruned)
	// Output:
	// selected rows: 900
	// branches pruned without executing: 2
}

// ExampleExpandJobs shows the family of concrete jobs an MDF stands for —
// what a user without MDF support would have to submit separately.
func ExampleExpandJobs() {
	rows := make([]mdf.Row, 100)
	for i := range rows {
		rows[i] = i
	}
	input := mdf.FromRows("numbers", rows, 4, 8)

	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	out := src.Explore("outer", mdf.Branches("a", "b"),
		mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			mid := start.Then("t"+spec.Label, mdf.Identity("t"), 0.001)
			return mid.Explore("inner-"+spec.Label, mdf.Branches("x", "y", "z"),
				mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
				func(inner *mdf.Node, ispec mdf.BranchSpec) *mdf.Node {
					return inner.Then("u"+ispec.Label, mdf.Identity("u"), 0.001)
				})
		})
	out.Then("sink", mdf.Identity("result"), 0)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := mdf.ExpandJobs(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("concrete jobs:", len(jobs))
	// Output:
	// concrete jobs: 6
}
