package metadataflow

// This file holds one benchmark per table and figure of the paper's
// evaluation (§6). Each benchmark regenerates the figure's data series on
// the simulated cluster and logs the reproduced table. Run with
//
//	go test -bench=. -benchmem            # full-scale sweeps (3 seeds)
//	go test -bench=. -benchmem -short     # reduced sweeps for a fast pass
//
// The reported ns/op is the wall time of regenerating the whole figure;
// the numbers inside the logged tables are virtual cluster seconds.

import (
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/experiments"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/workload/synthetic"
)

func benchmarkExperiment(b *testing.B, id string) {
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	if testing.Short() {
		opts = experiments.Options{Seeds: 1, Quick: true}
	}
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err = exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + tab.Format())
}

func BenchmarkTable1(b *testing.B) { benchmarkExperiment(b, "table1") }
func BenchmarkFig5(b *testing.B)   { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchmarkExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchmarkExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchmarkExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchmarkExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchmarkExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchmarkExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchmarkExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchmarkExperiment(b, "fig18") }

// BenchmarkAblation isolates BAS, AMM and incremental evaluation (the
// design-choice ablations DESIGN.md calls out).
func BenchmarkAblation(b *testing.B) { benchmarkExperiment(b, "ablation") }

// BenchmarkStragglers measures the impact of one straggling worker (§5).
func BenchmarkStragglers(b *testing.B) { benchmarkExperiment(b, "stragglers") }

// BenchmarkRecovery measures checkpoint-based failure recovery (§5).
func BenchmarkRecovery(b *testing.B) { benchmarkExperiment(b, "recovery") }

// BenchmarkChooseThroughput measures master-side selection throughput,
// the §5 claim that a low-end master sustains ~2M choose invocations per
// second when collecting results.
func BenchmarkChooseThroughput(b *testing.B) {
	chooser := mdf.NewChooser(mdf.SizeEvaluator(), mdf.TopK(4))
	session := chooser.NewSession(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session.Offer(i, float64(i%97))
	}
}

// BenchmarkStagePlanning measures plan derivation for a 120-branch MDF.
func BenchmarkStagePlanning(b *testing.B) {
	p := synthetic.Defaults()
	p.Rows = 64
	p.OuterBranches, p.InnerBranches = 10, 12
	g, err := synthetic.BuildMDF(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.BuildPlan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRun measures one full MDF execution (25 branches) on the
// simulated cluster, the end-to-end fixed overhead of the execution layer.
func BenchmarkEngineRun(b *testing.B) {
	p := synthetic.Defaults()
	p.Rows = 400
	p.OuterBranches, p.InnerBranches = 5, 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := synthetic.BuildMDF(p)
		if err != nil {
			b.Fatal(err)
		}
		cl := cluster.MustNew(cluster.DefaultConfig())
		_, err = engine.Execute(g, engine.Options{
			Cluster:     cl,
			Policy:      memorymgr.AMM,
			Scheduler:   scheduler.BAS(nil),
			Incremental: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRunRecorded is BenchmarkEngineRun with a telemetry
// recorder attached: the gap between the two is the full cost of tracing
// every span, counter and decision. BenchmarkEngineRun itself doubles as
// the probe-disabled baseline — Options.Probe nil must add no measurable
// overhead over the pre-telemetry engine.
func BenchmarkEngineRunRecorded(b *testing.B) {
	p := synthetic.Defaults()
	p.Rows = 400
	p.OuterBranches, p.InnerBranches = 5, 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := synthetic.BuildMDF(p)
		if err != nil {
			b.Fatal(err)
		}
		cl := cluster.MustNew(cluster.DefaultConfig())
		_, err = engine.Execute(g, engine.Options{
			Cluster:     cl,
			Policy:      memorymgr.AMM,
			Scheduler:   scheduler.BAS(nil),
			Incremental: true,
			Probe:       obs.NewRecorder(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMMEviction measures a single eviction decision over a populated
// allocator (Alg. 2's argmin scan).
func BenchmarkAMMEviction(b *testing.B) {
	cfg := cluster.DefaultConfig()
	node := &cluster.Node{}
	counter := fixedAccesses(3)
	alloc := memorymgr.NewAllocator(node, cfg, 1<<30, memorymgr.AMM, counter)
	for i := 0; i < 256; i++ {
		alloc.Put(dataset.PartKey{Dataset: dataset.ID(i), Index: 0}, 1<<22, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each Put of a 4 MB partition forces one eviction decision.
		alloc.Put(dataset.PartKey{Dataset: dataset.ID(1000 + i), Index: 0}, 1<<22, sim.VTime(i))
	}
}

type fixedAccesses int

func (f fixedAccesses) FutureAccesses(dataset.PartKey) int { return int(f) }
