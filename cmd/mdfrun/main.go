// Command mdfrun executes one of the paper's workload MDFs on the simulated
// cluster with configurable scheduling and memory-management policies and
// reports the run metrics, making the ablations of §6 reproducible from the
// command line.
//
// Usage:
//
//	mdfrun -job timeseries -scheduler bas -policy amm -incremental
//	mdfrun -job synthetic -scheduler bfs -policy lru -workers 12 -mem 4
//	mdfrun -spec examples/specs/outlier.json
//	mdfrun -job kde -trace-json trace.json -metrics metrics.json -explain
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"metadataflow/internal/baseline"
	"metadataflow/internal/chaos"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/plan"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
	"metadataflow/internal/workload/dnn"
	"metadataflow/internal/workload/kde"
	"metadataflow/internal/workload/synthetic"
	"metadataflow/internal/workload/timeseries"
)

func main() {
	var (
		job         = flag.String("job", "synthetic", "workload: kde, kde-scoped, kde-example, dnn, dnn-early, dnn-iterative, timeseries, synthetic")
		specPath    = flag.String("spec", "", "path to a JSON MDF spec (overrides -job)")
		sched       = flag.String("scheduler", "bas", "stage scheduler: bas, bas-sorted, bas-random, bfs")
		policy      = flag.String("policy", "amm", "eviction policy: amm, lru")
		incremental = flag.Bool("incremental", true, "incremental choose evaluation")
		workers     = flag.Int("workers", 8, "worker nodes")
		memGB       = flag.Int64("mem", 10, "memory per worker in GB")
		mode        = flag.String("mode", "mdf", "execution mode: mdf, sequential, or parallel:<k>")
		seed        = flag.Int64("seed", 1, "workload seed")
		trace       = flag.Bool("trace", false, "print the per-stage execution timeline")
		traceJSON   = flag.String("trace-json", "", "write a multi-track Chrome trace (per-node tracks and counters) to this file")
		metricsOut  = flag.String("metrics", "", "write the telemetry metrics snapshot as JSON to this file; mdf mode only")
		seriesOut   = flag.String("series", "", "write the virtual-time series document (mdf.series/v1) as JSON to this file; mdf mode only")
		explain     = flag.Bool("explain", false, "print the decision audit log (scheduler picks, evictions, choose selections, recovery); mdf mode only")
		spills      = flag.Bool("spills", false, "print the top spilled datasets")
		speculative = flag.Bool("speculative", false, "enable speculative straggler mitigation")
		faultSpec   = flag.String("faults", "", "fault plan: inline JSON (starts with '{') or a path to a JSON file; mdf mode only")
		vetPlan     = flag.Bool("vet", false, "statically verify the -spec plan (internal/plan battery) against this run's cluster shape before executing; findings abort the run")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the run at its next scheduling boundary; the
	// partial artifacts (-trace-json, -metrics) are still flushed and the
	// process exits with the conventional interrupt status 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *job, *specPath, *sched, *policy, *incremental, *workers, *memGB, *mode, *seed, *trace, *traceJSON, *metricsOut, *seriesOut, *explain, *spills, *speculative, *faultSpec, *vetPlan); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "run 'mdfrun -h' for the accepted flag values")
			os.Exit(2)
		}
		if errors.Is(err, errOracle) {
			os.Exit(3)
		}
		if errors.Is(err, errInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// errUsage marks errors caused by a bad flag value rather than a failed
// run; main exits 2 and points at -h for these.
var errUsage = errors.New("invalid usage")

// errOracle marks a replayed chaos repro whose oracle still fires; main
// exits 3 so scripts can tell "violation reproduced" from ordinary failures.
var errOracle = errors.New("oracle violation")

// errInterrupted marks a run canceled by SIGINT/SIGTERM; main exits 130
// (the conventional status for death-by-interrupt) after the partial
// artifacts have been flushed.
var errInterrupted = errors.New("interrupted")

func usageErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errUsage}, args...)...)
}

// loadFaults decodes the -faults argument: inline JSON when it starts with
// '{', otherwise a file path. Both bare fault plans and chaos repro files
// (mdf.chaos-repro/v1) are accepted; a repro comes back as the second
// return and replaces the normal run with an oracle replay.
func loadFaults(arg string) (*faults.Plan, *chaos.Repro, error) {
	if arg == "" {
		return nil, nil, nil
	}
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		var err error
		data, err = os.ReadFile(arg)
		if err != nil {
			return nil, nil, err
		}
	}
	if chaos.IsRepro(data) {
		r, err := chaos.ParseRepro(data)
		return nil, r, err
	}
	p, err := faults.Parse(data)
	return p, nil, err
}

// replayRepro re-runs a chaos repro's trial (its own cluster, workload, and
// fault plan — the -job/-workers/-mem flags do not apply) and re-applies the
// violated oracle. It returns errOracle when the violation still reproduces.
func replayRepro(r *chaos.Repro) error {
	vs, err := chaos.Replay(r)
	if err != nil {
		return err
	}
	if len(vs) == 0 {
		fmt.Printf("chaos repro replay: oracle %s no longer violated (seed %d, %d workers, %d fault events)\n",
			r.Oracle, r.Trial.Seed, r.Trial.Workers, r.Trial.Faults.NumEvents())
		return nil
	}
	for _, v := range vs {
		fmt.Printf("oracle %s violated: %s\n", v.Oracle, v.Detail)
	}
	return fmt.Errorf("%w: chaos repro reproduces: oracle %s, %d violation(s)", errOracle, vs[0].Oracle, len(vs))
}

func run(ctx context.Context, job, specPath, sched, policy string, incremental bool, workers int, memGB int64, mode string, seed int64, trace bool, traceJSON, metricsOut, seriesOut string, explain, spills, speculative bool, faultSpec string, vetPlan bool) error {
	if vetPlan && specPath == "" {
		return usageErrorf("mdfrun: -vet requires -spec (the built-in -job workloads have no spec document to verify)")
	}
	var g *graph.Graph
	var err error
	if specPath != "" {
		data, rerr := os.ReadFile(specPath)
		if rerr != nil {
			return rerr
		}
		s, perr := spec.Parse(data)
		if perr != nil {
			return perr
		}
		if vetPlan {
			// Verify against the cluster this run would actually use, so a
			// memfeasible finding here is a proof the run below cannot fit.
			cfg := plan.DefaultConfig()
			cfg.Workers = workers
			cfg.MemPerWorker = sim.Bytes(memGB) << 30
			res, verr := plan.Verify(s, cfg)
			if verr != nil {
				return verr
			}
			if len(res.Findings) > 0 {
				for _, f := range res.Findings {
					fmt.Fprintf(os.Stderr, "%s: %s\n", specPath, f)
				}
				return fmt.Errorf("mdfrun: plan vetting failed: %d finding(s)", len(res.Findings))
			}
		}
		g, err = s.Compile()
	} else {
		g, err = buildJob(job, seed)
	}
	if err != nil {
		return err
	}
	ccfg := cluster.DefaultConfig()
	ccfg.Workers = workers
	ccfg.MemPerWorker = sim.Bytes(memGB) << 30
	cl, err := cluster.New(ccfg)
	if err != nil {
		return err
	}
	var pol memorymgr.PolicyKind
	switch policy {
	case "amm":
		pol = memorymgr.AMM
	case "lru":
		pol = memorymgr.LRU
	default:
		return usageErrorf("mdfrun: unknown policy %q (want amm or lru)", policy)
	}
	switch sched {
	case "bas", "bas-sorted", "bas-random", "bfs":
	default:
		return usageErrorf("mdfrun: unknown scheduler %q (want bas, bas-sorted, bas-random, or bfs)", sched)
	}
	newSched := func() scheduler.Policy {
		switch sched {
		case "bfs":
			return scheduler.BFS()
		case "bas-sorted":
			return scheduler.BAS(scheduler.SortedHint(false))
		case "bas-random":
			return scheduler.BAS(scheduler.RandomHint(seed))
		default:
			return scheduler.BAS(nil)
		}
	}

	fplan, repro, err := loadFaults(faultSpec)
	if err != nil {
		return usageErrorf("mdfrun: bad -faults value: %v (want inline JSON starting with '{' or a path to a JSON fault plan or chaos repro)", err)
	}
	if (fplan != nil || repro != nil) && mode != "mdf" {
		return usageErrorf("mdfrun: -faults is only supported in mdf mode")
	}
	if repro != nil {
		return replayRepro(repro)
	}
	telemetry := traceJSON != "" || metricsOut != "" || seriesOut != "" || explain
	if telemetry && mode != "mdf" {
		return usageErrorf("mdfrun: -trace-json, -metrics, -series, and -explain are only supported in mdf mode")
	}

	switch {
	case mode == "mdf":
		execPlan, err := graph.BuildPlan(g)
		if err != nil {
			return err
		}
		var rec *obs.Recorder
		opts := engine.Options{
			Cluster: cl, Policy: pol, Scheduler: newSched(),
			Incremental: incremental, Trace: trace,
			Speculative: speculative, Faults: fplan,
			Context: ctx,
		}
		if telemetry {
			rec = obs.NewRecorder()
			opts.Probe = rec
		}
		runr, err := engine.NewRun(execPlan, opts, 0)
		if err != nil {
			return err
		}
		res, err := runr.RunToCompletion()
		interrupted := err != nil && errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			return err
		}
		if interrupted {
			// The partial result and telemetry stay readable; flush every
			// requested artifact before exiting 130.
			fmt.Fprintln(os.Stderr, "mdfrun: interrupted, flushing partial artifacts")
			res = runr.Result()
		}
		report(res.CompletionTime().Seconds(), &res.Metrics, 1)
		if fplan != nil {
			reportFaults(res)
		}
		if spills {
			entries := runr.SpillReport(10)
			if len(entries) == 0 {
				fmt.Println("\nno datasets were spilled")
			} else {
				fmt.Println("\ntop spilled datasets:")
				for _, e := range entries {
					fmt.Printf("  %s\n", e)
				}
			}
		}
		if trace {
			fmt.Println("\ntimeline (virtual seconds):")
			if err := engine.WriteText(os.Stdout, res.Timeline); err != nil {
				return err
			}
			fmt.Println(engine.SummarizeTimeline(res.Timeline))
		}
		if traceJSON != "" {
			f, err := os.Create(traceJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.WriteChromeTrace(f); err != nil {
				return err
			}
			fmt.Printf("wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", traceJSON)
		}
		if metricsOut != "" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := runr.Snapshot().WriteJSON(f); err != nil {
				return err
			}
			fmt.Printf("wrote metrics snapshot to %s\n", metricsOut)
		}
		if seriesOut != "" {
			f, err := os.Create(seriesOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rec.Series(obs.DefaultBucketSec).WriteJSON(f); err != nil {
				return err
			}
			fmt.Printf("wrote time-series document to %s\n", seriesOut)
		}
		if explain {
			fmt.Println("\ndecision audit log:")
			if err := rec.WriteDecisions(os.Stdout); err != nil {
				return err
			}
		}
		if interrupted {
			return errInterrupted
		}
	case mode == "sequential":
		jobs, err := baseline.ExpandJobs(g)
		if err != nil {
			return err
		}
		res, err := baseline.Sequential(jobs, baseline.Config{Cluster: cl, Policy: pol, Context: ctx})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return fmt.Errorf("%w: %v", errInterrupted, err)
			}
			return err
		}
		report(res.CompletionTime.Seconds(), &res.Metrics, len(res.Jobs))
	default:
		var k int
		if _, err := fmt.Sscanf(mode, "parallel:%d", &k); err != nil || k < 1 {
			return usageErrorf("mdfrun: unknown mode %q (want mdf, sequential, or parallel:<k>)", mode)
		}
		jobs, err := baseline.ExpandJobs(g)
		if err != nil {
			return err
		}
		res, err := baseline.Parallel(jobs, k, baseline.Config{Cluster: cl, Policy: pol, Context: ctx})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return fmt.Errorf("%w: %v", errInterrupted, err)
			}
			return err
		}
		report(res.CompletionTime.Seconds(), &res.Metrics, len(res.Jobs))
	}
	return nil
}

func report(completion float64, m *engine.Metrics, jobs int) {
	fmt.Printf("completion time     %10.2f virtual seconds\n", completion)
	fmt.Printf("jobs executed       %10d\n", jobs)
	fmt.Printf("stages executed     %10d\n", m.StagesExecuted)
	fmt.Printf("stages pruned       %10d\n", m.StagesPruned)
	fmt.Printf("branches pruned     %10d\n", m.BranchesPruned)
	fmt.Printf("branches discarded  %10d\n", m.BranchesDiscarded)
	fmt.Printf("datasets discarded  %10d\n", m.DatasetsDiscarded)
	fmt.Printf("peak live datasets  %10d\n", m.PeakLiveDatasets)
	fmt.Printf("choose evaluations  %10d\n", m.ChooseEvals)
	fmt.Printf("compute time        %10.2f virtual seconds\n", m.ComputeSec)
	fmt.Printf("memory hit ratio    %10.4f\n", m.Mem.HitRatio())
	fmt.Printf("bytes from memory   %10d\n", m.Mem.BytesFromMem)
	fmt.Printf("bytes from disk     %10d\n", m.Mem.BytesFromDisk)
	fmt.Printf("evictions           %10d\n", m.Mem.Evictions)
}

// reportFaults prints the resilience counters and any quarantined branches.
func reportFaults(res *engine.Result) {
	m := &res.Metrics
	fmt.Printf("\nfaults injected     %10d\n", m.FaultsInjected)
	fmt.Printf("node crashes        %10d\n", m.NodeCrashes)
	fmt.Printf("panics injected     %10d\n", m.PanicsInjected)
	fmt.Printf("operator retries    %10d\n", m.Retries)
	fmt.Printf("stages re-executed  %10d\n", m.StagesReExecuted)
	fmt.Printf("parts re-derived    %10d\n", m.PartitionsRederived)
	fmt.Printf("parts rebalanced    %10d\n", m.PartitionsRebalanced)
	fmt.Printf("branches quarantined%10d\n", m.BranchesQuarantined)
	fmt.Printf("recovery time       %10.2f virtual seconds\n", m.RecoverySec)
	fmt.Printf("checkpoints written %10d (%d bytes)\n", m.Mem.Checkpoints, m.Mem.CheckpointedBytes)
	for _, q := range res.Quarantined {
		fmt.Printf("quarantined         %s branch %d: %s\n", q.Choose, q.Branch, q.Reason)
	}
}

func buildJob(job string, seed int64) (*graph.Graph, error) {
	switch job {
	case "kde":
		p := kde.Defaults()
		p.Seed = seed
		return kde.BuildMDF(p)
	case "kde-scoped":
		p := kde.DefaultScoped()
		p.Seed = seed
		return kde.BuildScopedMDF(p)
	case "kde-example":
		p := kde.DefaultExample()
		p.Seed = seed
		return kde.BuildExampleMDF(p)
	case "dnn":
		p := dnn.Defaults()
		p.Seed = seed
		return dnn.BuildExhaustiveMDF(p)
	case "dnn-early":
		p := dnn.Defaults()
		p.Seed = seed
		return dnn.BuildEarlyChooseMDF(p)
	case "dnn-iterative":
		p := dnn.DefaultIterative()
		p.Seed = seed
		return dnn.BuildIterativeMDF(p)
	case "timeseries":
		p := timeseries.Defaults()
		p.Seed = seed
		return timeseries.BuildMDF(p)
	case "synthetic":
		p := synthetic.Defaults()
		p.Seed = seed
		return synthetic.BuildMDF(p)
	}
	return nil, usageErrorf("mdfrun: unknown job %q (want kde, kde-scoped, kde-example, dnn, dnn-early, dnn-iterative, timeseries, or synthetic)", job)
}
