// Command mdfviz renders the MDFs of the paper's workloads as Graphviz DOT.
//
// Usage:
//
//	mdfviz -job kde | dot -Tpng -o kde.png
//	mdfviz -job synthetic -b1 3 -b2 4
package main

import (
	"flag"
	"fmt"
	"os"

	"metadataflow/internal/graph"
	"metadataflow/internal/spec"
	"metadataflow/internal/workload/dnn"
	"metadataflow/internal/workload/kde"
	"metadataflow/internal/workload/synthetic"
	"metadataflow/internal/workload/timeseries"
)

func main() {
	var (
		job      = flag.String("job", "kde", "workload: kde, kde-scoped, kde-example, dnn, dnn-early, timeseries, synthetic")
		specPath = flag.String("spec", "", "render a JSON MDF spec instead of a workload")
		b1       = flag.Int("b1", 3, "outer branching factor (synthetic)")
		b2       = flag.Int("b2", 3, "inner branching factor (synthetic)")
		stages   = flag.Bool("stages", false, "render the stage plan instead of the operator graph")
	)
	flag.Parse()

	g, err := build(*job, *specPath, *b1, *b2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stages {
		plan, err := graph.BuildPlan(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(plan.DOT(*job))
		return
	}
	fmt.Print(g.DOT(*job))
}

func build(job, specPath string, b1, b2 int) (*graph.Graph, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		s, err := spec.Parse(data)
		if err != nil {
			return nil, err
		}
		return s.Compile()
	}
	switch job {
	case "kde":
		p := kde.Defaults()
		p.Rows = 1000
		p.KernelNames = []string{"gaussian", "top-hat"}
		p.Bandwidths = []float64{0.1, 0.3}
		return kde.BuildMDF(p)
	case "kde-example":
		p := kde.DefaultExample()
		p.Rows = 1000
		return kde.BuildExampleMDF(p)
	case "kde-scoped":
		p := kde.DefaultScoped()
		p.Rows = 1000
		p.KernelNames = []string{"gaussian", "top-hat"}
		p.Bandwidths = []float64{0.2}
		return kde.BuildScopedMDF(p)
	case "dnn":
		p := dnn.Defaults()
		p.Inits = dnn.Inits()[:2]
		p.LearningRates = []float64{0.001, 0.01}
		p.Momenta = []float64{0.9}
		return dnn.BuildExhaustiveMDF(p)
	case "dnn-early":
		p := dnn.Defaults()
		p.Inits = dnn.Inits()[:2]
		p.LearningRates = []float64{0.001, 0.01}
		p.Momenta = []float64{0.9}
		return dnn.BuildEarlyChooseMDF(p)
	case "timeseries":
		p := timeseries.Defaults()
		p.Rows = 1000
		p.MarkWindows = []int{2}
		p.MagDiffs = []float64{0.5, 2.0}
		p.Durations = []int{200}
		return timeseries.BuildMDF(p)
	case "synthetic":
		p := synthetic.Defaults()
		p.Rows = 200
		p.OuterBranches = b1
		p.InnerBranches = b2
		return synthetic.BuildMDF(p)
	}
	return nil, fmt.Errorf("mdfviz: unknown job %q", job)
}
