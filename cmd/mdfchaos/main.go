// Command mdfchaos runs the deterministic chaos harness: seeded random
// trials (cluster config + MDF workload + fault plan), each executed twice —
// fault-free golden and faulted — with invariant oracles comparing the two.
// On a violation the fault plan is delta-debugged down to a minimal repro
// and written as a self-contained JSON file replayable with -replay here or
// with `mdfrun -faults`.
//
// With -crash the harness switches to the crash-restart oracle: each trial
// runs a batch of jobs on a durable mdfserve instance, then kills and
// restarts the service at every journal record boundary (with seeded torn
// tails, journal bit flips and checkpoint corruption) and asserts the
// recovered outcomes match the uninterrupted run exactly.
//
// Usage:
//
//	mdfchaos -trials 50 -seed 1
//	mdfchaos -trials 200 -seed 7 -oracle accounting,lineage
//	mdfchaos -replay chaos-repro.json
//	mdfchaos -crash -trials 50 -seed 1 -state-root /tmp/mdfcrash
//
// Exit codes: 0 all trials passed, 1 violations found, 2 bad usage,
// 3 a replayed repro still violates its oracle.
package main

import (
	"flag"
	"fmt"
	"os"

	"metadataflow/internal/chaos"
)

func main() {
	var (
		trials    = flag.Int("trials", 50, "number of generated trials to run")
		seed      = flag.Int64("seed", 1, "sweep seed; same seed and trials reproduce the sweep bit for bit")
		oracle    = flag.String("oracle", "", "comma-separated oracle filter (default all): "+joinOracles())
		replay    = flag.String("replay", "", "replay a chaos-repro.json file instead of sweeping")
		reproOut  = flag.String("repro", "chaos-repro.json", "where to write the shrunk repro of the first violation")
		crash     = flag.Bool("crash", false, "run the crash-restart oracle against a durable service instead of the engine sweep")
		stateRoot = flag.String("state-root", "", "crash mode: directory for per-trial service state (default a temp dir, removed on success)")
	)
	flag.Parse()
	if *crash {
		os.Exit(runCrash(*trials, *seed, *stateRoot))
	}
	os.Exit(run(*trials, *seed, *oracle, *replay, *reproOut))
}

// runCrash executes the crash-restart sweep. State directories land under
// stateRoot (kept for inspection when the caller names one, removed
// otherwise), and the per-trial log lines are deterministic for a given
// seed and trial count.
func runCrash(trials int, seed int64, stateRoot string) int {
	if trials < 1 {
		fmt.Fprintf(os.Stderr, "mdfchaos: -trials must be positive, got %d\n", trials)
		return 2
	}
	keep := stateRoot != ""
	if !keep {
		dir, err := os.MkdirTemp("", "mdfcrash-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		stateRoot = dir
	}
	res, err := chaos.CrashSweep(seed, trials, stateRoot, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("crash sweep: %d trials, %d restart boundaries, %d violations (seed %d)\n",
		res.Trials, res.Boundaries, res.Violations, seed)
	if res.Violations > 0 {
		fmt.Printf("state kept under %s\n", stateRoot)
		return 1
	}
	if !keep {
		os.RemoveAll(stateRoot)
	}
	return 0
}

func joinOracles() string {
	s := ""
	for i, name := range chaos.AllOracles {
		if i > 0 {
			s += ", "
		}
		s += name
	}
	return s
}

func run(trials int, seed int64, oracle, replay, reproOut string) int {
	if err := chaos.ValidateFilter(oracle); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if replay != "" {
		return runReplay(replay, oracle)
	}
	if trials < 1 {
		fmt.Fprintf(os.Stderr, "mdfchaos: -trials must be positive, got %d\n", trials)
		return 2
	}
	res, err := chaos.Sweep(seed, trials, oracle, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("sweep: %d trials, %d violations (seed %d)\n", res.Trials, res.Violations, seed)
	if res.Repro != nil {
		f, err := os.Create(reproOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := res.Repro.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote shrunk repro (%d fault events, oracle %s) to %s\n",
			res.Repro.Trial.Faults.NumEvents(), res.Repro.Oracle, reproOut)
	}
	if res.Violations > 0 {
		return 1
	}
	return 0
}

func runReplay(path, oracle string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := chaos.ParseRepro(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if oracle != "" {
		r.Oracle = oracle
	}
	vs, err := chaos.Replay(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(vs) == 0 {
		fmt.Printf("replay: %s no longer violates oracle %s (seed %d, %d workers, %d fault events)\n",
			path, r.Oracle, r.Trial.Seed, r.Trial.Workers, r.Trial.Faults.NumEvents())
		return 0
	}
	for _, v := range vs {
		fmt.Printf("oracle %s violated: %s\n", v.Oracle, v.Detail)
	}
	fmt.Printf("replay: %s reproduces: oracle %s violated %d time(s)\n", path, vs[0].Oracle, len(vs))
	return 3
}
