// Command mdfplan runs the plan-level static verifier (internal/plan) over
// MDF spec files: it proves jobs degenerate, dead, or inadmissible from the
// plan alone, checks that documents are in canonical form, and prints
// content-hash reports. It is the spec-document sibling of mdflint (which
// vets the repo's Go source) and prints the same `location: [rule] message`
// diagnostic shape, so `make specvet` can gate on it.
//
// Usage:
//
//	mdfplan spec.json ...                 # run the verifier battery
//	mdfplan -rules memfeasible spec.json  # a subset of rules
//	mdfplan -canonical spec.json ...      # also require canonical form
//	mdfplan -canonical -write spec.json   # rewrite files into canonical form
//	mdfplan -hash spec.json               # print the content-hash report
//	mdfplan -json spec.json               # one JSON finding object per line
//	mdfplan -stale-allows spec.json       # audit the spec's "allow" entries
//	mdfplan -list                         # list the rules
//
// The memory-feasibility rule checks the plan against a cluster shape;
// -workers, -mem-gb and -quota-mb configure it and default to the engine
// defaults (8 workers, 10 GB each, no tenant quota) — mdfserve runs the
// same battery at admission with its own configuration, so a spec that
// passes here can still be rejected by a smaller service.
//
// With -stale-allows the run additionally reports every "allow" entry that
// suppressed nothing (informational; does not affect the exit code). With
// -json each finding is one {"file":...,"path":...,"rule":...,"msg":...}
// object per line.
//
// Exit codes: 0 clean, 1 findings (including parse failures and, under
// -canonical, non-canonical documents), 2 usage or I/O errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"metadataflow/internal/plan"
	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// fileFinding is the -json wire shape: a plan.Finding plus the file it
// came from, since one run may cover many spec documents.
type fileFinding struct {
	File string `json:"file"`
	Path string `json:"path,omitempty"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// realMain is main with its streams and exit code lifted out so the CLI
// contract — flag handling, output shape, exit codes — is testable.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdfplan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules       = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list        = fs.Bool("list", false, "list the available rules and exit")
		jsonMode    = fs.Bool("json", false, "emit findings as one JSON object per line")
		staleAllows = fs.Bool("stale-allows", false, "also report \"allow\" entries that suppress nothing (informational; does not affect the exit code)")
		canonical   = fs.Bool("canonical", false, "also require each document to be in canonical form")
		write       = fs.Bool("write", false, "with -canonical, rewrite non-canonical files in place instead of reporting them")
		hashMode    = fs.Bool("hash", false, "print each spec's content-hash report instead of verifying")
		workers     = fs.Int("workers", 8, "cluster shape for memory feasibility: simulated worker nodes")
		memGB       = fs.Int64("mem-gb", 10, "cluster shape for memory feasibility: memory per worker in GB")
		quotaMB     = fs.Int64("quota-mb", 0, "tenant quota in MB for admission feasibility (0 = no quota checks)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mdfplan [-rules r1,r2] [-canonical [-write]] [-hash] [-json] [-stale-allows] [-list] spec.json ...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range plan.Rules() {
			fmt.Fprintln(stdout, r)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "mdfplan: no spec files")
		fs.Usage()
		return 2
	}
	if *write && !*canonical {
		fmt.Fprintln(stderr, "mdfplan: -write requires -canonical")
		fs.Usage()
		return 2
	}

	cfg := plan.Config{
		MaxIterateRounds: plan.DefaultConfig().MaxIterateRounds,
		Workers:          *workers,
		MemPerWorker:     sim.Bytes(*memGB) * 1000 * 1000 * 1000,
		TenantQuota:      sim.Bytes(*quotaMB) * 1000 * 1000,
	}
	if *rules != "" {
		known := map[string]bool{}
		for _, r := range plan.Rules() {
			known[r] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(stderr, "mdfplan: unknown rule %q\nvalid rules: %s\n",
					r, strings.Join(plan.Rules(), ", "))
				fs.Usage()
				return 2
			}
			cfg.Rules = append(cfg.Rules, r)
		}
	}

	enc := json.NewEncoder(stdout)
	emit := func(file string, f plan.Finding) int {
		if *jsonMode {
			if err := enc.Encode(fileFinding{File: file, Path: f.Path, Rule: f.Rule, Msg: f.Msg}); err != nil {
				fmt.Fprintln(stderr, "mdfplan:", err)
				return 2
			}
		} else {
			fmt.Fprintf(stdout, "%s: %s\n", file, f)
		}
		return 0
	}

	n := 0
	for _, file := range fs.Args() {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "mdfplan:", err)
			return 2
		}
		s, err := spec.Parse(data)
		if err != nil {
			// A document that does not parse is condemned, not a tool
			// failure: report it like a finding so a sweep over many
			// files covers the rest before exiting 1.
			if rc := emit(file, plan.Finding{Rule: "parse", Msg: err.Error()}); rc != 0 {
				return rc
			}
			n++
			continue
		}

		if *hashMode {
			rep := s.HashReport()
			if *jsonMode {
				if err := enc.Encode(struct {
					File string `json:"file"`
					*spec.HashReport
				}{file, rep}); err != nil {
					fmt.Fprintln(stderr, "mdfplan:", err)
					return 2
				}
			} else {
				fmt.Fprintf(stdout, "%s: %s\n", file, rep.Spec)
			}
			continue
		}

		if *canonical {
			canon, err := s.Canonicalize()
			if err != nil {
				fmt.Fprintln(stderr, "mdfplan:", err)
				return 2
			}
			if !bytes.Equal(canon, data) {
				if *write {
					if err := os.WriteFile(file, canon, 0o644); err != nil {
						fmt.Fprintln(stderr, "mdfplan:", err)
						return 2
					}
					fmt.Fprintf(stderr, "mdfplan: rewrote %s\n", file)
				} else {
					if rc := emit(file, plan.Finding{Rule: "canonical", Msg: "document is not in canonical form (run mdfplan -canonical -write)"}); rc != 0 {
						return rc
					}
					n++
				}
			}
		}

		res, err := plan.Verify(s, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "mdfplan:", err)
			return 2
		}
		for _, f := range res.Findings {
			if rc := emit(file, f); rc != 0 {
				return rc
			}
			n++
		}
		if *staleAllows {
			for _, st := range res.StaleAllows {
				if *jsonMode {
					if err := enc.Encode(struct {
						File string `json:"file"`
						Rule string `json:"rule"`
					}{file, st.Rule}); err != nil {
						fmt.Fprintln(stderr, "mdfplan:", err)
						return 2
					}
				} else {
					fmt.Fprintf(stdout, "%s: %s\n", file, st)
				}
			}
		}
	}
	if n > 0 {
		fmt.Fprintf(stderr, "mdfplan: %d finding(s)\n", n)
		return 1
	}
	return 0
}
