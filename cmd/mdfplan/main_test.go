package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runPlan invokes realMain capturing both streams.
func runPlan(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = realMain(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListRules(t *testing.T) {
	code, out, _ := runPlan(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, r := range []string{"compile", "dupbranch", "deadchoose", "degeniterate", "emptyfilter", "memfeasible"} {
		if !strings.Contains(out, r) {
			t.Errorf("rule %q missing from -list output:\n%s", r, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, errOut := runPlan(t); code != 2 || !strings.Contains(errOut, "no spec files") {
		t.Errorf("no args: exit = %d, stderr = %q, want 2 + no-spec-files", code, errOut)
	}
	if code, _, errOut := runPlan(t, "-rules", "nosuch", "x.json"); code != 2 || !strings.Contains(errOut, "unknown rule") {
		t.Errorf("unknown rule: exit = %d, stderr = %q", code, errOut)
	}
	if code, _, errOut := runPlan(t, "-write", "x.json"); code != 2 || !strings.Contains(errOut, "-write requires -canonical") {
		t.Errorf("-write alone: exit = %d, stderr = %q", code, errOut)
	}
	if code, _, _ := runPlan(t, "no-such-file.json"); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
}

// TestSeededDefects: the verifier condemns the defect fixtures internal/plan
// tests against, through the CLI, with exit 1.
func TestSeededDefects(t *testing.T) {
	cases := []struct {
		fixture string
		rule    string
	}{
		{"dup-branch.json", "[dupbranch]"},
		{"dead-choose.json", "[deadchoose]"},
		{"degenerate-iterate.json", "[degeniterate]"},
		{"empty-filter.json", "[emptyfilter]"},
		{"infeasible-memory.json", "[memfeasible]"},
	}
	for _, tc := range cases {
		path := filepath.Join("..", "..", "internal", "plan", "testdata", tc.fixture)
		code, out, errOut := runPlan(t, path)
		if code != 1 {
			t.Errorf("%s: exit = %d, want 1 (stderr: %s)", tc.fixture, code, errOut)
		}
		if !strings.Contains(out, tc.rule) || !strings.Contains(out, tc.fixture+":") {
			t.Errorf("%s: output missing %s finding:\n%s", tc.fixture, tc.rule, out)
		}
		if !strings.Contains(errOut, "finding(s)") {
			t.Errorf("%s: stderr missing summary: %q", tc.fixture, errOut)
		}
	}
}

// TestCleanExamples: every committed example and canonical fixture passes
// the full battery — the acceptance bar for shipping them.
func TestCleanExamples(t *testing.T) {
	files := []string{
		filepath.Join("..", "..", "examples", "specs", "outlier.json"),
		filepath.Join("..", "..", "internal", "spec", "testdata", "canonical", "outlier-sweep.json"),
		filepath.Join("..", "..", "internal", "spec", "testdata", "canonical", "iterate-affine.json"),
	}
	code, out, errOut := runPlan(t, append([]string{"-canonical", "-stale-allows"}, files...)...)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errOut)
	}
}

// TestQuotaFlag: the CLI's cluster-shape flags reach the memfeasible rule.
func TestQuotaFlag(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "specs", "outlier.json")
	// Under a 1024 MB quota the default shape's 80 GB admission
	// reservation can never fit: no job is ever admitted.
	code, out, _ := runPlan(t, "-quota-mb", "1024", path)
	if code != 1 || !strings.Contains(out, "[memfeasible]") {
		t.Errorf("exit = %d, out = %q, want quota finding", code, out)
	}
	if code, _, _ := runPlan(t, path); code != 0 {
		t.Errorf("default config: exit = %d, want 0", code)
	}
}

func TestParseFindingAndJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{\n  \"source\": nope\n}"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runPlan(t, "-json", bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var f fileFinding
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &f); err != nil {
		t.Fatalf("bad JSON line %q: %v", out, err)
	}
	if f.File != bad || f.Rule != "parse" || !strings.Contains(f.Msg, "line 2") {
		t.Errorf("finding = %+v", f)
	}
}

// TestCanonicalCheckAndWrite: a non-canonical document is condemned, -write
// rewrites it in place, and the rewrite is a fixpoint.
func TestCanonicalCheckAndWrite(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "spec.json")
	// Minimal but non-canonical: defaults unmaterialised, no version.
	doc := `{"source": {"rows": 10, "seed": 1}, "pipeline": [{"op": {"name": "id"}}]}`
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runPlan(t, "-canonical", file)
	if code != 1 || !strings.Contains(out, "[canonical]") {
		t.Fatalf("check: exit = %d, out = %q, want canonical finding", code, out)
	}

	if code, _, errOut := runPlan(t, "-canonical", "-write", file); code != 0 || !strings.Contains(errOut, "rewrote") {
		t.Fatalf("write: exit = %d, stderr = %q", code, errOut)
	}
	if code, out, _ := runPlan(t, "-canonical", file); code != 0 {
		t.Fatalf("rewrite not canonical: exit = %d, out = %q", code, out)
	}
	canon, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(canon), "schema_version") {
		t.Errorf("rewrite lacks schema_version:\n%s", canon)
	}
}

// TestHashMode: -hash prints a per-file content hash; semantically equal
// spellings print the same hash.
func TestHashMode(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	// Same graph, different spelling: key order and whitespace differ.
	if err := os.WriteFile(a, []byte(`{"source": {"rows": 10, "seed": 1}, "pipeline": [{"op": {"name": "x", "fn": "abs"}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`{
  "pipeline": [{"op": {"fn": "abs", "name": "renamed"}}],
  "source": {"seed": 1, "rows": 10}
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runPlan(t, "-hash", a, b)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 hash lines, got %q", out)
	}
	ha := strings.TrimPrefix(lines[0], a+": ")
	hb := strings.TrimPrefix(lines[1], b+": ")
	if ha != hb || len(ha) != 16 {
		t.Errorf("hashes differ for equal graphs: %q vs %q", ha, hb)
	}

	// JSON mode carries the full report.
	code, out, _ = runPlan(t, "-hash", "-json", a)
	if code != 0 {
		t.Fatalf("json exit = %d", code)
	}
	var rep struct {
		File   string `json:"file"`
		Spec   string `json:"spec"`
		Chains []struct {
			Path string `json:"path"`
			Hash string `json:"hash"`
		} `json:"chains"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rep); err != nil {
		t.Fatalf("bad JSON report %q: %v", out, err)
	}
	if rep.File != a || len(rep.Chains) == 0 {
		t.Errorf("report = %+v", rep)
	}
}

// TestStaleAllows: an allow entry that suppresses nothing is reported but
// does not affect the exit code.
func TestStaleAllows(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "spec.json")
	doc := `{"allow": ["emptyfilter"], "source": {"rows": 10, "seed": 1}, "pipeline": [{"op": {"name": "id"}}]}`
	if err := os.WriteFile(file, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runPlan(t, "-stale-allows", file)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stale allows are informational)", code)
	}
	if !strings.Contains(out, "[emptyfilter]") || !strings.Contains(out, "suppresses nothing") {
		t.Errorf("stale allow not reported: %q", out)
	}
}
