// Command mdfbench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated cluster and prints the data series.
//
// Usage:
//
//	mdfbench -exp fig7           # one experiment
//	mdfbench -exp all            # everything (slow)
//	mdfbench -exp fig9 -quick    # reduced sweep for a fast look
//	mdfbench -exp fig9 -csv      # machine-readable output
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"metadataflow/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (table1, fig5..fig18) or 'all'")
		quick = flag.Bool("quick", false, "reduced workloads and sweeps")
		seeds = flag.Int("seeds", 3, "runs per data point (paper uses 3)")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		md    = flag.Bool("markdown", false, "emit a markdown table (for EXPERIMENTS.md)")
		jsonF = flag.Bool("json", false, "write each experiment's data as BENCH_<exp>.json (schema-stable, with seeds and min/avg/max per cell)")
		out   = flag.String("out", "", "also write each experiment's CSV into this directory")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "mdfbench: -seeds must be at least 1 (got %d)\n", *seeds)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the sweep between seeded runs: experiments that
	// already completed keep their flushed artifacts, the in-flight one is
	// abandoned without a partial file, and the process exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Options{Seeds: *seeds, Quick: *quick, Ctx: ctx}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.Registry()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdfbench: %v\nusage: mdfbench -exp <id> [-quick] [-seeds n] [-csv|-markdown] [-out dir]\nrun 'mdfbench -list' for the available experiment ids\n", err)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			if errors.Is(err, experiments.ErrInterrupted) {
				os.Exit(130)
			}
			os.Exit(1)
		}
		if *out != "" {
			path := filepath.Join(*out, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *jsonF {
			// BENCH_<exp>.json lands next to the CSVs when -out is given,
			// otherwise in the working directory.
			data, err := tab.JSON(opts.SeedList())
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			path := fmt.Sprintf("BENCH_%s.json", e.ID)
			if *out != "" {
				path = filepath.Join(*out, path)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		switch {
		case *csv:
			fmt.Print(tab.CSV())
		case *md:
			fmt.Println(tab.Markdown())
		default:
			fmt.Print(tab.Format())
			fmt.Printf("(regenerated in %.1fs wall time)\n\n", time.Since(start).Seconds())
		}
	}
}
