// Command mdfserve is the multi-tenant MDF job service: an HTTP/JSON daemon
// that admits declarative job specs, runs them concurrently on per-job
// simulated clusters under per-tenant memory quotas, and degrades gracefully
// under overload (429 + Retry-After), repeated panics (tenant quarantine)
// and shutdown (SIGTERM drain with checkpointing).
//
// Usage:
//
//	mdfserve -addr :8080
//	mdfserve -addr :8080 -max-active 4 -queue-cap 32 -deadline-sec 600
//	mdfserve -addr :8080 -drain-metrics metrics.json   # flushed on SIGTERM
//	mdfserve -addr :8080 -state-dir /var/lib/mdfserve   # crash-consistent
//
// Submit a job:
//
//	curl -X POST localhost:8080/jobs -d '{"tenant": "alice", "spec": {...}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"metadataflow/internal/service"
	"metadataflow/internal/sim"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 4, "simulated worker nodes per job")
		memMB        = flag.Int64("mem-mb", 256, "simulated memory per worker in MB")
		quotaMB      = flag.Int64("tenant-quota-mb", 0, "per-tenant memory quota in MB (0 = room for two jobs)")
		queueCap     = flag.Int("queue-cap", 16, "admission queue capacity")
		maxActive    = flag.Int("max-active", 2, "concurrently running jobs")
		deadlineSec  = flag.Float64("deadline-sec", 0, "default per-job virtual deadline in simulated seconds (0 = none)")
		drainBudget  = flag.Int("drain-steps", 4, "engine steps granted to each in-flight job during drain before checkpointing")
		drainMetrics = flag.String("drain-metrics", "", "write the final aggregated metrics snapshot to this file on shutdown")
		noVet        = flag.Bool("no-vet", false, "skip plan vetting at admission (by default specs the verifier condemns are rejected with 400 before any quota is reserved)")
		stateDir     = flag.String("state-dir", "", "crash-consistent state directory (job journal + durable checkpoint store); on start the journal is replayed and interrupted jobs resume")
		noSync       = flag.Bool("journal-no-sync", false, "skip the per-record journal fsync (faster, may lose the last records on a crash)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *memMB, *quotaMB, *queueCap, *maxActive, *deadlineSec, *drainBudget, *drainMetrics, *noVet, *stateDir, *noSync); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr string, workers int, memMB, quotaMB int64, queueCap, maxActive int, deadlineSec float64, drainBudget int, drainMetrics string, noVet bool, stateDir string, noSync bool) error {
	srv, err := service.Open(service.Config{
		Workers:         workers,
		MemPerWorker:    sim.Bytes(memMB) << 20,
		TenantQuota:     sim.Bytes(quotaMB) << 20,
		QueueCap:        queueCap,
		MaxActive:       maxActive,
		DeadlineSec:     deadlineSec,
		DrainStepBudget: drainBudget,
		DisableVet:      noVet,
		StateDir:        stateDir,
		JournalNoSync:   noSync,
	})
	if err != nil {
		return fmt.Errorf("mdfserve: recovering state from %s: %w", stateDir, err)
	}
	if stateDir != "" {
		m := srv.Metrics()
		recovered, _ := m.CounterValue("service.recovery.jobs_recovered")
		requeued, _ := m.CounterValue("service.recovery.jobs_requeued")
		truncated, _ := m.CounterValue("service.recovery.journal_truncated")
		fmt.Printf("mdfserve: recovered %d jobs from %s (%d requeued, %d journal truncations healed)\n",
			recovered, stateDir, requeued, truncated)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("mdfserve listening on %s\n", ln.Addr())

	// Graceful shutdown: on SIGINT/SIGTERM stop admitting, let in-flight
	// jobs finish or checkpoint within the drain budget, flush the final
	// metrics snapshot, then close the HTTP listener.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("mdfserve: signal received, draining")

	snap := srv.Drain()
	if drainMetrics != "" {
		f, err := os.Create(drainMetrics)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := snap.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("mdfserve: wrote final metrics snapshot to %s\n", drainMetrics)
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	srv.Close()
	fmt.Println("mdfserve: drained, bye")
	return nil
}
