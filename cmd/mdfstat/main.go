// mdfstat diffs two MDF telemetry artifacts — mdf.bench/v1 benchmark
// tables, mdf.metrics/v1 run snapshots, or mdf.watch/v1 event-stream
// captures — and renders a per-series delta table (or, for watch logs, a
// crash-recovery completeness report). It is the trajectory gate behind
// `make bench-trajectory`: when a watched series regresses past the
// threshold (the current value is worse than the baseline by more than
// -threshold percent), mdfstat prints the offending rows and exits 1, so
// CI catches a performance regression even when the artifact bytes
// legitimately changed.
//
// Usage:
//
//	mdfstat [-threshold pct] [-watch regex] [-higher-better] baseline.json current.json
//	mdfstat pre-crash.watch post-recovery.watch
//
// Both artifacts must carry the same schema. Bench tables flatten to one
// series per (row, column) cell using the cell's avg; metrics snapshots
// flatten to completion_sec plus every counter and gauge. All values in
// both schemas are virtual-time or simulated quantities, so the diff is
// exact across machines. By default larger is worse (completion times);
// -higher-better inverts the direction for throughput-like artifacts.
// Series present on only one side are reported but never gated.
//
// Watch captures (NDJSON streams saved from mdfserve's GET /watch) are
// compared as pre-crash baseline vs post-recovery current: each log's
// event sequence must be dense from 1, and every lifecycle transition
// streamed before the crash must reappear after recovery. Missing events
// are printed and gate exit 1.
//
// Exit codes: 0 no regression, 1 regression past threshold (or lost
// events), 2 usage or malformed input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"text/tabwriter"
)

// artifact is the union of the two accepted document schemas; the schema
// field decides which half is meaningful.
type artifact struct {
	Schema string `json:"schema"`

	// mdf.bench/v1
	Experiment string   `json:"experiment"`
	Unit       string   `json:"unit"`
	Columns    []string `json:"columns"`
	Rows       []struct {
		X     string `json:"x"`
		Cells []struct {
			Min float64 `json:"min"`
			Avg float64 `json:"avg"`
			Max float64 `json:"max"`
		} `json:"cells"`
	} `json:"rows"`

	// mdf.metrics/v1
	CompletionSec float64 `json:"completion_sec"`
	Counters      []stat  `json:"counters"`
	Gauges        []stat  `json:"gauges"`
}

type stat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

const (
	benchSchema   = "mdf.bench/v1"
	metricsSchema = "mdf.metrics/v1"
)

// load parses one artifact and rejects unknown schemas.
func load(path string) (*artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(raw, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch a.Schema {
	case benchSchema, metricsSchema:
		return &a, nil
	}
	return nil, fmt.Errorf("%s: unsupported schema %q (want %s or %s)", path, a.Schema, benchSchema, metricsSchema)
}

// flatten reduces an artifact to named series values, returning the map
// and the artifact's own emission order (which both schemas keep
// deterministic).
func flatten(a *artifact) (map[string]float64, []string) {
	vals := make(map[string]float64)
	var order []string
	put := func(name string, v float64) {
		if _, dup := vals[name]; !dup {
			order = append(order, name)
		}
		vals[name] = v
	}
	switch a.Schema {
	case benchSchema:
		for _, r := range a.Rows {
			for j, c := range r.Cells {
				col := fmt.Sprintf("col%d", j)
				if j < len(a.Columns) {
					col = a.Columns[j]
				}
				put(r.X+"/"+col, c.Avg)
			}
		}
	case metricsSchema:
		put("completion_sec", a.CompletionSec)
		for _, c := range a.Counters {
			put("counter."+c.Name, c.Value)
		}
		for _, g := range a.Gauges {
			put("gauge."+g.Name, g.Value)
		}
	}
	return vals, order
}

// delta is one row of the diff table.
type delta struct {
	name          string
	base, cur     float64
	inBase, inCur bool
	regression    bool
}

// diff aligns the two flattened artifacts in baseline order (new series
// appended in current order) and marks regressions on series matching
// watch: a gated series regresses when the current value is worse than the
// baseline by more than threshold percent, with "worse" meaning larger
// unless higherBetter.
func diff(base, cur map[string]float64, baseOrder, curOrder []string, watch *regexp.Regexp, threshold float64, higherBetter bool) []delta {
	var out []delta
	for _, name := range baseOrder {
		d := delta{name: name, base: base[name], inBase: true}
		if v, ok := cur[name]; ok {
			d.cur, d.inCur = v, true
			d.regression = regressed(d.base, d.cur, threshold, higherBetter) && watch.MatchString(name)
		}
		out = append(out, d)
	}
	for _, name := range curOrder {
		if _, ok := base[name]; !ok {
			out = append(out, delta{name: name, cur: cur[name], inCur: true})
		}
	}
	return out
}

// regressed decides whether cur is past the threshold relative to base in
// the worse direction. A zero baseline is gated absolutely: any movement
// in the worse direction regresses, since no relative margin exists.
func regressed(base, cur, threshold float64, higherBetter bool) bool {
	if higherBetter {
		base, cur = -base, -cur
	}
	if base == 0 {
		return cur > 0
	}
	if base < 0 {
		// A negative baseline's "worse" margin still points upward.
		return cur > base*(1-threshold/100)
	}
	return cur > base*(1+threshold/100)
}

// render writes the aligned delta table; regressed rows are tagged.
func render(w *tabwriter.Writer, ds []delta) int {
	fmt.Fprintln(w, "series\tbaseline\tcurrent\tdelta\tdelta%\t")
	regressions := 0
	for _, d := range ds {
		switch {
		case !d.inCur:
			fmt.Fprintf(w, "%s\t%g\t-\t\t\tremoved\n", d.name, d.base)
			continue
		case !d.inBase:
			fmt.Fprintf(w, "%s\t-\t%g\t\t\tnew\n", d.name, d.cur)
			continue
		}
		dv := d.cur - d.base
		pct := "-"
		if d.base != 0 {
			pct = fmt.Sprintf("%+.2f%%", dv/d.base*100)
		}
		tag := ""
		if d.regression {
			tag = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%s\t%g\t%g\t%+g\t%s\t%s\n", d.name, d.base, d.cur, dv, pct, tag)
	}
	return regressions
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mdfstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 5, "regression threshold in percent")
	watch := fs.String("watch", ".*", "regexp of series names the gate applies to")
	higherBetter := fs.Bool("higher-better", false, "treat larger current values as improvements")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: mdfstat [-threshold pct] [-watch regex] [-higher-better] baseline.json current.json")
		return 2
	}
	re, err := regexp.Compile(*watch)
	if err != nil {
		fmt.Fprintf(stderr, "mdfstat: bad -watch: %v\n", err)
		return 2
	}
	baseWatch, curWatch := sniffWatch(fs.Arg(0)), sniffWatch(fs.Arg(1))
	if baseWatch || curWatch {
		if !baseWatch || !curWatch {
			fmt.Fprintf(stderr, "mdfstat: schema mismatch: one input is %s, the other is not\n", watchSchema)
			return 2
		}
		return runWatchDiff(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}
	baseArt, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "mdfstat: %v\n", err)
		return 2
	}
	curArt, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "mdfstat: %v\n", err)
		return 2
	}
	if baseArt.Schema != curArt.Schema {
		fmt.Fprintf(stderr, "mdfstat: schema mismatch: %q vs %q\n", baseArt.Schema, curArt.Schema)
		return 2
	}
	baseVals, baseOrder := flatten(baseArt)
	curVals, curOrder := flatten(curArt)
	ds := diff(baseVals, curVals, baseOrder, curOrder, re, *threshold, *higherBetter)

	if baseArt.Schema == benchSchema {
		unit := baseArt.Unit
		if unit == "" {
			unit = "unitless"
		}
		fmt.Fprintf(stdout, "experiment %s (%s), threshold %g%%\n", baseArt.Experiment, unit, *threshold)
	} else {
		fmt.Fprintf(stdout, "metrics snapshot, threshold %g%%\n", *threshold)
	}
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	regressions := render(tw, ds)
	tw.Flush()
	if regressions > 0 {
		fmt.Fprintf(stderr, "mdfstat: %d series regressed past %g%%\n", regressions, *threshold)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
