package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

const benchBase = `{
  "schema": "mdf.bench/v1",
  "experiment": "stragglers",
  "title": "t",
  "x_label": "slow factor",
  "unit": "virtual seconds",
  "seeds": [1],
  "columns": ["SEEP (MDF)", "MDF + speculation"],
  "rows": [
    {"x": "1x", "cells": [{"min": 100, "avg": 100, "max": 100}, {"min": 100, "avg": 100, "max": 100}]},
    {"x": "4x", "cells": [{"min": 400, "avg": 400, "max": 400}, {"min": 180, "avg": 180, "max": 180}]}
  ]
}`

// benchRegressed injects a synthetic +10% regression into the 4x
// speculation cell (180 → 198); everything else is unchanged.
const benchRegressed = `{
  "schema": "mdf.bench/v1",
  "experiment": "stragglers",
  "title": "t",
  "x_label": "slow factor",
  "unit": "virtual seconds",
  "seeds": [1],
  "columns": ["SEEP (MDF)", "MDF + speculation"],
  "rows": [
    {"x": "1x", "cells": [{"min": 100, "avg": 100, "max": 100}, {"min": 100, "avg": 100, "max": 100}]},
    {"x": "4x", "cells": [{"min": 400, "avg": 400, "max": 400}, {"min": 198, "avg": 198, "max": 198}]}
  ]
}`

const metricsBase = `{
  "schema": "mdf.metrics/v1",
  "completion_sec": 300,
  "counters": [{"name": "engine.stages_executed", "value": 12}],
  "gauges": [{"name": "mem.peak_bytes", "value": 1048576}],
  "histograms": [], "nodes": [], "faults": []
}`

const metricsRegressed = `{
  "schema": "mdf.metrics/v1",
  "completion_sec": 360,
  "counters": [{"name": "engine.stages_executed", "value": 12}],
  "gauges": [{"name": "mem.peak_bytes", "value": 1048576}],
  "histograms": [], "nodes": [], "faults": []
}`

func writeFixture(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runStat(t *testing.T, args ...string) int {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	return run(args, devnull, devnull)
}

func TestStatIdenticalArtifactsPass(t *testing.T) {
	base := writeFixture(t, "base.json", benchBase)
	if code := runStat(t, base, base); code != 0 {
		t.Fatalf("identical artifacts exit = %d, want 0", code)
	}
}

func TestStatBenchRegressionFails(t *testing.T) {
	base := writeFixture(t, "base.json", benchBase)
	cur := writeFixture(t, "cur.json", benchRegressed)
	if code := runStat(t, base, cur); code != 1 {
		t.Fatalf("+10%% regression at 5%% threshold exit = %d, want 1", code)
	}
	// A looser threshold lets the same delta through.
	if code := runStat(t, "-threshold", "15", base, cur); code != 0 {
		t.Fatalf("+10%% regression at 15%% threshold exit = %d, want 0", code)
	}
	// A watch filter that excludes the regressed series ungates it.
	if code := runStat(t, "-watch", `^1x/`, base, cur); code != 0 {
		t.Fatalf("regression outside watch scope exit = %d, want 0", code)
	}
	// Reversing the artifacts is an improvement, not a regression.
	if code := runStat(t, cur, base); code != 0 {
		t.Fatalf("improvement exit = %d, want 0", code)
	}
}

func TestStatMetricsRegressionFails(t *testing.T) {
	base := writeFixture(t, "base.json", metricsBase)
	cur := writeFixture(t, "cur.json", metricsRegressed)
	if code := runStat(t, base, cur); code != 1 {
		t.Fatalf("completion_sec +20%% exit = %d, want 1", code)
	}
	if code := runStat(t, "-watch", "^counter", base, cur); code != 0 {
		t.Fatalf("counter-only watch exit = %d, want 0", code)
	}
}

func TestStatHigherBetterInverts(t *testing.T) {
	base := writeFixture(t, "base.json", benchBase)
	cur := writeFixture(t, "cur.json", benchRegressed)
	// Under -higher-better the 180 → 198 move is an improvement and the
	// unchanged cells are flat, so nothing regresses.
	if code := runStat(t, "-higher-better", base, cur); code != 0 {
		t.Fatalf("higher-better exit = %d, want 0", code)
	}
	if code := runStat(t, "-higher-better", cur, base); code != 1 {
		t.Fatalf("higher-better drop exit = %d, want 1", code)
	}
}

func TestStatRejectsBadInput(t *testing.T) {
	base := writeFixture(t, "base.json", benchBase)
	met := writeFixture(t, "met.json", metricsBase)
	bad := writeFixture(t, "bad.json", `{"schema": "nope/v9"}`)
	if code := runStat(t, base, bad); code != 2 {
		t.Fatalf("unknown schema exit = %d, want 2", code)
	}
	if code := runStat(t, base, met); code != 2 {
		t.Fatalf("schema mismatch exit = %d, want 2", code)
	}
	if code := runStat(t, base); code != 2 {
		t.Fatalf("missing arg exit = %d, want 2", code)
	}
	if code := runStat(t, "-watch", "(", base, base); code != 2 {
		t.Fatalf("bad regex exit = %d, want 2", code)
	}
}

func TestRegressedDirections(t *testing.T) {
	cases := []struct {
		base, cur    float64
		higherBetter bool
		want         bool
	}{
		{100, 104, false, false}, // within 5%
		{100, 106, false, true},
		{100, 96, false, false}, // improvement
		{0, 1, false, true},     // zero baseline gates absolutely
		{0, 0, false, false},
		{-10, -9.6, false, false}, // within the negative margin (-9.5)
		{-10, -9, false, true},
		{100, 96, true, false}, // within 5% the other way
		{100, 94, true, true},
	}
	for _, c := range cases {
		if got := regressed(c.base, c.cur, 5, c.higherBetter); got != c.want {
			t.Errorf("regressed(%g, %g, 5, %v) = %v, want %v", c.base, c.cur, c.higherBetter, got, c.want)
		}
	}
}

func TestFlattenBenchNaming(t *testing.T) {
	base := writeFixture(t, "base.json", benchBase)
	a, err := load(base)
	if err != nil {
		t.Fatal(err)
	}
	vals, order := flatten(a)
	if len(order) != 4 {
		t.Fatalf("series count = %d, want 4", len(order))
	}
	if vals["4x/MDF + speculation"] != 180 {
		t.Fatalf("cell lookup = %g, want 180", vals["4x/MDF + speculation"])
	}
	re := regexp.MustCompile(`^(1x|4x)/`)
	for _, name := range order {
		if !re.MatchString(name) {
			t.Fatalf("unexpected series name %q", name)
		}
	}
}
