package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const watchHeaderLine = `{"schema":"mdf.watch/v1","bucketSec":10}`

// watchPre is a capture taken before a crash: two jobs admitted, one
// finished (with a retry along the way), one still running, plus a bucket
// event from the finished job's gauge replay.
const watchPre = watchHeaderLine + `
{"seq":1,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"queued","tSec":0}
{"seq":2,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"running","tSec":0}
{"seq":3,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"queued","tSec":0}
{"seq":4,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"retried","tSec":4.5}
{"seq":5,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"done","tSec":9.25}
{"seq":6,"kind":"bucket","job":"job-0001","tenant":"alpha","tSec":0,"values":{"sched.queue_depth":1}}
{"seq":7,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"running","tSec":0}
`

// watchPost is the capture after restart and recovery: everything the
// pre-crash clients saw is replayed (in recovery order, with fresh seqs)
// and the interrupted job then runs to completion, emitting new events.
const watchPost = watchHeaderLine + `
{"seq":1,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"queued","tSec":0}
{"seq":2,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"queued","tSec":0}
{"seq":3,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"running","tSec":0}
{"seq":4,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"retried","tSec":4.5}
{"seq":5,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"done","tSec":9.25}
{"seq":6,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"running","tSec":0}
{"seq":7,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"done","tSec":12}
{"seq":8,"kind":"bucket","job":"job-0002","tenant":"beta","tSec":0,"values":{"sched.queue_depth":1}}
`

// watchLossy drops job-0001's retried transition: recovery lost history.
const watchLossy = watchHeaderLine + `
{"seq":1,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"queued","tSec":0}
{"seq":2,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"queued","tSec":0}
{"seq":3,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"running","tSec":0}
{"seq":4,"kind":"lifecycle","job":"job-0001","tenant":"alpha","state":"done","tSec":9.25}
{"seq":5,"kind":"lifecycle","job":"job-0002","tenant":"beta","state":"running","tSec":0}
`

func TestWatchDiffRecoveryComplete(t *testing.T) {
	pre := writeFixture(t, "pre.watch", watchPre)
	post := writeFixture(t, "post.watch", watchPost)
	if code := runStat(t, pre, post); code != 0 {
		t.Fatalf("complete recovery exit = %d, want 0", code)
	}
}

func TestWatchDiffLostEventsFail(t *testing.T) {
	pre := writeFixture(t, "pre.watch", watchPre)
	lossy := writeFixture(t, "lossy.watch", watchLossy)
	if code := runStat(t, pre, lossy); code != 1 {
		t.Fatalf("lossy recovery exit = %d, want 1", code)
	}
	// The reverse direction is fine: the lossy log is a subset, so all of
	// its transitions appear in the richer one.
	if code := runStat(t, lossy, pre); code != 0 {
		t.Fatalf("subset baseline exit = %d, want 0", code)
	}
}

func TestWatchDiffPrintsMissing(t *testing.T) {
	pre := writeFixture(t, "pre.watch", watchPre)
	lossy := writeFixture(t, "lossy.watch", watchLossy)
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{pre, lossy}, out, devnull); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte("LOST alpha job-0001/lifecycle state=retried")) {
		t.Fatalf("output does not name the lost event:\n%s", got)
	}
}

func TestWatchDiffRejectsDamagedLogs(t *testing.T) {
	pre := writeFixture(t, "pre.watch", watchPre)
	cases := map[string]string{
		"gap.watch":    strings.Replace(watchPre, `"seq":7`, `"seq":9`, 1),
		"garble.watch": watchHeaderLine + "\n{not json}\n",
		"empty.watch":  "",
	}
	for name, body := range cases {
		bad := writeFixture(t, name, body)
		if code := runStat(t, pre, bad); code != 2 {
			t.Fatalf("%s exit = %d, want 2", name, code)
		}
	}
	// A watch log against a bench artifact is a schema mismatch.
	bench := writeFixture(t, "bench.json", benchBase)
	if code := runStat(t, pre, bench); code != 2 {
		t.Fatalf("watch vs bench exit = %d, want 2", code)
	}
	// Bucket width changing across the restart invalidates the comparison.
	rebucketed := writeFixture(t, "rebucket.watch",
		strings.Replace(watchPost, `"bucketSec":10`, `"bucketSec":20`, 1))
	if code := runStat(t, pre, rebucketed); code != 2 {
		t.Fatalf("bucket width change exit = %d, want 2", code)
	}
}

func TestLoadWatchParsesEvents(t *testing.T) {
	pre := writeFixture(t, "pre.watch", watchPre)
	log, err := loadWatch(pre)
	if err != nil {
		t.Fatal(err)
	}
	if log.bucketSec != 10 {
		t.Fatalf("bucketSec = %g, want 10", log.bucketSec)
	}
	if len(log.events) != 7 {
		t.Fatalf("events = %d, want 7", len(log.events))
	}
	counts := lifecycleCounts(log)
	if len(counts) != 6 {
		t.Fatalf("lifecycle multiset size = %d, want 6 (bucket events must be excluded)", len(counts))
	}
}
