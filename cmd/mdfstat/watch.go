package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// watchSchema is the /watch NDJSON stream format emitted by mdfserve: one
// header line carrying the schema and bucket width, then one event object
// per line. mdfstat treats a pair of captured streams as "before crash"
// and "after recovery" and verifies the restart lost nothing.
const watchSchema = "mdf.watch/v1"

// watchEvent mirrors the service's WatchEvent wire shape. It is redeclared
// here (rather than imported) so mdfstat stays a pure artifact consumer
// with no dependency on the service package.
type watchEvent struct {
	Seq    int                `json:"seq"`
	Kind   string             `json:"kind"`
	Job    string             `json:"job"`
	Tenant string             `json:"tenant"`
	State  string             `json:"state,omitempty"`
	TSec   float64            `json:"tSec"`
	Bucket int                `json:"bucket,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// watchLog is one parsed /watch capture.
type watchLog struct {
	bucketSec float64
	events    []watchEvent
}

// sniffWatch reports whether the file's first line is a mdf.watch/v1
// header, without committing to a full parse. Read errors report false and
// fall through to the artifact loader, which surfaces them properly.
func sniffWatch(path string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	line := raw
	if i := bytes.IndexByte(raw, '\n'); i >= 0 {
		line = raw[:i]
	}
	var hdr struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return false
	}
	return hdr.Schema == watchSchema
}

// loadWatch parses a captured /watch stream: a header line then events. A
// malformed line, wrong schema, or a sequence gap inside the log is a hard
// error — the capture itself is damaged, which is different from the
// cross-log comparison failing.
func loadWatch(path string) (*watchLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty watch log", path)
	}
	var hdr struct {
		Schema    string  `json:"schema"`
		BucketSec float64 `json:"bucketSec"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("%s: bad watch header: %w", path, err)
	}
	if hdr.Schema != watchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %s", path, hdr.Schema, watchSchema)
	}
	log := &watchLog{bucketSec: hdr.BucketSec}
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s:%d: bad watch event: %w", path, line, err)
		}
		if want := len(log.events) + 1; ev.Seq != want {
			return nil, fmt.Errorf("%s:%d: seq %d, want dense %d", path, line, ev.Seq, want)
		}
		log.events = append(log.events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// lifecycleKey renders one lifecycle transition as a comparable string.
// Bucket events are excluded from the recovery check on purpose: gauge
// bucket replays are produced by live runs, so a restarted service's
// /watch log carries only the recovered lifecycle history — the buckets
// streamed before the crash are legitimately gone.
func lifecycleKey(ev watchEvent) string {
	return fmt.Sprintf("%s %s/%s state=%s t=%g", ev.Tenant, ev.Job, ev.Kind, ev.State, ev.TSec)
}

// lifecycleCounts builds the multiset of lifecycle transitions in a log.
func lifecycleCounts(log *watchLog) map[string]int {
	counts := make(map[string]int)
	for _, ev := range log.events {
		if ev.Kind == "lifecycle" {
			counts[lifecycleKey(ev)]++
		}
	}
	return counts
}

// runWatchDiff compares a pre-crash /watch capture against a post-recovery
// one. Every lifecycle transition the clients saw before the crash must
// reappear after recovery (as a multiset — duplicates from retries count);
// anything missing means the restart silently lost job history. Extra
// events in the current log are fine: recovery re-executes incomplete
// jobs, which emits new transitions.
func runWatchDiff(basePath, curPath string, stdout, stderr *os.File) int {
	base, err := loadWatch(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "mdfstat: %v\n", err)
		return 2
	}
	cur, err := loadWatch(curPath)
	if err != nil {
		fmt.Fprintf(stderr, "mdfstat: %v\n", err)
		return 2
	}
	if base.bucketSec != cur.bucketSec {
		fmt.Fprintf(stderr, "mdfstat: watch bucket width changed across restart: %g vs %g\n",
			base.bucketSec, cur.bucketSec)
		return 2
	}
	baseCounts := lifecycleCounts(base)
	curCounts := lifecycleCounts(cur)
	var missing []string
	lost := 0
	for key, n := range baseCounts {
		if short := n - curCounts[key]; short > 0 {
			lost += short
			missing = append(missing, fmt.Sprintf("%s (x%d)", key, short))
		}
	}
	sort.Strings(missing)
	fmt.Fprintf(stdout, "watch logs: %d events pre-crash, %d post-recovery; %d lifecycle transitions checked\n",
		len(base.events), len(cur.events), len(baseCounts))
	if lost > 0 {
		for _, m := range missing {
			fmt.Fprintf(stdout, "LOST %s\n", m)
		}
		fmt.Fprintf(stderr, "mdfstat: recovery lost %d lifecycle event(s) across the restart boundary\n", lost)
		return 1
	}
	fmt.Fprintln(stdout, "recovery preserved all pre-crash lifecycle events")
	return 0
}
