// Command mdflint runs mdfvet, the repo's determinism, simulator-discipline
// and concurrency-safety static-analysis suite (internal/analysis):
// wallclock, seededrand, maporder, droppederr, unitsafety, leakcheck,
// locksafety, goroutinecapture, ctxflow and spawnbound.
// It prints one `file:line: [rule] message` diagnostic per finding and
// exits nonzero when any survive, so `make ci` can gate on it.
//
// Usage:
//
//	mdflint ./...                  # whole module (the ci gate)
//	mdflint ./internal/engine      # one subtree
//	mdflint -rules maporder ./...  # a subset of rules
//	mdflint -json ./...            # one JSON finding object per line
//	mdflint -stale-allows ./...    # audit //lint:allow directives
//	mdflint -list                  # list the rules
//
// With -json each finding is one JSON object per line on stdout:
// {"file":...,"line":...,"rule":...,"msg":...}. Exit codes are unchanged.
//
// With -stale-allows the run additionally reports every `//lint:allow`
// directive that suppressed nothing — the violation it excused is gone, so
// the directive should be deleted before it hides a regression. Stale
// directives are informational: they print (to stdout; as
// {"file":...,"line":...,"rule":...} objects under -json) but do not affect
// the exit code.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load errors.
//
// Findings are suppressed with a `//lint:allow <rule>` comment on the
// offending line or the line above it; see ARCHITECTURE.md, "Determinism
// rules", "Unit types and semantic rules" and "Concurrency rules".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"metadataflow/internal/analysis"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its streams and exit code lifted out so the CLI
// contract — flag handling, output shape, exit codes — is testable.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules       = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list        = fs.Bool("list", false, "list the available rules and exit")
		jsonMode    = fs.Bool("json", false, "emit findings as one JSON object per line")
		staleAllows = fs.Bool("stale-allows", false, "also report //lint:allow directives that suppress nothing (informational; does not affect the exit code)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mdflint [-rules r1,r2] [-json] [-stale-allows] [-list] [./... | dir ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Fprintln(stdout, r)
		}
		return 0
	}

	cfg := analysis.DefaultConfig()
	if *rules != "" {
		known := map[string]bool{}
		for _, r := range analysis.Rules() {
			known[r] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(stderr, "mdflint: unknown rule %q\nvalid rules: %s\n",
					r, strings.Join(analysis.Rules(), ", "))
				fs.Usage()
				return 2
			}
			cfg.Rules = append(cfg.Rules, r)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "mdflint:", err)
		return 2
	}
	m, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "mdflint:", err)
		return 2
	}

	prefixes, err := pathPrefixes(fs.Args(), root)
	if err != nil {
		fmt.Fprintln(stderr, "mdflint:", err)
		return 2
	}

	findings, stale := analysis.Analyze(m, cfg)
	enc := json.NewEncoder(stdout)
	n := 0
	for _, f := range findings {
		if !underAny(f.File, prefixes) {
			continue
		}
		if *jsonMode {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(stderr, "mdflint:", err)
				return 2
			}
		} else {
			fmt.Fprintln(stdout, f)
		}
		n++
	}
	if *staleAllows {
		for _, s := range stale {
			if !underAny(s.File, prefixes) {
				continue
			}
			if *jsonMode {
				if err := enc.Encode(s); err != nil {
					fmt.Fprintln(stderr, "mdflint:", err)
					return 2
				}
			} else {
				fmt.Fprintln(stdout, s)
			}
		}
	}
	if n > 0 {
		fmt.Fprintf(stderr, "mdflint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// pathPrefixes converts the command-line patterns into module-relative
// directory prefixes; "./..." (or no argument) means everything.
func pathPrefixes(args []string, root string) ([]string, error) {
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return nil, nil // everything
		}
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("path %q is outside the module", arg)
		}
		out = append(out, filepath.ToSlash(rel))
	}
	return out, nil
}

// underAny reports whether the file path is under one of the prefixes (an
// empty prefix list matches everything).
func underAny(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if p == "." || path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
