// Command mdflint runs mdfvet, the repo's determinism and
// simulator-discipline static-analysis suite (internal/analysis):
// wallclock, seededrand, maporder, droppederr, unitsafety and leakcheck.
// It prints one `file:line: [rule] message` diagnostic per finding and
// exits nonzero when any survive, so `make ci` can gate on it.
//
// Usage:
//
//	mdflint ./...                  # whole module (the ci gate)
//	mdflint ./internal/engine      # one subtree
//	mdflint -rules maporder ./...  # a subset of rules
//	mdflint -json ./...            # one JSON finding object per line
//	mdflint -list                  # list the rules
//
// With -json each finding is one JSON object per line on stdout:
// {"file":...,"line":...,"rule":...,"msg":...}. Exit codes are unchanged.
//
// Findings are suppressed with a `//lint:allow <rule>` comment on the
// offending line or the line above it; see ARCHITECTURE.md, "Determinism
// rules" and "Unit types and semantic rules".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"metadataflow/internal/analysis"
)

func main() {
	var (
		rules    = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list     = flag.Bool("list", false, "list the available rules and exit")
		jsonMode = flag.Bool("json", false, "emit findings as one JSON object per line")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdflint [-rules r1,r2] [-json] [-list] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Println(r)
		}
		return
	}

	cfg := analysis.DefaultConfig()
	if *rules != "" {
		known := map[string]bool{}
		for _, r := range analysis.Rules() {
			known[r] = true
		}
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !known[r] {
				fmt.Fprintf(os.Stderr, "mdflint: unknown rule %q (have %s)\n",
					r, strings.Join(analysis.Rules(), ", "))
				os.Exit(2)
			}
			cfg.Rules = append(cfg.Rules, r)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdflint:", err)
		os.Exit(2)
	}
	m, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdflint:", err)
		os.Exit(2)
	}

	prefixes, err := pathPrefixes(flag.Args(), root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdflint:", err)
		os.Exit(2)
	}

	findings := analysis.Run(m, cfg)
	enc := json.NewEncoder(os.Stdout)
	n := 0
	for _, f := range findings {
		if !underAny(f.File, prefixes) {
			continue
		}
		if *jsonMode {
			if err := enc.Encode(f); err != nil {
				fmt.Fprintln(os.Stderr, "mdflint:", err)
				os.Exit(2)
			}
		} else {
			fmt.Println(f)
		}
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "mdflint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// pathPrefixes converts the command-line patterns into module-relative
// directory prefixes; "./..." (or no argument) means everything.
func pathPrefixes(args []string, root string) ([]string, error) {
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return nil, nil // everything
		}
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("path %q is outside the module", arg)
		}
		out = append(out, filepath.ToSlash(rel))
	}
	return out, nil
}

// underAny reports whether the file path is under one of the prefixes (an
// empty prefix list matches everything).
func underAny(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if p == "." || path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
