package main

import (
	"strings"
	"testing"

	"metadataflow/internal/analysis"
)

// TestUnknownRule pins the usage-error contract: an unknown -rules entry
// exits 2 with a crisp message naming the bad rule, the valid rules, and
// the usage line — without running any analysis.
func TestUnknownRule(t *testing.T) {
	var out, errOut strings.Builder
	code := realMain([]string{"-rules", "nosuchrule", "./..."}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, `unknown rule "nosuchrule"`) {
		t.Errorf("stderr does not name the bad rule:\n%s", msg)
	}
	for _, r := range analysis.Rules() {
		if !strings.Contains(msg, r) {
			t.Errorf("stderr does not list valid rule %q:\n%s", r, msg)
		}
	}
	if !strings.Contains(msg, "usage: mdflint") {
		t.Errorf("stderr does not include the usage line:\n%s", msg)
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty on a usage error, got:\n%s", out.String())
	}
}

// TestListRules checks -list prints every rule, one per line, and exits 0.
func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	code := realMain([]string{"-list"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	got := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := analysis.Rules()
	if len(got) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(got), len(want), out.String())
	}
	for i, r := range want {
		if got[i] != r {
			t.Errorf("-list line %d = %q, want %q", i, got[i], r)
		}
	}
}

// TestRepoCleanViaCLI runs the real gate end to end: the repository itself
// must be clean — exit 0, no findings, and no stale //lint:allow
// directives under -stale-allows.
func TestRepoCleanViaCLI(t *testing.T) {
	var out, errOut strings.Builder
	code := realMain([]string{"-stale-allows", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output on a clean repo, got:\n%s", out.String())
	}
}
