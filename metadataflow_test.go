package metadataflow_test

import (
	"strings"
	"testing"

	mdf "metadataflow"
)

func intRows(n int) []mdf.Row {
	rows := make([]mdf.Row, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// buildPublicMDF exercises the full public surface: builder, evaluator,
// selector, transforms.
func buildPublicMDF(t *testing.T) *mdf.Graph {
	t.Helper()
	b := mdf.NewMDF()
	src := b.Source("src", mdf.SourceFromDataset(mdf.FromRows("in", intRows(1000), 8, 1<<20)), 0.001)
	specs := []mdf.BranchSpec{
		{Label: "k200", Hint: 200},
		{Label: "k600", Hint: 600},
		{Label: "k900", Hint: 900},
	}
	out := src.Explore("limits", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			limit := int(spec.Hint)
			return start.Then("f"+spec.Label, mdf.FilterRows("f", func(r mdf.Row) bool {
				return r.(int) < limit
			}), 0.002)
		})
	out.Then("sink", mdf.Identity("result"), 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunDefaultConfig(t *testing.T) {
	res, err := mdf.Run(buildPublicMDF(t), mdf.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 900 {
		t.Fatalf("output rows = %d, want 900", res.Output.NumRows())
	}
	if res.CompletionTime() <= 0 {
		t.Fatal("non-positive completion time")
	}
}

func TestRunZeroConfigUsesDefaults(t *testing.T) {
	res, err := mdf.Run(buildPublicMDF(t), mdf.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil {
		t.Fatal("no output")
	}
}

func TestRunAllSchedulerAndPolicyCombos(t *testing.T) {
	for _, sched := range []mdf.SchedulerKind{
		mdf.SchedulerBAS, mdf.SchedulerBASSorted, mdf.SchedulerBASRandom, mdf.SchedulerBFS,
	} {
		for _, pol := range []mdf.MemoryPolicy{mdf.PolicyLRU, mdf.PolicyAMM} {
			cfg := mdf.DefaultRunConfig()
			cfg.Scheduler = sched
			cfg.Memory = pol
			res, err := mdf.Run(buildPublicMDF(t), cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", sched, pol, err)
			}
			if res.Output.NumRows() != 900 {
				t.Errorf("%s/%s: output rows = %d, want 900", sched, pol, res.Output.NumRows())
			}
		}
	}
}

func TestRunRejectsUnknownKinds(t *testing.T) {
	cfg := mdf.DefaultRunConfig()
	cfg.Scheduler = "warp"
	if _, err := mdf.Run(buildPublicMDF(t), cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	cfg = mdf.DefaultRunConfig()
	cfg.Memory = "fifo"
	if _, err := mdf.Run(buildPublicMDF(t), cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestExpandJobsPublic(t *testing.T) {
	jobs, err := mdf.ExpandJobs(buildPublicMDF(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("expanded %d jobs, want 3", len(jobs))
	}
}

func TestRunSequentialAndParallel(t *testing.T) {
	g := buildPublicMDF(t)
	seq, err := mdf.RunSequential(g, mdf.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Jobs != 3 {
		t.Fatalf("sequential ran %d jobs, want 3", seq.Jobs)
	}
	par, err := mdf.RunParallel(g, 3, mdf.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if par.CompletionTime > seq.CompletionTime {
		t.Errorf("parallel (%v) should not exceed sequential (%v)",
			par.CompletionTime, seq.CompletionTime)
	}
	mdfRes, err := mdf.Run(g, mdf.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mdfRes.CompletionTime().Seconds() >= seq.CompletionTime {
		t.Errorf("MDF (%v) should beat sequential (%v)",
			mdfRes.CompletionTime(), seq.CompletionTime)
	}
}

func TestDOTPublic(t *testing.T) {
	dot := mdf.DOT(buildPublicMDF(t), "test")
	if !strings.Contains(dot, "digraph") {
		t.Fatal("DOT output malformed")
	}
}

func TestSelectorsReexported(t *testing.T) {
	// Compile-time/API sanity: all paper selectors reachable from the root.
	for _, sel := range []mdf.Selector{
		mdf.TopK(2), mdf.BottomK(2), mdf.Min(), mdf.Max(),
		mdf.Threshold(1, false), mdf.Interval(0, 1),
		mdf.KThreshold(1, 1, false), mdf.KInterval(1, 0, 1), mdf.Mode(),
	} {
		if sel.Name() == "" {
			t.Error("selector with empty name")
		}
	}
}

func TestBranchesHelper(t *testing.T) {
	specs := mdf.Branches("a", "b", "c")
	if len(specs) != 3 || specs[2].Hint != 2 || specs[1].Label != "b" {
		t.Fatalf("Branches() = %+v", specs)
	}
}
