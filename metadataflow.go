package metadataflow

import (
	"fmt"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

// Core model types, re-exported from the implementation packages.
type (
	// Builder constructs MDF graphs fluently.
	Builder = mdf.Builder
	// Node is a builder handle used to chain operators.
	Node = mdf.Node
	// BranchSpec labels one explorable setting and carries its scheduling
	// hint.
	BranchSpec = mdf.BranchSpec
	// Evaluator is the choose operator's scoring function φ.
	Evaluator = mdf.Evaluator
	// Selector is the choose operator's selection function ρ.
	Selector = mdf.Selector
	// Chooser composes an evaluator and a selector (Def. 3.3).
	Chooser = mdf.Chooser
	// Graph is a validated dataflow graph or MDF.
	Graph = graph.Graph
	// Operator is a dataflow vertex.
	Operator = graph.Operator
	// TransformFunc is an operator function over datasets.
	TransformFunc = graph.TransformFunc
	// Dataset is a partitioned collection of rows.
	Dataset = dataset.Dataset
	// Partition is one horizontal fragment of a dataset.
	Partition = dataset.Partition
	// Row is a single opaque data item.
	Row = dataset.Row
	// Result reports a run's completion time, output and metrics.
	Result = engine.Result
	// Metrics aggregates run statistics (hit ratio, pruning counts, ...).
	Metrics = engine.Metrics
	// ClusterConfig describes the simulated cluster hardware.
	ClusterConfig = cluster.Config
	// IterationSpec configures an unrolled fixpoint computation with
	// in-loop early termination (§3.2).
	IterationSpec = mdf.IterationSpec
	// CrossValidationSpec configures a k-fold cross-validation scope
	// (§3.2).
	CrossValidationSpec = mdf.CrossValidationSpec
)

// FoldRows splits a dataset's rows round-robin into the training and
// validation subsets of the given fold.
func FoldRows(d *Dataset, fold, folds int) (train, validate []Row) {
	return mdf.FoldRows(d, fold, folds)
}

// Terminated reports whether a branch result marks an iteration that was
// terminated early for not converging.
func Terminated(d *Dataset) bool { return mdf.Terminated(d) }

// NewMDF returns an empty MDF builder.
func NewMDF() *Builder { return mdf.NewBuilder() }

// NewChooser composes an evaluator and a selection function.
func NewChooser(eval Evaluator, sel Selector) *Chooser { return mdf.NewChooser(eval, sel) }

// Branches builds branch specs from labels, hinted by position.
func Branches(labels ...string) []BranchSpec { return mdf.Branches(labels...) }

// Selection functions (§3.1, Tab. 1).
var (
	// TopK selects the k highest-scoring branches.
	TopK = mdf.TopK
	// BottomK selects the k lowest-scoring branches.
	BottomK = mdf.BottomK
	// Min selects the single lowest-scoring branch.
	Min = mdf.Min
	// Max selects the single highest-scoring branch.
	Max = mdf.Max
	// Threshold selects every branch passing a score bound.
	Threshold = mdf.Threshold
	// Interval selects every branch scoring within [lo, hi].
	Interval = mdf.Interval
	// KThreshold selects the first k branches passing a bound
	// (non-exhaustive: remaining branches are pruned).
	KThreshold = mdf.KThreshold
	// KInterval selects the first k branches scoring within [lo, hi].
	KInterval = mdf.KInterval
	// Mode selects the branches sharing the most frequent score.
	Mode = mdf.Mode
)

// Evaluator constructors.
var (
	// SizeEvaluator scores a branch by its row count.
	SizeEvaluator = mdf.SizeEvaluator
	// RatioEvaluator scores a branch by row count relative to a baseline.
	RatioEvaluator = mdf.RatioEvaluator
	// FuncEvaluator wraps an arbitrary scoring function.
	FuncEvaluator = mdf.FuncEvaluator
)

// Transform helpers.
var (
	// SourceFromDataset emits a fixed dataset.
	SourceFromDataset = mdf.SourceFromDataset
	// SourceFunc emits the dataset produced by a generator.
	SourceFunc = mdf.SourceFunc
	// MapRows applies a function to every row.
	MapRows = mdf.MapRows
	// FilterRows keeps rows matching a predicate.
	FilterRows = mdf.FilterRows
	// WholeDataset applies a function to the dataset as a whole.
	WholeDataset = mdf.WholeDataset
	// Identity forwards the input under a new identity.
	Identity = mdf.Identity
)

// FromRows builds a partitioned dataset from rows.
func FromRows(name string, rows []Row, parts int, bytesPerRow int64) *Dataset {
	return dataset.FromRows(name, rows, parts, bytesPerRow)
}

// MemoryPolicy selects the eviction policy of worker memory allocators.
type MemoryPolicy string

const (
	// PolicyLRU is the least-recently-used baseline of existing systems.
	PolicyLRU MemoryPolicy = "lru"
	// PolicyAMM is anticipatory memory management (Alg. 2).
	PolicyAMM MemoryPolicy = "amm"
)

// SchedulerKind selects the stage scheduling policy.
type SchedulerKind string

const (
	// SchedulerBFS is the breadth-first baseline of existing systems.
	SchedulerBFS SchedulerKind = "bfs"
	// SchedulerBAS is branch-aware scheduling with definition-order
	// branch execution (Alg. 1).
	SchedulerBAS SchedulerKind = "bas"
	// SchedulerBASSorted is BAS executing branches in ascending hint
	// order, enabling monotone/convex pruning (Tab. 1).
	SchedulerBASSorted SchedulerKind = "bas-sorted"
	// SchedulerBASRandom is BAS with a seeded random branch order
	// (random hyper-parameter search).
	SchedulerBASRandom SchedulerKind = "bas-random"
)

// RunConfig configures Run.
type RunConfig struct {
	// Cluster describes the simulated hardware; zero value uses
	// DefaultClusterConfig.
	Cluster ClusterConfig
	// Memory selects the eviction policy (default AMM).
	Memory MemoryPolicy
	// Scheduler selects the scheduling policy (default BAS).
	Scheduler SchedulerKind
	// Incremental enables incremental choose evaluation (default on for
	// BAS variants via DefaultRunConfig).
	Incremental bool
	// Seed drives random scheduling hints.
	Seed int64
}

// DefaultClusterConfig mirrors the paper's testbed (8 workers, 10 GB of
// dataset memory each).
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// DefaultRunConfig enables the full MDF machinery: BAS scheduling, AMM
// eviction and incremental choose evaluation.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Cluster:     cluster.DefaultConfig(),
		Memory:      PolicyAMM,
		Scheduler:   SchedulerBAS,
		Incremental: true,
	}
}

func (c RunConfig) policy() (memorymgr.PolicyKind, error) {
	switch c.Memory {
	case "", PolicyAMM:
		return memorymgr.AMM, nil
	case PolicyLRU:
		return memorymgr.LRU, nil
	}
	return 0, fmt.Errorf("metadataflow: unknown memory policy %q", c.Memory)
}

func (c RunConfig) newScheduler() (scheduler.Policy, error) {
	switch c.Scheduler {
	case "", SchedulerBAS:
		return scheduler.BAS(nil), nil
	case SchedulerBASSorted:
		return scheduler.BAS(scheduler.SortedHint(false)), nil
	case SchedulerBASRandom:
		return scheduler.BAS(scheduler.RandomHint(c.Seed)), nil
	case SchedulerBFS:
		return scheduler.BFS(), nil
	}
	return nil, fmt.Errorf("metadataflow: unknown scheduler %q", c.Scheduler)
}

func (c RunConfig) clusterOrDefault() ClusterConfig {
	if c.Cluster.Workers == 0 {
		return cluster.DefaultConfig()
	}
	return c.Cluster
}

// Run executes the MDF on a fresh simulated cluster and returns its result.
// Completion times are virtual seconds.
func Run(g *Graph, cfg RunConfig) (*Result, error) {
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	sched, err := cfg.newScheduler()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.clusterOrDefault())
	if err != nil {
		return nil, err
	}
	return engine.Execute(g, engine.Options{
		Cluster:     cl,
		Policy:      pol,
		Scheduler:   sched,
		Incremental: cfg.Incremental,
	})
}

// FamilyResult reports the execution of an exploratory workflow as separate
// jobs (the baselines of §6.1).
type FamilyResult struct {
	// CompletionTime is the virtual time until the last job finished.
	CompletionTime float64
	// Jobs is the number of concrete jobs executed.
	Jobs int
	// Metrics merges the per-job run metrics.
	Metrics Metrics
}

func familyResult(m *baseline.MultiResult) *FamilyResult {
	return &FamilyResult{CompletionTime: m.CompletionTime.Seconds(), Jobs: len(m.Jobs), Metrics: m.Metrics}
}

// RunSequential expands the MDF into its family of concrete jobs and runs
// them one after another, as a user submitting separate jobs would (§2.2).
func RunSequential(g *Graph, cfg RunConfig) (*FamilyResult, error) {
	return runFamily(g, 1, cfg)
}

// RunParallel expands the MDF into its concrete jobs and runs them k at a
// time, splitting worker memory equally.
func RunParallel(g *Graph, k int, cfg RunConfig) (*FamilyResult, error) {
	return runFamily(g, k, cfg)
}

func runFamily(g *Graph, k int, cfg RunConfig) (*FamilyResult, error) {
	pol, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.clusterOrDefault())
	if err != nil {
		return nil, err
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		return nil, err
	}
	bcfg := baseline.Config{Cluster: cl, Policy: pol}
	var res *baseline.MultiResult
	if k <= 1 {
		res, err = baseline.Sequential(jobs, bcfg)
	} else {
		res, err = baseline.Parallel(jobs, k, bcfg)
	}
	if err != nil {
		return nil, err
	}
	return familyResult(res), nil
}

// ExpandJobs returns the family of concrete dataflow jobs the MDF
// represents, one per combination of explorable settings.
func ExpandJobs(g *Graph) ([]*Graph, error) { return baseline.ExpandJobs(g) }

// DOT renders the MDF in Graphviz DOT syntax.
func DOT(g *Graph, name string) string { return g.DOT(name) }
