package baseline_test

import (
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	return cluster.MustNew(cfg)
}

func intRows(n int) []dataset.Row {
	rows := make([]dataset.Row, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// buildNestedMDF builds src -> explore{A,B} each with a nested explore{x,y}
// -> choose -> sink (4 combinations).
func buildNestedMDF(t *testing.T) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", intRows(100), 4, 1<<20)
	}), 0.001)
	outer := src.Explore("outer", mdf.Branches("A", "B"),
		mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			mid := start.Then("mid-"+spec.Label, mdf.Identity("mid"), 0.001)
			return mid.Explore("inner-"+spec.Label, mdf.Branches("x", "y"),
				mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
				func(inner *mdf.Node, ispec mdf.BranchSpec) *mdf.Node {
					keep := 30 + 10*int(ispec.Hint) + 5*int(spec.Hint)
					return inner.Then("f-"+spec.Label+ispec.Label,
						mdf.FilterRows("f", func(r dataset.Row) bool { return r.(int) < keep }), 0.001)
				})
		})
	outer.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildSequentialScopesMDF builds two scopes in sequence (2 x 3 combos).
func buildSequentialScopesMDF(t *testing.T) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", intRows(100), 4, 1<<20)
	}), 0.001)
	s1 := src.Explore("s1", mdf.Branches("a", "b"),
		mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			return start.Then("p"+spec.Label, mdf.Identity("p"), 0.001)
		})
	s2 := s1.Explore("s2", mdf.Branches("x", "y", "z"),
		mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			return start.Then("q"+spec.Label, mdf.Identity("q"), 0.001)
		})
	s2.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCombinationsNested(t *testing.T) {
	g := buildNestedMDF(t)
	choices, err := baseline.Combinations(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 4 {
		t.Fatalf("combinations = %d, want 4 (2 outer x 2 inner)", len(choices))
	}
	// Each choice must assign the outer explore and exactly one inner.
	for _, c := range choices {
		if len(c) != 2 {
			t.Fatalf("choice %v should assign 2 explores", c)
		}
	}
}

func TestCombinationsSequentialScopes(t *testing.T) {
	g := buildSequentialScopesMDF(t)
	choices, err := baseline.Combinations(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 6 {
		t.Fatalf("combinations = %d, want 6 (2 x 3 sequential scopes)", len(choices))
	}
}

func TestBuildConcreteRemovesMetaOperators(t *testing.T) {
	g := buildNestedMDF(t)
	choices, err := baseline.Combinations(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range choices {
		job, err := baseline.BuildConcrete(g, c)
		if err != nil {
			t.Fatalf("choice %d: %v", i, err)
		}
		if err := job.Validate(); err != nil {
			t.Fatalf("choice %d: invalid concrete job: %v", i, err)
		}
		if len(job.Explores()) != 0 || len(job.Chooses()) != 0 {
			t.Fatalf("choice %d: concrete job still has meta operators", i)
		}
	}
}

func TestConcreteJobsProduceSameResults(t *testing.T) {
	// Each concrete job must produce the same rows its branch would in the
	// MDF: job (A=0, inner y=1) keeps rows < 30+10*1+5*0 = 40.
	g := buildNestedMDF(t)
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatal(err)
	}
	wants := []int{30, 40, 35, 45} // (A,x) (A,y) (B,x) (B,y)
	for i, job := range jobs {
		plan, err := graph.BuildPlan(job)
		if err != nil {
			t.Fatal(err)
		}
		_ = plan
		res, err := baseline.SingleJob(job, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if got := res.Output.NumRows(); got != wants[i] {
			t.Errorf("job %d output rows = %d, want %d", i, got, wants[i])
		}
	}
}

func TestSequentialTimesAccumulate(t *testing.T) {
	g := buildNestedMDF(t)
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Sequential(jobs, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 4 {
		t.Fatalf("jobs = %d, want 4", len(res.Jobs))
	}
	// Sequential jobs must not overlap: each job starts after the previous.
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].Start < res.Jobs[i-1].End-1e-9 {
			t.Errorf("job %d started at %v before job %d ended at %v",
				i, res.Jobs[i].Start, i-1, res.Jobs[i-1].End)
		}
	}
	if res.CompletionTime != res.Jobs[3].End {
		t.Error("completion time must be the last job's end")
	}
}

func TestParallelOverlapsJobs(t *testing.T) {
	g := buildNestedMDF(t)
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := baseline.Sequential(jobs, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatal(err)
	}
	par, err := baseline.Parallel(jobs, 4, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatal(err)
	}
	if par.CompletionTime > seq.CompletionTime {
		t.Errorf("parallel (%v) must not exceed sequential (%v)", par.CompletionTime, seq.CompletionTime)
	}
	// At least two jobs must overlap in time.
	overlap := false
	for i := 0; i < len(par.Jobs) && !overlap; i++ {
		for j := i + 1; j < len(par.Jobs); j++ {
			if par.Jobs[i].Start < par.Jobs[j].End && par.Jobs[j].Start < par.Jobs[i].End {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		t.Error("no jobs overlapped under 4-parallel execution")
	}
}

func TestParallelRejectsBadK(t *testing.T) {
	g := buildNestedMDF(t)
	jobs, _ := baseline.ExpandJobs(g)
	if _, err := baseline.Parallel(jobs, 0, baseline.Config{Cluster: testCluster()}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEmptyJobListRejected(t *testing.T) {
	if _, err := baseline.Sequential(nil, baseline.Config{Cluster: testCluster()}); err == nil {
		t.Fatal("empty job list accepted")
	}
	if _, err := baseline.Parallel(nil, 2, baseline.Config{Cluster: testCluster()}); err == nil {
		t.Fatal("empty job list accepted")
	}
}

func TestSingleJobUsesConfiguredScheduler(t *testing.T) {
	g := buildNestedMDF(t)
	res, err := baseline.SingleJob(g, baseline.Config{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		NewScheduler: func() scheduler.Policy { return scheduler.BAS(nil) },
		Incremental:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Max over sizes selects (B, y): 45 rows.
	if got := res.Output.NumRows(); got != 45 {
		t.Errorf("output rows = %d, want 45", got)
	}
}

// buildFlatMDF builds a single-scope MDF with n filter branches keeping
// different row counts, choosing the max size.
func buildFlatMDF(t *testing.T, keeps []int) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", intRows(500), 4, 1<<18)
	}), 0.001)
	specs := make([]mdf.BranchSpec, len(keeps))
	for i := range specs {
		specs[i] = mdf.BranchSpec{Label: string(rune('a' + i)), Hint: float64(i)}
	}
	out := src.Explore("e", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			keep := keeps[int(spec.Hint)]
			return start.Then("f"+spec.Label,
				mdf.FilterRows("f", func(r dataset.Row) bool { return r.(int) < keep }), 0.001)
		})
	out.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMDFEquivalentToBestExpandedJob: for a single-scope MDF with max
// selection, the MDF's output must equal the best result a user would pick
// after running every expanded job separately (the semantics-preservation
// contract of §3.1).
func TestMDFEquivalentToBestExpandedJob(t *testing.T) {
	for _, keeps := range [][]int{
		{100, 400, 250},
		{10, 20, 30, 40, 50},
		{321, 123},
	} {
		g := buildFlatMDF(t, keeps)
		mdfRes, err := baseline.SingleJob(g, baseline.Config{
			Cluster: testCluster(), Policy: memorymgr.AMM,
			NewScheduler: func() scheduler.Policy { return scheduler.BAS(nil) },
			Incremental:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := baseline.ExpandJobs(g)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for _, job := range jobs {
			res, err := baseline.SingleJob(job, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
			if err != nil {
				t.Fatal(err)
			}
			if res.Output.NumRows() > best {
				best = res.Output.NumRows()
			}
		}
		if mdfRes.Output.NumRows() != best {
			t.Errorf("keeps=%v: MDF selected %d rows, best separate job has %d",
				keeps, mdfRes.Output.NumRows(), best)
		}
	}
}

func TestPhasedRunsPhasesInOrder(t *testing.T) {
	g1 := buildFlatMDF(t, []int{100, 200})
	g2 := buildFlatMDF(t, []int{50, 150, 250})
	jobs1, err := baseline.ExpandJobs(g1)
	if err != nil {
		t.Fatal(err)
	}
	jobs2, err := baseline.ExpandJobs(g2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := baseline.Phased([][]*graph.Graph{jobs1, jobs2}, 2,
		baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 5 {
		t.Fatalf("jobs = %d, want 5", len(res.Jobs))
	}
	// The phased total must cover at least each phase's own span.
	if res.CompletionTime <= 0 {
		t.Fatal("no completion time")
	}
	seq, err := baseline.Phased([][]*graph.Graph{jobs1, jobs2}, 1,
		baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime > seq.CompletionTime {
		t.Errorf("parallel phases (%v) should not exceed sequential phases (%v)",
			res.CompletionTime, seq.CompletionTime)
	}
}

func TestPhasedRejectsEmpty(t *testing.T) {
	if _, err := baseline.Phased(nil, 1, baseline.Config{Cluster: testCluster()}); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := baseline.Phased([][]*graph.Graph{{}}, 1, baseline.Config{Cluster: testCluster()}); err == nil {
		t.Fatal("empty phase accepted")
	}
}
