package baseline

import (
	"context"
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

// Config describes how a family of jobs is executed.
type Config struct {
	// Cluster is the shared simulated cluster.
	Cluster *cluster.Cluster
	// MemPerWorker is the total per-worker memory budget; parallel
	// execution splits it equally among concurrent jobs (§6.1). 0 uses the
	// cluster's configured budget.
	MemPerWorker sim.Bytes
	// Policy is the eviction policy used by every job.
	Policy memorymgr.PolicyKind
	// NewScheduler builds a fresh scheduling policy per job; nil defaults
	// to BFS (the behaviour of existing systems, §4.2).
	NewScheduler func() scheduler.Policy
	// Incremental enables incremental choose evaluation in the jobs
	// (only meaningful for MDF jobs).
	Incremental bool
	// PinReused pins datasets with multiple consumers in memory, modelling
	// Spark's explicit cache() designation (§6.1 Spark (cache)).
	PinReused bool
	// Context, when non-nil, cancels every job of the family at its next
	// scheduling boundary (engine.Options.Context); mdfrun threads its
	// SIGINT/SIGTERM context through here.
	Context context.Context
}

func (c Config) engineOptions(memShare sim.Bytes) engine.Options {
	sched := scheduler.BFS()
	if c.NewScheduler != nil {
		sched = c.NewScheduler()
	}
	return engine.Options{
		Cluster:      c.Cluster,
		MemPerWorker: memShare,
		Policy:       c.Policy,
		Scheduler:    sched,
		Incremental:  c.Incremental,
		PinReused:    c.PinReused,
		Context:      c.Context,
	}
}

func (c Config) totalMem() sim.Bytes {
	if c.MemPerWorker > 0 {
		return c.MemPerWorker
	}
	return c.Cluster.Config.MemPerWorker
}

// MultiResult aggregates the execution of a family of jobs.
type MultiResult struct {
	// CompletionTime is the virtual time from the first submission to the
	// last job completion.
	CompletionTime sim.VTime
	// Jobs holds the per-job results in submission order.
	Jobs []*engine.Result
	// Metrics merges the per-job metrics.
	Metrics engine.Metrics
}

func (m *MultiResult) add(res *engine.Result) {
	m.Jobs = append(m.Jobs, res)
	if res.End > m.CompletionTime {
		m.CompletionTime = res.End
	}
	m.Metrics.Mem.Merge(&res.Metrics.Mem)
	m.Metrics.ComputeSec += res.Metrics.ComputeSec
	m.Metrics.StagesExecuted += res.Metrics.StagesExecuted
	m.Metrics.StagesPruned += res.Metrics.StagesPruned
	m.Metrics.BranchesPruned += res.Metrics.BranchesPruned
	m.Metrics.BranchesDiscarded += res.Metrics.BranchesDiscarded
	m.Metrics.DatasetsDiscarded += res.Metrics.DatasetsDiscarded
	m.Metrics.ChooseEvals += res.Metrics.ChooseEvals
	if res.Metrics.PeakLiveDatasets > m.Metrics.PeakLiveDatasets {
		m.Metrics.PeakLiveDatasets = res.Metrics.PeakLiveDatasets
	}
}

// Sequential executes the jobs one after another, each with the full
// cluster (§6.1 "sequential").
func Sequential(jobs []*graph.Graph, cfg Config) (*MultiResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("baseline: no jobs")
	}
	out := &MultiResult{}
	t := sim.VTime(0)
	for i, g := range jobs {
		plan, err := graph.BuildPlan(g)
		if err != nil {
			return nil, fmt.Errorf("baseline: job %d: %w", i, err)
		}
		run, err := engine.NewRun(plan, cfg.engineOptions(cfg.totalMem()), t)
		if err != nil {
			return nil, err
		}
		res, err := run.RunToCompletion()
		if err != nil {
			return nil, fmt.Errorf("baseline: job %d: %w", i, err)
		}
		out.add(res)
		t = res.End
	}
	return out, nil
}

// Parallel executes the jobs k at a time, sharing worker memory equally
// among concurrent jobs (§6.1 "4-parallel" and "8-parallel"). Job steps are
// interleaved by virtual time, so I/O and computation of different jobs
// overlap on the shared node resources.
func Parallel(jobs []*graph.Graph, k int, cfg Config) (*MultiResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("baseline: no jobs")
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: parallelism must be >= 1, got %d", k)
	}
	memShare := cfg.totalMem() / sim.Bytes(k)
	if memShare < 1 {
		memShare = 1
	}
	out := &MultiResult{}
	next := 0
	active := make([]*engine.Run, 0, k)

	admit := func(start sim.VTime) error {
		for len(active) < k && next < len(jobs) {
			plan, err := graph.BuildPlan(jobs[next])
			if err != nil {
				return fmt.Errorf("baseline: job %d: %w", next, err)
			}
			run, err := engine.NewRun(plan, cfg.engineOptions(memShare), start)
			if err != nil {
				return err
			}
			active = append(active, run)
			next++
		}
		return nil
	}
	if err := admit(0); err != nil {
		return nil, err
	}
	for len(active) > 0 {
		// Step the job that is earliest in virtual time.
		idx := 0
		for i, r := range active {
			if r.Now() < active[idx].Now() {
				idx = i
			}
		}
		run := active[idx]
		if !run.Step() {
			if err := run.Err(); err != nil {
				return nil, err
			}
			out.add(run.Result())
			active = append(active[:idx], active[idx+1:]...)
			if err := admit(run.Now()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Phased executes groups of jobs in phases: all jobs of a phase run (k at a
// time) before the next phase starts, modelling a user who manually
// orchestrates an early-choose workflow — run the first explorable's jobs,
// inspect the results, then launch the follow-up jobs (§6.1's early-choose
// baselines).
func Phased(phases [][]*graph.Graph, k int, cfg Config) (*MultiResult, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("baseline: no phases")
	}
	out := &MultiResult{}
	for i, jobs := range phases {
		if len(jobs) == 0 {
			return nil, fmt.Errorf("baseline: phase %d is empty", i)
		}
		var res *MultiResult
		var err error
		if k <= 1 {
			res, err = Sequential(jobs, cfg)
		} else {
			res, err = Parallel(jobs, k, cfg)
		}
		if err != nil {
			return nil, fmt.Errorf("baseline: phase %d: %w", i, err)
		}
		// Later phases queue behind the previous phase's work on the shared
		// cluster resources (the user inspects results before submitting
		// follow-ups), and completion accumulates.
		for _, jr := range res.Jobs {
			out.add(jr)
		}
	}
	return out, nil
}

// SingleJob executes one (typically MDF) graph with the configured
// scheduler, policy and memory budget; used for the Spark (cache),
// SEEP (BFS) and SEEP (MDF) configurations of Fig. 9.
func SingleJob(g *graph.Graph, cfg Config) (*engine.Result, error) {
	plan, err := graph.BuildPlan(g)
	if err != nil {
		return nil, err
	}
	run, err := engine.NewRun(plan, cfg.engineOptions(cfg.totalMem()), 0)
	if err != nil {
		return nil, err
	}
	return run.RunToCompletion()
}
