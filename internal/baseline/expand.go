// Package baseline implements the non-MDF execution strategies the paper
// compares against (§6.1): expanding an MDF into the family of concrete
// dataflow jobs it represents, then executing those jobs sequentially or
// k-at-a-time in parallel, plus the Spark-style single-job configurations
// (explicit caching under LRU, and breadth-first scheduling).
package baseline

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

// Choice assigns a branch index to each explore operator (keyed by operator
// ID) along one concrete configuration of the exploratory workflow.
type Choice map[int]int

// Combinations enumerates every concrete configuration of the MDF: one
// branch per explore, with nested explores enumerated within their enclosing
// branch. This is the set of jobs a user would submit separately (§2.2).
func Combinations(g *graph.Graph) ([]Choice, error) {
	scopes, err := g.MatchScopes()
	if err != nil {
		return nil, err
	}
	// nestedIn[si][b] lists the scopes immediately nested in branch b of
	// scope si; top collects the outermost scopes.
	memberSet := make([]map[int]bool, len(scopes))
	for i, sc := range scopes {
		memberSet[i] = map[int]bool{}
		for _, br := range sc.Branches {
			for _, op := range br {
				memberSet[i][op] = true
			}
		}
	}
	isNested := make([]bool, len(scopes))
	nestedIn := make(map[[2]int][]int)
	for i, sc := range scopes {
		for j, outer := range scopes {
			if i == j || outer.Depth != sc.Depth-1 {
				continue
			}
			for b := range outer.Branches {
				inBranch := false
				for _, op := range outer.Branches[b] {
					if op == sc.Explore.ID {
						inBranch = true
						break
					}
				}
				if inBranch {
					nestedIn[[2]int{j, b}] = append(nestedIn[[2]int{j, b}], i)
					isNested[i] = true
				}
			}
		}
	}
	var top []int
	for i := range scopes {
		if !isNested[i] {
			top = append(top, i)
		}
	}

	var enumSeq func(idx []int) []Choice
	var enumScope func(si int) []Choice

	enumScope = func(si int) []Choice {
		sc := scopes[si]
		var out []Choice
		for b := range sc.Branches {
			subs := enumSeq(nestedIn[[2]int{si, b}])
			for _, sub := range subs {
				c := Choice{sc.Explore.ID: b}
				for k, v := range sub {
					c[k] = v
				}
				out = append(out, c)
			}
		}
		return out
	}
	enumSeq = func(idx []int) []Choice {
		out := []Choice{{}}
		for _, si := range idx {
			var next []Choice
			for _, base := range out {
				for _, sc := range enumScope(si) {
					c := Choice{}
					for k, v := range base {
						c[k] = v
					}
					for k, v := range sc {
						c[k] = v
					}
					next = append(next, c)
				}
			}
			out = next
		}
		return out
	}
	return enumSeq(top), nil
}

// BuildConcrete materialises the concrete dataflow job for one choice:
// explore operators are removed (the chosen branch connects directly to the
// explore's predecessor) and each choose is replaced by a scoring transform
// that computes the evaluator for the user to compare results offline, as a
// user running separate jobs would (§2.2).
func BuildConcrete(g *graph.Graph, choice Choice) (*graph.Graph, error) {
	// Reachability under the choice: explores follow only the chosen head.
	kept := map[int]bool{}
	var visit func(op *graph.Operator)
	visit = func(op *graph.Operator) {
		if kept[op.ID] {
			return
		}
		kept[op.ID] = true
		if op.Kind == graph.KindExplore {
			b, ok := choice[op.ID]
			if !ok {
				return
			}
			heads := g.Post(op)
			if b < len(heads) {
				visit(heads[b])
			}
			return
		}
		for _, next := range g.Post(op) {
			visit(next)
		}
	}
	for _, src := range g.Sources() {
		visit(src)
	}

	out := graph.New()
	newOp := map[int]*graph.Operator{}
	for _, op := range g.Ops() {
		if !kept[op.ID] {
			continue
		}
		switch op.Kind {
		case graph.KindExplore:
			// elided
		case graph.KindChoose:
			chooser := op.Chooser
			score := &graph.Operator{
				Name:      op.Name + "/score",
				Kind:      graph.KindTransform,
				CostPerMB: op.CostPerMB,
				FixedCost: op.FixedCost,
				Transform: scoreTransform(op.Name, chooser),
			}
			newOp[op.ID] = out.Add(score)
		default:
			cp := *op
			newOp[op.ID] = out.Add(&cp)
		}
	}

	// resolve maps an original operator to the new operator that stands in
	// for it as a data producer.
	var resolve func(op *graph.Operator) (*graph.Operator, error)
	resolve = func(op *graph.Operator) (*graph.Operator, error) {
		if op.Kind == graph.KindExplore {
			pres := g.Pre(op)
			if len(pres) != 1 {
				return nil, fmt.Errorf("baseline: explore %q has %d predecessors", op.Name, len(pres))
			}
			return resolve(pres[0])
		}
		n, ok := newOp[op.ID]
		if !ok {
			return nil, fmt.Errorf("baseline: operator %q not kept", op.Name)
		}
		return n, nil
	}

	for _, op := range g.Ops() {
		if !kept[op.ID] || op.Kind == graph.KindExplore {
			continue
		}
		dst := newOp[op.ID]
		for _, pre := range g.Pre(op) {
			if !kept[pre.ID] {
				continue // unchosen branch into a choose
			}
			src, err := resolve(pre)
			if err != nil {
				return nil, err
			}
			dep, _ := g.Dep(pre, op)
			if err := out.Connect(src, dst, dep); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// scoreTransform wraps a chooser's evaluator as a forwarding transform: the
// separate-job user computes the quality metric at the end of each job and
// compares results offline.
func scoreTransform(name string, chooser graph.Chooser) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 1 {
			return nil, fmt.Errorf("baseline: %s/score expects one input, got %d", name, len(ins))
		}
		_ = chooser.Score(ins[0])
		d := ins[0]
		outd := dataset.New(d.Name)
		outd.Parts = append(outd.Parts, d.Parts...)
		return outd, nil
	}
}

// ExpandJobs enumerates all concrete jobs of the MDF.
func ExpandJobs(g *graph.Graph) ([]*graph.Graph, error) {
	choices, err := Combinations(g)
	if err != nil {
		return nil, err
	}
	jobs := make([]*graph.Graph, 0, len(choices))
	for _, c := range choices {
		job, err := BuildConcrete(g, c)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}
