package scheduler

import "testing"

func drainOrder(t *testing.T, q *CrossJobQueue) []string {
	t.Helper()
	var out []string
	for {
		tk, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, tk.ID)
	}
}

func TestCrossJobQueuePriorityThenFIFO(t *testing.T) {
	q := NewCrossJobQueue(8, 0)
	q.Push("low-1", "a", 5)
	q.Push("hi-1", "a", 1)
	q.Push("low-2", "a", 5)
	q.Push("hi-2", "a", 1)
	got := drainOrder(t, q)
	want := []string{"hi-1", "hi-2", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestCrossJobQueueCapacitySheds(t *testing.T) {
	q := NewCrossJobQueue(2, 0)
	if !q.Push("a", "t", 0) || !q.Push("b", "t", 0) {
		t.Fatal("pushes within capacity rejected")
	}
	if q.Push("c", "t", 0) {
		t.Fatal("push beyond capacity accepted")
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if !q.Push("c", "t", 0) {
		t.Fatal("push after pop rejected")
	}
}

// TestCrossJobQueueAgingPreventsStarvation pins the starvation-freedom
// guarantee: a single low-priority job must be served after a bounded number
// of pops even when a high-priority job is re-submitted after every pop.
func TestCrossJobQueueAgingPreventsStarvation(t *testing.T) {
	q := NewCrossJobQueue(16, 2) // one priority level per 2 passed-over pops
	q.Push("starved", "slow", 9)
	served := -1
	for i := 0; i < 64; i++ {
		q.Push("urgent", "fast", 0)
		tk, ok := q.Pop()
		if !ok {
			t.Fatal("pop on non-empty queue failed")
		}
		if tk.ID == "starved" {
			served = i
			break
		}
	}
	// Priority gap 9 at one level per 2 pops: served at pop 18.
	if served < 0 {
		t.Fatal("low-priority job starved for 64 pops")
	}
	if served != 18 {
		t.Fatalf("starved job served at pop %d, want 18 (deterministic aging)", served)
	}

	// Without aging it starves forever (bounded check).
	q2 := NewCrossJobQueue(16, 0)
	q2.Push("starved", "slow", 9)
	for i := 0; i < 64; i++ {
		q2.Push("urgent", "fast", 0)
		tk, _ := q2.Pop()
		if tk.ID == "starved" {
			t.Fatalf("without aging, starved job served at pop %d", i)
		}
	}
}

// TestCrossJobQueueTenantFairness pins least-recently-served interleaving:
// at equal priority, two tenants alternate instead of draining FIFO.
func TestCrossJobQueueTenantFairness(t *testing.T) {
	q := NewCrossJobQueue(8, 0)
	q.Push("a1", "a", 5)
	q.Push("a2", "a", 5)
	q.Push("a3", "a", 5)
	q.Push("b1", "b", 5)
	q.Push("b2", "b", 5)
	got := drainOrder(t, q)
	want := []string{"a1", "b1", "a2", "b2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestCrossJobQueueRemove(t *testing.T) {
	q := NewCrossJobQueue(8, 0)
	q.Push("a", "t", 1)
	q.Push("b", "t", 2)
	if tenant, ok := q.Tenant("b"); !ok || tenant != "t" {
		t.Fatalf("Tenant(b) = %q, %v", tenant, ok)
	}
	if !q.Remove("b") {
		t.Fatal("remove of queued job failed")
	}
	if q.Remove("b") {
		t.Fatal("second remove succeeded")
	}
	if got := drainOrder(t, q); len(got) != 1 || got[0] != "a" {
		t.Fatalf("after remove, drain = %v", got)
	}
}
