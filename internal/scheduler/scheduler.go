// Package scheduler implements stage scheduling for MDFs (§4.2): the
// breadth-first baseline used by existing dataflow systems and the
// branch-aware scheduling (BAS) algorithm (Alg. 1), which traverses the MDF
// breadth-first but executes the branches of an explore depth-first so that
// choose operators evaluate as early as possible.
//
// The engine owns the scheduling loop of Alg. 1 (the sets T_exec, T_open and
// T_cand); a Policy implements line 5, hinted_scheduling: given the current
// candidates and the last executed stage, pick the stage to run next.
package scheduler

import (
	"sort"

	"metadataflow/internal/graph"
	"metadataflow/internal/stats"
)

// Policy picks the next stage to execute.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Init prepares the policy for a plan; called once per run.
	Init(p *graph.Plan)
	// Pick selects the stage to execute next. ready is the non-empty set
	// of stages whose predecessors have all executed or been pruned,
	// sorted by stage ID; last is the stage executed most recently (nil at
	// the start).
	Pick(ready []*graph.Stage, last *graph.Stage) *graph.Stage
	// SortedBranches reports whether the policy executes the branches of
	// an explore in the explorable's sorted order, enabling the
	// monotone/convex pruning of Tab. 1.
	SortedBranches() bool
}

// PickRecord describes one scheduling decision for telemetry: the stage a
// policy chose and the candidates it weighed, in the policy's preference
// order with their hint values.
type PickRecord struct {
	// Chosen is the picked stage.
	Chosen *graph.Stage
	// Candidates are the stages the policy ranked, best first.
	Candidates []*graph.Stage
	// DepthFirst reports that BAS narrowed the pick to successors of the
	// last executed stage (Alg. 1's depth-first preference).
	DepthFirst bool
}

// PickObservable is implemented by policies that can report each Pick to an
// observer. The engine installs its telemetry probe through this interface;
// policies without it simply stay unobserved.
type PickObservable interface {
	SetPickObserver(func(PickRecord))
}

// Hint orders the candidate branches of an explore (§4.2: scheduling hints
// derived from choose properties, domain knowledge, or learned models).
type Hint interface {
	// Name labels the hint.
	Name() string
	// Order returns the candidates in preferred execution order.
	Order(cands []*graph.Stage) []*graph.Stage
	// Sorted reports whether the order follows the explorable's sorted
	// parameter order (the condition for property-based pruning).
	Sorted() bool
}

// DefaultHint executes branches in definition order.
func DefaultHint() Hint { return defaultHint{} }

type defaultHint struct{}

func (defaultHint) Name() string { return "default" }
func (defaultHint) Sorted() bool { return false }
func (defaultHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SortedHint executes branches by ascending (or descending) explorable hint
// value carried on the branch-head operators; used with monotone or convex
// evaluators (§4.2, Fig. 8 "first-4, sorted").
func SortedHint(descending bool) Hint { return sortedHint{desc: descending} }

type sortedHint struct{ desc bool }

func (sortedHint) Name() string { return "sorted" }
func (sortedHint) Sorted() bool { return true }
func (h sortedHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		hi, hj := out[i].First().Hint, out[j].First().Hint
		if hi == hj {
			return out[i].ID < out[j].ID
		}
		if h.desc {
			return hi > hj
		}
		return hi < hj
	})
	return out
}

// RandomHint executes branches in a seeded random order (Fig. 8 "first-4,
// random"; random search in hyper-parameter optimisation [5]).
func RandomHint(seed int64) Hint { return &randomHint{rng: stats.NewRNG(seed)} }

type randomHint struct{ rng *stats.RNG }

func (*randomHint) Name() string { return "random" }
func (*randomHint) Sorted() bool { return false }
func (h *randomHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	perm := h.rng.Perm(len(out))
	shuffled := make([]*graph.Stage, len(out))
	for i, p := range perm {
		shuffled[i] = out[p]
	}
	return shuffled
}

// PriorityHint orders branches by a user-supplied comparison; supports
// stateful, model-based prioritisation (§4.2(iii)).
func PriorityHint(name string, less func(a, b *graph.Stage) bool, sorted bool) Hint {
	return priorityHint{name: name, less: less, sorted: sorted}
}

type priorityHint struct {
	name   string
	less   func(a, b *graph.Stage) bool
	sorted bool
}

func (h priorityHint) Name() string { return h.name }
func (h priorityHint) Sorted() bool { return h.sorted }
func (h priorityHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.SliceStable(out, h.sortLess(out))
	return out
}

func (h priorityHint) sortLess(out []*graph.Stage) func(i, j int) bool {
	return func(i, j int) bool { return h.less(out[i], out[j]) }
}

// BFS is the baseline breadth-first stage scheduler (§4.2): all stages of a
// depth level execute before any stage of the next level.
func BFS() Policy { return &bfs{} }

type bfs struct {
	level   map[int]int
	observe func(PickRecord)
}

func (*bfs) Name() string         { return "BFS" }
func (*bfs) SortedBranches() bool { return false }

// SetPickObserver implements PickObservable.
func (b *bfs) SetPickObserver(f func(PickRecord)) { b.observe = f }
func (b *bfs) Init(p *graph.Plan) {
	// Level = longest path from a source stage.
	b.level = make(map[int]int, len(p.Stages))
	for _, st := range p.Stages { // stage IDs are topologically ordered
		lvl := 0
		for _, pre := range p.Pre(st) {
			if b.level[pre.ID]+1 > lvl {
				lvl = b.level[pre.ID] + 1
			}
		}
		b.level[st.ID] = lvl
	}
}

func (b *bfs) Pick(ready []*graph.Stage, last *graph.Stage) *graph.Stage {
	best := ready[0]
	for _, st := range ready[1:] {
		if b.level[st.ID] < b.level[best.ID] ||
			(b.level[st.ID] == b.level[best.ID] && st.ID < best.ID) {
			best = st
		}
	}
	if b.observe != nil {
		ranked := append([]*graph.Stage(nil), ready...)
		sort.Slice(ranked, func(i, j int) bool {
			li, lj := b.level[ranked[i].ID], b.level[ranked[j].ID]
			if li != lj {
				return li < lj
			}
			return ranked[i].ID < ranked[j].ID
		})
		b.observe(PickRecord{Chosen: best, Candidates: ranked})
	}
	return best
}

// BAS is branch-aware scheduling (Alg. 1): depth-first within explore
// branches, ordered by the hint.
func BAS(hint Hint) Policy {
	if hint == nil {
		hint = DefaultHint()
	}
	return &bas{hint: hint}
}

type bas struct {
	hint    Hint
	plan    *graph.Plan
	observe func(PickRecord)
}

func (b *bas) Name() string         { return "BAS" }
func (b *bas) SortedBranches() bool { return b.hint.Sorted() }
func (b *bas) Init(p *graph.Plan)   { b.plan = p }

// SetPickObserver implements PickObservable.
func (b *bas) SetPickObserver(f func(PickRecord)) { b.observe = f }

// ObserveScore implements ScoreAware by forwarding evaluator scores to a
// stateful hint.
func (b *bas) ObserveScore(chooseOp *graph.Operator, hint, score float64) {
	if sa, ok := b.hint.(ScoreAware); ok {
		sa.ObserveScore(chooseOp, hint, score)
	}
}

// Pick implements hinted_scheduling (Alg. 1, line 5). The engine's
// candidate management already realises lines 13–15: ready contains the
// stages whose predecessors are done. BAS prefers successors of the last
// executed stage (depth-first within a branch); among several candidates —
// which happens at branch heads — the hint decides.
func (b *bas) Pick(ready []*graph.Stage, last *graph.Stage) *graph.Stage {
	if last != nil {
		var succ []*graph.Stage
		for _, st := range ready {
			for _, pre := range b.plan.Pre(st) {
				if pre.ID == last.ID {
					succ = append(succ, st)
					break
				}
			}
		}
		if len(succ) > 0 {
			ranked := b.hint.Order(succ)
			if b.observe != nil {
				b.observe(PickRecord{Chosen: ranked[0], Candidates: ranked, DepthFirst: true})
			}
			return ranked[0]
		}
	}
	ranked := b.hint.Order(ready)
	if b.observe != nil {
		b.observe(PickRecord{Chosen: ranked[0], Candidates: ranked})
	}
	return ranked[0]
}
