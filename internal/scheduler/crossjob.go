package scheduler

// This file extends scheduling from intra-job branch ordering (Alg. 1) to
// cross-job admission: the service layer's bounded queue of admitted jobs.
// Where BAS picks the next stage of one MDF, CrossJobQueue picks the next
// job of many tenants under three rules:
//
//  1. explicit priority first (smaller = more urgent), like the hint of
//     Alg. 1;
//  2. priority aging: a job passed over AgeEvery times gains one effective
//     priority level, so a starved low-priority tenant eventually runs no
//     matter how many urgent jobs keep arriving;
//  3. fairness among equals: ties break toward the tenant served least
//     recently, then FIFO, so two tenants at the same priority interleave
//     instead of one monopolising the runners.
//
// The queue is deliberately free of clocks and randomness — aging is
// measured in pop decisions, not seconds — so a fixed submission sequence
// always drains in the same order, which is what makes the service-level
// determinism tests possible.

// JobTicket is one admitted job waiting in the cross-job queue.
type JobTicket struct {
	// ID identifies the job.
	ID string
	// Tenant is the submitting tenant; fairness ties break across tenants.
	Tenant string
	// Priority is the submitted priority; smaller is more urgent.
	Priority int

	// seq is the FIFO tie-breaker; passed counts pop decisions that chose
	// another job, driving the aging rule.
	seq    int64
	passed int
}

// CrossJobQueue is a bounded multi-tenant admission queue with priority
// aging. It is not safe for concurrent use; the service serialises access
// under its own lock.
type CrossJobQueue struct {
	capacity int
	ageEvery int
	seq      int64
	serveSeq int64
	items    []*JobTicket
	// lastServed maps a tenant to the serve sequence of its most recent
	// pop, for least-recently-served tie-breaking. A tenant never served
	// ranks oldest.
	lastServed map[string]int64
}

// NewCrossJobQueue returns a queue holding at most capacity jobs (>= 1) that
// improves a passed-over job's effective priority every ageEvery pops;
// ageEvery <= 0 disables aging.
func NewCrossJobQueue(capacity, ageEvery int) *CrossJobQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &CrossJobQueue{
		capacity:   capacity,
		ageEvery:   ageEvery,
		lastServed: make(map[string]int64),
	}
}

// Len returns the number of queued jobs.
func (q *CrossJobQueue) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *CrossJobQueue) Cap() int { return q.capacity }

// Push admits a job; it reports false when the queue is full (the caller
// sheds load with 429 + Retry-After).
func (q *CrossJobQueue) Push(id, tenant string, priority int) bool {
	if len(q.items) >= q.capacity {
		return false
	}
	q.seq++
	q.items = append(q.items, &JobTicket{ID: id, Tenant: tenant, Priority: priority, seq: q.seq})
	return true
}

// effective returns the ticket's aged priority.
func (q *CrossJobQueue) effective(t *JobTicket) int {
	if q.ageEvery <= 0 {
		return t.Priority
	}
	return t.Priority - t.passed/q.ageEvery
}

// better reports whether a should be served before b.
func (q *CrossJobQueue) better(a, b *JobTicket) bool {
	ea, eb := q.effective(a), q.effective(b)
	if ea != eb {
		return ea < eb
	}
	sa, sb := q.lastServed[a.Tenant], q.lastServed[b.Tenant]
	if sa != sb {
		return sa < sb
	}
	return a.seq < b.seq
}

// Pop removes and returns the next job to run; ok is false on an empty
// queue. Every job left behind counts one more passed-over decision toward
// its aging.
func (q *CrossJobQueue) Pop() (JobTicket, bool) {
	if len(q.items) == 0 {
		return JobTicket{}, false
	}
	best := 0
	for i := 1; i < len(q.items); i++ {
		if q.better(q.items[i], q.items[best]) {
			best = i
		}
	}
	chosen := q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	for _, t := range q.items {
		t.passed++
	}
	q.serveSeq++
	q.lastServed[chosen.Tenant] = q.serveSeq
	return *chosen, true
}

// Remove deletes a queued job by ID (client cancellation); it reports
// whether the job was found.
func (q *CrossJobQueue) Remove(id string) bool {
	for i, t := range q.items {
		if t.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Tenant returns the tenant of a queued job and whether it is queued.
func (q *CrossJobQueue) Tenant(id string) (string, bool) {
	for _, t := range q.items {
		if t.ID == id {
			return t.Tenant, true
		}
	}
	return "", false
}
