package scheduler

import (
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

func passThrough(ins []*dataset.Dataset) (*dataset.Dataset, error) {
	if len(ins) == 0 {
		return dataset.New("src"), nil
	}
	return ins[0], nil
}

type stubChooser struct{}

func (stubChooser) Score(*dataset.Dataset) float64     { return 0 }
func (stubChooser) NewSession(int) graph.ChooseSession { return stubSession{} }
func (stubChooser) Associative() bool                  { return true }
func (stubChooser) NonExhaustive() bool                { return false }
func (stubChooser) MonotoneEval() bool                 { return false }
func (stubChooser) ConvexEval() bool                   { return false }

type stubSession struct{}

func (stubSession) Offer(int, float64) ([]int, bool) { return nil, false }
func (stubSession) Selected() []int                  { return nil }

// buildPlan constructs src -> explore -> {3 branches of 2 chained ops} ->
// choose -> sink and returns the plan plus the branch-head stages.
func buildPlan(t *testing.T, hints []float64) (*graph.Plan, []*graph.Stage) {
	t.Helper()
	g := graph.New()
	src := g.Add(&graph.Operator{Name: "src", Kind: graph.KindSource, Transform: passThrough})
	exp := g.Add(&graph.Operator{Name: "explore", Kind: graph.KindExplore})
	g.MustConnect(src, exp, graph.Narrow)
	cho := g.Add(&graph.Operator{Name: "choose", Kind: graph.KindChoose, Chooser: stubChooser{}})
	var heads []*graph.Operator
	for i, h := range hints {
		a := g.Add(&graph.Operator{Name: "a" + string(rune('0'+i)), Kind: graph.KindTransform, Transform: passThrough, Hint: h})
		b := g.Add(&graph.Operator{Name: "b" + string(rune('0'+i)), Kind: graph.KindTransform, Transform: passThrough, Hint: h})
		g.MustConnect(exp, a, graph.Narrow)
		// Wide dependency splits each branch into two stages.
		g.MustConnect(a, b, graph.Wide)
		g.MustConnect(b, cho, graph.Wide)
		heads = append(heads, a)
	}
	sink := g.Add(&graph.Operator{Name: "sink", Kind: graph.KindTransform, Transform: passThrough})
	g.MustConnect(cho, sink, graph.Narrow)
	p, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	var headStages []*graph.Stage
	for _, h := range heads {
		headStages = append(headStages, p.StageOf(h))
	}
	return p, headStages
}

func TestBFSPicksShallowestFirst(t *testing.T) {
	p, heads := buildPlan(t, []float64{1, 2, 3})
	pol := BFS()
	pol.Init(p)
	// A branch tail (deeper) and a branch head (shallower) both ready: BFS
	// must pick the head.
	tail := p.Post(heads[0])[0]
	got := pol.Pick([]*graph.Stage{tail, heads[1]}, heads[0])
	if got != heads[1] {
		t.Fatalf("BFS picked %v, want shallower %v", got, heads[1])
	}
	if pol.SortedBranches() {
		t.Fatal("BFS does not order branches")
	}
}

func TestBASFollowsBranchDepthFirst(t *testing.T) {
	p, heads := buildPlan(t, []float64{1, 2, 3})
	pol := BAS(nil)
	pol.Init(p)
	// After executing head 0, its tail and the sibling heads are ready:
	// BAS must continue depth-first into the tail.
	tail := p.Post(heads[0])[0]
	got := pol.Pick([]*graph.Stage{heads[1], heads[2], tail}, heads[0])
	if got != tail {
		t.Fatalf("BAS picked %v, want depth-first %v", got, tail)
	}
}

func TestBASFallsBackToOpenSet(t *testing.T) {
	p, heads := buildPlan(t, []float64{1, 2, 3})
	pol := BAS(nil)
	pol.Init(p)
	// No successor of last is ready: falls back to the ready set.
	got := pol.Pick([]*graph.Stage{heads[1], heads[2]}, heads[0])
	if got != heads[1] {
		t.Fatalf("BAS fallback picked %v, want first ready %v", got, heads[1])
	}
}

func TestSortedHintOrdersByHintValue(t *testing.T) {
	p, heads := buildPlan(t, []float64{5, 1, 3})
	pol := BAS(SortedHint(false))
	pol.Init(p)
	got := pol.Pick(heads, nil)
	if got != heads[1] {
		t.Fatalf("sorted hint picked hint=%v, want lowest hint", got.First().Hint)
	}
	desc := BAS(SortedHint(true))
	desc.Init(p)
	if got := desc.Pick(heads, nil); got != heads[0] {
		t.Fatalf("descending hint picked hint=%v, want highest", got.First().Hint)
	}
	if !pol.SortedBranches() {
		t.Fatal("sorted hint must report sorted branches")
	}
}

func TestRandomHintDeterministicPerSeed(t *testing.T) {
	p, heads := buildPlan(t, []float64{1, 2, 3})
	a := BAS(RandomHint(42))
	a.Init(p)
	b := BAS(RandomHint(42))
	b.Init(p)
	if a.Pick(heads, nil) != b.Pick(heads, nil) {
		t.Fatal("same seed must give same order")
	}
	if a.SortedBranches() {
		t.Fatal("random order is not sorted")
	}
}

func TestRandomHintCoversAllOrders(t *testing.T) {
	_, heads := buildPlan(t, []float64{1, 2, 3})
	seen := map[int]bool{}
	for seed := int64(0); seed < 30; seed++ {
		h := RandomHint(seed)
		first := h.Order(heads)[0]
		seen[first.ID] = true
	}
	if len(seen) < 2 {
		t.Fatal("random hint never varied the first branch over 30 seeds")
	}
}

func TestPriorityHint(t *testing.T) {
	p, heads := buildPlan(t, []float64{1, 2, 3})
	// Prioritise the highest hint (a learned model might do this).
	h := PriorityHint("model", func(a, b *graph.Stage) bool {
		return a.First().Hint > b.First().Hint
	}, false)
	pol := BAS(h)
	pol.Init(p)
	if got := pol.Pick(heads, nil); got != heads[2] {
		t.Fatalf("priority hint picked %v, want hint=3", got.First().Hint)
	}
}

func TestDefaultHintDefinitionOrder(t *testing.T) {
	_, heads := buildPlan(t, []float64{9, 5, 7})
	ordered := DefaultHint().Order([]*graph.Stage{heads[2], heads[0], heads[1]})
	if ordered[0] != heads[0] || ordered[2] != heads[2] {
		t.Fatal("default hint must order by stage ID (definition order)")
	}
}
