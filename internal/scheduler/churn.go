package scheduler

import "metadataflow/internal/graph"

// RankChurn quantifies how much a policy changed its mind between two
// consecutive candidate rankings (PickRecord.Candidates, best first): the
// number of stages of cur whose position differs from their position in
// prev, counting stages absent from prev as moved. A stable ranking churns
// 0; a freshly inverted one churns len(cur). The engine feeds consecutive
// pick records through this and emits the result as the sched.rank_churn
// time series, making BAS hint-regression volatility observable over
// virtual time.
func RankChurn(prev, cur []*graph.Stage) int {
	if len(prev) == 0 {
		// The first ranking has nothing to churn against.
		return 0
	}
	pos := make(map[int]int, len(prev))
	for i, st := range prev {
		pos[st.ID] = i
	}
	churn := 0
	for i, st := range cur {
		if j, ok := pos[st.ID]; !ok || j != i {
			churn++
		}
	}
	return churn
}
