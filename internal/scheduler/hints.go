package scheduler

import (
	"math"
	"sort"

	"metadataflow/internal/graph"
)

// ScoreAware is implemented by stateful hints that learn from evaluator
// scores observed during execution (§4.2(iii): "scheduling hints may also be
// stateful and take intermediate results into account"). The engine calls
// ObserveScore after every choose evaluator invocation.
type ScoreAware interface {
	// ObserveScore reports that the branch whose head operator carries the
	// given hint value scored score at the named choose operator.
	ObserveScore(chooseOp *graph.Operator, hint, score float64)
}

// ModelHint is a stateful hint that fits a quadratic regression of score
// against the explorable's hint value from the scores observed so far and
// executes the branches with the best predicted scores first (the
// model-based prioritisation of hyper-parameter search [19] cited in §4.2).
// Until enough observations exist it probes the extremes and the middle of
// the hint range to spread out the regression's support.
//
// ModelHint accelerates non-exhaustive selections (k-threshold, k-interval):
// good branches are found sooner, so superfluous branches are pruned
// earlier. With exhaustive selectors it changes only the discard order.
func ModelHint(maximize bool) Hint {
	return &modelHint{maximize: maximize, scores: map[float64]float64{}}
}

type modelHint struct {
	maximize bool
	scores   map[float64]float64 // hint value -> observed score
}

func (*modelHint) Name() string { return "model" }

// Sorted reports false: the execution order follows predicted quality, not
// the explorable's parameter order, so monotone/convex pruning stays off.
func (*modelHint) Sorted() bool { return false }

// ObserveScore implements ScoreAware.
func (m *modelHint) ObserveScore(_ *graph.Operator, hint, score float64) {
	m.scores[hint] = score
}

// Order implements Hint.
func (m *modelHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(m.scores) < 3 {
		// Probe phase: lowest hint, highest hint, then middle-out.
		sort.SliceStable(out, func(i, j int) bool {
			return probeRank(out[i].First().Hint, out) < probeRank(out[j].First().Hint, out)
		})
		return out
	}
	a, b, c, ok := m.fitQuadratic()
	if !ok {
		return out
	}
	pred := func(h float64) float64 { return a*h*h + b*h + c }
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := pred(out[i].First().Hint), pred(out[j].First().Hint)
		if m.maximize {
			return pi > pj
		}
		return pi < pj
	})
	return out
}

// probeRank orders candidates extremes-first so the regression sees a wide
// support before predictions begin.
func probeRank(h float64, cands []*graph.Stage) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, st := range cands {
		v := st.First().Hint
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	mid := (lo + hi) / 2
	span := hi - lo
	if span == 0 {
		return 0
	}
	// Distance from the nearest extreme, normalised; extremes rank first,
	// the middle next.
	d := math.Min(h-lo, hi-h) / span
	if math.Abs(h-mid) < span/1e6 {
		d = 0.1
	}
	return d
}

// fitQuadratic performs a least-squares fit score ≈ a·h² + b·h + c over the
// observations; ok is false when the normal equations are singular.
func (m *modelHint) fitQuadratic() (a, b, c float64, ok bool) {
	n := float64(len(m.scores))
	// Accumulate over sorted hint values: float addition is not
	// associative, so summing in map-iteration order would leak
	// nondeterminism into the fitted coefficients and from there into the
	// scheduler's branch order.
	hints := make([]float64, 0, len(m.scores))
	for h := range m.scores {
		hints = append(hints, h)
	}
	sort.Float64s(hints)
	var sh, sh2, sh3, sh4, sy, shy, sh2y float64
	for _, h := range hints {
		y := m.scores[h]
		h2 := h * h
		sh += h
		sh2 += h2
		sh3 += h2 * h
		sh4 += h2 * h2
		sy += y
		shy += h * y
		sh2y += h2 * y
	}
	// Solve the 3x3 normal equations with Cramer's rule.
	det := func(m [3][3]float64) float64 {
		return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
	}
	A := [3][3]float64{{sh4, sh3, sh2}, {sh3, sh2, sh}, {sh2, sh, n}}
	d := det(A)
	if math.Abs(d) < 1e-12 {
		return 0, 0, 0, false
	}
	col := func(i int, v [3]float64) [3][3]float64 {
		out := A
		for r := 0; r < 3; r++ {
			out[r][i] = v[r]
		}
		return out
	}
	rhs := [3]float64{sh2y, shy, sy}
	a = det(col(0, rhs)) / d
	b = det(col(1, rhs)) / d
	c = det(col(2, rhs)) / d
	return a, b, c, true
}

// BinarySearchHint probes the explorable range like a ternary search over a
// convex (or concave, when maximize is true) evaluator (§4.2(i)): it
// schedules the extremes first, then repeatedly the untried branch closest
// to the midpoint of the best bracket seen so far, homing in on the optimum
// in O(log B) evaluations when the selection is non-exhaustive.
func BinarySearchHint(maximize bool) Hint {
	return &binarySearchHint{maximize: maximize, scores: map[float64]float64{}}
}

type binarySearchHint struct {
	maximize bool
	scores   map[float64]float64
}

func (*binarySearchHint) Name() string { return "binary-search" }
func (*binarySearchHint) Sorted() bool { return false }

// ObserveScore implements ScoreAware.
func (h *binarySearchHint) ObserveScore(_ *graph.Operator, hint, score float64) {
	h.scores[hint] = score
}

// Order implements Hint.
func (h *binarySearchHint) Order(cands []*graph.Stage) []*graph.Stage {
	out := append([]*graph.Stage(nil), cands...)
	sort.Slice(out, func(i, j int) bool { return out[i].First().Hint < out[j].First().Hint })
	switch len(h.scores) {
	case 0:
		// First probe: the lowest extreme.
		return out
	case 1:
		// Second probe: the candidate farthest from the explored point.
		var explored float64
		for v := range h.scores {
			explored = v
		}
		sort.SliceStable(out, func(i, j int) bool {
			return math.Abs(out[i].First().Hint-explored) > math.Abs(out[j].First().Hint-explored)
		})
		return out
	}
	target := h.bracketMid(out)
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].First().Hint-target) < math.Abs(out[j].First().Hint-target)
	})
	return out
}

// bracketMid returns the midpoint of the bracket around the best observed
// score: its explored neighbours on each side, extended to the unexplored
// candidate range when the best sits at the boundary of the explored hints.
func (h *binarySearchHint) bracketMid(cands []*graph.Stage) float64 {
	hints := make([]float64, 0, len(h.scores))
	for v := range h.scores {
		hints = append(hints, v)
	}
	sort.Float64s(hints)
	bestIdx := 0
	for i, v := range hints {
		better := h.scores[v] < h.scores[hints[bestIdx]]
		if h.maximize {
			better = h.scores[v] > h.scores[hints[bestIdx]]
		}
		if better {
			bestIdx = i
		}
	}
	candLo := cands[0].First().Hint
	candHi := cands[len(cands)-1].First().Hint
	lo := math.Min(hints[0], candLo)
	hi := math.Max(hints[len(hints)-1], candHi)
	if bestIdx > 0 {
		lo = hints[bestIdx-1]
	}
	if bestIdx < len(hints)-1 {
		hi = hints[bestIdx+1]
	}
	return (lo + hi) / 2
}
