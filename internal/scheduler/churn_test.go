package scheduler

import (
	"testing"

	"metadataflow/internal/graph"
)

func churnStages(ids ...int) []*graph.Stage {
	out := make([]*graph.Stage, len(ids))
	for i, id := range ids {
		out[i] = &graph.Stage{ID: id}
	}
	return out
}

func TestRankChurn(t *testing.T) {
	cases := []struct {
		name      string
		prev, cur []*graph.Stage
		want      int
	}{
		{"first ranking", nil, churnStages(1, 2, 3), 0},
		{"stable", churnStages(1, 2, 3), churnStages(1, 2, 3), 0},
		{"swap", churnStages(1, 2, 3), churnStages(2, 1, 3), 2},
		{"inverted", churnStages(1, 2, 3), churnStages(3, 2, 1), 2},
		{"new entrant", churnStages(1, 2), churnStages(1, 4), 1},
		{"shrunk stable prefix", churnStages(1, 2, 3), churnStages(1, 2), 0},
	}
	for _, c := range cases {
		if got := RankChurn(c.prev, c.cur); got != c.want {
			t.Errorf("%s: RankChurn = %d, want %d", c.name, got, c.want)
		}
	}
}
