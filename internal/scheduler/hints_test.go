package scheduler

import (
	"testing"

	"metadataflow/internal/graph"
)

// hintStages builds standalone stages whose first op carries the hint
// values; enough for exercising Hint.Order.
func hintStages(hints ...float64) []*graph.Stage {
	out := make([]*graph.Stage, len(hints))
	for i, h := range hints {
		out[i] = &graph.Stage{ID: i, Ops: []*graph.Operator{{ID: i, Hint: h}}}
	}
	return out
}

func firstHint(stages []*graph.Stage) float64 { return stages[0].First().Hint }

func TestModelHintProbesExtremesFirst(t *testing.T) {
	h := ModelHint(true)
	stages := hintStages(1, 2, 3, 4, 5)
	ordered := h.Order(stages)
	if fh := firstHint(ordered); fh != 1 && fh != 5 {
		t.Fatalf("probe phase should start at an extreme, got hint %v", fh)
	}
}

func TestModelHintPredictsAfterObservations(t *testing.T) {
	h := ModelHint(true).(*modelHint)
	// Concave landscape with the peak at hint 6: score = -(h-6)^2.
	for _, obs := range []float64{0, 3, 12} {
		h.ObserveScore(nil, obs, -(obs-6)*(obs-6))
	}
	ordered := h.Order(hintStages(1, 2, 4, 5, 6, 7, 8, 10, 11))
	if fh := firstHint(ordered); fh != 6 {
		t.Fatalf("model should schedule the predicted peak first, got hint %v", fh)
	}
	// Minimisation flips the preference.
	m := ModelHint(false).(*modelHint)
	for _, obs := range []float64{0, 3, 12} {
		m.ObserveScore(nil, obs, (obs-6)*(obs-6))
	}
	ordered = m.Order(hintStages(1, 6, 11))
	if fh := firstHint(ordered); fh != 6 {
		t.Fatalf("model (minimise) should schedule the valley first, got hint %v", fh)
	}
}

func TestModelHintDegenerateObservations(t *testing.T) {
	h := ModelHint(true).(*modelHint)
	// Three observations at the same hint value: singular fit, must not
	// panic and must still return all candidates.
	h.ObserveScore(nil, 2, 1)
	h.ObserveScore(nil, 2, 2)
	h.ObserveScore(nil, 2, 3)
	// Map keying collapses them to one observation; feed two more equal
	// points to stay under the fit threshold, then a singular triple.
	h.scores = map[float64]float64{1: 5, 2: 5, 3: 5}
	ordered := h.Order(hintStages(1, 2, 3))
	if len(ordered) != 3 {
		t.Fatalf("lost candidates: %d", len(ordered))
	}
}

func TestBinarySearchHintBracketsOptimum(t *testing.T) {
	h := BinarySearchHint(false).(*binarySearchHint)
	// Convex landscape, minimum at 5.
	h.ObserveScore(nil, 0, 25)
	h.ObserveScore(nil, 10, 25)
	h.ObserveScore(nil, 2, 9)
	// Best so far is 2, bracket [0, 10]: midpoint 5.
	ordered := h.Order(hintStages(1, 3, 5, 7, 9))
	if fh := firstHint(ordered); fh != 5 {
		t.Fatalf("binary search should probe the bracket midpoint, got %v", fh)
	}
}

func TestBinarySearchHintProbesExtremesFirst(t *testing.T) {
	h := BinarySearchHint(false)
	ordered := h.Order(hintStages(1, 2, 3, 4, 9))
	if fh := firstHint(ordered); fh != 1 && fh != 9 {
		t.Fatalf("first probe should be an extreme, got %v", fh)
	}
}

func TestStatefulHintsNotSorted(t *testing.T) {
	if ModelHint(true).Sorted() || BinarySearchHint(true).Sorted() {
		t.Fatal("stateful hints must not claim sorted order")
	}
}

func TestBASForwardsScores(t *testing.T) {
	h := ModelHint(true).(*modelHint)
	pol := BAS(h)
	sa, ok := pol.(ScoreAware)
	if !ok {
		t.Fatal("BAS must be score-aware")
	}
	sa.ObserveScore(nil, 3, 1.5)
	if h.scores[3] != 1.5 {
		t.Fatal("score not forwarded to hint")
	}
}
