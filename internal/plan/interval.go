package plan

import (
	"fmt"
	"math"

	"metadataflow/internal/spec"
)

// This file is the abstract interpreter the value-flow rules share: every
// row value is abstracted to one closed interval [lo, hi] (bounds may be
// ±Inf) plus an explicit empty state, and the pipeline is walked from the
// source down with per-operator transfer functions. The domain is coarse on
// purpose — it only has to be sound: when a transfer proves a result empty
// (a filter whose passing set is disjoint from the input interval) or
// bounded (an iterate whose post-fixpoint interval stays under a divergence
// threshold), the proof holds for every concrete execution, so emptyfilter
// and degeniterate findings are never false positives. Anything the domain
// cannot bound widens to top and produces no finding.

// valRange is one abstract value: the closed interval [lo, hi], or empty.
type valRange struct {
	lo, hi float64
	empty  bool
}

func top() valRange        { return valRange{lo: math.Inf(-1), hi: math.Inf(1)} }
func emptyRange() valRange { return valRange{empty: true} }
func (r valRange) abs() (lo, hi float64) {
	if r.lo <= 0 && 0 <= r.hi {
		return 0, math.Max(-r.lo, r.hi)
	}
	return math.Min(math.Abs(r.lo), math.Abs(r.hi)), math.Max(math.Abs(r.lo), math.Abs(r.hi))
}

// String renders the interval for finding messages.
func (r valRange) String() string {
	if r.empty {
		return "∅"
	}
	return fmt.Sprintf("[%g, %g]", r.lo, r.hi)
}

func (r valRange) contains(o valRange) bool {
	return o.empty || (!r.empty && r.lo <= o.lo && o.hi <= r.hi)
}

func hullAll(rs []valRange) valRange {
	out := emptyRange()
	for _, r := range rs {
		if r.empty {
			continue
		}
		if out.empty {
			out = r
			continue
		}
		out.lo = math.Min(out.lo, r.lo)
		out.hi = math.Max(out.hi, r.hi)
	}
	return out
}

// sourceRange is the abstract value of the source dataset. Only the uniform
// generator has bounded support; normal and bimodal tails are unbounded and
// file contents are unknown, so both widen to top.
func sourceRange(src spec.Source) valRange {
	if src.File == "" && src.Distribution == "uniform" {
		return valRange{lo: -1, hi: 1}
	}
	return top()
}

// stepEvent is one visited step: its path, the abstract value entering and
// leaving it, and what the transfer proved.
type stepEvent struct {
	Path   string
	Step   spec.Step
	Params map[string]float64
	In     valRange
	Out    valRange
	// IterStable is set for iterate steps whose transfer reached a
	// post-fixpoint, making Out a sound bound for every round.
	IterStable bool
	// ProvedEmpty marks the step that first proves its output empty on a
	// non-empty input (downstream steps inherit empty without the mark).
	ProvedEmpty bool
}

// walkPipeline walks a *normalized* spec in document order (explore bodies
// before the explore's own event), propagating intervals, and calls visit
// for every step.
func walkPipeline(n *spec.Spec, visit func(stepEvent)) {
	walkSteps("pipeline", n.Pipeline, nil, sourceRange(n.Source), visit)
}

func walkSteps(prefix string, steps []spec.Step, params map[string]float64, in valRange, visit func(stepEvent)) valRange {
	for i, st := range steps {
		path := fmt.Sprintf("%s[%d]", prefix, i)
		e := stepEvent{Path: path, Step: st, Params: params, In: in}
		switch {
		case st.Op != nil:
			e.Out, e.ProvedEmpty = opTransfer(*st.Op, params, in)
		case st.Iterate != nil:
			e.Out, e.IterStable, e.ProvedEmpty = iterateTransfer(*st.Iterate, params, in)
		case st.Explore != nil:
			ex := st.Explore
			outs := make([]valRange, len(ex.Branches))
			for j, br := range ex.Branches {
				outs[j] = walkSteps(fmt.Sprintf("%s.explore.branch[%d].body", path, j),
					ex.Body, br.Params, in, visit)
			}
			// The choose keeps some subset of the branch results, so the
			// explore's output lies within the hull of the branch outputs.
			e.Out = hullAll(outs)
		}
		visit(e)
		in = e.Out
	}
	return in
}

// resolvedOpParams applies ParamKey indirection the way opFunc does,
// returning the effective affine/filter parameters.
func resolvedOpParams(op spec.OpStep, params map[string]float64) (a, b, limit float64) {
	a, b, limit = op.A, op.B, op.Limit
	if op.ParamKey != "" {
		if v, ok := params[op.ParamKey]; ok {
			switch op.Fn {
			case "affine":
				a = v
			case "filter-less", "filter-greater", "filter-absless":
				limit = v
			}
		}
	}
	return a, b, limit
}

// opTransfer is the per-operator abstract transfer. provedEmpty is set only
// when a non-empty input is proven to produce an empty output.
func opTransfer(op spec.OpStep, params map[string]float64, in valRange) (out valRange, provedEmpty bool) {
	if in.empty {
		return in, false
	}
	a, b, limit := resolvedOpParams(op, params)
	switch op.Fn {
	case "identity":
		return in, false
	case "affine":
		if a == 0 {
			return valRange{lo: b, hi: b}, false
		}
		lo, hi := a*in.lo+b, a*in.hi+b
		if a < 0 {
			lo, hi = hi, lo
		}
		return valRange{lo: lo, hi: hi}, false
	case "square":
		alo, ahi := in.abs()
		return valRange{lo: alo * alo, hi: ahi * ahi}, false
	case "abs":
		alo, ahi := in.abs()
		return valRange{lo: alo, hi: ahi}, false
	case "normalize":
		return valRange{lo: 0, hi: 1}, false
	case "standardize":
		return top(), false
	case "filter-less":
		// Keeps x < limit: empty when every input value is >= limit.
		if limit <= in.lo {
			return emptyRange(), true
		}
		return valRange{lo: in.lo, hi: math.Min(in.hi, limit)}, false
	case "filter-greater":
		// Keeps x > limit: empty when every input value is <= limit.
		if limit >= in.hi {
			return emptyRange(), true
		}
		return valRange{lo: math.Max(in.lo, limit), hi: in.hi}, false
	case "filter-absless":
		// Keeps |x| < limit: empty when no input magnitude is below it.
		alo, _ := in.abs()
		if limit <= alo {
			return emptyRange(), true
		}
		return valRange{lo: math.Max(in.lo, -limit), hi: math.Min(in.hi, limit)}, false
	default:
		return top(), false
	}
}

// iterateTransfer abstracts Rounds applications of the iterate's operator.
// One application gives the state after round one; if a second application
// stays inside it (a post-fixpoint), that interval bounds every later round
// and stable is true. Otherwise the values may grow round over round and
// the result widens to top.
func iterateTransfer(it spec.IterateStep, params map[string]float64, in valRange) (out valRange, stable bool, provedEmpty bool) {
	if in.empty {
		return in, true, false
	}
	r1, e1 := opTransfer(it.Op, params, in)
	if e1 {
		return r1, true, true
	}
	if it.Rounds == 1 {
		return r1, true, false
	}
	r2, e2 := opTransfer(it.Op, params, r1)
	if e2 {
		// The second round provably empties the data; with Rounds >= 2 the
		// iterate output is empty.
		return r2, true, true
	}
	if r1.contains(r2) {
		return r1, true, false
	}
	return top(), false, false
}
