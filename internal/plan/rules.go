package plan

import (
	"fmt"
	"math"

	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

// checkCompile proves the spec compiles to a valid executable graph. Parse
// already validates structure, so a failure here is a graph-level defect
// (and everything the later rules assume about the plan holds once this
// passes).
func checkCompile(s *spec.Spec) []Finding {
	if _, err := s.Compile(); err != nil {
		return []Finding{{Path: "spec", Rule: "compile", Msg: err.Error()}}
	}
	return nil
}

// checkDupBranch flags explore branches whose resolved sub-graph hashes
// collide: both branches compute the same intermediate result from the same
// input, so running both is pure waste (and the choose between them is a
// coin flip). The hash already resolves ParamKey indirection and ignores
// labels, so differently-spelled duplicates collide too.
func checkDupBranch(s *spec.Spec) []Finding {
	var out []Finding
	report := s.HashReport()
	type firstSeen struct {
		branch int
		label  string
	}
	perExplore := make(map[string]map[spec.Hash]firstSeen)
	for _, bh := range report.Branches { // document order
		seen := perExplore[bh.ExplorePath]
		if seen == nil {
			seen = make(map[spec.Hash]firstSeen)
			perExplore[bh.ExplorePath] = seen
		}
		if prev, dup := seen[bh.Hash]; dup {
			out = append(out, Finding{
				Path: fmt.Sprintf("%s.branch[%d]", bh.ExplorePath, bh.Branch),
				Rule: "dupbranch",
				Msg: fmt.Sprintf("branch %d (%q) computes the same result as branch %d (%q): identical resolved sub-graph (hash %s)",
					bh.Branch, bh.Label, prev.branch, prev.label, bh.Hash),
			})
			continue
		}
		seen[bh.Hash] = firstSeen{branch: bh.Branch, label: bh.Label}
	}
	return out
}

// evaluatorRange returns the provable score range of an evaluator, if it
// has one: size counts rows, ratio divides by the source row count (no
// operator adds rows, so it stays within [0, 1]), and neg-mean-abs negates
// a magnitude. Empty results score 0 (size, ratio) or -Inf (neg-mean-abs),
// both inside the stated ranges. Mean and stddev are unbounded.
func evaluatorRange(evaluator string) (lo, hi float64, ok bool) {
	switch evaluator {
	case "size":
		return 0, math.Inf(1), true
	case "ratio":
		return 0, 1, true
	case "neg-mean-abs":
		return math.Inf(-1), 0, true
	}
	return 0, 0, false
}

// rowCountMayChange reports whether any step in a (normalized) explore body
// can change the row count: a filter (standalone or iterated), an iterate
// that can terminate early with an empty result, or a nested explore (whose
// branches may disagree). When nothing can, every branch produces the same
// number of rows and a row-counting evaluator cannot tell them apart.
func rowCountMayChange(body []spec.Step) bool {
	isFilter := func(fn string) bool {
		return fn == "filter-less" || fn == "filter-greater" || fn == "filter-absless"
	}
	for _, st := range body {
		switch {
		case st.Op != nil && isFilter(st.Op.Fn):
			return true
		case st.Iterate != nil && (isFilter(st.Iterate.Op.Fn) || st.Iterate.DivergeAboveMeanAbs > 0):
			return true
		case st.Explore != nil:
			return true
		}
	}
	return false
}

// checkDeadChoose flags choose scopes that cannot do their job: selectors
// that keep every branch, evaluators that score every branch identically,
// and selector ranges disjoint from the evaluator's provable score range
// (which would discard every branch and kill the job at runtime).
func checkDeadChoose(n *spec.Spec) []Finding {
	var out []Finding
	walkPipeline(n, func(e stepEvent) {
		if e.Step.Explore == nil {
			return
		}
		ex := e.Step.Explore
		path := e.Path + ".explore"
		sel := ex.Choose.Selector
		nb := len(ex.Branches)

		switch sel.Kind {
		case "topk", "bottomk":
			if sel.K >= nb {
				out = append(out, Finding{Path: path, Rule: "deadchoose",
					Msg: fmt.Sprintf("selector %s keeps all %d branches (k=%d): the choose never discards anything", sel.Kind, nb, sel.K)})
			}
		case "interval", "kinterval":
			if sel.Lo > sel.Hi {
				out = append(out, Finding{Path: path, Rule: "deadchoose",
					Msg: fmt.Sprintf("selector %s has an empty range [%g, %g]: no branch can ever be selected", sel.Kind, sel.Lo, sel.Hi)})
			}
		}

		if (ex.Choose.Evaluator == "size" || ex.Choose.Evaluator == "ratio") && !rowCountMayChange(ex.Body) {
			out = append(out, Finding{Path: path, Rule: "deadchoose",
				Msg: fmt.Sprintf("evaluator %q scores every branch identically: no step in the body changes the row count", ex.Choose.Evaluator)})
		}

		if lo, hi, ok := evaluatorRange(ex.Choose.Evaluator); ok {
			impossible := ""
			switch sel.Kind {
			case "threshold", "kthreshold":
				if !sel.AtMost && sel.Bound > hi {
					impossible = fmt.Sprintf("requires a score >= %g", sel.Bound)
				}
				if sel.AtMost && sel.Bound < lo {
					impossible = fmt.Sprintf("requires a score <= %g", sel.Bound)
				}
			case "interval", "kinterval":
				if sel.Lo <= sel.Hi && (sel.Hi < lo || sel.Lo > hi) {
					impossible = fmt.Sprintf("requires a score in [%g, %g]", sel.Lo, sel.Hi)
				}
			}
			if impossible != "" {
				out = append(out, Finding{Path: path, Rule: "deadchoose",
					Msg: fmt.Sprintf("selector %s %s but evaluator %q scores lie in [%g, %g]: no branch can ever be selected",
						sel.Kind, impossible, ex.Choose.Evaluator, lo, hi)})
			}
		}
	})
	return out
}

// idempotentFn reports operator functions f with f(f(x)) = f(x): iterating
// them computes the same result as a single application.
func idempotentFn(fn string) bool {
	switch fn {
	case "identity", "abs", "normalize", "standardize",
		"filter-less", "filter-greater", "filter-absless":
		return true
	}
	return false
}

// checkDegenIterate flags iterations that cannot do useful work: a single
// round (a plain op), rounds beyond the configured maximum, an idempotent
// operator iterated more than once, and divergence thresholds the value
// ranges prove unreachable (the early-termination check would be evaluated
// every round and never fire).
func checkDegenIterate(n *spec.Spec, cfg Config) []Finding {
	var out []Finding
	walkPipeline(n, func(e stepEvent) {
		if e.Step.Iterate == nil {
			return
		}
		it := e.Step.Iterate
		path := e.Path + ".iterate"
		if it.Rounds == 1 {
			out = append(out, Finding{Path: path, Rule: "degeniterate",
				Msg: fmt.Sprintf("iterate %q runs a single round: use a plain op step", it.Name)})
		}
		if it.Rounds > cfg.MaxIterateRounds {
			out = append(out, Finding{Path: path, Rule: "degeniterate",
				Msg: fmt.Sprintf("iterate %q unrolls %d rounds, above the configured maximum %d", it.Name, it.Rounds, cfg.MaxIterateRounds)})
		}
		if it.Rounds > 1 {
			a, b, _ := resolvedOpParams(it.Op, e.Params)
			switch {
			case idempotentFn(it.Op.Fn):
				out = append(out, Finding{Path: path, Rule: "degeniterate",
					Msg: fmt.Sprintf("iterating idempotent op %q for %d rounds computes the same result as one round", it.Op.Fn, it.Rounds)})
			case it.Op.Fn == "affine" && a == 1 && b == 0:
				out = append(out, Finding{Path: path, Rule: "degeniterate",
					Msg: fmt.Sprintf("iterating affine(1·x+0) for %d rounds is the identity", it.Rounds)})
			}
		}
		if it.DivergeAboveMeanAbs > 0 && e.IterStable && !e.Out.empty && !e.In.empty {
			if _, absHi := e.Out.abs(); absHi <= it.DivergeAboveMeanAbs {
				out = append(out, Finding{Path: path, Rule: "degeniterate",
					Msg: fmt.Sprintf("divergence threshold %g can never fire: iterated values stay within %s (mean |x| <= %g)",
						it.DivergeAboveMeanAbs, e.Out, absHi)})
			}
		}
	})
	return out
}

// checkEmptyFilter flags the first filter along each chain that provably
// drops every row, using the interval abstract interpretation: everything
// downstream of it computes on nothing.
func checkEmptyFilter(n *spec.Spec) []Finding {
	var out []Finding
	walkPipeline(n, func(e stepEvent) {
		if !e.ProvedEmpty {
			return
		}
		var op spec.OpStep
		path := e.Path
		if e.Step.Op != nil {
			op = *e.Step.Op
		} else if e.Step.Iterate != nil {
			op = e.Step.Iterate.Op
			path += ".iterate"
		} else {
			return
		}
		_, _, limit := resolvedOpParams(op, e.Params)
		out = append(out, Finding{Path: path, Rule: "emptyfilter",
			Msg: fmt.Sprintf("filter %q (%s %g) statically drops every row: input values lie in %s",
				op.Name, op.Fn, limit, e.In)})
	})
	return out
}

// checkMemFeasible proves the plan inadmissible or memory-defeating from
// its declared dataset size alone, against the target cluster shape. Both
// sub-checks are proofs of engine behaviour, not heuristics:
//
//  1. the allocator writes any partition larger than the per-worker budget
//     straight to disk (memorymgr Put), so ⌈bytes/partitions⌉ over the
//     budget means no source partition is ever memory-resident — the job
//     runs, but entirely from disk, with the AMM reduced to a bystander;
//  2. admission reserves workers × per-worker budget against the tenant
//     quota — a reservation that does not depend on the spec — so a
//     reservation above the quota is rejected for any spec: the job can
//     never be admitted.
//
// The quota check (2) only runs when a quota is configured. Working sets
// that are large but partition-wise under the budget are deliberately not
// flagged: the allocator spills and reloads per policy, so completion is
// never in doubt — only performance, which a sound rule cannot condemn.
func checkMemFeasible(n *spec.Spec, cfg Config) []Finding {
	var out []Finding
	bytes := sim.Bytes(n.Source.VirtualBytes)
	parts := sim.Bytes(n.Source.Partitions)
	if cfg.MemPerWorker > 0 && parts > 0 {
		if part := (bytes + parts - 1) / parts; part > cfg.MemPerWorker {
			out = append(out, Finding{Path: "source", Rule: "memfeasible",
				Msg: fmt.Sprintf("every partition (%s, a %s source split %d ways) exceeds the %s per-worker memory budget and bypasses memory straight to disk: repartition the source or the job runs with caching defeated",
					fmtBytes(part), fmtBytes(bytes), n.Source.Partitions, fmtBytes(cfg.MemPerWorker))})
		}
	}
	if cfg.TenantQuota > 0 {
		if reservation := sim.Bytes(cfg.Workers) * cfg.MemPerWorker; reservation > cfg.TenantQuota {
			out = append(out, Finding{Path: "spec", Rule: "memfeasible",
				Msg: fmt.Sprintf("admission reservation %s (%d workers × %s) exceeds the %s tenant quota: the job can never be admitted",
					fmtBytes(reservation), cfg.Workers, fmtBytes(cfg.MemPerWorker), fmtBytes(cfg.TenantQuota))})
		}
	}
	return out
}
