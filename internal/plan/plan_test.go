package plan

import (
	"math"
	"strings"
	"testing"

	"metadataflow/internal/spec"
)

func mustParse(t *testing.T, doc string) *spec.Spec {
	t.Helper()
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	return s
}

func mustVerify(t *testing.T, doc string, cfg Config) *Result {
	t.Helper()
	res, err := Verify(mustParse(t, doc), cfg)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return res
}

func rulesOf(res *Result) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, f.Rule)
	}
	return out
}

const dupDoc = `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":1}}],
  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
  "choose":{"selector":{"kind":"max"}}}}]}`

func TestAllowSuppressesAndRecordsStale(t *testing.T) {
	res := mustVerify(t, dupDoc, DefaultConfig())
	if got := rulesOf(res); len(got) != 1 || got[0] != "dupbranch" {
		t.Fatalf("baseline findings = %v, want exactly one dupbranch", got)
	}

	allowed := strings.Replace(dupDoc, `{"source"`, `{"allow":["dupbranch"],"source"`, 1)
	res = mustVerify(t, allowed, DefaultConfig())
	if len(res.Findings) != 0 {
		t.Errorf("allow did not suppress: %v", res.Findings)
	}
	if len(res.StaleAllows) != 0 {
		t.Errorf("used allow reported stale: %v", res.StaleAllows)
	}

	stale := strings.Replace(dupDoc, `{"source"`, `{"allow":["dupbranch","emptyfilter","nosuchrule"],"source"`, 1)
	res = mustVerify(t, stale, DefaultConfig())
	if len(res.Findings) != 0 {
		t.Errorf("allow did not suppress: %v", res.Findings)
	}
	var staleRules []string
	for _, s := range res.StaleAllows {
		staleRules = append(staleRules, s.Rule)
	}
	if strings.Join(staleRules, ",") != "emptyfilter,nosuchrule" {
		t.Errorf("stale allows = %v, want [emptyfilter nosuchrule]", staleRules)
	}
	if !strings.Contains(res.StaleAllows[0].String(), "suppresses nothing") {
		t.Errorf("stale allow diagnostic: %q", res.StaleAllows[0])
	}
}

func TestRuleSubsetAndUnknownRule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rules = []string{"compile"}
	if res := mustVerify(t, dupDoc, cfg); len(res.Findings) != 0 {
		t.Errorf("compile-only run still found %v", res.Findings)
	}
	cfg.Rules = []string{"dupbrach"}
	if _, err := Verify(mustParse(t, dupDoc), cfg); err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Errorf("unknown rule not rejected: %v", err)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Path: "pipeline[0].explore", Rule: "deadchoose", Msg: "boom"}
	if got := f.String(); got != "pipeline[0].explore: [deadchoose] boom" {
		t.Errorf("finding format %q", got)
	}
}

// TestMemFeasibleReservation covers the quota check that is independent of
// the spec: a service shape whose admission reservation exceeds the tenant
// quota can never admit any job.
func TestMemFeasibleReservation(t *testing.T) {
	doc := `{"source":{"rows":10,"virtualBytes":1024},"pipeline":[{"op":{"name":"x"}}]}`
	cfg := Config{Workers: 4, MemPerWorker: 1 << 30, TenantQuota: 2 << 30}
	res := mustVerify(t, doc, cfg)
	if got := rulesOf(res); len(got) != 1 || got[0] != "memfeasible" {
		t.Fatalf("findings = %v, want one memfeasible", res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "can never be admitted") {
		t.Errorf("message: %q", res.Findings[0].Msg)
	}
	// Matching shape within quota is clean.
	cfg.TenantQuota = 4 << 30
	if res := mustVerify(t, doc, cfg); len(res.Findings) != 0 {
		t.Errorf("feasible job flagged: %v", res.Findings)
	}
}

// TestMemFeasibleBoundaries pins the partition arithmetic at the exact
// boundary the allocator uses (memorymgr Put spills only when bytes exceed
// the budget): equality is feasible, one byte under the partition size is
// not.
func TestMemFeasibleBoundaries(t *testing.T) {
	// ceil(1 GiB / 8) = 128 MiB: exactly the budget -> a partition still
	// fits in memory, clean.
	doc := `{"source":{"rows":10,"virtualBytes":1073741824},"pipeline":[{"op":{"name":"x"}}]}`
	cfg := Config{Workers: 2, MemPerWorker: 128 << 20}
	if res := mustVerify(t, doc, cfg); len(res.Findings) != 0 {
		t.Errorf("boundary-feasible job flagged: %v", res.Findings)
	}
	cfg.MemPerWorker--
	res := mustVerify(t, doc, cfg)
	if got := rulesOf(res); len(got) != 1 || got[0] != "memfeasible" {
		t.Errorf("one byte under the partition size not flagged: %v", res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "straight to disk") {
		t.Errorf("message: %q", res.Findings[0].Msg)
	}
}

func TestDeadChooseEmptyInterval(t *testing.T) {
	doc := `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
	  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
	  "choose":{"evaluator":"mean","selector":{"kind":"interval","lo":5,"hi":1}}}}]}`
	res := mustVerify(t, doc, DefaultConfig())
	found := false
	for _, f := range res.Findings {
		if f.Rule == "deadchoose" && strings.Contains(f.Msg, "empty range") {
			found = true
		}
	}
	if !found {
		t.Errorf("empty interval selector not flagged: %v", res.Findings)
	}
}

// TestNoFalsePositives: specs the abstraction cannot condemn stay clean —
// growth the interval domain cannot bound, filters that keep something,
// evaluators without a provable range.
func TestNoFalsePositives(t *testing.T) {
	for name, doc := range map[string]string{
		// affine 2x is unstable under iteration: the domain widens to top
		// instead of claiming the 1.5 divergence threshold unreachable.
		"growing iterate": `{"source":{"rows":10,"distribution":"uniform"},"pipeline":[
		  {"iterate":{"name":"grow","rounds":5,"divergeAboveMeanAbs":1.5,"op":{"name":"g","fn":"affine","a":2}}}]}`,
		// the filter keeps part of the interval.
		"live filter": `{"source":{"rows":10,"distribution":"uniform"},"pipeline":[
		  {"op":{"name":"f","fn":"filter-less","limit":0.5}}]}`,
		// normal sources are unbounded: no filter on them is provably empty.
		"unbounded source": `{"source":{"rows":10},"pipeline":[
		  {"op":{"name":"f","fn":"filter-greater","limit":1e12}}]}`,
		// mean has no provable range: a wild threshold is not condemnable.
		"mean threshold": `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
		  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
		  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
		  "choose":{"evaluator":"mean","selector":{"kind":"threshold","bound":1e12}}}}]}`,
	} {
		if res := mustVerify(t, doc, DefaultConfig()); len(res.Findings) != 0 {
			t.Errorf("%s: clean spec flagged: %v", name, res.Findings)
		}
	}
}

// TestEmptyFilterThroughExplore: branch bodies are analysed under their own
// params, so only the branch whose resolved limit is impossible fires.
func TestEmptyFilterThroughExplore(t *testing.T) {
	doc := `{"source":{"rows":10,"distribution":"uniform"},"pipeline":[
	  {"op":{"name":"m","fn":"abs"}},
	  {"explore":{"name":"e",
	    "branches":[{"label":"dead","params":{"l":-1}},{"label":"live","params":{"l":0.5}}],
	    "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
	    "choose":{"evaluator":"mean","selector":{"kind":"max"}}}}]}`
	res := mustVerify(t, doc, DefaultConfig())
	if got := rulesOf(res); len(got) != 1 || got[0] != "emptyfilter" {
		t.Fatalf("findings = %v, want one emptyfilter", res.Findings)
	}
	if want := "pipeline[1].explore.branch[0].body[0]"; res.Findings[0].Path != want {
		t.Errorf("path = %q, want %q", res.Findings[0].Path, want)
	}
}

// TestOpTransfers pins the abstract transfer functions directly.
func TestOpTransfers(t *testing.T) {
	in := valRange{lo: -1, hi: 1}
	cases := map[string]struct {
		op   spec.OpStep
		in   valRange
		want valRange
	}{
		"affine flips":    {spec.OpStep{Fn: "affine", A: -2, B: 1}, in, valRange{lo: -1, hi: 3}},
		"affine constant": {spec.OpStep{Fn: "affine", A: 0, B: 7}, top(), valRange{lo: 7, hi: 7}},
		"square spans":    {spec.OpStep{Fn: "square"}, valRange{lo: -2, hi: 1}, valRange{lo: 0, hi: 4}},
		"square positive": {spec.OpStep{Fn: "square"}, valRange{lo: 2, hi: 3}, valRange{lo: 4, hi: 9}},
		"abs":             {spec.OpStep{Fn: "abs"}, valRange{lo: -3, hi: -2}, valRange{lo: 2, hi: 3}},
		"normalize":       {spec.OpStep{Fn: "normalize"}, top(), valRange{lo: 0, hi: 1}},
		"filter clips":    {spec.OpStep{Fn: "filter-less", Limit: 0.5}, in, valRange{lo: -1, hi: 0.5}},
		"absless clips":   {spec.OpStep{Fn: "filter-absless", Limit: 0.5}, in, valRange{lo: -0.5, hi: 0.5}},
	}
	for name, tc := range cases {
		got, provedEmpty := opTransfer(tc.op, nil, tc.in)
		if provedEmpty || got != tc.want {
			t.Errorf("%s: transfer(%v) = %v (empty=%v), want %v", name, tc.in, got, provedEmpty, tc.want)
		}
	}

	empties := map[string]spec.OpStep{
		"less at lo":      {Fn: "filter-less", Limit: -1},
		"greater at hi":   {Fn: "filter-greater", Limit: 1},
		"absless at zero": {Fn: "filter-absless", Limit: 0},
	}
	for name, op := range empties {
		if got, provedEmpty := opTransfer(op, nil, in); !provedEmpty || !got.empty {
			t.Errorf("%s: transfer not proven empty: %v", name, got)
		}
	}

	// standardize widens to top and unknown fns stay conservative.
	if got, _ := opTransfer(spec.OpStep{Fn: "standardize"}, nil, in); got != top() {
		t.Errorf("standardize = %v, want top", got)
	}
	if !math.IsInf(top().hi, 1) {
		t.Error("top is not unbounded")
	}
}
