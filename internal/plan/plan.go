// Package plan statically verifies parsed MDF specs before they run: it
// proves a job degenerate, dead, or inadmissible from the plan alone,
// without executing a single operator. It is the plan-level sibling of
// internal/analysis (which vets the repo's Go source): the same battery
// shape — named rules, findings, allow escapes, stale-allow auditing — but
// the subject is a spec document instead of a syntax tree.
//
// The battery (see Rules):
//
//   - compile: the spec must compile to a valid executable graph;
//   - dupbranch: two branches of one explore whose resolved sub-graph
//     hashes collide compute the same result — one of them is wasted work;
//   - deadchoose: a choose that cannot discard anything (selector keeps
//     every branch, evaluator scores all branches identically) or cannot
//     keep anything (selector range disjoint from the evaluator's);
//   - degeniterate: single-round or over-long iterations, iterating an
//     idempotent operator, divergence thresholds that can never fire;
//   - emptyfilter: filter chains that provably drop every row, via interval
//     abstract interpretation from the source distribution down;
//   - memfeasible: partitions so large they provably bypass memory straight
//     to disk, and admission reservations that can never fit the tenant
//     quota — jobs that run with caching defeated or are never admitted.
//
// Findings are suppressed per-rule with the spec's top-level "allow" array
// (the JSON analogue of mdflint's //lint:allow comments — JSON has no
// comments, so the escape is a metadata field, excluded from the content
// hash). An allow entry that suppresses nothing is reported as stale so it
// is deleted before it hides a real defect.
//
// The rules are deliberately sound-but-incomplete: a finding is a proof of
// the defect (no false positives from the abstractions used), while a clean
// pass proves nothing. That is the right polarity for an admission gate —
// mdfserve rejects on findings before reserving quota, so a false positive
// would block a legitimate job.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

// Finding is one verifier diagnostic, anchored at a spec path such as
// "pipeline[1].explore.branch[2]" rather than a file position.
type Finding struct {
	// Path locates the defect in the spec document (HashReport path syntax).
	Path string `json:"path"`
	// Rule names the rule that fired (one of Rules()).
	Rule string `json:"rule"`
	// Msg explains the defect and, where possible, the values that prove it.
	Msg string `json:"msg"`
}

// String renders the finding in the `path: [rule] msg` shape mdflint uses
// for `file:line: [rule] msg`.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Path, f.Rule, f.Msg)
}

// StaleAllow reports an "allow" entry that suppressed nothing.
type StaleAllow struct {
	// Rule is the allow entry (a rule name, or an unknown string).
	Rule string `json:"rule"`
}

// String implements the stale-allow diagnostic line.
func (s StaleAllow) String() string {
	return fmt.Sprintf("allow: [%s] suppresses nothing; delete it", s.Rule)
}

// Config parameterises a verification run. The memory fields describe the
// environment the job would run in; they default to the engine's defaults
// and are overridden by the service with its own admission configuration.
type Config struct {
	// Rules selects a subset of Rules(); empty means all.
	Rules []string
	// MaxIterateRounds bounds IterateStep.Rounds (degeniterate).
	MaxIterateRounds int
	// Workers and MemPerWorker describe the cluster the job would occupy:
	// Workers × MemPerWorker is the admission reservation, MemPerWorker the
	// AMM budget a stage's working set must fit (memfeasible).
	Workers      int
	MemPerWorker sim.Bytes
	// TenantQuota is the per-tenant admission quota; 0 disables the
	// quota-feasibility checks.
	TenantQuota sim.Bytes
}

// DefaultConfig mirrors the engine defaults (mdfrun: 8 workers, 10 GB per
// worker) with quota checking off.
func DefaultConfig() Config {
	return Config{
		MaxIterateRounds: 10000,
		Workers:          8,
		MemPerWorker:     10 * 1000 * 1000 * 1000,
	}
}

// Rules lists the battery in execution order.
func Rules() []string {
	return []string{"compile", "dupbranch", "deadchoose", "degeniterate", "emptyfilter", "memfeasible"}
}

// Result is the outcome of one verification run.
type Result struct {
	// Findings are the surviving diagnostics, in rule-then-document order.
	Findings []Finding `json:"findings"`
	// StaleAllows lists allow entries that suppressed nothing.
	StaleAllows []StaleAllow `json:"staleAllows,omitempty"`
}

// Verify runs the configured rule battery over a parsed spec. The spec's
// "allow" list suppresses findings per rule; suppression is recorded so
// unused entries surface in Result.StaleAllows.
func Verify(s *spec.Spec, cfg Config) (*Result, error) {
	enabled, err := enabledRules(cfg.Rules)
	if err != nil {
		return nil, err
	}
	if cfg.MaxIterateRounds <= 0 {
		cfg.MaxIterateRounds = DefaultConfig().MaxIterateRounds
	}

	n := s.Normalized()
	var all []Finding
	for _, rule := range Rules() {
		if !enabled[rule] {
			continue
		}
		switch rule {
		case "compile":
			all = append(all, checkCompile(s)...)
		case "dupbranch":
			all = append(all, checkDupBranch(s)...)
		case "deadchoose":
			all = append(all, checkDeadChoose(n)...)
		case "degeniterate":
			all = append(all, checkDegenIterate(n, cfg)...)
		case "emptyfilter":
			all = append(all, checkEmptyFilter(n)...)
		case "memfeasible":
			all = append(all, checkMemFeasible(n, cfg)...)
		}
	}

	allowed := make(map[string]bool, len(s.Allow))
	for _, a := range s.Allow {
		allowed[a] = false // false = not yet used
	}
	res := &Result{}
	for _, f := range all {
		if _, ok := allowed[f.Rule]; ok {
			allowed[f.Rule] = true
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	stale := make([]string, 0, len(allowed))
	for rule, used := range allowed {
		if !used {
			stale = append(stale, rule)
		}
	}
	sort.Strings(stale)
	for _, rule := range stale {
		res.StaleAllows = append(res.StaleAllows, StaleAllow{Rule: rule})
	}
	return res, nil
}

// enabledRules resolves a rule subset, rejecting unknown names so a typo
// like "dupbrach" fails loudly instead of silently vetting nothing.
func enabledRules(subset []string) (map[string]bool, error) {
	known := make(map[string]bool, len(Rules()))
	for _, r := range Rules() {
		known[r] = true
	}
	if len(subset) == 0 {
		return known, nil
	}
	enabled := make(map[string]bool, len(subset))
	for _, r := range subset {
		if !known[r] {
			return nil, fmt.Errorf("plan: unknown rule %q (valid: %s)", r, strings.Join(Rules(), ", "))
		}
		enabled[r] = true
	}
	return enabled, nil
}

// fmtBytes renders simulated byte counts in the unit that keeps the number
// readable, for finding messages.
func fmtBytes(b sim.Bytes) string {
	switch {
	case b >= 1<<40 && b%(1<<40) == 0:
		return fmt.Sprintf("%dTiB", b>>40)
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1e9 && b%1e9 == 0:
		return fmt.Sprintf("%dGB", b/1e9)
	case b >= 1e6 && b%1e6 == 0:
		return fmt.Sprintf("%dMB", b/1e6)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}
