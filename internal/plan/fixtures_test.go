package plan

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metadataflow/internal/spec"
)

var update = flag.Bool("update", false, "rewrite the fixture .want files from current verifier output")

// fixtureConfig returns the verification config for one fixture. Quota
// fixtures (name contains "quota") run with a 64 GB tenant quota — below
// the default shape's 80 GB admission reservation, so the never-admitted
// proof fires — since the quota checks are disabled by default.
func fixtureConfig(name string) Config {
	cfg := DefaultConfig()
	if strings.Contains(name, "quota") {
		cfg.TenantQuota = 64 * 1000 * 1000 * 1000
	}
	return cfg
}

// TestFixtures runs the verifier over every seeded defect (and clean)
// fixture and compares the findings line-for-line against the .want file.
// Run with -update to regenerate the .want files after a deliberate change
// to a rule or a message.
func TestFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures")
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := spec.Parse(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := Verify(s, fixtureConfig(name))
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if len(res.StaleAllows) != 0 {
				t.Errorf("fixture has stale allows: %v", res.StaleAllows)
			}
			var lines []string
			for _, f := range res.Findings {
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}
			wantPath := strings.TrimSuffix(path, ".json") + ".want"
			if *update {
				if got == "" {
					if err := os.Remove(wantPath); err != nil && !os.IsNotExist(err) {
						t.Fatal(err)
					}
					return
				}
				if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantData, err := os.ReadFile(wantPath)
			if err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			if want := string(wantData); got != want {
				t.Errorf("findings mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
