package faults

import (
	"encoding/json"
	"fmt"

	"metadataflow/internal/stats"
)

// This file extends the fault model across the process boundary: faults
// against the service's durable state rather than the running cluster.
// Two layers exist. CkptFlip lives inside a job's Plan and corrupts
// durable checkpoint-store entries at load time, exercising the
// corruption-is-a-miss fallback to lineage re-derivation inside one run.
// Durability describes damage applied to a service state directory
// between process incarnations — torn journal tails, journal and
// checkpoint bit-flips — which the crash-restart oracle (internal/chaos)
// applies when it reconstructs the state that survived a kill at a
// journal-record boundary.

// CkptFlip corrupts the checkpoint-store entry touched by the Load-th
// durable-checkpoint read of the run (0-based, counted across the whole
// run in deterministic verification order): one bit of the stored file
// is flipped before the read, so verification fails and the partition is
// re-derived by lineage. Because load ordinals are deterministic, the
// same flip fires at the same point in a golden run and its post-restart
// re-execution.
type CkptFlip struct {
	// Load is the 0-based store-read ordinal to corrupt.
	Load int `json:"load"`
	// Bit is the bit to flip, taken modulo the entry's payload width.
	Bit int `json:"bit"`
}

// NextCkptLoad advances the durable-checkpoint read counter and reports
// whether this read must be corrupted first: the bit to flip and true
// when a CkptFlip targets this ordinal. Each flip fires at most once.
func (in *Injector) NextCkptLoad() (bit int, flip bool) {
	ord := in.ckptLoads
	in.ckptLoads++
	for i, f := range in.plan.CkptFlips {
		if in.flipUsed[i] || f.Load != ord {
			continue
		}
		in.flipUsed[i] = true
		in.record(Event{Kind: "ckptflip", Node: -1, Detail: fmt.Sprintf("load=%d bit=%d", f.Load, f.Bit)})
		return f.Bit, true
	}
	return 0, false
}

// BitFlip flips one bit of the Index-th object of its target set — a
// journal record or a checkpoint-store entry, counted in that store's
// deterministic order.
type BitFlip struct {
	// Index is the 0-based object index (journal record number, or
	// checkpoint entry position in sorted-key order).
	Index int `json:"index"`
	// Bit is the bit to flip, taken modulo the object's payload width.
	Bit int `json:"bit"`
}

// Durability is the damage a crash leaves in a service state directory.
// The crash point itself — which journal-record boundary the process
// died at — is enumerated exhaustively by the oracle, so it is not part
// of this struct; Durability describes what the surviving bytes look
// like at that point.
type Durability struct {
	// TornTailBytes appends this many bytes of the next record's encoded
	// frame after the cut, modelling a write torn mid-record. 0 is a
	// clean cut at the boundary; the count is clamped to the frame size.
	TornTailBytes int `json:"tornTailBytes,omitempty"`
	// JournalFlips corrupt surviving journal records. Replay must stop
	// at the first corrupt record with a typed error, and recovery must
	// proceed from the intact prefix. Indexes at or past the cut are
	// ignored by the oracle (the record did not survive).
	JournalFlips []BitFlip `json:"journalFlips,omitempty"`
	// CkptFileFlips corrupt durable checkpoint-store entries. Loads must
	// miss and re-derive; no job may fail because of them.
	CkptFileFlips []BitFlip `json:"ckptFileFlips,omitempty"`
}

// ParseDurability decodes and validates a JSON durability fault set.
func ParseDurability(data []byte) (*Durability, error) {
	var d Durability
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("faults: parse durability: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate reports structural errors of the durability fault set.
func (d *Durability) Validate() error {
	if d.TornTailBytes < 0 {
		return fmt.Errorf("faults: negative torn tail %d", d.TornTailBytes)
	}
	for i, f := range append(append([]BitFlip(nil), d.JournalFlips...), d.CkptFileFlips...) {
		if f.Index < 0 || f.Bit < 0 {
			return fmt.Errorf("faults: durability flip %d: negative index %d or bit %d", i, f.Index, f.Bit)
		}
	}
	return nil
}

// NumEvents returns the number of durability faults scheduled.
func (d *Durability) NumEvents() int {
	n := len(d.JournalFlips) + len(d.CkptFileFlips)
	if d.TornTailBytes > 0 {
		n++
	}
	return n
}

// GenDurability derives a concrete durability fault set from the seed:
// a torn tail of 1..maxTorn bytes, one journal bit-flip, and one
// checkpoint bit-flip, with indexes drawn below the given object counts.
// Zero counts drop the corresponding fault. The draw order is fixed so
// one seed always yields one fault set.
func GenDurability(seed int64, maxTorn, journalRecords, ckptEntries int) *Durability {
	rng := stats.NewRNG(seed)
	d := &Durability{}
	if maxTorn > 0 {
		d.TornTailBytes = 1 + rng.Intn(maxTorn)
	}
	if journalRecords > 0 {
		d.JournalFlips = []BitFlip{{Index: rng.Intn(journalRecords), Bit: rng.Intn(512)}}
	}
	if ckptEntries > 0 {
		d.CkptFileFlips = []BitFlip{{Index: rng.Intn(ckptEntries), Bit: rng.Intn(512)}}
	}
	return d
}
