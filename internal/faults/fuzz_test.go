package faults

import (
	"encoding/json"
	"testing"
)

// FuzzParse ensures the fault-plan parser never panics on arbitrary input,
// and that any plan it accepts survives a marshal/parse round trip: a
// validated plan must serialise back into a plan the parser accepts again,
// so fault schedules can be stored and replayed byte-for-byte.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":7,"retry":{"maxAttempts":3,"backoffSec":0.5}}`))
	f.Add([]byte(`{"crashes":[{"node":1,"afterStages":2,"permanent":true}],` +
		`"slowdowns":[{"node":0,"factor":2,"from":1,"to":4}]}`))
	f.Add([]byte(`{"panics":[{"op":"eval","target":"transform","times":2}],` +
		`"diskFaults":[{"node":2,"factor":4,"from":0}]}`))
	f.Add([]byte(`{"crashes":[{"node":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal of accepted plan failed: %v", err)
		}
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of marshalled plan failed: %v\nplan: %s", err, out)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("round-tripped plan invalid: %v", err)
		}
	})
}
