package faults

import (
	"errors"
	"testing"
)

func TestParseAndValidate(t *testing.T) {
	p, err := Parse([]byte(`{
		"retry": {"maxAttempts": 2, "backoffSec": 0.5},
		"crashes": [{"node": 1, "afterStages": 3}, {"node": 2, "at": 10.5, "permanent": true}],
		"slowdowns": [{"node": 0, "from": 1, "to": 5, "factor": 4}],
		"diskFaults": [{"node": 3, "factor": 2}],
		"panics": [{"op": "filter", "target": "transform", "times": 1}]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Crashes) != 2 || !p.Crashes[1].Permanent || p.Crashes[1].At != 10.5 {
		t.Fatalf("crashes decoded wrong: %+v", p.Crashes)
	}
	if err := p.ValidateFor(4); err != nil {
		t.Fatalf("ValidateFor(4): %v", err)
	}
	if err := p.ValidateFor(2); err == nil {
		t.Fatal("node 3 must not fit a 2-worker cluster")
	}
}

func TestParseRejectsBadPlans(t *testing.T) {
	cases := []string{
		`{"crashes": [{"node": -1}]}`,
		`{"slowdowns": [{"node": 0, "factor": 0}]}`,
		`{"slowdowns": [{"node": 0, "from": 5, "to": 3, "factor": 2}]}`,
		`{"panics": [{"times": 0}]}`,
		`{"panics": [{"times": 1, "target": "nonsense"}]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d: bad plan accepted: %s", i, c)
		}
	}
}

func TestValidateForRejectsTotalLoss(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Node: 0, Permanent: true}, {Node: 1, Permanent: true}}}
	if err := p.ValidateFor(2); err == nil {
		t.Fatal("a plan permanently killing every worker must be rejected")
	}
	if err := p.ValidateFor(3); err != nil {
		t.Fatalf("one survivor left, plan should be valid: %v", err)
	}
}

func TestRetryDefaultsAndBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 3 || p.BackoffSec != 1 {
		t.Fatalf("defaults = %+v, want {3, 1}", p)
	}
	if p.Backoff(1) != 1 || p.Backoff(2) != 2 || p.Backoff(3) != 4 {
		t.Fatalf("backoff sequence = %v %v %v, want 1 2 4",
			p.Backoff(1), p.Backoff(2), p.Backoff(3))
	}
}

func TestFromLegacy(t *testing.T) {
	if FromLegacy(0, 0) != nil || FromLegacy(-1, 2) != nil {
		t.Fatal("no-failure sentinels must map to nil")
	}
	p := FromLegacy(3, 1)
	if p == nil || len(p.Crashes) != 1 {
		t.Fatalf("legacy mapping = %+v, want one crash", p)
	}
	if c := p.Crashes[0]; c.Node != 1 || c.AfterStages != 3 || c.Permanent {
		t.Fatalf("legacy crash = %+v", c)
	}
}

func TestGenerateDeterministicAndBounded(t *testing.T) {
	cfg := GenConfig{Seed: 7, Workers: 4, Crashes: 5, Permanent: 2, EvalPanics: 1, MaxStage: 10}
	a, b := MustGenerate(cfg), MustGenerate(cfg)
	if len(a.Crashes) != 5 || len(a.Panics) != 1 {
		t.Fatalf("generated plan shape wrong: %+v", a)
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatal("same seed must generate the same plan")
		}
		if c := a.Crashes[i]; c.Node < 0 || c.Node >= 4 || c.AfterStages < 1 || c.AfterStages > 10 {
			t.Fatalf("crash out of bounds: %+v", c)
		}
	}
	if err := a.ValidateFor(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	perm := map[int]bool{}
	for _, c := range a.Crashes {
		if c.Permanent {
			perm[c.Node] = true
		}
	}
	if len(perm) != 2 {
		t.Fatalf("permanent crashes must hit distinct nodes, got %v", perm)
	}
}

func TestGenerateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name  string
		cfg   GenConfig
		field string
	}{
		{"no workers", GenConfig{Workers: 0}, "Workers"},
		{"negative workers", GenConfig{Workers: -2}, "Workers"},
		{"negative crashes", GenConfig{Workers: 4, Crashes: -1}, "Crashes"},
		{"negative permanent", GenConfig{Workers: 4, Permanent: -3}, "Permanent"},
		{"negative correlated", GenConfig{Workers: 4, Correlated: -1}, "Correlated"},
		{"negative repeats", GenConfig{Workers: 4, Repeats: -1}, "Repeats"},
		{"negative eval panics", GenConfig{Workers: 4, EvalPanics: -1}, "EvalPanics"},
		{"negative transform panics", GenConfig{Workers: 4, TransformPanics: -1}, "TransformPanics"},
		{"negative panic times", GenConfig{Workers: 4, PanicTimes: -1}, "PanicTimes"},
		{"negative slowdowns", GenConfig{Workers: 4, Slowdowns: -2}, "Slowdowns"},
		{"negative disk faults", GenConfig{Workers: 4, DiskFaults: -2}, "DiskFaults"},
		{"negative max stage", GenConfig{Workers: 4, MaxStage: -5}, "MaxStage"},
		{"negative factor", GenConfig{Workers: 4, MaxFactor: -2}, "MaxFactor"},
		{"non-degrading factor", GenConfig{Workers: 4, MaxFactor: 0.5}, "MaxFactor"},
		{"factor exactly one", GenConfig{Workers: 4, MaxFactor: 1}, "MaxFactor"},
		{"zero-length window", GenConfig{Workers: 4, WindowSec: -1}, "WindowSec"},
	}
	for _, c := range cases {
		_, err := Generate(c.cfg)
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: err = %v, want *ConfigError", c.name, err)
			continue
		}
		if cerr.Field != c.field {
			t.Errorf("%s: flagged field %q, want %q", c.name, cerr.Field, c.field)
		}
	}
}

func TestGenerateClampsExcessPermanent(t *testing.T) {
	// Permanent crashes exceeding the cluster size are clamped to Workers-1
	// so the generated plan always leaves a survivor.
	p := MustGenerate(GenConfig{Seed: 1, Workers: 3, Crashes: 6, Permanent: 6})
	perm := map[int]bool{}
	for _, c := range p.Crashes {
		if c.Permanent {
			perm[c.Node] = true
		}
	}
	if len(perm) != 2 {
		t.Fatalf("permanent deaths = %d, want 2 (Workers-1)", len(perm))
	}
	if err := p.ValidateFor(3); err != nil {
		t.Fatalf("clamped plan invalid: %v", err)
	}
}

func TestGenerateCorrelatedAndRepeatedCrashes(t *testing.T) {
	cfg := GenConfig{Seed: 11, Workers: 4, Crashes: 2, Correlated: 2, Repeats: 2, MaxStage: 6}
	p := MustGenerate(cfg)
	if got := len(p.Crashes); got != 6 {
		t.Fatalf("crashes = %d, want 2 base + 2 correlated + 2 repeats", got)
	}
	base := p.Crashes[:2]
	sameTrigger := func(a, b Crash) bool { return a.AfterStages == b.AfterStages && a.At == b.At }
	for i, c := range p.Crashes[2:4] {
		matched := false
		for _, b := range base {
			if sameTrigger(b, c) && b.Node != c.Node {
				matched = true
			}
		}
		if !matched {
			t.Errorf("correlated crash %d = %+v does not share a trigger with a base crash on another node", i, c)
		}
	}
	for i, c := range p.Crashes[4:6] {
		matched := false
		for _, b := range p.Crashes[:4] {
			if b.Node == c.Node && c.AfterStages == b.AfterStages+1 && !b.Permanent {
				matched = true
			}
		}
		if !matched {
			t.Errorf("repeat crash %d = %+v does not re-hit a transient crash one stage later", i, c)
		}
	}
	if err := p.ValidateFor(4); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

func TestGenerateWindowsAndPanics(t *testing.T) {
	cfg := GenConfig{
		Seed: 3, Workers: 4, Slowdowns: 3, DiskFaults: 2,
		TransformPanics: 2, EvalPanics: 1, PanicTimes: 2,
		MaxFactor: 5, WindowSec: 30,
	}
	p := MustGenerate(cfg)
	if len(p.Slowdowns) != 3 || len(p.DiskFaults) != 2 {
		t.Fatalf("windows = %d/%d, want 3/2", len(p.Slowdowns), len(p.DiskFaults))
	}
	for _, w := range append(append([]Window{}, p.Slowdowns...), p.DiskFaults...) {
		if w.Factor <= 1 || w.Factor > 5 {
			t.Errorf("window factor %g outside (1, 5]", w.Factor)
		}
		if w.To <= w.From {
			t.Errorf("zero-length window generated: %+v", w)
		}
		if w.From < 0 || w.To > 60 {
			t.Errorf("window [%g, %g) outside expected bounds", w.From, w.To)
		}
	}
	if len(p.Panics) != 3 {
		t.Fatalf("panics = %d, want 3", len(p.Panics))
	}
	evals, transforms := 0, 0
	for _, ps := range p.Panics {
		if ps.Times != 2 {
			t.Errorf("panic times = %d, want 2", ps.Times)
		}
		switch ps.Target {
		case TargetEval:
			evals++
		case TargetTransform:
			transforms++
		}
	}
	if evals != 1 || transforms != 2 {
		t.Fatalf("panic targets = %d eval / %d transform, want 1/2", evals, transforms)
	}
	if p.NumEvents() != 3+2+3 {
		t.Fatalf("NumEvents = %d, want 8", p.NumEvents())
	}
}

func TestInjectorCrashFiresOnce(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Node: 0, AfterStages: 2}, {Node: 1, At: 100}}}
	in := NewInjector(p)
	if due := in.DueCrashes(1, 0); len(due) != 0 {
		t.Fatalf("nothing due yet, got %v", due)
	}
	due := in.DueCrashes(2, 0)
	if len(due) != 1 || due[0].Node != 0 {
		t.Fatalf("due = %v, want crash of node 0", due)
	}
	if due := in.DueCrashes(3, 50); len(due) != 0 {
		t.Fatalf("fired crash must not repeat, got %v", due)
	}
	due = in.DueCrashes(3, 100)
	if len(due) != 1 || due[0].Node != 1 {
		t.Fatalf("due = %v, want time-triggered crash of node 1", due)
	}
	if in.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", in.Injected())
	}
}

func TestInjectorImmediateCrash(t *testing.T) {
	// {node: 0} with zero triggers fires before the first stage — the case
	// the legacy FailAfterStage sentinel could not express.
	in := NewInjector(&Plan{Crashes: []Crash{{Node: 0}}})
	if due := in.DueCrashes(0, 0); len(due) != 1 {
		t.Fatalf("due = %v, want immediate crash", due)
	}
}

func TestInjectorTransientFactors(t *testing.T) {
	p := &Plan{
		Slowdowns:  []Window{{Node: 1, From: 10, To: 20, Factor: 3}},
		DiskFaults: []Window{{Node: 1, From: 0, Factor: 2}}, // open window
	}
	in := NewInjector(p)
	slow, disk := in.TransientFactors(1, 5)
	if slow != 1 || disk != 2 {
		t.Fatalf("factors at t=5 = (%v, %v), want (1, 2)", slow, disk)
	}
	slow, disk = in.TransientFactors(1, 10)
	if slow != 3 || disk != 2 {
		t.Fatalf("factors at t=10 = (%v, %v), want (3, 2)", slow, disk)
	}
	if slow, _ = in.TransientFactors(1, 20); slow != 1 {
		t.Fatalf("window [10,20) must be closed at t=20, slow = %v", slow)
	}
	if slow, _ = in.TransientFactors(0, 15); slow != 1 {
		t.Fatal("other nodes must be unaffected")
	}
	if in.Injected() != 2 {
		t.Fatalf("injected = %d, want 2 window activations counted once", in.Injected())
	}
}

func TestInjectorTakePanic(t *testing.T) {
	p := &Plan{Panics: []PanicSpec{
		{Op: "score", Times: 1}, // empty target defaults to eval
		{Target: TargetTransform, Times: 2},
	}}
	in := NewInjector(p)
	if in.TakePanic("other", TargetEval) {
		t.Fatal("op filter must not match a different operator")
	}
	if !in.TakePanic("score", TargetEval) {
		t.Fatal("matching eval panic must fire")
	}
	if in.TakePanic("score", TargetEval) {
		t.Fatal("budget of 1 must be exhausted")
	}
	if !in.TakePanic("any", TargetTransform) || !in.TakePanic("any", TargetTransform) {
		t.Fatal("wildcard transform spec must fire twice")
	}
	if in.TakePanic("any", TargetTransform) {
		t.Fatal("transform budget exhausted")
	}
	if in.Injected() != 3 {
		t.Fatalf("injected = %d, want 3", in.Injected())
	}
}

// TestRetryPolicyTable pins the effective policy produced by WithDefaults
// and the exact exponential backoff schedule for each configuration. The
// service layer's retry/quarantine logic depends on these values: a spec
// that panics on every attempt is retried MaxAttempts-1 times, accruing
// the cumulative backoff, before its tenant accrues a quarantine strike.
func TestRetryPolicyTable(t *testing.T) {
	cases := []struct {
		name     string
		in       RetryPolicy
		want     RetryPolicy
		schedule []float64 // Backoff(1..n)
		total    float64   // cumulative backoff across all failed attempts
	}{
		{
			name:     "zero value fills both defaults",
			in:       RetryPolicy{},
			want:     RetryPolicy{MaxAttempts: 3, BackoffSec: 1},
			schedule: []float64{1, 2, 4},
			total:    7,
		},
		{
			name:     "negative fields treated as unset",
			in:       RetryPolicy{MaxAttempts: -2, BackoffSec: -0.5},
			want:     RetryPolicy{MaxAttempts: 3, BackoffSec: 1},
			schedule: []float64{1, 2, 4},
			total:    7,
		},
		{
			name:     "attempts kept, backoff filled",
			in:       RetryPolicy{MaxAttempts: 5},
			want:     RetryPolicy{MaxAttempts: 5, BackoffSec: 1},
			schedule: []float64{1, 2, 4, 8, 16},
			total:    31,
		},
		{
			name:     "backoff kept, attempts filled",
			in:       RetryPolicy{BackoffSec: 0.25},
			want:     RetryPolicy{MaxAttempts: 3, BackoffSec: 0.25},
			schedule: []float64{0.25, 0.5, 1},
			total:    1.75,
		},
		{
			name:     "fully specified passes through",
			in:       RetryPolicy{MaxAttempts: 2, BackoffSec: 3},
			want:     RetryPolicy{MaxAttempts: 2, BackoffSec: 3},
			schedule: []float64{3, 6},
			total:    9,
		},
		{
			name:     "single attempt never backs off",
			in:       RetryPolicy{MaxAttempts: 1, BackoffSec: 10},
			want:     RetryPolicy{MaxAttempts: 1, BackoffSec: 10},
			schedule: []float64{10},
			total:    10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.WithDefaults()
			if got != tc.want {
				t.Fatalf("WithDefaults() = %+v, want %+v", got, tc.want)
			}
			var total float64
			for i, want := range tc.schedule {
				if b := got.Backoff(i + 1); b != want {
					t.Errorf("Backoff(%d) = %v, want %v", i+1, b, want)
				}
				total += got.Backoff(i + 1)
			}
			if total != tc.total {
				t.Errorf("cumulative backoff = %v, want %v", total, tc.total)
			}
		})
	}
}

// TestRetryPolicyServiceBudget pins the numbers the service quarantine test
// observes: the default policy grants 3 attempts, so a spec that always
// panics is retried twice and accrues 1+2 = 3 virtual seconds of backoff
// before the job fails and the tenant takes a strike.
func TestRetryPolicyServiceBudget(t *testing.T) {
	p := RetryPolicy{}.WithDefaults()
	retries := p.MaxAttempts - 1
	if retries != 2 {
		t.Fatalf("default retries = %d, want 2", retries)
	}
	var budget float64
	for a := 1; a <= retries; a++ {
		budget += p.Backoff(a)
	}
	if budget != 3 {
		t.Fatalf("default retry backoff budget = %v, want 3", budget)
	}
}
