// Package faults defines the deterministic fault model of the resilient
// execution layer: a seed-driven fault plan describing node crashes
// (transient process restarts and permanent machine losses), transient
// slowdown windows, disk-bandwidth degradation, and operator panics, plus
// the retry/backoff policy applied to misbehaving user code.
//
// A Plan is pure data (JSON-serialisable for the mdfrun -faults flag); the
// engine consumes it through an Injector, which tracks which events have
// already fired so that repeated and correlated failures are injected
// exactly once each, at deterministic points of the run. All fault timing
// is expressed in the cluster's virtual time and in executed-stage counts,
// never wall clock, so a faulty run is exactly reproducible.
package faults

import (
	"encoding/json"
	"fmt"

	"metadataflow/internal/stats"
)

// RetryPolicy bounds the re-execution of panicking operator functions: an
// invocation is retried up to MaxAttempts times, with an exponential
// virtual-time backoff of BackoffSec·2^(attempt-1) charged between attempts.
type RetryPolicy struct {
	// MaxAttempts is the total number of invocation attempts (>= 1);
	// 0 selects the default of 3.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// BackoffSec is the base backoff in virtual seconds; 0 selects the
	// default of 1.
	BackoffSec float64 `json:"backoffSec,omitempty"`
}

// DefaultRetry is the retry policy applied when a plan does not set one
// (and to fault-free runs, which still isolate genuine operator panics).
func DefaultRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 3, BackoffSec: 1} }

// withDefaults fills zero fields with the default policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BackoffSec <= 0 {
		p.BackoffSec = d.BackoffSec
	}
	return p
}

// Backoff returns the virtual-time penalty charged after the given failed
// attempt (1-based): BackoffSec·2^(attempt-1).
func (p RetryPolicy) Backoff(attempt int) float64 {
	b := p.BackoffSec
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}

// Crash schedules a node failure. It fires at the first scheduling boundary
// where at least AfterStages stages have executed AND virtual time has
// reached At; both default to zero, so {node: 0} crashes node 0 before the
// first stage — the "fail node 0 after stage 0" case the legacy knobs could
// not express. A non-permanent crash models a process restart: the node
// loses its memory-resident partitions but keeps serving; partitions with a
// durable checkpoint are re-read, the rest are re-derived by lineage. A
// permanent crash removes the node from the live set; its partitions are
// rebalanced across the survivors.
type Crash struct {
	// Node is the worker index to fail.
	Node int `json:"node"`
	// AfterStages is the number of executed stages required before firing.
	AfterStages int `json:"afterStages,omitempty"`
	// At is the virtual time required before firing.
	At float64 `json:"at,omitempty"`
	// Permanent removes the node from the live set for the rest of the run.
	Permanent bool `json:"permanent,omitempty"`
}

// Window is a transient degradation interval [From, To) in virtual time on
// one node. To <= 0 means the window never closes. Factor multiplies the
// affected durations: > 1 degrades, (0, 1) accelerates; it composes with a
// user-set straggler SlowFactor.
type Window struct {
	// Node is the affected worker index.
	Node int `json:"node"`
	// From and To bound the window in virtual seconds; To <= 0 is open.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
	// Factor is the duration multiplier while the window is active.
	Factor float64 `json:"factor"`
}

// active reports whether the window covers virtual time now.
func (w Window) active(now float64) bool {
	return now >= w.From && (w.To <= 0 || now < w.To)
}

// PanicTarget selects which operator invocations a PanicSpec fails.
type PanicTarget string

const (
	// TargetEval fails choose evaluator invocations (the default).
	TargetEval PanicTarget = "eval"
	// TargetTransform fails transform/source operator invocations.
	TargetTransform PanicTarget = "transform"
)

// PanicSpec makes matching operator invocations panic. Each injected panic
// consumes one of Times; once exhausted the operator behaves normally, so a
// spec with Times below the retry budget exercises recovery without
// changing any choose decision, while Times at or above it forces the
// branch into quarantine.
type PanicSpec struct {
	// Op matches the operator name exactly; empty matches every operator
	// of the targeted kind.
	Op string `json:"op,omitempty"`
	// Target selects evaluator or transform invocations; empty means eval.
	Target PanicTarget `json:"target,omitempty"`
	// Times is the number of invocations to fail (>= 1).
	Times int `json:"times"`
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Seed labels generated plans; it does not affect replay (a plan is
	// already concrete) but records how it was derived.
	Seed int64 `json:"seed,omitempty"`
	// Retry bounds panic recovery; zero fields take defaults.
	Retry RetryPolicy `json:"retry,omitempty"`
	// Crashes are the node failures to inject, in any order.
	Crashes []Crash `json:"crashes,omitempty"`
	// Slowdowns scale all durations of a node within a window.
	Slowdowns []Window `json:"slowdowns,omitempty"`
	// DiskFaults scale only disk-operation durations within a window,
	// modelling disk-bandwidth degradation.
	DiskFaults []Window `json:"diskFaults,omitempty"`
	// Panics fail matching operator invocations.
	Panics []PanicSpec `json:"panics,omitempty"`
}

// Parse decodes a JSON plan and validates it.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate reports structural errors of the plan.
func (p *Plan) Validate() error {
	if p.Retry.MaxAttempts < 0 || p.Retry.BackoffSec < 0 {
		return fmt.Errorf("faults: negative retry policy")
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash %d: negative node %d", i, c.Node)
		}
		if c.AfterStages < 0 || c.At < 0 {
			return fmt.Errorf("faults: crash %d: negative trigger", i)
		}
	}
	for i, w := range append(append([]Window(nil), p.Slowdowns...), p.DiskFaults...) {
		if w.Node < 0 {
			return fmt.Errorf("faults: window %d: negative node %d", i, w.Node)
		}
		if w.Factor <= 0 {
			return fmt.Errorf("faults: window %d: non-positive factor %g", i, w.Factor)
		}
		if w.From < 0 || (w.To > 0 && w.To <= w.From) {
			return fmt.Errorf("faults: window %d: bad interval [%g, %g)", i, w.From, w.To)
		}
	}
	for i, s := range p.Panics {
		if s.Times < 1 {
			return fmt.Errorf("faults: panic spec %d: times must be >= 1", i)
		}
		switch s.Target {
		case "", TargetEval, TargetTransform:
		default:
			return fmt.Errorf("faults: panic spec %d: unknown target %q", i, s.Target)
		}
	}
	return nil
}

// ValidateFor additionally checks the plan against a cluster size: node
// indices must exist and permanent crashes must leave at least one live
// worker.
func (p *Plan) ValidateFor(workers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	check := func(node int, what string) error {
		if node >= workers {
			return fmt.Errorf("faults: %s targets node %d of a %d-worker cluster", what, node, workers)
		}
		return nil
	}
	permanentlyDead := map[int]bool{}
	for _, c := range p.Crashes {
		if err := check(c.Node, "crash"); err != nil {
			return err
		}
		if c.Permanent {
			permanentlyDead[c.Node] = true
		}
	}
	if len(permanentlyDead) >= workers {
		return fmt.Errorf("faults: plan permanently kills all %d workers", workers)
	}
	for _, w := range p.Slowdowns {
		if err := check(w.Node, "slowdown"); err != nil {
			return err
		}
	}
	for _, w := range p.DiskFaults {
		if err := check(w.Node, "disk fault"); err != nil {
			return err
		}
	}
	return nil
}

// FromLegacy maps the deprecated engine.Options fields (FailAfterStage,
// FailNode) onto an equivalent single-crash plan, or nil when the legacy
// values encode "no failure" (FailAfterStage <= 0, the only sentinel the
// old fields could express).
func FromLegacy(failAfterStage, failNode int) *Plan {
	if failAfterStage <= 0 || failNode < 0 {
		return nil
	}
	return &Plan{Crashes: []Crash{{Node: failNode, AfterStages: failAfterStage}}}
}

// GenConfig parameterises Generate.
type GenConfig struct {
	// Seed drives every random draw.
	Seed int64
	// Workers is the cluster size the plan targets.
	Workers int
	// Crashes is the number of node crashes to schedule.
	Crashes int
	// Permanent is how many of the crashes are permanent machine losses
	// (capped at Workers-1 so the cluster survives).
	Permanent int
	// EvalPanics is the number of single-shot evaluator panics to inject;
	// each is retried once, so choose decisions are unaffected as long as
	// the retry policy allows a second attempt.
	EvalPanics int
	// MaxStage bounds the crash triggers: each crash fires after a stage
	// count drawn uniformly from [1, MaxStage]. 0 selects 20.
	MaxStage int
}

// Generate derives a concrete fault plan from the seed: crash nodes and
// trigger points are drawn from a deterministic RNG, so sweeping a fault
// rate reduces to increasing GenConfig.Crashes while holding the seed.
func Generate(cfg GenConfig) *Plan {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxStage < 1 {
		cfg.MaxStage = 20
	}
	if cfg.Permanent > cfg.Workers-1 {
		cfg.Permanent = cfg.Workers - 1
	}
	rng := stats.NewRNG(cfg.Seed)
	p := &Plan{Seed: cfg.Seed}
	permanentlyDead := map[int]bool{}
	for i := 0; i < cfg.Crashes; i++ {
		node := rng.Intn(cfg.Workers)
		permanent := i < cfg.Permanent
		if permanent {
			// Permanent losses pick distinct nodes so the live set
			// shrinks by exactly Permanent workers.
			for permanentlyDead[node] {
				node = (node + 1) % cfg.Workers
			}
			permanentlyDead[node] = true
		}
		p.Crashes = append(p.Crashes, Crash{
			Node:        node,
			AfterStages: 1 + rng.Intn(cfg.MaxStage),
			Permanent:   permanent,
		})
	}
	for i := 0; i < cfg.EvalPanics; i++ {
		p.Panics = append(p.Panics, PanicSpec{Target: TargetEval, Times: 1})
	}
	return p
}

// Event records one delivered fault for telemetry: what was injected,
// where, and any context. Events accumulate in injection order, which the
// engine's deterministic run loop makes reproducible.
type Event struct {
	// Kind is "crash", "slowdown", "diskfault" or "panic".
	Kind string
	// Node is the afflicted worker (-1 for panics, which target operators).
	Node int
	// Op is the operator a panic was injected into; empty otherwise.
	Op string
	// Detail is free-form context (permanence, window factor, target).
	Detail string
}

// Injector is the per-run consumer of a Plan: it tracks which crashes have
// fired, which degradation windows have activated, and how many injected
// panics each spec has left, so every fault is delivered exactly once.
type Injector struct {
	plan       *Plan
	retry      RetryPolicy
	crashFired []bool
	slowSeen   []bool
	diskSeen   []bool
	panicLeft  []int
	injected   int
	history    []Event
}

// NewInjector prepares an injector for one run of the plan.
func NewInjector(p *Plan) *Injector {
	in := &Injector{
		plan:       p,
		retry:      p.Retry.withDefaults(),
		crashFired: make([]bool, len(p.Crashes)),
		slowSeen:   make([]bool, len(p.Slowdowns)),
		diskSeen:   make([]bool, len(p.DiskFaults)),
		panicLeft:  make([]int, len(p.Panics)),
	}
	for i, s := range p.Panics {
		in.panicLeft[i] = s.Times
	}
	return in
}

// Retry returns the plan's retry policy with defaults applied.
func (in *Injector) Retry() RetryPolicy { return in.retry }

// Injected returns the number of fault events delivered so far: crashes
// fired, windows activated, and panics injected.
func (in *Injector) Injected() int { return in.injected }

// History returns the delivered fault events in injection order.
func (in *Injector) History() []Event { return append([]Event(nil), in.history...) }

// record appends one delivered fault to the history alongside the counter.
func (in *Injector) record(ev Event) {
	in.injected++
	in.history = append(in.history, ev)
}

// DueCrashes returns the crashes whose triggers have been reached, marking
// them fired.
func (in *Injector) DueCrashes(stagesExecuted int, now float64) []Crash {
	var due []Crash
	for i, c := range in.plan.Crashes {
		if in.crashFired[i] {
			continue
		}
		if stagesExecuted >= c.AfterStages && now >= c.At {
			in.crashFired[i] = true
			detail := "transient"
			if c.Permanent {
				detail = "permanent"
			}
			in.record(Event{Kind: "crash", Node: c.Node, Detail: detail})
			due = append(due, c)
		}
	}
	return due
}

// TransientFactors returns the combined slowdown and disk-degradation
// multipliers active on the node at virtual time now (1 when none).
func (in *Injector) TransientFactors(node int, now float64) (slow, disk float64) {
	slow, disk = 1, 1
	for i, w := range in.plan.Slowdowns {
		if w.Node != node || !w.active(now) {
			continue
		}
		slow *= w.Factor
		if !in.slowSeen[i] {
			in.slowSeen[i] = true
			in.record(Event{Kind: "slowdown", Node: w.Node, Detail: fmt.Sprintf("factor=%g", w.Factor)})
		}
	}
	for i, w := range in.plan.DiskFaults {
		if w.Node != node || !w.active(now) {
			continue
		}
		disk *= w.Factor
		if !in.diskSeen[i] {
			in.diskSeen[i] = true
			in.record(Event{Kind: "diskfault", Node: w.Node, Detail: fmt.Sprintf("factor=%g", w.Factor)})
		}
	}
	return slow, disk
}

// TakePanic reports whether the next invocation of the named operator must
// panic, consuming one injection from the first matching spec with budget.
func (in *Injector) TakePanic(op string, target PanicTarget) bool {
	for i, s := range in.plan.Panics {
		st := s.Target
		if st == "" {
			st = TargetEval
		}
		if st != target || in.panicLeft[i] <= 0 {
			continue
		}
		if s.Op != "" && s.Op != op {
			continue
		}
		in.panicLeft[i]--
		in.record(Event{Kind: "panic", Node: -1, Op: op, Detail: string(target)})
		return true
	}
	return false
}
