// Package faults defines the deterministic fault model of the resilient
// execution layer: a seed-driven fault plan describing node crashes
// (transient process restarts and permanent machine losses), transient
// slowdown windows, disk-bandwidth degradation, and operator panics, plus
// the retry/backoff policy applied to misbehaving user code.
//
// A Plan is pure data (JSON-serialisable for the mdfrun -faults flag); the
// engine consumes it through an Injector, which tracks which events have
// already fired so that repeated and correlated failures are injected
// exactly once each, at deterministic points of the run. All fault timing
// is expressed in the cluster's virtual time and in executed-stage counts,
// never wall clock, so a faulty run is exactly reproducible.
package faults

import (
	"encoding/json"
	"fmt"

	"metadataflow/internal/stats"
)

// RetryPolicy bounds the re-execution of panicking operator functions: an
// invocation is retried up to MaxAttempts times, with an exponential
// virtual-time backoff of BackoffSec·2^(attempt-1) charged between attempts.
type RetryPolicy struct {
	// MaxAttempts is the total number of invocation attempts (>= 1);
	// 0 selects the default of 3.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// BackoffSec is the base backoff in virtual seconds; 0 selects the
	// default of 1.
	BackoffSec float64 `json:"backoffSec,omitempty"`
}

// DefaultRetry is the retry policy applied when a plan does not set one
// (and to fault-free runs, which still isolate genuine operator panics).
func DefaultRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 3, BackoffSec: 1} }

// WithDefaults returns the policy with zero fields filled from the default:
// the effective policy an injector will apply. The chaos harness uses it to
// compute retry backoff budgets for its bounded-overhead oracle.
func (p RetryPolicy) WithDefaults() RetryPolicy { return p.withDefaults() }

// withDefaults fills zero fields with the default policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetry()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BackoffSec <= 0 {
		p.BackoffSec = d.BackoffSec
	}
	return p
}

// Backoff returns the virtual-time penalty charged after the given failed
// attempt (1-based): BackoffSec·2^(attempt-1).
func (p RetryPolicy) Backoff(attempt int) float64 {
	b := p.BackoffSec
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}

// Crash schedules a node failure. It fires at the first scheduling boundary
// where at least AfterStages stages have executed AND virtual time has
// reached At; both default to zero, so {node: 0} crashes node 0 before the
// first stage — the "fail node 0 after stage 0" case the legacy knobs could
// not express. A non-permanent crash models a process restart: the node
// loses its memory-resident partitions but keeps serving; partitions with a
// durable checkpoint are re-read, the rest are re-derived by lineage. A
// permanent crash removes the node from the live set; its partitions are
// rebalanced across the survivors.
type Crash struct {
	// Node is the worker index to fail.
	Node int `json:"node"`
	// AfterStages is the number of executed stages required before firing.
	AfterStages int `json:"afterStages,omitempty"`
	// At is the virtual time required before firing.
	At float64 `json:"at,omitempty"`
	// Permanent removes the node from the live set for the rest of the run.
	Permanent bool `json:"permanent,omitempty"`
}

// Window is a transient degradation interval [From, To) in virtual time on
// one node. To <= 0 means the window never closes. Factor multiplies the
// affected durations: > 1 degrades, (0, 1) accelerates; it composes with a
// user-set straggler SlowFactor.
type Window struct {
	// Node is the affected worker index.
	Node int `json:"node"`
	// From and To bound the window in virtual seconds; To <= 0 is open.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
	// Factor is the duration multiplier while the window is active.
	Factor float64 `json:"factor"`
}

// active reports whether the window covers virtual time now.
func (w Window) active(now float64) bool {
	return now >= w.From && (w.To <= 0 || now < w.To)
}

// PanicTarget selects which operator invocations a PanicSpec fails.
type PanicTarget string

const (
	// TargetEval fails choose evaluator invocations (the default).
	TargetEval PanicTarget = "eval"
	// TargetTransform fails transform/source operator invocations.
	TargetTransform PanicTarget = "transform"
)

// PanicSpec makes matching operator invocations panic. Each injected panic
// consumes one of Times; once exhausted the operator behaves normally, so a
// spec with Times below the retry budget exercises recovery without
// changing any choose decision, while Times at or above it forces the
// branch into quarantine.
type PanicSpec struct {
	// Op matches the operator name exactly; empty matches every operator
	// of the targeted kind.
	Op string `json:"op,omitempty"`
	// Target selects evaluator or transform invocations; empty means eval.
	Target PanicTarget `json:"target,omitempty"`
	// Times is the number of invocations to fail (>= 1).
	Times int `json:"times"`
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Seed labels generated plans; it does not affect replay (a plan is
	// already concrete) but records how it was derived.
	Seed int64 `json:"seed,omitempty"`
	// Retry bounds panic recovery; zero fields take defaults.
	Retry RetryPolicy `json:"retry,omitempty"`
	// Crashes are the node failures to inject, in any order.
	Crashes []Crash `json:"crashes,omitempty"`
	// Slowdowns scale all durations of a node within a window.
	Slowdowns []Window `json:"slowdowns,omitempty"`
	// DiskFaults scale only disk-operation durations within a window,
	// modelling disk-bandwidth degradation.
	DiskFaults []Window `json:"diskFaults,omitempty"`
	// Panics fail matching operator invocations.
	Panics []PanicSpec `json:"panics,omitempty"`
	// CkptFlips corrupt durable checkpoint-store entries at load time:
	// the Load-th store read of the run flips one bit in the stored file
	// before verification, so the load misses and the engine re-derives
	// by lineage (durability.go).
	CkptFlips []CkptFlip `json:"ckptFlips,omitempty"`
}

// Parse decodes a JSON plan and validates it.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate reports structural errors of the plan.
func (p *Plan) Validate() error {
	if p.Retry.MaxAttempts < 0 || p.Retry.BackoffSec < 0 {
		return fmt.Errorf("faults: negative retry policy")
	}
	for i, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash %d: negative node %d", i, c.Node)
		}
		if c.AfterStages < 0 || c.At < 0 {
			return fmt.Errorf("faults: crash %d: negative trigger", i)
		}
	}
	for i, w := range append(append([]Window(nil), p.Slowdowns...), p.DiskFaults...) {
		if w.Node < 0 {
			return fmt.Errorf("faults: window %d: negative node %d", i, w.Node)
		}
		if w.Factor <= 0 {
			return fmt.Errorf("faults: window %d: non-positive factor %g", i, w.Factor)
		}
		if w.From < 0 || (w.To > 0 && w.To <= w.From) {
			return fmt.Errorf("faults: window %d: bad interval [%g, %g)", i, w.From, w.To)
		}
	}
	for i, s := range p.Panics {
		if s.Times < 1 {
			return fmt.Errorf("faults: panic spec %d: times must be >= 1", i)
		}
		switch s.Target {
		case "", TargetEval, TargetTransform:
		default:
			return fmt.Errorf("faults: panic spec %d: unknown target %q", i, s.Target)
		}
	}
	for i, f := range p.CkptFlips {
		if f.Load < 0 || f.Bit < 0 {
			return fmt.Errorf("faults: ckpt flip %d: negative load %d or bit %d", i, f.Load, f.Bit)
		}
	}
	return nil
}

// ValidateFor additionally checks the plan against a cluster size: node
// indices must exist and permanent crashes must leave at least one live
// worker.
func (p *Plan) ValidateFor(workers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	check := func(node int, what string) error {
		if node >= workers {
			return fmt.Errorf("faults: %s targets node %d of a %d-worker cluster", what, node, workers)
		}
		return nil
	}
	permanentlyDead := map[int]bool{}
	for _, c := range p.Crashes {
		if err := check(c.Node, "crash"); err != nil {
			return err
		}
		if c.Permanent {
			permanentlyDead[c.Node] = true
		}
	}
	if len(permanentlyDead) >= workers {
		return fmt.Errorf("faults: plan permanently kills all %d workers", workers)
	}
	for _, w := range p.Slowdowns {
		if err := check(w.Node, "slowdown"); err != nil {
			return err
		}
	}
	for _, w := range p.DiskFaults {
		if err := check(w.Node, "disk fault"); err != nil {
			return err
		}
	}
	return nil
}

// FromLegacy maps the deprecated engine.Options fields (FailAfterStage,
// FailNode) onto an equivalent single-crash plan, or nil when the legacy
// values encode "no failure" (FailAfterStage <= 0, the only sentinel the
// old fields could express).
func FromLegacy(failAfterStage, failNode int) *Plan {
	if failAfterStage <= 0 || failNode < 0 {
		return nil
	}
	return &Plan{Crashes: []Crash{{Node: failNode, AfterStages: failAfterStage}}}
}

// ConfigError reports a nonsensical GenConfig field. Generate returns it
// instead of silently producing an empty or degenerate plan, so a chaos
// harness feeding randomized configurations learns which draw was invalid.
type ConfigError struct {
	// Field names the offending GenConfig field.
	Field string
	// Reason explains what is wrong with its value.
	Reason string
}

// Error implements the error interface.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("faults: bad GenConfig.%s: %s", e.Field, e.Reason)
}

// GenConfig parameterises Generate.
type GenConfig struct {
	// Seed drives every random draw.
	Seed int64
	// Workers is the cluster size the plan targets (>= 1).
	Workers int
	// Crashes is the number of node crashes to schedule.
	Crashes int
	// Permanent is how many of the crashes are permanent machine losses
	// (clamped to Workers-1 so the cluster survives).
	Permanent int
	// Correlated is how many additional transient crashes fire at the same
	// trigger as an already scheduled crash but on a different node,
	// modelling correlated failures (rack loss, shared power). Ignored when
	// no crash is scheduled or the cluster has a single worker.
	Correlated int
	// Repeats is how many additional transient crashes re-hit a node that
	// is already scheduled to crash, one stage after its previous crash —
	// back-to-back failures of the same node within one recovery window.
	// Ignored when no crash is scheduled.
	Repeats int
	// EvalPanics is the number of evaluator panics to inject and
	// TransformPanics the number of transform/source panics; each spec
	// injects PanicTimes failures.
	EvalPanics      int
	TransformPanics int
	// PanicTimes is the injection count per panic spec. 0 selects 1, which
	// is recoverable under the default 3-attempt retry policy, so choose
	// decisions are unaffected.
	PanicTimes int
	// Slowdowns and DiskFaults are the numbers of transient degradation
	// windows to schedule (whole-node and disk-only respectively).
	Slowdowns  int
	DiskFaults int
	// MaxFactor bounds the degradation factors drawn in (1, MaxFactor].
	// 0 selects 4; values in (0, 1] are rejected (degradation must degrade,
	// or the harness's bounded-overhead oracle would be meaningless).
	MaxFactor float64
	// WindowSec bounds the degradation windows: starts are drawn in
	// [0, WindowSec) and lengths in (0, WindowSec]. 0 selects 50; negative
	// values (zero-length windows) are rejected.
	WindowSec float64
	// MaxStage bounds the crash triggers: each crash fires after a stage
	// count drawn uniformly from [1, MaxStage]. 0 selects 20.
	MaxStage int
}

// validate rejects nonsensical fields with a *ConfigError.
func (cfg GenConfig) validate() error {
	if cfg.Workers < 1 {
		return &ConfigError{"Workers", fmt.Sprintf("need at least one worker, have %d", cfg.Workers)}
	}
	counts := []struct {
		name string
		v    int
	}{
		{"Crashes", cfg.Crashes}, {"Permanent", cfg.Permanent},
		{"Correlated", cfg.Correlated}, {"Repeats", cfg.Repeats},
		{"EvalPanics", cfg.EvalPanics}, {"TransformPanics", cfg.TransformPanics},
		{"PanicTimes", cfg.PanicTimes}, {"Slowdowns", cfg.Slowdowns},
		{"DiskFaults", cfg.DiskFaults}, {"MaxStage", cfg.MaxStage},
	}
	for _, c := range counts {
		if c.v < 0 {
			return &ConfigError{c.name, fmt.Sprintf("negative count %d", c.v)}
		}
	}
	if cfg.MaxFactor < 0 || (cfg.MaxFactor > 0 && cfg.MaxFactor <= 1) {
		return &ConfigError{"MaxFactor", fmt.Sprintf("degradation factor bound must exceed 1, have %g", cfg.MaxFactor)}
	}
	if cfg.WindowSec < 0 {
		return &ConfigError{"WindowSec", fmt.Sprintf("zero-length window bound %g", cfg.WindowSec)}
	}
	return nil
}

// Generate derives a concrete fault plan from the seed: crash nodes, trigger
// points, degradation windows and panic budgets are drawn from a
// deterministic RNG, so sweeping a fault rate reduces to increasing
// GenConfig.Crashes while holding the seed. Nonsensical configurations
// (negative rates, zero-length windows, factor bounds that do not degrade)
// are rejected with a *ConfigError; counts exceeding the cluster size
// (Permanent) are clamped as documented on the fields. The returned plan
// always passes ValidateFor(cfg.Workers).
func Generate(cfg GenConfig) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxStage < 1 {
		cfg.MaxStage = 20
	}
	if cfg.Permanent > cfg.Workers-1 {
		cfg.Permanent = cfg.Workers - 1
	}
	if cfg.PanicTimes < 1 {
		cfg.PanicTimes = 1
	}
	if cfg.MaxFactor == 0 {
		cfg.MaxFactor = 4
	}
	if cfg.WindowSec == 0 {
		cfg.WindowSec = 50
	}
	rng := stats.NewRNG(cfg.Seed)
	p := &Plan{Seed: cfg.Seed}
	permanentlyDead := map[int]bool{}
	for i := 0; i < cfg.Crashes; i++ {
		node := rng.Intn(cfg.Workers)
		permanent := i < cfg.Permanent
		if permanent {
			// Permanent losses pick distinct nodes so the live set
			// shrinks by exactly Permanent workers.
			for permanentlyDead[node] {
				node = (node + 1) % cfg.Workers
			}
			permanentlyDead[node] = true
		}
		p.Crashes = append(p.Crashes, Crash{
			Node:        node,
			AfterStages: 1 + rng.Intn(cfg.MaxStage),
			Permanent:   permanent,
		})
	}
	for i := 0; i < cfg.EvalPanics; i++ {
		p.Panics = append(p.Panics, PanicSpec{Target: TargetEval, Times: cfg.PanicTimes})
	}
	// Correlated crashes: a second node fails at the same trigger as an
	// already scheduled crash. Skipped on single-worker clusters, where no
	// distinct node exists.
	if len(p.Crashes) > 0 && cfg.Workers > 1 {
		for i := 0; i < cfg.Correlated; i++ {
			base := p.Crashes[rng.Intn(len(p.Crashes))]
			node := rng.Intn(cfg.Workers)
			for node == base.Node {
				node = (node + 1) % cfg.Workers
			}
			p.Crashes = append(p.Crashes, Crash{
				Node: node, AfterStages: base.AfterStages, At: base.At,
			})
		}
	}
	// Repeated crashes: the same node fails again one stage after a prior
	// (transient) crash, inside the recovery window of the first failure.
	// Permanent crashes are not repeated — the node is already gone.
	if cfg.Repeats > 0 {
		var transient []Crash
		for _, c := range p.Crashes {
			if !c.Permanent {
				transient = append(transient, c)
			}
		}
		for i := 0; i < cfg.Repeats && len(transient) > 0; i++ {
			base := transient[rng.Intn(len(transient))]
			p.Crashes = append(p.Crashes, Crash{
				Node: base.Node, AfterStages: base.AfterStages + 1, At: base.At,
			})
		}
	}
	window := func() Window {
		from := rng.Float64() * cfg.WindowSec
		length := rng.Float64() * cfg.WindowSec
		if length <= 0 {
			length = cfg.WindowSec
		}
		return Window{
			Node:   rng.Intn(cfg.Workers),
			From:   from,
			To:     from + length,
			Factor: 1 + rng.Float64()*(cfg.MaxFactor-1),
		}
	}
	for i := 0; i < cfg.Slowdowns; i++ {
		p.Slowdowns = append(p.Slowdowns, window())
	}
	for i := 0; i < cfg.DiskFaults; i++ {
		p.DiskFaults = append(p.DiskFaults, window())
	}
	for i := 0; i < cfg.TransformPanics; i++ {
		p.Panics = append(p.Panics, PanicSpec{Target: TargetTransform, Times: cfg.PanicTimes})
	}
	if err := p.ValidateFor(cfg.Workers); err != nil {
		return nil, err
	}
	return p, nil
}

// MustGenerate is Generate for configurations known to be valid; it panics
// on a ConfigError. For tests and fixed experiment configurations.
func MustGenerate(cfg GenConfig) *Plan {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// NumEvents returns the number of fault events the plan schedules: crashes,
// degradation windows and panic specs. The chaos shrinker minimizes this.
func (p *Plan) NumEvents() int {
	return len(p.Crashes) + len(p.Slowdowns) + len(p.DiskFaults) + len(p.Panics) + len(p.CkptFlips)
}

// Event records one delivered fault for telemetry: what was injected,
// where, and any context. Events accumulate in injection order, which the
// engine's deterministic run loop makes reproducible.
type Event struct {
	// Kind is "crash", "slowdown", "diskfault" or "panic".
	Kind string
	// Node is the afflicted worker (-1 for panics, which target operators).
	Node int
	// Op is the operator a panic was injected into; empty otherwise.
	Op string
	// Detail is free-form context (permanence, window factor, target).
	Detail string
}

// Injector is the per-run consumer of a Plan: it tracks which crashes have
// fired, which degradation windows have activated, and how many injected
// panics each spec has left, so every fault is delivered exactly once.
type Injector struct {
	plan       *Plan
	retry      RetryPolicy
	crashFired []bool
	slowSeen   []bool
	diskSeen   []bool
	panicLeft  []int
	flipUsed   []bool
	ckptLoads  int
	injected   int
	history    []Event
}

// NewInjector prepares an injector for one run of the plan.
func NewInjector(p *Plan) *Injector {
	in := &Injector{
		plan:       p,
		retry:      p.Retry.withDefaults(),
		crashFired: make([]bool, len(p.Crashes)),
		slowSeen:   make([]bool, len(p.Slowdowns)),
		diskSeen:   make([]bool, len(p.DiskFaults)),
		panicLeft:  make([]int, len(p.Panics)),
		flipUsed:   make([]bool, len(p.CkptFlips)),
	}
	for i, s := range p.Panics {
		in.panicLeft[i] = s.Times
	}
	return in
}

// Retry returns the plan's retry policy with defaults applied.
func (in *Injector) Retry() RetryPolicy { return in.retry }

// Injected returns the number of fault events delivered so far: crashes
// fired, windows activated, and panics injected.
func (in *Injector) Injected() int { return in.injected }

// History returns the delivered fault events in injection order.
func (in *Injector) History() []Event { return append([]Event(nil), in.history...) }

// record appends one delivered fault to the history alongside the counter.
func (in *Injector) record(ev Event) {
	in.injected++
	in.history = append(in.history, ev)
}

// DueCrashes returns the crashes whose triggers have been reached, marking
// them fired.
func (in *Injector) DueCrashes(stagesExecuted int, now float64) []Crash {
	var due []Crash
	for i, c := range in.plan.Crashes {
		if in.crashFired[i] {
			continue
		}
		if stagesExecuted >= c.AfterStages && now >= c.At {
			in.crashFired[i] = true
			detail := "transient"
			if c.Permanent {
				detail = "permanent"
			}
			in.record(Event{Kind: "crash", Node: c.Node, Detail: detail})
			due = append(due, c)
		}
	}
	return due
}

// TransientFactors returns the combined slowdown and disk-degradation
// multipliers active on the node at virtual time now (1 when none).
func (in *Injector) TransientFactors(node int, now float64) (slow, disk float64) {
	slow, disk = 1, 1
	for i, w := range in.plan.Slowdowns {
		if w.Node != node || !w.active(now) {
			continue
		}
		slow *= w.Factor
		if !in.slowSeen[i] {
			in.slowSeen[i] = true
			in.record(Event{Kind: "slowdown", Node: w.Node, Detail: fmt.Sprintf("factor=%g", w.Factor)})
		}
	}
	for i, w := range in.plan.DiskFaults {
		if w.Node != node || !w.active(now) {
			continue
		}
		disk *= w.Factor
		if !in.diskSeen[i] {
			in.diskSeen[i] = true
			in.record(Event{Kind: "diskfault", Node: w.Node, Detail: fmt.Sprintf("factor=%g", w.Factor)})
		}
	}
	return slow, disk
}

// TakePanic reports whether the next invocation of the named operator must
// panic, consuming one injection from the first matching spec with budget.
func (in *Injector) TakePanic(op string, target PanicTarget) bool {
	for i, s := range in.plan.Panics {
		st := s.Target
		if st == "" {
			st = TargetEval
		}
		if st != target || in.panicLeft[i] <= 0 {
			continue
		}
		if s.Op != "" && s.Op != op {
			continue
		}
		in.panicLeft[i]--
		in.record(Event{Kind: "panic", Node: -1, Op: op, Detail: string(target)})
		return true
	}
	return false
}
