package analysis

// This file is mdfvet's semantic core: it type-checks the loaded module
// with the standard library's go/types, replacing the former syntactic
// cross-package index (index.go). Rules that ask type questions — "is this
// a map?", "is this result an error?", "does this expression carry a unit?"
// — now get real answers that survive assignments, cross-package calls and
// method sets, instead of best-effort name matching.
//
// Resolution strategy:
//
//   - Packages inside the module are type-checked from their parsed ASTs,
//     recursively on demand when one imports another.
//   - Standard-library imports are compiled from $GOROOT/src by the
//     go/importer "source" importer, so the analyzer needs no pre-built
//     export data and no module dependencies.
//   - Only non-test files are checked: no typed rule includes tests by
//     default, and test files of a package simply yield no type info (the
//     typed analyzers stay silent there, keeping findings actionable).
//
// Type-check errors do not abort the run: the Error callback collects them
// on the package and checking continues, so one broken package degrades to
// the old silent-on-unknown behaviour instead of blocking the whole lint.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
)

// typeCheck resolves types for every package of the module.
func (m *Module) typeCheck() {
	imp := &moduleImporter{
		m:        m,
		fallback: importer.ForCompiler(m.fset, "source", nil),
		checking: map[string]bool{},
	}
	for _, pkg := range m.Packages {
		imp.check(pkg)
	}
}

// moduleImporter resolves import paths against the module's own packages
// first and falls back to compiling the standard library from source.
type moduleImporter struct {
	m        *Module
	fallback types.Importer
	// checking guards against import cycles while a package is mid-check.
	checking map[string]bool
}

// Import implements types.Importer.
func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := imp.m.byImportPath[path]; pkg != nil {
		if tp := imp.check(pkg); tp != nil {
			return tp, nil
		}
		return nil, fmt.Errorf("analysis: cannot type-check module package %q", path)
	}
	return imp.fallback.Import(path)
}

// check type-checks one package (once), memoising the result on it.
func (imp *moduleImporter) check(pkg *Package) *types.Package {
	if pkg.typesChecked {
		return pkg.TypesPkg
	}
	if imp.checking[pkg.ImportPath] {
		return nil // import cycle; the compiler rejects these anyway
	}
	imp.checking[pkg.ImportPath] = true
	defer delete(imp.checking, pkg.ImportPath)

	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.IsTest {
			files = append(files, f.AST)
		}
	}
	pkg.typesChecked = true
	if len(files) == 0 {
		return nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrs = append(pkg.TypeErrs, err)
		},
	}
	// Check's error only repeats the first error already delivered to the
	// Error callback; the aggregate lives in pkg.TypeErrs.
	tpkg, _ := conf.Check(pkg.ImportPath, imp.m.fset, files, info) //lint:allow droppederr -- partial type info is useful; TypeErrs records why
	pkg.TypesPkg = tpkg
	pkg.Info = info
	return tpkg
}

// TypeOf returns the type of e from the owning package's resolved type
// info, or nil when the file carries no type information (test files,
// packages whose check failed on this expression). Typed rules treat nil
// as "unknown — stay silent".
func (f *File) TypeOf(e ast.Expr) types.Type {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil
	}
	return f.Pkg.Info.TypeOf(e)
}

// errorType is the universe's predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the predeclared error type.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// isMapExpr reports whether e's resolved type is a map.
func isMapExpr(f *File, e ast.Expr) bool {
	t := f.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatExpr reports whether e's resolved type has a floating-point
// representation (including named unit types such as sim.VTime).
func isFloatExpr(f *File, e ast.Expr) bool {
	t := f.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
