package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// checkLockSafety enforces the repo's mutex discipline per function:
//
//   - A sync.Mutex/RWMutex must not be held across a blocking operation:
//     channel sends and receives, range over a channel, select without a
//     default, sync.WaitGroup.Wait, a call named in cfg.BlockingCalls
//     (engine.Run.Step and friends — real operator compute runs inside
//     them), or a same-package call that reaches one of those
//     (blockSummary). sync.Cond.Wait is exempt: it releases the associated
//     mutex while parked, which is the sanctioned step-loop idiom.
//   - Lock/Unlock must balance on every path: a return (or fall-off) with a
//     lock held and no deferred unlock is reported, as is a merge point
//     where one branch holds a lock the other released, a loop body that
//     changes the lock state between iterations, and a re-Lock of a mutex
//     already held (self-deadlock). `defer mu.Unlock()` and unlocks inside
//     deferred closures are recognized.
//   - Lock values must not be copied: assignments whose right-hand side
//     copies a value transitively containing a sync.Mutex/RWMutex/Cond/
//     WaitGroup/Once, and methods declared on a by-value receiver of such a
//     type, are reported.
//
// The analysis is a structured walk over the typed AST — if/switch/select
// split the lock state per path and merge it after, loops are checked for a
// state-preserving body — standing in for an SSA CFG in this
// dependency-free module (see conc.go). It is intra-procedural; calls into
// helpers that unlock a caller-held mutex are deliberately not modelled
// (naked Unlock is a state no-op, never a finding), so the convention-named
// *Locked helpers stay clean.
func checkLockSafety(f *File, cfg Config, blocks map[*types.Func]bool) []Finding {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil
	}
	w := &lockWalker{f: f, blocking: blockingSet(cfg), blocks: blocks}
	for _, d := range f.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		w.checkCopiedRecv(fd)
		if fd.Body == nil {
			continue
		}
		st := newLockState()
		if !w.walkStmts(fd.Body.List, st) {
			w.checkExit(fd.Body.End(), st)
		}
	}
	w.checkCopies()
	return w.findings
}

type lockMode int

const (
	lockExcl lockMode = iota
	lockRead
)

func (m lockMode) verb() string {
	if m == lockRead {
		return "RLock"
	}
	return "Lock"
}

// lockState is the per-path abstract state: which mutex objects are held
// and which have an unlock deferred to function exit.
type lockState struct {
	held     map[types.Object]lockMode
	deferred map[types.Object]bool
}

func newLockState() *lockState {
	return &lockState{held: map[types.Object]lockMode{}, deferred: map[types.Object]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func sameHeld(a, b *lockState) bool {
	if len(a.held) != len(b.held) {
		return false
	}
	for k, v := range a.held {
		if bv, ok := b.held[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// heldNames renders the held set deterministically for diagnostics.
func (s *lockState) heldNames() []string {
	var names []string
	for obj := range s.held {
		names = append(names, obj.Name())
	}
	sort.Strings(names)
	return names
}

type lockWalker struct {
	f        *File
	blocking map[string]bool
	blocks   map[*types.Func]bool
	findings []Finding
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	w.findings = append(w.findings, Finding{
		File: w.f.Path, Line: w.f.line(pos), Rule: RuleLockSafety,
		Msg: fmt.Sprintf(format, args...),
	})
}

// blockingOp reports a blocking operation executed with locks held.
func (w *lockWalker) blockingOp(pos token.Pos, what string, st *lockState) {
	if len(st.held) == 0 {
		return
	}
	w.report(pos, "%s is held across %s; unlock first or restructure so the blocking work runs outside the critical section", st.heldNames()[0], what)
}

// checkExit reports locks still held at a return that no defer releases.
func (w *lockWalker) checkExit(pos token.Pos, st *lockState) {
	var names []string
	for obj := range st.held {
		if !st.deferred[obj] {
			names = append(names, obj.Name())
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w.report(pos, "%s is still held at function exit on this path and no deferred unlock covers it", n)
	}
}

// mergeInto merges branch state b into a (the result), reporting locks held
// on one path but not the other.
func (w *lockWalker) mergeInto(pos token.Pos, a, b *lockState) {
	if !sameHeld(a, b) {
		diff := map[string]bool{}
		for obj := range a.held {
			if _, ok := b.held[obj]; !ok {
				diff[obj.Name()] = true
			}
		}
		for obj := range b.held {
			if _, ok := a.held[obj]; !ok {
				diff[obj.Name()] = true
			}
		}
		var names []string
		for n := range diff {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			w.report(pos, "%s is held on some paths but not others reaching this point; lock and unlock must balance on every path", n)
		}
	}
	for obj, mode := range a.held {
		if bm, ok := b.held[obj]; !ok || bm != mode {
			delete(a.held, obj)
		}
	}
	for obj := range b.deferred {
		a.deferred[obj] = true
	}
}

// walkStmts walks a statement list, returning true when every path through
// it terminates (return/panic/branch).
func (w *lockWalker) walkStmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(x.X, st)
	case *ast.SendStmt:
		w.blockingOp(x.Arrow, "a channel send", st)
		w.scanExpr(x.Value, st)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			if w.scanExpr(e, st) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return w.scanExpr(x.X, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						if w.scanExpr(e, st) {
							return true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.scanExpr(e, st)
		}
		w.checkExit(x.Pos(), st)
		return true
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		w.scanExpr(x.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(x.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = w.walkStmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			w.mergeInto(x.Body.End(), thenSt, elseSt)
			*st = *thenSt
		}
	case *ast.BlockStmt:
		return w.walkStmts(x.List, st)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			w.scanExpr(x.Cond, st)
		}
		bodySt := st.clone()
		term := w.walkStmts(x.Body.List, bodySt)
		if x.Post != nil {
			w.walkStmt(x.Post, bodySt)
		}
		if !term && !sameHeld(bodySt, st) {
			for _, n := range stateDiffNames(st, bodySt) {
				w.report(x.Pos(), "lock state of %s changes across a loop iteration; each iteration must leave locks as it found them", n)
			}
		}
		for obj := range bodySt.deferred {
			st.deferred[obj] = true
		}
	case *ast.RangeStmt:
		if isChanType(w.f.TypeOf(x.X)) {
			w.blockingOp(x.Pos(), "a range over a channel", st)
		}
		w.scanExpr(x.X, st)
		bodySt := st.clone()
		term := w.walkStmts(x.Body.List, bodySt)
		if !term && !sameHeld(bodySt, st) {
			for _, n := range stateDiffNames(st, bodySt) {
				w.report(x.Pos(), "lock state of %s changes across a loop iteration; each iteration must leave locks as it found them", n)
			}
		}
		for obj := range bodySt.deferred {
			st.deferred[obj] = true
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			w.scanExpr(x.Tag, st)
		}
		return w.walkClauses(x.Body, st, switchHasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, st)
		}
		return w.walkClauses(x.Body, st, switchHasDefault(x.Body))
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			w.blockingOp(x.Select, "a select with no default", st)
		}
		return w.walkClauses(x.Body, st, true)
	case *ast.DeferStmt:
		w.handleDefer(x, st)
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.scanExpr(a, st)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: stop tracking this path. Conservative — the
		// state at the jump target is not modelled.
		return true
	}
	return false
}

// walkClauses walks the case/comm clauses of a switch or select, merging
// the per-clause states. When no clause is a default (exhaustive=false),
// the entry state joins the merge (the switch may fall through).
func (w *lockWalker) walkClauses(body *ast.BlockStmt, st *lockState, exhaustive bool) bool {
	var outs []*lockState
	allTerm := true
	for _, c := range body.List {
		var list []ast.Stmt
		switch cl := c.(type) {
		case *ast.CaseClause:
			list = cl.Body
		case *ast.CommClause:
			list = cl.Body
		}
		cs := st.clone()
		if !w.walkStmts(list, cs) {
			outs = append(outs, cs)
			allTerm = false
		}
	}
	if !exhaustive {
		outs = append(outs, st.clone())
		allTerm = false
	}
	if allTerm && len(body.List) > 0 {
		return true
	}
	if len(outs) == 0 {
		return false
	}
	res := outs[0]
	for _, o := range outs[1:] {
		w.mergeInto(body.End(), res, o)
	}
	*st = *res
	return false
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cl, ok := c.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}

func stateDiffNames(a, b *lockState) []string {
	diff := map[string]bool{}
	for obj := range a.held {
		if _, ok := b.held[obj]; !ok {
			diff[obj.Name()] = true
		}
	}
	for obj := range b.held {
		if _, ok := a.held[obj]; !ok {
			diff[obj.Name()] = true
		}
	}
	var names []string
	for n := range diff {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// handleDefer records deferred unlocks: `defer mu.Unlock()` directly, or
// unlock calls inside a deferred closure.
func (w *lockWalker) handleDefer(d *ast.DeferStmt, st *lockState) {
	record := func(call *ast.CallExpr) {
		fn, recv := resolveCall(w.f, call)
		if fn == nil || recv == nil {
			return
		}
		if name := mutexMethod(fn); name == "Unlock" || name == "RUnlock" {
			if obj := refObj(w.f, recv); obj != nil {
				st.deferred[obj] = true
			}
		}
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
		return
	}
	record(d.Call)
}

// mutexMethod returns the method name when fn is a method of sync.Mutex or
// sync.RWMutex, else "".
func mutexMethod(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMutex(sig.Recv().Type()) {
		return ""
	}
	return fn.Name()
}

// scanExpr walks an expression in evaluation context: channel receives and
// calls mutate or check the lock state. Function literals are opaque (their
// body runs later, usually on another goroutine). Returns true when the
// expression unconditionally panics.
func (w *lockWalker) scanExpr(e ast.Expr, st *lockState) bool {
	terminated := false
	ast.Inspect(e, func(n ast.Node) bool {
		if terminated {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.blockingOp(x.OpPos, "a channel receive", st)
			}
		case *ast.CallExpr:
			if w.handleCall(x, st) {
				terminated = true
				return false
			}
		}
		return true
	})
	return terminated
}

// handleCall applies one call to the lock state. Returns true for an
// unconditional panic.
func (w *lockWalker) handleCall(call *ast.CallExpr, st *lockState) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.f.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	fn, recv := resolveCall(w.f, call)
	if fn == nil {
		return false
	}
	if m := mutexMethod(fn); m != "" && recv != nil {
		obj := refObj(w.f, recv)
		if obj == nil {
			return false
		}
		switch m {
		case "Lock":
			if mode, ok := st.held[obj]; ok {
				w.report(call.Pos(), "%s.Lock while %s is already %s-held on this path (self-deadlock)", obj.Name(), obj.Name(), mode.verb())
			}
			st.held[obj] = lockExcl
		case "RLock":
			if mode, ok := st.held[obj]; ok && mode == lockExcl {
				w.report(call.Pos(), "%s.RLock while %s is already Lock-held on this path (self-deadlock)", obj.Name(), obj.Name())
			}
			if _, ok := st.held[obj]; !ok {
				st.held[obj] = lockRead
			}
		case "Unlock", "RUnlock":
			// Unlock without a tracked Lock is the *Locked-helper
			// convention (caller holds the lock); never a finding.
			delete(st.held, obj)
		}
		return false
	}
	key := callKey(fn)
	if key == "sync.Cond.Wait" {
		return false // releases the associated mutex while parked
	}
	if kind, k := classifyBlockingCall(w.f, call, w.blocking); kind != "" {
		what := fmt.Sprintf("the blocking call %s", k)
		if kind == "wait" {
			what = "sync.WaitGroup.Wait"
		}
		w.blockingOp(call.Pos(), what, st)
		return false
	}
	if w.blocks[fn] && len(st.held) > 0 {
		w.blockingOp(call.Pos(), fmt.Sprintf("a call to %s, which may block", fn.Name()), st)
	}
	return false
}

// --- copied-lock checks -------------------------------------------------

// checkCopiedRecv reports methods whose by-value receiver copies a
// lock-containing type on every call.
func (w *lockWalker) checkCopiedRecv(fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	rt := w.f.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return
	}
	if _, ptr := rt.(*types.Pointer); ptr {
		return
	}
	if containsLock(rt) {
		w.report(fd.Pos(), "method %s has a by-value receiver of type %s, which contains a lock; every call copies it — use a pointer receiver", fd.Name.Name, types.TypeString(rt, types.RelativeTo(w.f.Pkg.TypesPkg)))
	}
}

// checkCopies reports assignments whose right-hand side copies an existing
// lock-containing value (identifier, field, dereference or element —
// composite literals and calls construct fresh values and are fine).
func (w *lockWalker) checkCopies() {
	ast.Inspect(w.f.AST, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok && lhs.Name == "_" {
				continue // a blank assignment copies nothing observable
			}
			switch ast.Unparen(rhs).(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			default:
				continue
			}
			t := w.f.TypeOf(rhs)
			if t == nil || !containsLock(t) {
				continue
			}
			w.report(rhs.Pos(), "assignment copies a value of type %s, which contains a lock; copy a pointer instead", types.TypeString(t, types.RelativeTo(w.f.Pkg.TypesPkg)))
		}
		return true
	})
}
