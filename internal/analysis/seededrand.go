package analysis

import (
	"fmt"
	"go/ast"
)

// checkSeededRand flags calls to the top-level math/rand functions, which
// draw from the process-global source: their sequence depends on every
// other draw in the process, so results cannot be replayed from a seed.
// Randomness must come from an explicitly seeded *rand.Rand, threaded from
// options (stats.NewRNG). The constructors rand.New, rand.NewSource and
// rand.NewZipf remain allowed — they are how seeded generators are built.
func checkSeededRand(f *File, cfg Config) []Finding {
	randNames := map[string]bool{}
	for name, path := range f.Imports {
		if path == "math/rand" || path == "math/rand/v2" {
			randNames[name] = true
		}
	}
	if len(randNames) == 0 {
		return nil
	}
	forbidden := map[string]bool{}
	for _, fn := range cfg.SeededRandFuncs {
		forbidden[fn] = true
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !randNames[x.Name] || !forbidden[sel.Sel.Name] {
			return true
		}
		out = append(out, Finding{
			File: f.Path,
			Line: f.line(sel.Pos()),
			Rule: RuleSeededRand,
			Msg: fmt.Sprintf("%s.%s uses the unseeded global source; thread a seeded *rand.Rand (stats.NewRNG) instead",
				x.Name, sel.Sel.Name),
		})
		return true
	})
	return out
}
