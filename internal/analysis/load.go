package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// File is one parsed source file.
type File struct {
	// Path is the file path relative to the module root, slash-separated.
	Path string
	// AST is the parsed file (with comments).
	AST *ast.File
	// IsTest reports a _test.go file.
	IsTest bool
	// Imports maps the local name of each import to its path. The local
	// name is the alias when one is given, otherwise the path's last
	// element (good enough without compiling the imported package).
	Imports map[string]string
	// Pkg is the owning package.
	Pkg *Package

	fset *token.FileSet
	// allows maps a source line to the set of rules a //lint:allow comment
	// on that line suppresses.
	allows map[int]map[string]bool
}

// line returns the source line of a node position.
func (f *File) line(pos token.Pos) int { return f.fset.Position(pos).Line }

// Package is one directory of source files.
type Package struct {
	// Dir is the package directory relative to the module root ("" for the
	// root package itself), slash-separated.
	Dir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Name is the package name from the package clauses.
	Name string
	// Files are the parsed sources, sorted by path.
	Files []*File

	// TypesPkg and Info hold the go/types resolution of the package's
	// non-test files, populated by typeCheck. Info may be partially filled
	// when the check hit errors; TypeErrs then records why.
	TypesPkg *types.Package
	Info     *types.Info
	TypeErrs []error

	typesChecked bool
}

// Module is a parsed source tree.
type Module struct {
	// Root is the absolute directory Load started from.
	Root string
	// Path is the module path from go.mod ("" when none was found).
	Path string
	// Packages are the parsed packages sorted by directory.
	Packages []*Package

	fset         *token.FileSet
	byImportPath map[string]*Package
}

// allowRe matches a //lint:allow directive. Like //go:build, the directive
// must open the comment — prose that merely mentions `//lint:allow` (doc
// comments, this line) is not a directive and must not feed the
// stale-suppression audit.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,\-]+)`)

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{"testdata": true, "vendor": true, ".git": true}

// Load parses every .go file under root into a Module. Files that do not
// parse are reported as errors: the linter must not silently skip code.
func Load(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Root: abs, byImportPath: map[string]*Package{}}
	m.Path = readModulePath(filepath.Join(abs, "go.mod"))

	byDir := map[string]*Package{}
	fset := token.NewFileSet()
	m.fset = fset
	walkErr := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != abs && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		parsed, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir == "." {
			dir = ""
		}
		pkg, ok := byDir[dir]
		if !ok {
			importPath := m.Path
			if dir != "" {
				if importPath != "" {
					importPath += "/"
				}
				importPath += dir
			}
			pkg = &Package{Dir: dir, ImportPath: importPath}
			byDir[dir] = pkg
			m.byImportPath[importPath] = pkg
		}
		if pkg.Name == "" && !strings.HasSuffix(parsed.Name.Name, "_test") {
			pkg.Name = parsed.Name.Name
		}
		f := &File{
			Path:    rel,
			AST:     parsed,
			IsTest:  strings.HasSuffix(rel, "_test.go"),
			Imports: importTable(parsed),
			Pkg:     pkg,
			fset:    fset,
			allows:  allowTable(fset, parsed),
		}
		pkg.Files = append(pkg.Files, f)
		return nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	for _, pkg := range byDir {
		sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Path < pkg.Files[j].Path })
		m.Packages = append(m.Packages, pkg)
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Dir < m.Packages[j].Dir })
	m.typeCheck()
	return m, nil
}

// readModulePath extracts the module path from a go.mod file, or "".
func readModulePath(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importTable maps each import's local name to its path.
func importTable(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// allowTable collects the //lint:allow directives of a file by line.
func allowTable(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			match := allowRe.FindStringSubmatch(c.Text)
			if match == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			rules := out[line]
			if rules == nil {
				rules = map[string]bool{}
				out[line] = rules
			}
			for _, r := range strings.Split(match[1], ",") {
				rules[strings.TrimSpace(r)] = true
			}
		}
	}
	return out
}

// suppressingLine returns the line of the //lint:allow comment covering the
// finding — the finding's own line or the line directly above — and whether
// one exists. The line identifies the directive for the stale-allow audit.
func (m *Module) suppressingLine(fd Finding) (int, bool) {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			if f.Path != fd.File {
				continue
			}
			for _, line := range []int{fd.Line, fd.Line - 1} {
				if rules, ok := f.allows[line]; ok && rules[fd.Rule] {
					return line, true
				}
			}
			return 0, false
		}
	}
	return 0, false
}
