// Package analysis implements mdfvet, the repo's determinism and
// simulator-discipline static-analysis suite (driven by the mdflint CLI).
// Every result the repo reproduces depends on the discrete-event simulator
// replaying bit-identically for a given seed, so the rules that keep it
// deterministic — and the unit discipline that keeps its quantities honest —
// are machine-checked instead of remembered:
//
//   - wallclock:   no time.Now/Since/Sleep/... inside the simulator
//     packages; virtual time is the only clock.
//   - seededrand:  no top-level math/rand functions in internal/; randomness
//     must come from an explicitly seeded *rand.Rand (stats.RNG).
//   - maporder:    no order-dependent work (appends, channel sends, output
//     emission, float accumulation) inside `range` over a map unless the
//     result is sorted afterwards.
//   - droppederr:  no `_`-discarded error results in non-test internal code.
//   - unitsafety:  simulator quantities carry their unit in the type —
//     sim.VTime for virtual seconds, sim.Bytes for data volumes. Exported
//     signatures must not smuggle them as plain float64/int64, and no
//     expression may mix the two units except the cluster cost model, which
//     is the one sanctioned bytes→seconds conversion.
//   - leakcheck:   paired resource methods stay balanced per package: a
//     package that calls Allocator.Put must also call Discard somewhere,
//     every Pin needs an Unpin, and every telemetry SpanBegin needs a
//     SpanEnd. Pairs are matched on concrete and interface receivers alike
//     (the engine drives telemetry through the obs.Probe interface).
//   - locksafety:  mutexes stay safe: no sync.Mutex/RWMutex held across a
//     blocking operation (channel ops, select, WaitGroup.Wait, the engine's
//     Step/Run entry points), lock/unlock balanced on every path with defer
//     recognized, and no copied lock values (assignments or by-value
//     receivers). sync.Cond.Wait is exempt — it releases its mutex.
//   - goroutinecapture: a spawned closure may not capture a loop variable
//     by reference, nor write a captured variable without a visible
//     synchronization edge (mutex, channel send/close, WaitGroup.Done).
//   - ctxflow:     functions holding a context.Context must thread it;
//     context.Background()/TODO() are banned in library code outside main,
//     tests and the documented allowlist of sanctioned roots.
//   - spawnbound:  every `go` statement is tied to a visible join — the
//     goroutine signals completion (WaitGroup.Done, channel send/close)
//     and the package consumes the signal (Wait, receive).
//
// The suite is built on the standard library toolchain only: go/parser for
// syntax and go/types for semantics. The concurrency rules walk the typed
// ASTs with a path-splitting statement interpreter plus a package-local
// may-block summary fixpoint — a hand-rolled stand-in for an SSA CFG,
// chosen because the module deliberately has no dependencies (conc.go
// documents the trade-off against golang.org/x/tools/go/ssa). The module under analysis is
// type-checked in full (see typecheck.go) — module-internal imports resolve
// against the parsed tree and standard-library imports compile from source —
// so type questions ("is this a map?", "is this result an error?", "which
// unit does this expression carry?") get real answers that survive
// assignments, method calls and package boundaries. When type information is
// unavailable (test files, packages that fail to check) the typed analyzers
// stay silent, so every finding is actionable.
//
// A finding can be suppressed by a `//lint:allow <rule>` comment on the
// offending line or the line directly above it, optionally followed by a
// reason: `//lint:allow maporder -- aggregation is commutative`.
package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer. The JSON field names
// are the stable machine-readable schema emitted by `mdflint -json`.
type Finding struct {
	// File is the file path relative to the module root, slash-separated.
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Rule is the analyzer that produced the finding.
	Rule string `json:"rule"`
	// Msg describes the violation and how to fix it.
	Msg string `json:"msg"`
}

// String renders the diagnostic in the conventional file:line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Rule names, in the order diagnostics are documented.
const (
	RuleWallclock        = "wallclock"
	RuleSeededRand       = "seededrand"
	RuleMapOrder         = "maporder"
	RuleDroppedErr       = "droppederr"
	RuleUnitSafety       = "unitsafety"
	RuleLeakCheck        = "leakcheck"
	RuleLockSafety       = "locksafety"
	RuleGoroutineCapture = "goroutinecapture"
	RuleCtxFlow          = "ctxflow"
	RuleSpawnBound       = "spawnbound"
)

// Rules lists every rule the suite implements.
func Rules() []string {
	return []string{
		RuleWallclock, RuleSeededRand, RuleMapOrder, RuleDroppedErr,
		RuleUnitSafety, RuleLeakCheck,
		RuleLockSafety, RuleGoroutineCapture, RuleCtxFlow, RuleSpawnBound,
	}
}

// RuleScope says where one rule applies.
type RuleScope struct {
	// Dirs are slash-separated directory prefixes relative to the module
	// root; a file is in scope when its path is under one of them. An empty
	// list disables the rule.
	Dirs []string
	// IncludeTests extends the rule to _test.go files.
	IncludeTests bool
}

func (s RuleScope) applies(relPath string, isTest bool) bool {
	if isTest && !s.IncludeTests {
		return false
	}
	for _, d := range s.Dirs {
		if relPath == d || strings.HasPrefix(relPath, d+"/") {
			return true
		}
	}
	return false
}

// Config is the suite's policy: which rule runs where, and the small
// vocabularies the heuristic analyzers use.
type Config struct {
	Wallclock        RuleScope
	SeededRand       RuleScope
	MapOrder         RuleScope
	DroppedErr       RuleScope
	UnitSafety       RuleScope
	LeakCheck        RuleScope
	LockSafety       RuleScope
	GoroutineCapture RuleScope
	CtxFlow          RuleScope
	SpawnBound       RuleScope

	// UnitExemptDirs are directories (same prefix semantics as RuleScope)
	// where cross-unit arithmetic and conversions are sanctioned: the
	// cluster cost model converts bytes into seconds by design. The naming
	// sub-check of unitsafety still applies there.
	UnitExemptDirs []string
	// LeakPairs are the acquire/release method pairs that leakcheck keeps
	// balanced per package.
	LeakPairs []LeakPair

	// WallclockFuncs are the forbidden package-level time functions.
	WallclockFuncs []string
	// SeededRandFuncs are the forbidden top-level math/rand functions (the
	// ones backed by the unseeded global source). Constructors (New,
	// NewSource, NewZipf) stay allowed.
	SeededRandFuncs []string
	// EmitNames are function or method names whose call inside a
	// range-over-map loop counts as emitting externally visible output in
	// iteration order (trace events, CSV rows, log lines).
	EmitNames []string

	// BlockingCalls names calls ("pkg.Type.Method" or "pkg.Func", package
	// name not path) that locksafety treats as blocking operations: the
	// engine's stage-execution entry points run real operator compute, and
	// the service's drain/idle waits park on a condition variable.
	// sync.WaitGroup.Wait is always blocking and need not be listed.
	BlockingCalls []string
	// CtxRootFuncs allowlists functions ("pkgdir.FuncName") sanctioned to
	// mint context.Background()/TODO() roots in library code; each entry's
	// justification lives in ARCHITECTURE.md, "Concurrency rules".
	CtxRootFuncs []string
	// SpawnJoinFuncs names spawn targets ("pkg.Type.Method" or "pkg.Func")
	// whose join is owned by the named construct itself (bounded worker
	// pools); spawnbound accepts `go` statements calling them.
	SpawnJoinFuncs []string

	// Rules restricts the run to a subset of rule names; empty means all.
	Rules []string
}

// DefaultConfig returns the repository policy described in the package
// comment: the virtual-clock packages for wallclock, all of internal/ for
// the other three rules.
func DefaultConfig() Config {
	return Config{
		Wallclock: RuleScope{Dirs: []string{
			"internal/engine",
			"internal/cluster",
			"internal/scheduler",
			"internal/memorymgr",
			"internal/baseline",
			"internal/experiments",
			"internal/faults",
			"internal/chaos",
			"internal/mdf",
			"internal/obs",
			"internal/spec",
			"internal/plan",
			"internal/journal",
			"internal/ckptstore",
			"cmd/mdfstat",
		}},
		SeededRand: RuleScope{Dirs: []string{"internal"}, IncludeTests: true},
		MapOrder:   RuleScope{Dirs: []string{"internal"}},
		DroppedErr: RuleScope{Dirs: []string{"internal"}},
		UnitSafety: RuleScope{Dirs: []string{
			"internal/sim",
			"internal/cluster",
			"internal/engine",
			"internal/memorymgr",
			"internal/scheduler",
			"internal/stats",
			"internal/baseline",
			"internal/obs",
			"internal/plan",
			"internal/journal",
			"internal/ckptstore",
			"cmd/mdfstat",
		}},
		LeakCheck:        RuleScope{Dirs: []string{"internal"}},
		LockSafety:       RuleScope{Dirs: []string{"internal", "cmd"}},
		GoroutineCapture: RuleScope{Dirs: []string{"internal", "cmd"}},
		CtxFlow:          RuleScope{Dirs: []string{"internal"}},
		SpawnBound:       RuleScope{Dirs: []string{"internal", "cmd"}},

		UnitExemptDirs: []string{"internal/cluster"},
		LeakPairs: []LeakPair{
			{Acquire: "Put", Release: "Discard"},
			{Acquire: "Pin", Release: "Unpin"},
			{Acquire: "SpanBegin", Release: "SpanEnd"},
			{Acquire: "IntervalBegin", Release: "IntervalEnd"},
			// Durable state handles: whoever opens a journal or checkpoint
			// store must close it somewhere in the same package.
			{Acquire: "Open", Release: "Close"},
		},

		WallclockFuncs: []string{
			"Now", "Since", "Until", "Sleep", "After", "AfterFunc",
			"Tick", "NewTimer", "NewTicker",
		},
		SeededRandFuncs: []string{
			"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
			"Uint32", "Uint64", "Float32", "Float64",
			"NormFloat64", "ExpFloat64", "Perm", "Shuffle", "Seed", "Read",
		},
		EmitNames: []string{
			"trace", "Emit", "Record", "Printf", "Println", "Print",
			"Fprintf", "Fprintln", "Fprint", "WriteString",
		},

		BlockingCalls: []string{
			// Stage execution runs real operator compute (KDE densities,
			// NN training); holding a service lock across it starves the
			// HTTP surface.
			"engine.Run.Step",
			"engine.Run.RunToCompletion",
			// The service's lifecycle waits park on its condition variable.
			"service.Server.Drain",
			"service.Server.WaitIdle",
			"service.Server.Close",
		},
		CtxRootFuncs: []string{
			// The service mints per-job roots deliberately detached from
			// process signals: drain grants each in-flight job a step
			// budget before cancelling, which a signal-parented context
			// would cut short. See ARCHITECTURE.md, "Concurrency rules".
			"internal/service.withDefaults",
		},
	}
}

func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// StaleAllow reports a //lint:allow directive that suppressed nothing in a
// run: the violation it excused has been fixed or moved, so the directive
// should be deleted before it silently hides a future regression. The JSON
// field names are the stable schema emitted by `mdflint -json`.
type StaleAllow struct {
	// File is the file path relative to the module root, slash-separated.
	File string `json:"file"`
	// Line is the 1-based line of the //lint:allow comment.
	Line int `json:"line"`
	// Rule is the allow entry that suppressed nothing.
	Rule string `json:"rule"`
}

// String renders the audit entry in the conventional file:line form.
func (s StaleAllow) String() string {
	return fmt.Sprintf("%s:%d: stale //lint:allow %s: suppresses no finding", s.File, s.Line, s.Rule)
}

// Run executes every enabled analyzer over the module and returns the
// surviving findings sorted by file, line and rule.
func Run(m *Module, cfg Config) []Finding {
	findings, _ := Analyze(m, cfg)
	return findings
}

// Analyze is Run plus the suppression audit: the second result lists every
// //lint:allow entry that suppressed nothing. An entry is only judged when
// its verdict is meaningful — a known rule must be enabled in this run
// (otherwise its findings were never produced and the directive may well be
// load-bearing), while an unknown rule name can never suppress anything and
// is always stale.
func Analyze(m *Module, cfg Config) ([]Finding, []StaleAllow) {
	all := rawFindings(m, cfg)

	// used marks, per file and allow line, the rules that earned their keep.
	used := map[string]map[int]map[string]bool{}
	var kept []Finding
	for _, fd := range all {
		line, ok := m.suppressingLine(fd)
		if !ok {
			kept = append(kept, fd)
			continue
		}
		lines := used[fd.File]
		if lines == nil {
			lines = map[int]map[string]bool{}
			used[fd.File] = lines
		}
		rules := lines[line]
		if rules == nil {
			rules = map[string]bool{}
			lines[line] = rules
		}
		rules[fd.Rule] = true
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})

	known := map[string]bool{}
	for _, r := range Rules() {
		known[r] = true
	}
	var stale []StaleAllow
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for line, rules := range f.allows {
				for rule := range rules {
					if known[rule] && !cfg.ruleEnabled(rule) {
						continue
					}
					if used[f.Path][line][rule] {
						continue
					}
					stale = append(stale, StaleAllow{File: f.Path, Line: line, Rule: rule})
				}
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return kept, stale
}

// rawFindings runs the enabled analyzers and returns their unsorted,
// unsuppressed diagnostics.
func rawFindings(m *Module, cfg Config) []Finding {
	var all []Finding
	for _, pkg := range m.Packages {
		var blocks map[*types.Func]bool
		if cfg.ruleEnabled(RuleLockSafety) && pkg.Info != nil {
			blocks = blockSummary(pkg, cfg)
		}
		for _, f := range pkg.Files {
			if cfg.ruleEnabled(RuleWallclock) && cfg.Wallclock.applies(f.Path, f.IsTest) {
				all = append(all, checkWallclock(f, cfg)...)
			}
			if cfg.ruleEnabled(RuleSeededRand) && cfg.SeededRand.applies(f.Path, f.IsTest) {
				all = append(all, checkSeededRand(f, cfg)...)
			}
			if cfg.ruleEnabled(RuleMapOrder) && cfg.MapOrder.applies(f.Path, f.IsTest) {
				all = append(all, checkMapOrder(m, f, cfg)...)
			}
			if cfg.ruleEnabled(RuleDroppedErr) && cfg.DroppedErr.applies(f.Path, f.IsTest) {
				all = append(all, checkDroppedErr(m, f)...)
			}
			if cfg.ruleEnabled(RuleUnitSafety) && cfg.UnitSafety.applies(f.Path, f.IsTest) {
				all = append(all, checkUnitSafety(f, cfg)...)
			}
			if cfg.ruleEnabled(RuleLockSafety) && cfg.LockSafety.applies(f.Path, f.IsTest) {
				all = append(all, checkLockSafety(f, cfg, blocks)...)
			}
			if cfg.ruleEnabled(RuleGoroutineCapture) && cfg.GoroutineCapture.applies(f.Path, f.IsTest) {
				all = append(all, checkGoroutineCapture(f, cfg)...)
			}
			if cfg.ruleEnabled(RuleCtxFlow) && cfg.CtxFlow.applies(f.Path, f.IsTest) {
				all = append(all, checkCtxFlow(f, cfg)...)
			}
		}
		if cfg.ruleEnabled(RuleLeakCheck) {
			all = append(all, checkLeakCheck(pkg, cfg)...)
		}
		if cfg.ruleEnabled(RuleSpawnBound) {
			all = append(all, checkSpawnBound(pkg, cfg)...)
		}
	}
	return all
}
