package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// checkMapOrder flags order-dependent work inside `range` over a map. Go
// randomises map-iteration order on purpose, so anything that observes the
// order — appending to a slice, sending on a channel, emitting trace or CSV
// output, accumulating floats (addition is not associative) — injects
// nondeterminism exactly where the simulator must replay bit-identically.
//
// The canonical collect-then-sort idiom stays legal: an append finding is
// dropped when a later statement of the same block passes the slice to a
// call whose name contains "sort" (sort.Slice, sort.Strings, a sortX
// helper). Integer accumulation and map-to-map copies are commutative and
// never flagged.
func checkMapOrder(m *Module, f *File, cfg Config) []Finding {
	emit := map[string]bool{}
	for _, name := range cfg.EmitNames {
		emit[name] = true
	}
	var out []Finding
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		walkStmts(fn.Body.List, nil, func(rs *ast.RangeStmt, following []ast.Stmt) {
			out = append(out, checkOneRange(f, rs, following, emit)...)
		})
	}
	return out
}

// walkStmts traverses every statement list reachable from list, calling
// visit for each range statement with the statements that execute after it:
// the rest of its own block followed by the tails of every enclosing block
// of the same function (a sort there still runs before the collected slice
// is observable). Function literals start a fresh tail — a sort after the
// closure does not necessarily run after the closure's loop.
func walkStmts(list []ast.Stmt, tail []ast.Stmt, visit func(*ast.RangeStmt, []ast.Stmt)) {
	for i, stmt := range list {
		rest := append(append([]ast.Stmt(nil), list[i+1:]...), tail...)
		if rs, ok := stmt.(*ast.RangeStmt); ok {
			visit(rs, rest)
		}
		for _, child := range childStmtLists(stmt) {
			walkStmts(child, rest, visit)
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				walkStmts(fl.Body.List, nil, visit)
				return false
			}
			// Child statement lists are walked explicitly above; stop at
			// them so their statements are not visited twice.
			_, isStmtOwner := n.(ast.Stmt)
			return n == stmt || !isStmtOwner
		})
	}
}

// childStmtLists returns the statement lists directly nested in one
// statement.
func childStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, childStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childStmtLists(s.Stmt)...)
	}
	return out
}

// checkOneRange analyses a single range statement; following are the
// statements after it in the same block, searched for the sort that
// legitimises collected appends.
func checkOneRange(f *File, rs *ast.RangeStmt, following []ast.Stmt, emit map[string]bool) []Finding {
	if !isMapExpr(f, rs.X) {
		return nil
	}
	local := localNames(rs)

	type appendFinding struct {
		finding Finding
		slice   string
	}
	var appends []appendFinding
	var out []Finding
	add := func(pos token.Pos, msg string) {
		out = append(out, Finding{File: f.Path, Line: f.line(pos), Rule: RuleMapOrder, Msg: msg})
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			add(st.Pos(), "sends on a channel in map-iteration order; iterate over sorted keys")
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			lhs := st.Lhs[0]
			switch st.Tok {
			case token.ASSIGN, token.DEFINE:
				name, ok := appendTarget(lhs, st.Rhs[0])
				if ok && !local[name] {
					appends = append(appends, appendFinding{
						slice: name,
						finding: Finding{
							File: f.Path, Line: f.line(st.Pos()), Rule: RuleMapOrder,
							Msg: fmt.Sprintf("appends to %q in map-iteration order; iterate over sorted keys or sort the result afterwards", name),
						},
					})
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				base, ok := baseIdent(lhs)
				if !ok || local[base] {
					return true
				}
				if isFloatExpr(f, lhs) {
					add(st.Pos(), fmt.Sprintf("accumulates floating-point values into %q in map-iteration order (float addition is not associative); iterate over sorted keys", base))
				}
			}
		case *ast.ExprStmt:
			call, ok := ast.Unparen(st.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := calleeName(call); ok && emit[name] {
				add(st.Pos(), fmt.Sprintf("%s emits output in map-iteration order; iterate over sorted keys", name))
			}
		}
		return true
	})

	for _, a := range appends {
		if !sortedAfter(following, a.slice) {
			out = append(out, a.finding)
		}
	}
	return out
}

// localNames returns the identifiers bound inside the range statement
// itself or defined within its body — appends into those cannot outlive an
// iteration in a way the caller observes.
func localNames(rs *ast.RangeStmt) map[string]bool {
	local := map[string]bool{}
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			local[id.Name] = true
		}
	}
	if rs.Tok == token.DEFINE {
		if rs.Key != nil {
			record(rs.Key)
		}
		if rs.Value != nil {
			record(rs.Value)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				for _, lhs := range st.Lhs {
					record(lhs)
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							local[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return local
}

// appendTarget matches `x = append(x, ...)` and returns x's base name.
func appendTarget(lhs, rhs ast.Expr) (string, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return "", false
	}
	lname, ok := baseIdent(lhs)
	if !ok {
		return "", false
	}
	aname, ok := baseIdent(call.Args[0])
	if !ok || aname != lname {
		return "", false
	}
	return lname, true
}

// baseIdent unwraps selectors and index expressions to the leftmost
// identifier: out, r.timeline, shares[n] all resolve to their base.
func baseIdent(e ast.Expr) (string, bool) {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name, true
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return "", false
		}
	}
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// qualifiedCalleeName is calleeName with the receiver or package qualifier
// kept when it is a plain identifier: sort.Slice, s.Write.
func qualifiedCalleeName(call *ast.CallExpr) (string, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return calleeName(call)
	}
	if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
		return x.Name + "." + fun.Sel.Name, true
	}
	return fun.Sel.Name, true
}

// sortedAfter reports whether a later statement passes the named slice to a
// sorting call ("sort" in the callee name, the slice anywhere in the
// arguments).
func sortedAfter(following []ast.Stmt, slice string) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return true
			}
			name, ok := qualifiedCalleeName(call)
			if !ok || !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && id.Name == slice {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
