package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// checkSpawnBound requires every `go` statement to be tied to a visible
// join, in the spirit of leakcheck's package-level pairing: a goroutine the
// package cannot wait for is a goroutine that outlives drains, leaks under
// test, and hides panics.
//
// A spawn is considered joined when the spawned body — the function literal
// of `go func(){...}()`, or the declaration of a same-package function or
// method (`go s.loop()`) — signals completion in a way the package
// observably consumes:
//
//   - it calls Done on a sync.WaitGroup and the package calls Wait (on the
//     same WaitGroup object when resolvable, any WaitGroup otherwise), or
//   - it sends on or closes a channel object that the package receives
//     from (<-ch, range ch, or a select case).
//
// Spawns of functions from other packages are opaque and reported unless
// the callee is named in cfg.SpawnJoinFuncs (sanctioned bounded-worker
// constructs whose join lives inside the construct).
func checkSpawnBound(pkg *Package, cfg Config) []Finding {
	if pkg.Info == nil || pkg.TypesPkg == nil {
		return nil
	}
	decls := funcDeclIndex(pkg)
	sanctioned := map[string]bool{}
	for _, k := range cfg.SpawnJoinFuncs {
		sanctioned[k] = true
	}

	// Pass 1: collect the package's join sinks — received-from channel
	// objects and waited-on WaitGroup objects.
	recvObjs := map[types.Object]bool{}
	waitObjs := map[types.Object]bool{}
	anyWait := false
	for _, f := range pkg.Files {
		if !cfg.SpawnBound.applies(f.Path, f.IsTest) {
			continue
		}
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					if obj := refObj(file, x.X); obj != nil {
						recvObjs[obj] = true
					}
				}
			case *ast.RangeStmt:
				if isChanType(file.TypeOf(x.X)) {
					if obj := refObj(file, x.X); obj != nil {
						recvObjs[obj] = true
					}
				}
			case *ast.CallExpr:
				fn, recv := resolveCall(file, x)
				if fn != nil && callKey(fn) == "sync.WaitGroup.Wait" {
					anyWait = true
					if obj := refObj(file, recv); obj != nil {
						waitObjs[obj] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: judge each go statement.
	var out []Finding
	for _, f := range pkg.Files {
		if !cfg.SpawnBound.applies(f.Path, f.IsTest) {
			continue
		}
		file := f
		ast.Inspect(f.AST, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			calleeName := ""
			if lit, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
				body = lit.Body
			} else if fn, _ := resolveCall(file, g.Call); fn != nil {
				calleeName = callKey(fn)
				if sanctioned[calleeName] {
					return true
				}
				if d, samePkg := decls[fn]; samePkg {
					body = d.Body
				}
			}
			if joined, why := spawnJoined(file, pkg, body, recvObjs, waitObjs, anyWait); !joined {
				msg := "go statement has no visible join: " + why
				if body == nil && calleeName != "" {
					msg = "go statement spawns " + calleeName + " from another package; its join is not visible here — wrap it in a closure that signals a WaitGroup or channel, or sanction it in the analysis config"
				}
				out = append(out, Finding{File: file.Path, Line: file.line(g.Pos()), Rule: RuleSpawnBound, Msg: msg})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// spawnJoined scans a spawned body for a completion signal the package
// consumes. The second return explains the failure for the diagnostic.
func spawnJoined(f *File, pkg *Package, body *ast.BlockStmt, recvObjs, waitObjs map[types.Object]bool, anyWait bool) (bool, string) {
	if body == nil {
		return false, "the goroutine must signal completion (WaitGroup.Done, or a channel send/close received elsewhere in the package)"
	}
	joined := false
	signalled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			signalled = true
			if obj := refObj(f, x.Chan); obj != nil && recvObjs[obj] {
				joined = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" && len(x.Args) == 1 {
					signalled = true
					if obj := refObj(f, x.Args[0]); obj != nil && recvObjs[obj] {
						joined = true
					}
					return true
				}
			}
			fn, recv := resolveCall(f, x)
			if fn != nil && callKey(fn) == "sync.WaitGroup.Done" {
				signalled = true
				// When the WaitGroup object is resolvable, demand a Wait on
				// that same object; the any-Wait fallback only covers
				// receivers we cannot resolve (e.g. chained expressions).
				if obj := refObj(f, recv); obj != nil {
					if waitObjs[obj] {
						joined = true
					}
				} else if anyWait {
					joined = true
				}
			}
		}
		return !joined
	})
	switch {
	case joined:
		return true, ""
	case signalled:
		return false, "the goroutine signals completion but nothing in this package waits for it (no matching WaitGroup.Wait or channel receive)"
	default:
		return false, "the goroutine never signals completion (no WaitGroup.Done, channel send, or close)"
	}
}
