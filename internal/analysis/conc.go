package analysis

// This file is the shared plumbing for the concurrency rules (locksafety,
// goroutinecapture, ctxflow, spawnbound). The module is deliberately
// dependency-free, so instead of golang.org/x/tools/go/ssa the rules walk
// the typed ASTs directly: a structured, path-splitting statement walk
// (lockWalker in locksafety.go) stands in for a basic-block CFG, and the
// helpers here resolve the questions SSA would have answered — which
// function does this call reach, which variable object does this receiver
// expression denote, does this type transitively embed a lock. The walk is
// intra-procedural with one package-local may-block summary fixpoint
// (blockSummary), which is exactly the depth the repo's call shapes need:
// the service's step loop reaches engine.Run.Step through one *Locked
// helper, not an arbitrary chain.

import (
	"go/ast"
	"go/types"
)

// resolveCall resolves a call expression to the *types.Func it invokes and,
// for method calls, the receiver expression. Calls through function-typed
// variables (callbacks, context.CancelFunc) resolve to nil: the rules treat
// them as opaque.
func resolveCall(f *File, call *ast.CallExpr) (fn *types.Func, recv ast.Expr) {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := f.Pkg.Info.Selections[fun]; sel != nil {
			if m, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return m, fun.X
			}
			return nil, nil
		}
		// Qualified identifier: pkg.Func.
		if m, ok := f.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return m, nil
		}
	case *ast.Ident:
		if m, ok := f.Pkg.Info.Uses[fun].(*types.Func); ok {
			return m, nil
		}
	}
	return nil, nil
}

// callKey renders a resolved function as "pkg.Func" or "pkg.Type.Method"
// using the package *name* (not path), so one config vocabulary covers the
// real module and the fixture tree alike.
func callKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Name() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecv(sig.Recv().Type()); named != nil {
			return key + named.Obj().Name() + "." + fn.Name()
		}
	}
	return key + fn.Name()
}

// refObj resolves a receiver or operand expression to the stable variable
// object it denotes: a local/package variable for identifiers, the field
// object for selector chains (s.mu resolves to the mu field, shared across
// every method of the type). Index expressions and calls return nil — a
// per-element lock is not trackable without SSA and the rules skip it.
func refObj(f *File, e ast.Expr) types.Object {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return f.Pkg.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel := f.Pkg.Info.Selections[x]; sel != nil {
			return sel.Obj()
		}
		return f.Pkg.Info.Uses[x.Sel]
	case *ast.StarExpr:
		return refObj(f, x.X)
	case *ast.UnaryExpr:
		return refObj(f, x.X)
	}
	return nil
}

// isNamedType reports whether t (after one pointer dereference) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// isMutex reports a sync.Mutex or sync.RWMutex (possibly behind a pointer).
func isMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// isContextType reports the context.Context interface.
func isContextType(t types.Type) bool { return isNamedType(t, "context", "Context") }

// containsLock reports whether a value of type t embeds synchronization
// state that must not be copied: sync.Mutex, sync.RWMutex, sync.Cond,
// sync.WaitGroup, sync.Once, directly or through nested struct fields.
// Pointers are fine — copying a pointer shares the lock.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	for _, name := range []string{"Mutex", "RWMutex", "Cond", "WaitGroup", "Once"} {
		if isNamedType(t, "sync", name) {
			// A pointer to a lock is copyable; isNamedType derefs one level,
			// so re-check that t itself is not a pointer.
			if _, ptr := t.(*types.Pointer); !ptr {
				return true
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if _, ptr := ft.(*types.Pointer); ptr {
			continue
		}
		if containsLockDepth(ft, depth+1) {
			return true
		}
	}
	return false
}

// isChanType reports a channel (possibly named).
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// funcDeclIndex maps each declared function of the package to its
// declaration, so rules can look one call level deep (a `go s.loop()`
// resolves to loop's body).
func funcDeclIndex(pkg *Package) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	if pkg.Info == nil {
		return idx
	}
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, d := range f.AST.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}

// directlyBlocks reports whether a function body contains a blocking
// operation itself: a channel send/receive, a range over a channel, a
// select without a default clause, sync.WaitGroup.Wait, or a call named in
// cfg.BlockingCalls. sync.Cond.Wait is exempt — it releases the associated
// mutex while parked, which is the sanctioned step-loop idiom. Function
// literals are skipped: a closure's blocking belongs to the goroutine that
// runs it.
func directlyBlocks(f *File, body *ast.BlockStmt, blocking map[string]bool) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			// Spawning does not block, and deferred work runs at exit.
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(f.TypeOf(x.X)) {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				found = true
			}
		case *ast.CallExpr:
			if kind, _ := classifyBlockingCall(f, x, blocking); kind != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// selectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if comm, ok := c.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// classifyBlockingCall reports whether a call is a known blocking call:
// "wait" for sync.WaitGroup.Wait, "call" for a cfg.BlockingCalls entry.
// The returned key names the callee for diagnostics.
func classifyBlockingCall(f *File, call *ast.CallExpr, blocking map[string]bool) (kind, key string) {
	fn, _ := resolveCall(f, call)
	if fn == nil {
		return "", ""
	}
	k := callKey(fn)
	if k == "sync.WaitGroup.Wait" {
		return "wait", k
	}
	if blocking[k] {
		return "call", k
	}
	return "", ""
}

// blockSummary computes the package-local may-block fixpoint: a function
// may block when its body directly blocks or when it calls a same-package
// function that may block. One level of indirection through function
// values is not chased.
func blockSummary(pkg *Package, cfg Config) map[*types.Func]bool {
	decls := funcDeclIndex(pkg)
	blocks := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, d := range f.AST.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if directlyBlocks(f, fd.Body, blockingSet(cfg)) {
				blocks[fn] = true
			}
			file := f
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee, _ := resolveCall(file, call); callee != nil {
						if _, samePkg := decls[callee]; samePkg {
							calls[fn] = append(calls[fn], callee)
						}
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if blocks[fn] {
				continue
			}
			for _, c := range callees {
				if blocks[c] {
					blocks[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return blocks
}

// blockingSet turns cfg.BlockingCalls into a lookup set.
func blockingSet(cfg Config) map[string]bool {
	set := make(map[string]bool, len(cfg.BlockingCalls))
	for _, k := range cfg.BlockingCalls {
		set[k] = true
	}
	return set
}
