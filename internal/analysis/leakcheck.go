package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// LeakPair names an acquire method and the release method that must balance
// it somewhere in the same package.
type LeakPair struct {
	Acquire string
	Release string
}

// checkLeakCheck enforces acquire/release balance for paired resource
// methods (Allocator.Put/Discard, Pin/Unpin). The granularity is the
// package: a package that acquires through a method pair's acquire side must
// release through its release side at least once, otherwise every acquire
// site is reported. This deliberately does not attempt path-sensitive
// matching — the engine releases on code paths far from the acquire — but it
// catches the bug class that actually happened: a package that pins
// partitions and never unpins any, leaving memory unevictable forever.
//
// Matching is type-accurate via go/types method selections: only calls of
// methods declared on a named type from another package count, and the
// receiver type must declare both sides of the pair. Interface receivers
// participate too — the engine acquires telemetry spans through the
// obs.Probe interface, not a concrete recorder. The declaring package
// itself is exempt (the allocator's own tests and helpers legitimately call
// Put without Discard).
func checkLeakCheck(pkg *Package, cfg Config) []Finding {
	if pkg.Info == nil || pkg.TypesPkg == nil {
		return nil
	}
	type key struct {
		pair int
		typ  string
	}
	acquires := map[key][]Finding{}
	released := map[key]bool{}
	for _, f := range pkg.Files {
		if !cfg.LeakCheck.applies(f.Path, f.IsTest) {
			continue
		}
		path := f.Path
		lineOf := f.line
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pkg.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			named := namedRecv(selection.Recv())
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg() == pkg.TypesPkg {
				return true
			}
			tname := named.Obj().Pkg().Name() + "." + named.Obj().Name()
			for i, pair := range cfg.LeakPairs {
				switch sel.Sel.Name {
				case pair.Acquire:
					if hasMethod(named, pair.Release) {
						k := key{i, tname}
						acquires[k] = append(acquires[k], Finding{
							File: path, Line: lineOf(call.Pos()), Rule: RuleLeakCheck,
							Msg: fmt.Sprintf("%s.%s acquired here is never released: no %s call on %s anywhere in this package", tname, pair.Acquire, pair.Release, tname),
						})
					}
				case pair.Release:
					released[key{i, tname}] = true
				}
			}
			return true
		})
	}
	var out []Finding
	for k, sites := range acquires {
		if !released[k] {
			out = append(out, sites...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// namedRecv unwraps a selection receiver to its named type, dereferencing
// one level of pointer.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasMethod reports whether the named type's method set declares a method
// with the given name. Concrete types are looked up through their pointer
// method set (value and pointer receivers alike); interfaces are looked up
// directly, since a pointer-to-interface has no methods at all.
func hasMethod(named *types.Named, name string) bool {
	recv := types.Type(types.NewPointer(named))
	if types.IsInterface(named) {
		recv = named
	}
	obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), name)
	_, ok := obj.(*types.Func)
	return ok
}
