package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkGoroutineCapture inspects every `go` statement that spawns a
// function literal and reports two capture hazards:
//
//   - Loop-variable capture: the closure references the induction variable
//     of an enclosing for/range statement instead of taking it as an
//     argument. Go ≥1.22 scopes these per iteration, but the module's
//     analysis rules are written against the portable pre-1.22 semantics
//     (one shared variable) and the explicit-argument form is required
//     either way — it makes the data flowing into the goroutine visible.
//   - Unsynchronized captured writes: the closure assigns to a variable
//     declared outside it with no synchronization edge in sight. A write is
//     considered published when the closure locks a mutex, sends on or
//     closes a channel after doing its work, or signals a
//     sync.WaitGroup.Done — each establishes a happens-before edge to the
//     reader. Without one, the write races with any read outside the
//     goroutine.
//
// `go f(x)` with a named function is safe by construction: arguments are
// evaluated at spawn time in the parent goroutine.
func checkGoroutineCapture(f *File, cfg Config) []Finding {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, d := range f.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, walkCaptures(f, fd.Body, map[types.Object]bool{})...)
	}
	return out
}

// walkCaptures descends the statement tree tracking which loop-variable
// objects are in scope, and analyzes every `go` statement it meets.
func walkCaptures(f *File, n ast.Node, loopVars map[types.Object]bool) []Finding {
	var out []Finding
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.RangeStmt:
			inner := cloneObjSet(loopVars)
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := f.Pkg.Info.Defs[id]; obj != nil {
						inner[obj] = true
					}
				}
			}
			out = append(out, walkCaptures(f, x.Body, inner)...)
			return false
		case *ast.ForStmt:
			inner := cloneObjSet(loopVars)
			if as, ok := x.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, e := range as.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := f.Pkg.Info.Defs[id]; obj != nil {
							inner[obj] = true
						}
					}
				}
			}
			out = append(out, walkCaptures(f, x.Body, inner)...)
			return false
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, checkSpawnedClosure(f, lit, loopVars)...)
			}
			// The arguments are evaluated in the parent goroutine; walk
			// them normally (they may contain nested closures).
			for _, a := range x.Call.Args {
				out = append(out, walkCaptures(f, a, loopVars)...)
			}
			return false
		}
		return true
	})
	return out
}

func cloneObjSet(s map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// checkSpawnedClosure reports loop-variable captures and unsynchronized
// captured writes inside one spawned closure.
func checkSpawnedClosure(f *File, lit *ast.FuncLit, loopVars map[types.Object]bool) []Finding {
	var out []Finding
	reportedLoop := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.Pkg.Info.Uses[id]
		if obj == nil || !loopVars[obj] || reportedLoop[obj] {
			return true
		}
		reportedLoop[obj] = true
		out = append(out, Finding{
			File: f.Path, Line: f.line(id.Pos()), Rule: RuleGoroutineCapture,
			Msg: fmt.Sprintf("goroutine closure captures loop variable %s by reference (shared under pre-Go1.22 semantics); pass it as an argument", obj.Name()),
		})
		return true
	})

	if closureHasSyncEdge(f, lit) {
		return out
	}
	reportedWrite := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch x := n.(type) {
		case *ast.FuncLit:
			if x != lit {
				return false // nested closures judged when they are spawned
			}
		case *ast.AssignStmt:
			targets = x.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{x.X}
		}
		for _, t := range targets {
			id, ok := ast.Unparen(t).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := f.Pkg.Info.Uses[id] // a := write would be Defs: local, fine
			if obj == nil || reportedWrite[obj] {
				continue
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() {
				continue
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				continue // declared inside the closure (params included)
			}
			reportedWrite[obj] = true
			out = append(out, Finding{
				File: f.Path, Line: f.line(id.Pos()), Rule: RuleGoroutineCapture,
				Msg: fmt.Sprintf("goroutine writes captured variable %s with no synchronization edge (mutex, channel send/close, or WaitGroup.Done); the write races with readers outside the goroutine", obj.Name()),
			})
		}
		return true
	})
	return out
}

// closureHasSyncEdge reports whether a spawned closure establishes any
// happens-before edge that could publish its writes: locking a mutex,
// sending on or closing a channel, or signalling WaitGroup.Done.
func closureHasSyncEdge(f *File, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := f.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					found = true
					return false
				}
			}
			fn, _ := resolveCall(f, x)
			if fn == nil {
				return true
			}
			switch callKey(fn) {
			case "sync.Mutex.Lock", "sync.RWMutex.Lock", "sync.RWMutex.RLock", "sync.WaitGroup.Done":
				found = true
			}
		}
		return !found
	})
	return found
}
