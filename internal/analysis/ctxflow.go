package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkCtxFlow enforces context discipline inside the library packages:
//
//   - A function that accepts a context.Context must thread it: calling a
//     callee that takes a context with a fresh context.Background()/TODO()
//     (or a nil context) severs the caller's cancellation path — the
//     engine's Options.Context deadline/drain machinery only works when
//     every hop passes the same tree.
//   - context.Background() and context.TODO() are banned outside package
//     main, tests, and the documented allowlist (cfg.CtxRootFuncs): a
//     library package that mints its own root silently detaches everything
//     below it from the caller's lifetime. Sanctioned roots — the service's
//     per-job roots, which are deliberately not parented on process signals
//     because drain grants a step budget — are named in the allowlist with
//     their justification in ARCHITECTURE.md.
func checkCtxFlow(f *File, cfg Config) []Finding {
	if f.Pkg == nil || f.Pkg.Info == nil || f.Pkg.Name == "main" || f.IsTest {
		return nil
	}
	allowed := map[string]bool{}
	for _, fn := range cfg.CtxRootFuncs {
		allowed[fn] = true
	}
	var out []Finding
	for _, d := range f.AST.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		hasCtxParam := funcHasCtxParam(f, fd)
		funcKey := f.Pkg.Dir + "." + fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := ctxRootCall(f, call); name != "" {
				if allowed[funcKey] {
					return true
				}
				msg := fmt.Sprintf("context.%s() in library code detaches callees from the caller's cancellation; accept and thread a ctx instead (sanctioned roots are allowlisted in the analysis config)", name)
				if hasCtxParam {
					msg = fmt.Sprintf("context.%s() although %s has a context parameter in scope; thread it instead of minting a fresh root", name, fd.Name.Name)
				}
				out = append(out, Finding{File: f.Path, Line: f.line(call.Pos()), Rule: RuleCtxFlow, Msg: msg})
				return true
			}
			out = append(out, checkNilCtxArg(f, fd, call, hasCtxParam)...)
			return true
		})
	}
	return out
}

// funcHasCtxParam reports whether the declaration takes a context.Context
// parameter.
func funcHasCtxParam(f *File, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(f.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// ctxRootCall returns "Background" or "TODO" when the call mints a fresh
// context root, else "".
func ctxRootCall(f *File, call *ast.CallExpr) string {
	fn, _ := resolveCall(f, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// checkNilCtxArg reports a literal nil passed at a context-typed parameter
// position of the callee while the caller has a context in scope.
func checkNilCtxArg(f *File, fd *ast.FuncDecl, call *ast.CallExpr, hasCtxParam bool) []Finding {
	if !hasCtxParam {
		return nil
	}
	sig, ok := typeAsSignature(f.TypeOf(call.Fun))
	if !ok || sig.Variadic() && len(call.Args) > sig.Params().Len() {
		return nil
	}
	var out []Finding
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent && id.Name == "nil" {
			out = append(out, Finding{
				File: f.Path, Line: f.line(arg.Pos()), Rule: RuleCtxFlow,
				Msg: fmt.Sprintf("nil passed for the context parameter although %s has a context in scope; thread it", fd.Name.Name),
			})
		}
	}
	return out
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}
