package analysis

import (
	"fmt"
	"go/ast"
)

// checkWallclock flags references to wall-clock time functions in the
// simulator packages. The discrete-event simulation runs entirely on
// virtual time (cluster resource timelines, Run.Now); a single time.Now or
// time.Sleep makes completion times depend on the host machine and breaks
// bit-identical replay.
func checkWallclock(f *File, cfg Config) []Finding {
	timeName := ""
	for name, path := range f.Imports {
		if path == "time" {
			timeName = name
		}
	}
	if timeName == "" {
		return nil
	}
	forbidden := map[string]bool{}
	for _, fn := range cfg.WallclockFuncs {
		forbidden[fn] = true
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || x.Name != timeName || !forbidden[sel.Sel.Name] {
			return true
		}
		out = append(out, Finding{
			File: f.Path,
			Line: f.line(sel.Pos()),
			Rule: RuleWallclock,
			Msg: fmt.Sprintf("%s.%s reads the wall clock; simulator packages must use virtual time only",
				timeName, sel.Sel.Name),
		})
		return true
	})
	return out
}
