package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkUnitSafety enforces the simulator's unit discipline around the named
// quantity types sim.VTime (virtual seconds) and sim.Bytes (data volume).
// Three sub-checks:
//
//  1. Naming: exported function parameters/results and exported struct
//     fields whose name announces a unit (t, dur, elapsed, ...Sec for time;
//     bytes, capacity, ...Bytes for volume) must be declared with the unit
//     type, not plain float64/int64. A raw number in an exported signature
//     is exactly where units get lost across a package boundary.
//  2. Mixing: no arithmetic expression may combine a VTime-carrying operand
//     with a Bytes-carrying one. Units are traced through parentheses,
//     unary operators and conversions to basic types — so laundering a
//     quantity through float64(...) does not hide it — but not through
//     other calls, which are treated as unit boundaries.
//  3. Conversions: converting an expression that carries one unit into the
//     other unit type is flagged. `sim.VTime(float64(b) / bw)` is a
//     dimensional error everywhere except the cluster cost model.
//
// Sub-checks 2 and 3 are suspended inside cfg.UnitExemptDirs: the cluster
// cost model is the one sanctioned place where bytes become seconds
// (bandwidth division), and Bytes.MB() is the sanctioned way to obtain a
// dimensionless magnitude — its method call is a unit boundary by rule.
func checkUnitSafety(f *File, cfg Config) []Finding {
	out := unitNameFindings(f)
	if !underAnyDir(f.Path, cfg.UnitExemptDirs) {
		out = append(out, unitFlowFindings(f)...)
	}
	return out
}

// underAnyDir reports whether relPath is inside one of the directories,
// with the same prefix semantics as RuleScope.
func underAnyDir(relPath string, dirs []string) bool {
	for _, d := range dirs {
		if relPath == d || strings.HasPrefix(relPath, d+"/") {
			return true
		}
	}
	return false
}

// Identifier vocabulary of the naming sub-check. Matching is on the
// lowercased name: exact names for the short conventional spellings,
// suffixes for compounds (readySec, CheckpointedBytes).
var (
	timeExactNames = map[string]bool{
		"t": true, "now": true, "start": true, "end": true, "ready": true,
		"dur": true, "elapsed": true, "deadline": true, "vt": true,
	}
	timeSuffixes   = []string{"sec", "secs", "seconds", "duration", "time"}
	byteExactNames = map[string]bool{"bytes": true, "capacity": true}
)

// unitWanted maps an identifier and its declared raw type to the unit type
// the name calls for, or "" when the pair is unsuspicious.
func unitWanted(name, rawType string) string {
	l := strings.ToLower(name)
	switch rawType {
	case "float64":
		if timeExactNames[l] {
			return "sim.VTime"
		}
		for _, s := range timeSuffixes {
			if strings.HasSuffix(l, s) {
				return "sim.VTime"
			}
		}
	case "int64":
		if byteExactNames[l] || strings.HasSuffix(l, "bytes") {
			return "sim.Bytes"
		}
	}
	return ""
}

// unitNameFindings implements the naming sub-check over a file's exported
// declarations. It is purely syntactic (the raw type must be spelled
// float64/int64 in the source), so it also works without type information.
func unitNameFindings(f *File) []Finding {
	var out []Finding
	flagList := func(kind, owner string, fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			id, ok := field.Type.(*ast.Ident)
			if !ok {
				continue
			}
			for _, name := range field.Names {
				if !ast.IsExported(name.Name) && kind == "field" {
					continue
				}
				if want := unitWanted(name.Name, id.Name); want != "" {
					out = append(out, Finding{
						File: f.Path, Line: f.line(name.Pos()), Rule: RuleUnitSafety,
						Msg: fmt.Sprintf("%s %q of %s is a plain %s; declare it %s so the unit travels with the value", kind, name.Name, owner, id.Name, want),
					})
				}
			}
		}
	}
	for _, decl := range f.AST.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			owner := "exported func " + d.Name.Name
			flagList("parameter", owner, d.Type.Params)
			flagList("result", owner, d.Type.Results)
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					flagList("field", "exported struct "+ts.Name.Name, st.Fields)
				}
			}
		}
	}
	return out
}

// unitFlowFindings implements the mixing and conversion sub-checks, which
// need resolved types; files without type information yield nothing.
func unitFlowFindings(f *File) []Finding {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			default:
				return true
			}
			ux, uy := exprUnit(f, e.X), exprUnit(f, e.Y)
			if ux != "" && uy != "" && ux != uy {
				out = append(out, Finding{
					File: f.Path, Line: f.line(e.OpPos), Rule: RuleUnitSafety,
					Msg: fmt.Sprintf("expression mixes %s and %s operands; cross units only through the cluster cost model or Bytes.MB", ux, uy),
				})
			}
		case *ast.CallExpr:
			if len(e.Args) != 1 || !isTypeConversion(f, e) {
				return true
			}
			target := unitTypeName(f.TypeOf(e))
			if target == "" {
				return true
			}
			other := "VTime"
			if target == "VTime" {
				other = "Bytes"
			}
			if containsUnit(f, e.Args[0], other) {
				out = append(out, Finding{
					File: f.Path, Line: f.line(e.Pos()), Rule: RuleUnitSafety,
					Msg: fmt.Sprintf("conversion to %s wraps an expression carrying %s; only the cluster cost model may turn one unit into the other", target, other),
				})
			}
		}
		return true
	})
	return out
}

// unitTypeName reports which unit a resolved type is: "VTime", "Bytes", or
// "" for everything else. Units are recognised by the named type's name so
// the rule works for any package that declares them (the simulator's
// internal/sim, the test fixtures' own sim package).
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if name != "VTime" && name != "Bytes" {
		return ""
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return ""
	}
	return name
}

// isTypeConversion reports whether call is a type conversion rather than a
// function or method call.
func isTypeConversion(f *File, call *ast.CallExpr) bool {
	if f.Pkg == nil || f.Pkg.Info == nil {
		return false
	}
	tv, ok := f.Pkg.Info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// exprUnit returns the unit an expression carries: its own type's unit, or
// the unit visible through parentheses, unary operators and conversions to
// non-unit basic types. Calls (including methods like Bytes.MB) and binary
// expressions are boundaries: their results carry only their own type.
func exprUnit(f *File, e ast.Expr) string {
	e = ast.Unparen(e)
	if u := unitTypeName(f.TypeOf(e)); u != "" {
		return u
	}
	switch v := e.(type) {
	case *ast.UnaryExpr:
		return exprUnit(f, v.X)
	case *ast.CallExpr:
		if len(v.Args) == 1 && isTypeConversion(f, v) {
			return exprUnit(f, v.Args[0])
		}
	}
	return ""
}

// containsUnit reports whether the expression tree carries the given unit
// anywhere reachable through parentheses, unary and binary operators, and
// type conversions. Non-conversion calls terminate the search: a method or
// function result is a new quantity with its own unit.
func containsUnit(f *File, e ast.Expr, want string) bool {
	e = ast.Unparen(e)
	if unitTypeName(f.TypeOf(e)) == want {
		return true
	}
	switch v := e.(type) {
	case *ast.UnaryExpr:
		return containsUnit(f, v.X, want)
	case *ast.BinaryExpr:
		return containsUnit(f, v.X, want) || containsUnit(f, v.Y, want)
	case *ast.CallExpr:
		if len(v.Args) == 1 && isTypeConversion(f, v) {
			return containsUnit(f, v.Args[0], want)
		}
	}
	return false
}
