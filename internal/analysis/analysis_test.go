package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig maps the default policy onto the fixture tree: each rule
// gets the fixture package exercising it.
func fixtureConfig() Config {
	cfg := DefaultConfig()
	cfg.Wallclock.Dirs = []string{"sim"}
	cfg.SeededRand = RuleScope{Dirs: []string{"randuse"}, IncludeTests: true}
	cfg.MapOrder = RuleScope{Dirs: []string{"maporder"}}
	cfg.DroppedErr = RuleScope{Dirs: []string{"droppederr"}}
	cfg.UnitSafety = RuleScope{Dirs: []string{"unitsafety"}}
	cfg.UnitExemptDirs = []string{"unitsafety/costmodel"}
	cfg.LeakCheck = RuleScope{Dirs: []string{"leakcheck"}}
	cfg.LockSafety = RuleScope{Dirs: []string{"locksafety"}}
	cfg.GoroutineCapture = RuleScope{Dirs: []string{"goroutinecapture"}}
	cfg.CtxFlow = RuleScope{Dirs: []string{"ctxflow"}}
	cfg.SpawnBound = RuleScope{Dirs: []string{"spawnbound"}}
	cfg.CtxRootFuncs = []string{"ctxflow.sanctionedRoot"}
	cfg.SpawnJoinFuncs = []string{"nowait.Pool"}
	return cfg
}

var wantRe = regexp.MustCompile(`// want:([a-z,]+)`)

// wantMarkers scans the fixture sources for `// want:<rule>` markers and
// returns the expected "file:line:rule" set.
func wantMarkers(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, rule := range strings.Split(m[1], ",") {
				want[fmt.Sprintf("%s:%d:%s", rel, line, rule)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures runs the suite over the fixture tree and requires the
// findings to match the // want markers exactly — no misses, no extras.
// The marker-free //lint:allow lines double as the suppression tests.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	m, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if m.Path != "fixture" {
		t.Fatalf("module path = %q, want fixture", m.Path)
	}
	findings := Run(m, fixtureConfig())

	got := map[string]bool{}
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)] = true
	}
	want := wantMarkers(t, root)
	if len(want) == 0 {
		t.Fatal("no want markers found; fixture tree missing?")
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing finding %s", key)
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Rule)
		if !want[key] {
			t.Errorf("unexpected finding %s", f)
		}
	}
	if t.Failed() {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Logf("all findings:\n%s", strings.Join(lines, "\n"))
	}
}

// TestFixturesDetectViolations is the exit-code contract in miniature: a
// tree with violations must produce findings (mdflint exits nonzero on
// any), and per-rule runs must catch their own rule.
func TestFixturesDetectViolations(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range Rules() {
		cfg := fixtureConfig()
		cfg.Rules = []string{rule}
		findings := Run(m, cfg)
		if len(findings) == 0 {
			t.Errorf("rule %s found nothing in its fixture", rule)
		}
		for _, f := range findings {
			if f.Rule != rule {
				t.Errorf("rule filter %s produced finding for %s: %s", rule, f.Rule, f)
			}
		}
	}
}

// TestRepoIsClean locks the acceptance criterion in place: the repository
// itself must stay free of findings under the default policy. If this test
// fails, fix the violation or justify it with a //lint:allow comment.
func TestRepoIsClean(t *testing.T) {
	m, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if m.Path != "metadataflow" {
		t.Fatalf("module path = %q, want metadataflow", m.Path)
	}
	findings, stale := Analyze(m, DefaultConfig())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	for _, s := range stale {
		t.Errorf("%s", s)
	}
}

// TestStaleAllows runs the suppression audit over the fixture tree: exactly
// the stalecheck directives — one for a clean line, one for a rule name
// that does not exist — are stale; every other fixture allow is
// load-bearing and must not appear.
func TestStaleAllows(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	_, stale := Analyze(m, fixtureConfig())
	var got []string
	for _, s := range stale {
		got = append(got, s.String())
	}
	want := []string{
		"stalecheck/stalecheck.go:8: stale //lint:allow locksafety: suppresses no finding",
		"stalecheck/stalecheck.go:14: stale //lint:allow locksafty: suppresses no finding",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("stale allows:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestStaleAllowsRespectRuleSubset: restricting the run with -rules must
// not condemn another rule's directive — its findings were never produced,
// so the directive may well be load-bearing. Unknown rule names can never
// suppress and stay stale regardless of the subset.
func TestStaleAllowsRespectRuleSubset(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	cfg.Rules = []string{RuleMapOrder}
	_, stale := Analyze(m, cfg)
	var got []string
	for _, s := range stale {
		got = append(got, s.String())
	}
	want := []string{
		"stalecheck/stalecheck.go:14: stale //lint:allow locksafty: suppresses no finding",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("stale allows under -rules maporder:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestStaleAllowJSON pins the machine-readable schema `mdflint -json
// -stale-allows` emits for audit entries.
func TestStaleAllowJSON(t *testing.T) {
	s := StaleAllow{File: "internal/engine/exec.go", Line: 7, Rule: RuleLockSafety}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/engine/exec.go","line":7,"rule":"locksafety"}`
	if string(data) != want {
		t.Fatalf("Marshal = %s, want %s", data, want)
	}
}

// TestFindingString pins the diagnostic format the Makefile and editors
// parse.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/engine/exec.go", Line: 42, Rule: RuleMapOrder, Msg: "boom"}
	want := "internal/engine/exec.go:42: [maporder] boom"
	if f.String() != want {
		t.Fatalf("String() = %q, want %q", f.String(), want)
	}
}

// TestFindingJSON pins the machine-readable schema `mdflint -json` emits:
// one object per finding with exactly these field names.
func TestFindingJSON(t *testing.T) {
	f := Finding{File: "internal/engine/exec.go", Line: 42, Rule: RuleUnitSafety, Msg: "boom"}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/engine/exec.go","line":42,"rule":"unitsafety","msg":"boom"}`
	if string(data) != want {
		t.Fatalf("Marshal = %s, want %s", data, want)
	}
}

// TestFindingsSorted checks the deterministic output order: a linter about
// determinism ought to report deterministically.
func TestFindingsSorted(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, fixtureConfig())
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	if !sorted {
		t.Fatal("findings are not sorted by file, line, rule")
	}
}
