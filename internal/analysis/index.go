package analysis

import (
	"go/ast"
	"go/token"
)

// The index answers type questions syntactically: every function, method,
// interface method, named type and package-level variable of the module is
// recorded with the file it was declared in, so a type expression can later
// be resolved through that file's import table. No package is compiled; when
// a question cannot be answered the resolver returns "unknown" and the
// analyzers stay silent rather than guess.

// funcInfo is a function, method or interface-method declaration.
type funcInfo struct {
	ft   *ast.FuncType
	file *File
}

// typeInfo is a named type declaration.
type typeInfo struct {
	expr ast.Expr
	file *File
}

// typeRef is a type expression plus the file whose import table resolves
// the identifiers inside it. A nil expr means the type is unknown.
type typeRef struct {
	expr ast.Expr
	file *File
}

func (t typeRef) known() bool { return t.expr != nil }

// buildIndex populates each package's declaration maps.
func (m *Module) buildIndex() {
	for _, pkg := range m.Packages {
		pkg.funcs = map[string]*funcInfo{}
		pkg.methods = map[string][]*funcInfo{}
		pkg.types = map[string]*typeInfo{}
		pkg.vars = map[string]typeRef{}
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					info := &funcInfo{ft: d.Type, file: f}
					if d.Recv != nil {
						pkg.methods[d.Name.Name] = append(pkg.methods[d.Name.Name], info)
					} else {
						pkg.funcs[d.Name.Name] = info
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							pkg.types[s.Name.Name] = &typeInfo{expr: s.Type, file: f}
							if iface, ok := s.Type.(*ast.InterfaceType); ok {
								for _, field := range iface.Methods.List {
									ft, ok := field.Type.(*ast.FuncType)
									if !ok {
										continue
									}
									for _, name := range field.Names {
										pkg.methods[name.Name] = append(pkg.methods[name.Name], &funcInfo{ft: ft, file: f})
									}
								}
							}
						case *ast.ValueSpec:
							if d.Tok != token.VAR {
								continue
							}
							for i, name := range s.Names {
								if name.Name == "_" {
									continue
								}
								if s.Type != nil {
									pkg.vars[name.Name] = typeRef{expr: s.Type, file: f}
								} else if i < len(s.Values) {
									pkg.vars[name.Name] = literalType(s.Values[i], f)
								}
							}
						}
					}
				}
			}
		}
	}
}

// pkgForImport resolves an import path to a module package, or nil.
func (m *Module) pkgForImport(path string) *Package { return m.byImportPath[path] }

// methodsNamed returns every method (or interface method) of the module
// with the given name.
func (m *Module) methodsNamed(name string) []*funcInfo {
	var out []*funcInfo
	for _, pkg := range m.Packages {
		out = append(out, pkg.methods[name]...)
	}
	return out
}

// resultTypes flattens a function type's results into one typeRef per
// returned value.
func resultTypes(ft *ast.FuncType, file *File) []typeRef {
	if ft.Results == nil {
		return nil
	}
	var out []typeRef
	for _, field := range ft.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, typeRef{expr: field.Type, file: file})
		}
	}
	return out
}

// stdlibErrLast lists standard-library functions whose last result is an
// error, keyed by import path and name, with the total result count. Only
// functions whose dropped error is a real bug belong here.
var stdlibErrLast = map[string]map[string]int{
	"os": {
		"ReadFile": 2, "WriteFile": 1, "MkdirAll": 1, "Mkdir": 1,
		"Remove": 1, "RemoveAll": 1, "Rename": 1, "Create": 2, "Open": 2,
		"Chdir": 1, "Setenv": 1,
	},
	"strconv": {
		"Atoi": 2, "ParseFloat": 2, "ParseInt": 2, "ParseUint": 2, "ParseBool": 2,
	},
	"encoding/json": {"Marshal": 2, "MarshalIndent": 2, "Unmarshal": 1},
	"io":            {"Copy": 2, "ReadAll": 2, "WriteString": 2},
}

// errorIdent is the pseudo type expression used for results known to be
// errors only through the stdlib table.
var errorIdent = &ast.Ident{Name: "error"}

// callResults resolves the result types of a call expression, best-effort.
// The boolean reports whether the callee was resolved at all; an unresolved
// callee yields (nil, false) and the caller must stay silent.
func (m *Module) callResults(call *ast.CallExpr, file *File) ([]typeRef, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if info, ok := file.Pkg.funcs[fun.Name]; ok {
			return resultTypes(info.ft, info.file), true
		}
		return nil, false
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if path, isImport := file.Imports[x.Name]; isImport {
				if pkg := m.pkgForImport(path); pkg != nil {
					if info, ok := pkg.funcs[fun.Sel.Name]; ok {
						return resultTypes(info.ft, info.file), true
					}
					return nil, false
				}
				if sigs, ok := stdlibErrLast[path]; ok {
					if n, ok := sigs[fun.Sel.Name]; ok {
						out := make([]typeRef, n)
						out[n-1] = typeRef{expr: errorIdent, file: file}
						return out, true
					}
				}
				return nil, false
			}
		}
		// A method call: without the receiver's type, use every method of
		// that name in the module — but only when they all agree on the
		// result shape, so a mixed bag cannot produce a wrong answer.
		return m.agreeingMethodResults(fun.Sel.Name)
	}
	return nil, false
}

// agreeingMethodResults returns the shared result shape of every module
// method named name: same arity, and "error"-ness agreeing position by
// position. Positions whose concrete types differ come back with a known
// error identity but an unknown type expression.
func (m *Module) agreeingMethodResults(name string) ([]typeRef, bool) {
	cands := m.methodsNamed(name)
	if len(cands) == 0 {
		return nil, false
	}
	var agreed []typeRef
	for i, c := range cands {
		rs := resultTypes(c.ft, c.file)
		if i == 0 {
			agreed = append([]typeRef(nil), rs...)
			continue
		}
		if len(rs) != len(agreed) {
			return nil, false
		}
		for j := range rs {
			if isErrorType(rs[j]) != isErrorType(agreed[j]) {
				return nil, false
			}
			if !sameTypeExpr(rs[j].expr, agreed[j].expr) {
				// Keep the error verdict, drop the concrete type.
				if isErrorType(agreed[j]) {
					agreed[j] = typeRef{expr: errorIdent, file: agreed[j].file}
				} else {
					agreed[j] = typeRef{file: agreed[j].file}
				}
			}
		}
	}
	return agreed, true
}

// sameTypeExpr compares two type expressions structurally (identifiers and
// selectors only; anything deeper is considered different unless identical
// by shape).
func sameTypeExpr(a, b ast.Expr) bool {
	switch at := a.(type) {
	case *ast.Ident:
		bt, ok := b.(*ast.Ident)
		return ok && at.Name == bt.Name
	case *ast.SelectorExpr:
		bt, ok := b.(*ast.SelectorExpr)
		if !ok || at.Sel.Name != bt.Sel.Name {
			return false
		}
		return sameTypeExpr(at.X, bt.X)
	case *ast.StarExpr:
		bt, ok := b.(*ast.StarExpr)
		return ok && sameTypeExpr(at.X, bt.X)
	case *ast.ArrayType:
		bt, ok := b.(*ast.ArrayType)
		return ok && at.Len == nil && bt.Len == nil && sameTypeExpr(at.Elt, bt.Elt)
	case *ast.MapType:
		bt, ok := b.(*ast.MapType)
		return ok && sameTypeExpr(at.Key, bt.Key) && sameTypeExpr(at.Value, bt.Value)
	}
	return false
}

// isErrorType reports whether a type expression is the predeclared error
// type.
func isErrorType(t typeRef) bool {
	id, ok := t.expr.(*ast.Ident)
	return ok && id.Name == "error"
}

// underlying resolves a type reference through named types (one package hop
// per step, bounded) down to its structural form.
func (m *Module) underlying(t typeRef) typeRef {
	for depth := 0; depth < 8 && t.known(); depth++ {
		switch e := ast.Unparen(t.expr).(type) {
		case *ast.StarExpr:
			t = typeRef{expr: e.X, file: t.file}
		case *ast.Ident:
			info, ok := t.file.Pkg.types[e.Name]
			if !ok {
				return t
			}
			t = typeRef{expr: info.expr, file: info.file}
		case *ast.SelectorExpr:
			x, ok := ast.Unparen(e.X).(*ast.Ident)
			if !ok {
				return typeRef{}
			}
			path, isImport := t.file.Imports[x.Name]
			if !isImport {
				return typeRef{}
			}
			pkg := m.pkgForImport(path)
			if pkg == nil {
				return typeRef{}
			}
			info, ok := pkg.types[e.Sel.Name]
			if !ok {
				return typeRef{}
			}
			t = typeRef{expr: info.expr, file: info.file}
		default:
			return t
		}
	}
	return t
}

// isMapType reports whether the resolved type is a map.
func (m *Module) isMapType(t typeRef) bool {
	u := m.underlying(t)
	if !u.known() {
		return false
	}
	_, ok := ast.Unparen(u.expr).(*ast.MapType)
	return ok
}

// isFloatType reports whether the resolved type is float32 or float64.
func (m *Module) isFloatType(t typeRef) bool {
	u := m.underlying(t)
	if !u.known() {
		return false
	}
	id, ok := ast.Unparen(u.expr).(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// fieldType looks up a field of a (possibly pointer-to) struct type.
func (m *Module) fieldType(structT typeRef, name string) typeRef {
	u := m.underlying(structT)
	if !u.known() {
		return typeRef{}
	}
	st, ok := ast.Unparen(u.expr).(*ast.StructType)
	if !ok {
		return typeRef{}
	}
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return typeRef{expr: field.Type, file: u.file}
			}
		}
	}
	return typeRef{}
}

// literalType infers a type reference from a value expression that carries
// its type syntactically: make(T, ...), T{...}, &T{...}, new(T), basic
// literals.
func literalType(e ast.Expr, file *File) typeRef {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && len(v.Args) > 0 {
			if id.Name == "make" || id.Name == "new" {
				return typeRef{expr: v.Args[0], file: file}
			}
		}
	case *ast.CompositeLit:
		if v.Type != nil {
			return typeRef{expr: v.Type, file: file}
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return literalType(v.X, file)
		}
	case *ast.BasicLit:
		switch v.Kind {
		case token.FLOAT:
			return typeRef{expr: &ast.Ident{Name: "float64"}, file: file}
		case token.INT:
			return typeRef{expr: &ast.Ident{Name: "int"}, file: file}
		case token.STRING:
			return typeRef{expr: &ast.Ident{Name: "string"}, file: file}
		}
	}
	return typeRef{}
}

// scope carries the best-effort types of the identifiers visible inside one
// function.
type scope struct {
	m     *Module
	file  *File
	types map[string]typeRef
}

// newScope builds the identifier-type table of fn: receiver, parameters,
// named results, and every var declaration or := definition in the body
// whose type is syntactically evident. Shadowing inside nested blocks is
// not modelled — mdflint is a heuristic linter, and the escape comment
// covers the pathological cases.
func newScope(m *Module, file *File, fn *ast.FuncDecl) *scope {
	s := &scope{m: m, file: file, types: map[string]typeRef{}}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, n := range field.Names {
				s.types[n.Name] = typeRef{expr: field.Type, file: file}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	addFields(fn.Type.Results)
	if fn.Body == nil {
		return s
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if vs.Type != nil {
						s.types[name.Name] = typeRef{expr: vs.Type, file: file}
					} else if i < len(vs.Values) {
						s.set(name.Name, s.exprType(vs.Values[i]))
					}
				}
			}
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				return true
			}
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
					if results, ok := s.m.callResults(call, s.file); ok && len(results) == len(st.Lhs) {
						for i, lhs := range st.Lhs {
							if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
								s.set(id.Name, results[i])
							}
						}
					}
				}
				return true
			}
			if len(st.Rhs) == len(st.Lhs) {
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						s.set(id.Name, s.exprType(st.Rhs[i]))
					}
				}
			}
		}
		return true
	})
	return s
}

// set records a type for name unless one is already known (the first
// definition wins; reassignments do not change a variable's type).
func (s *scope) set(name string, t typeRef) {
	if !t.known() {
		return
	}
	if _, ok := s.types[name]; !ok {
		s.types[name] = t
	}
}

// exprType resolves the type of an expression, best-effort.
func (s *scope) exprType(e ast.Expr) typeRef {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if t, ok := s.types[v.Name]; ok {
			return t
		}
		if t, ok := s.file.Pkg.vars[v.Name]; ok {
			return t
		}
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(v.X).(*ast.Ident); ok {
			if path, isImport := s.file.Imports[x.Name]; isImport {
				if pkg := s.m.pkgForImport(path); pkg != nil {
					if t, ok := pkg.vars[v.Sel.Name]; ok {
						return t
					}
				}
				return typeRef{}
			}
		}
		return s.m.fieldType(s.exprType(v.X), v.Sel.Name)
	case *ast.CallExpr:
		if results, ok := s.m.callResults(v, s.file); ok && len(results) > 0 {
			return results[0]
		}
		return literalType(e, s.file)
	case *ast.IndexExpr:
		container := s.m.underlying(s.exprType(v.X))
		if !container.known() {
			return typeRef{}
		}
		switch c := ast.Unparen(container.expr).(type) {
		case *ast.MapType:
			return typeRef{expr: c.Value, file: container.file}
		case *ast.ArrayType:
			return typeRef{expr: c.Elt, file: container.file}
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return s.exprType(v.X)
		}
	default:
		return literalType(e, s.file)
	}
	return typeRef{}
}
