// Package kinds provides the cross-package types the maporder fixture
// resolves through the module index.
package kinds

// Registry carries a map field behind a named struct type.
type Registry struct {
	Entries map[string]int
}

// Table is a named map type.
type Table map[string]float64

// NewTable returns a named map — callers ranging over the result are
// ranging over a map.
func NewTable() Table { return Table{} }
