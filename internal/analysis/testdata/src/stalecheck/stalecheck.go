// Package stalecheck exercises the stale-suppression audit: no directive in
// this file suppresses anything, so every one must be reported by
// Analyze's second result (and none may turn into a finding).
package stalecheck

// Clean carries an allow for a rule that finds nothing on this line.
func Clean() int {
	x := 1 //lint:allow locksafety -- stale: the copy it once excused is gone
	return x
}

// Typo carries a rule name that does not exist; it can never suppress.
func Typo() int {
	return 2 //lint:allow locksafty
}
