package locksafety

// allowedHold documents a deliberate hold-across-send with a suppression.
func allowedHold(s *S) {
	s.mu.Lock()
	s.ch <- 1 //lint:allow locksafety -- handshake channel is buffered; send cannot park
	s.mu.Unlock()
}
