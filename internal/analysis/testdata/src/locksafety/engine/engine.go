// Package engine is the fixture stand-in for the real engine: its Run.Step
// and Run.RunToCompletion match the BlockingCalls config entries
// ("engine.Run.Step" keys on the package *name*, so the fixture and the
// real module share one vocabulary).
package engine

// Run mimics the engine's run handle.
type Run struct{ n int }

// Step executes one stage of real operator compute.
func (r *Run) Step() bool { r.n++; return r.n < 3 }

// RunToCompletion drives Step to the end.
func (r *Run) RunToCompletion() {
	for r.Step() {
	}
}
