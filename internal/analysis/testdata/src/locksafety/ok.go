package locksafety

import "sync"

// okPlain is the canonical critical section: lock, touch state, unlock.
func okPlain(s *S) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// okDefer releases via defer with no blocking op in between.
func okDefer(s *S) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// okReleaseBeforeBlock drops the lock before parking — the pattern the
// rule pushes real code toward.
func okReleaseBeforeBlock(s *S) {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	s.ch <- v
}

// okBranches unlocks on every arm, so the merge is balanced.
func okBranches(s *S, b bool) {
	s.mu.Lock()
	if b {
		s.n++
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
}

// okSelectDefault never parks: select with default is non-blocking.
func okSelectDefault(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// okCondWait is the sanctioned step-loop idiom: Cond.Wait releases the
// associated mutex while parked, so holding across it is fine.
type waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func okCondWait(w *waiter) {
	w.mu.Lock()
	for w.n == 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// incLocked follows the *Locked helper convention: the caller holds the
// lock, and the naked Unlock/Lock pairing inside is never flagged.
func (s *S) incLocked() { s.n++ }

func okLockedHelper(s *S) {
	s.mu.Lock()
	s.incLocked()
	s.mu.Unlock()
}

// okRead takes the read side and releases it on both paths.
func okRead(s *S, b bool) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	if b {
		return s.n
	}
	return -s.n
}

// okPointerCopy copies a *Box, not the Box — pointers don't copy locks.
func okPointerCopy(b *Box) *Box {
	p := b
	return p
}

// okBlank discards a lock-carrying value without copying it anywhere.
func okBlank(b *Box) {
	_ = *b
}

// okSpawnNotBlocking: spawning a goroutine that blocks is not itself a
// blocking op for the spawner.
func okSpawnNotBlocking(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { <-s.ch }()
}
