// Package locksafety is the violating fixture for the locksafety rule:
// locks held across blocking operations, unbalanced paths, self-deadlocks
// and copied lock values.
package locksafety

import (
	"sync"

	"fixture/locksafety/engine"
)

// S is the guarded state every case operates on.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	r  *engine.Run
	n  int
}

// HeldAcrossSend blocks on a channel send inside the critical section.
func HeldAcrossSend(s *S) {
	s.mu.Lock()
	s.ch <- 1 // want:locksafety
	s.mu.Unlock()
}

// HeldAcrossRecv holds via defer across a channel receive.
func HeldAcrossRecv(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want:locksafety
}

// HeldAcrossWait parks on a WaitGroup with the lock held.
func HeldAcrossWait(s *S) {
	s.mu.Lock()
	s.wg.Wait() // want:locksafety
	s.mu.Unlock()
}

// HeldAcrossStep runs real operator compute under the lock (the configured
// blocking call engine.Run.Step).
func HeldAcrossStep(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Step() // want:locksafety
}

// HeldAcrossSelect parks on a select with no default.
func HeldAcrossSelect(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want:locksafety
	case v := <-s.ch:
		s.n = v
	}
}

// HeldAcrossHelper reaches a blocking channel receive through a
// same-package helper (the may-block summary fixpoint).
func HeldAcrossHelper(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recvHelper() // want:locksafety
}

func (s *S) recvHelper() { s.n = <-s.ch }

// DoubleLock re-locks a mutex already held on the same path.
func DoubleLock(s *S) {
	s.mu.Lock()
	s.mu.Lock() // want:locksafety
	s.mu.Unlock()
	s.mu.Unlock()
}

// RLockWhileLocked read-locks an RWMutex already write-held.
func RLockWhileLocked(s *S) {
	s.rw.Lock()
	s.rw.RLock() // want:locksafety
	s.rw.RUnlock()
	s.rw.Unlock()
}

// ReturnHeld returns with the lock held on the early path.
func ReturnHeld(s *S, b bool) int {
	s.mu.Lock()
	if b {
		return 1 // want:locksafety
	}
	s.mu.Unlock()
	return 0
}

// BranchImbalance unlocks on one arm only; the merge point is reported.
func BranchImbalance(s *S, b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	} // want:locksafety
	s.n++
	s.mu.Unlock()
}

// LoopImbalance acquires once per iteration and never releases.
func LoopImbalance(s *S, n int) {
	for i := 0; i < n; i++ { // want:locksafety
		s.mu.Lock()
	}
}

// ExitHeld falls off the end of the function with the lock held.
func ExitHeld(s *S) {
	s.mu.Lock()
	s.n++
} // want:locksafety

// Box pairs a lock with the data it guards; copying it copies the lock.
type Box struct {
	mu sync.Mutex
	n  int
}

// CopyAssign copies the whole lock-carrying struct.
func CopyAssign(b *Box) int {
	v := *b // want:locksafety
	return v.n
}

// ByValue copies the receiver — and its mutex — on every call.
func (b Box) ByValue() int { // want:locksafety
	return b.n
}
