package ctxflow

import (
	"context"
	"time"
)

// okThread passes the received context straight through.
func okThread(ctx context.Context) error {
	return worker(ctx)
}

// okDerive derives from the received context — the cancellation tree stays
// connected.
func okDerive(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return worker(ctx)
}

// sanctionedRoot is the documented allowlist entry (cfg.CtxRootFuncs):
// mirrors the service's per-job roots, which are deliberately not parented
// on process signals because drain grants a step budget before cancel.
func sanctionedRoot() context.Context {
	return context.Background()
}

// okUseSanctioned consumes the sanctioned root without minting one itself.
func okUseSanctioned() error {
	return worker(sanctionedRoot())
}
