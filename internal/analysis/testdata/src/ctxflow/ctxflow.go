// Package ctxflow is the violating fixture for the ctxflow rule: fresh
// context roots minted in library code and contexts that are accepted but
// not threaded.
package ctxflow

import "context"

func worker(ctx context.Context) error { return ctx.Err() }

// FreshRoot mints a root in a library function with no context in scope.
func FreshRoot() error {
	ctx := context.Background() // want:ctxflow
	return worker(ctx)
}

// FreshTODO is the TODO variant of the same detachment.
func FreshTODO() error {
	return worker(context.TODO()) // want:ctxflow
}

// DropsParam accepts a context but mints a new root instead of threading
// it, severing the caller's cancellation path.
func DropsParam(ctx context.Context) error {
	return worker(context.Background()) // want:ctxflow
}

// NilCtx passes a literal nil at the callee's context position although a
// context is in scope.
func NilCtx(ctx context.Context) error {
	return worker(nil) // want:ctxflow
}

// allowedRoot is suppressed in place with a documented reason.
func allowedRoot() error {
	ctx := context.Background() //lint:allow ctxflow -- detached janitor lifetime is deliberate
	return worker(ctx)
}
