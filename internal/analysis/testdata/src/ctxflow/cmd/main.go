// Command main shows that package main may mint context roots: the process
// entry point is where the cancellation tree is supposed to start.
package main

import (
	"context"

	"fixture/ctxflow"
)

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	return ctxflow.NilCtx(ctx)
}
