// Package allowed demonstrates the escape comment for leakcheck.
package allowed

import "fixture/leakcheck/pool"

// Stash intentionally hands the buffer to its caller for release.
func Stash(b *pool.Buf) {
	b.Put(1) //lint:allow leakcheck -- the caller releases
}
