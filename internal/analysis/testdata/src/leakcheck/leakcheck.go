// Package leakcheck is the unbalanced fixture: it acquires through both
// method pairs and never releases either, so every acquire site is
// reported.
package leakcheck

import "fixture/leakcheck/pool"

// Leak fills and pins without ever releasing.
func Leak(b *pool.Buf) {
	b.Put(1) // want:leakcheck
	b.Pin(1) // want:leakcheck
}

// LeakAgain shows every acquire site is reported, not just the first.
func LeakAgain(b *pool.Buf) {
	b.Put(2) // want:leakcheck
}

// LeakSpan opens a span through the interface and never closes one: the
// pair is declared on pool.Probe's method set, not a concrete type.
func LeakSpan(p pool.Probe) {
	_ = p.SpanBegin("stage") // want:leakcheck
}
