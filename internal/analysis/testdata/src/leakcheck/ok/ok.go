// Package ok is the balanced fixture: a release anywhere in the package
// covers every acquire of that pair, matching how the engine releases far
// from where it acquires.
package ok

import "fixture/leakcheck/pool"

// Use acquires through both pairs.
func Use(b *pool.Buf) {
	b.Put(1)
	b.Pin(1)
	b.Put(2)
}

// Done releases both pairs on a different path.
func Done(b *pool.Buf) {
	b.Discard(1)
	b.Discard(2)
	b.Unpin(1)
}

// Spanned balances an interface-typed pair within the package.
func Spanned(p pool.Probe) {
	id := p.SpanBegin("stage")
	p.SpanEnd(id)
}
