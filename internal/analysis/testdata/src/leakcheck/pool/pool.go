// Package pool declares the paired-resource type the leakcheck fixtures
// acquire from. The declaring package itself is exempt from the rule.
package pool

// Buf is a resource with two acquire/release method pairs.
type Buf struct{ n int }

// Put acquires a slot; Discard releases it.
func (b *Buf) Put(k int)     { b.n++ }
func (b *Buf) Discard(k int) { b.n-- }

// Pin protects a slot from eviction; Unpin lifts the protection.
func (b *Buf) Pin(k int)   { b.n++ }
func (b *Buf) Unpin(k int) { b.n-- }

// Probe is an interface-typed resource: callers acquire spans through the
// interface, never a concrete recorder, so leakcheck must match the pair on
// the interface's method set.
type Probe interface {
	SpanBegin(name string) int
	SpanEnd(id int)
}

// Fill calls Put with no Discard anywhere: legal in the declaring package,
// whose helpers and tests manage the resource directly.
func Fill(b *Buf) { b.Put(1) }
