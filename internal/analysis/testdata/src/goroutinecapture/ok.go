package goroutinecapture

import "sync"

// okArgPass passes the loop variable as an argument — each goroutine gets
// its own copy.
func okArgPass(items []int, sink func(int)) {
	for _, v := range items {
		go func(v int) {
			sink(v)
		}(v)
	}
}

// okShadow rebinds the loop variable before the spawn.
func okShadow(items []int, sink func(int)) {
	for _, v := range items {
		v := v
		go func() {
			sink(v)
		}()
	}
}

// okMutexWrite writes a captured variable under a lock: the closure has a
// sync edge, so the write is coordinated.
func okMutexWrite(n int) int {
	var mu sync.Mutex
	total := 0
	for i := 0; i < n; i++ {
		go func(i int) {
			mu.Lock()
			total += i
			mu.Unlock()
		}(i)
	}
	return total
}

// okChannelResult reports through a channel instead of a shared write.
func okChannelResult(n int) chan int {
	out := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			out <- i * i
		}(i)
	}
	return out
}

// okWaitGroup writes after arranging a Done/Wait edge.
func okWaitGroup(items []int) []int {
	res := make([]int, len(items))
	var wg sync.WaitGroup
	for idx, v := range items {
		wg.Add(1)
		go func(idx, v int) {
			defer wg.Done()
			res[idx] = v * 2
		}(idx, v)
	}
	wg.Wait()
	return res
}

// okNonLoopRead merely reads a captured non-loop variable — reads without
// writes are not flagged.
func okNonLoopRead(sink func(int)) {
	base := 7
	go func() {
		sink(base)
	}()
}
