// Package goroutinecapture is the violating fixture for the
// goroutinecapture rule: go-spawned closures capturing loop variables by
// reference and writing captured variables without a synchronization edge.
package goroutinecapture

// LoopVarRange captures the range variable by reference: under pre-Go1.22
// semantics every goroutine shares one v.
func LoopVarRange(items []int, sink func(int)) {
	for _, v := range items {
		go func() {
			sink(v) // want:goroutinecapture
		}()
	}
}

// LoopVarIndex captures the classic three-clause loop index.
func LoopVarIndex(n int, sink func(int)) {
	for i := 0; i < n; i++ {
		go func() {
			sink(i) // want:goroutinecapture
		}()
	}
}

// LoopVarNested reaches the outer loop variable from a nested closure.
func LoopVarNested(items []string, sink func(string)) {
	for _, s := range items {
		go func() {
			f := func() { sink(s) } // want:goroutinecapture
			f()
		}()
	}
}

// UnsyncedWrite mutates a captured local with no sync edge in the closure:
// a write the spawner may read concurrently.
func UnsyncedWrite() int {
	total := 0
	go func() {
		total = 42 // want:goroutinecapture
	}()
	return total
}

// UnsyncedIncrement is the counter variant of the same race.
func UnsyncedIncrement(n int) int {
	count := 0
	for i := 0; i < n; i++ {
		go func(i int) {
			count++ // want:goroutinecapture
		}(i)
	}
	return count
}
