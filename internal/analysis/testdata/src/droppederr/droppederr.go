// Package droppederr is a droppederr-rule fixture.
package droppederr

import (
	"fmt"
	"os"
	"strconv"
)

// parse is a local function with a trailing error result.
func parse(s string) (int, error) {
	return strconv.Atoi(s)
}

// validate returns only an error.
func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

// Store has methods with and without error results.
type Store struct{ data map[string]int }

// Lookup returns a value and a presence flag — no error involved.
func (s *Store) Lookup(k string) (int, bool) { v, ok := s.data[k]; return v, ok }

// Flush returns an error.
func (s *Store) Flush() error { return nil }

// Dropped discards errors in every form the rule covers.
func Dropped(s *Store) int {
	n, _ := parse("42") // want:droppederr
	_ = validate(n)     // want:droppederr
	_ = s.Flush()       // want:droppederr
	data, _ := os.ReadFile("state.json") // want:droppederr
	return n + len(data)
}

// Handled shows the compliant forms.
func Handled(s *Store) (int, error) {
	n, err := parse("42")
	if err != nil {
		return 0, err
	}
	if err := validate(n); err != nil {
		return 0, err
	}
	// A presence flag is not an error: dropping it is fine.
	v, _ := s.Lookup("answer")
	// Dropping a non-error value is fine too.
	_, ok := s.Lookup("other")
	if !ok {
		v++
	}
	return n + v, nil
}

// Allowed demonstrates the escape comment for a genuinely ignorable error.
func Allowed(s *Store) {
	_ = s.Flush() //lint:allow droppederr -- best-effort flush on shutdown
}
