// Package maporder is a maporder-rule fixture: order-dependent work inside
// range-over-map, with and without the patterns that make it deterministic.
package maporder

import (
	"fmt"
	"sort"

	"fixture/kinds"
)

// CollectUnsorted appends in map-iteration order and never sorts — the
// classic leak.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want:maporder
	}
	return keys
}

// CollectSorted is the canonical collect-then-sort idiom — allowed.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectSortedOuter collects inside a conditional and sorts in the outer
// block — still deterministic, still allowed.
func CollectSortedOuter(m map[string]int, extra bool) []string {
	var keys []string
	if extra {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// CollectHelperSorted sorts through a helper whose name says so — allowed.
func CollectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// Send leaks map order into a channel.
func Send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want:maporder
	}
}

// SumFloats accumulates floats in map order; float addition is not
// associative, so the total depends on the iteration order.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want:maporder
	}
	return total
}

// SumInts accumulates integers — commutative and associative, allowed.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Emit prints rows in map-iteration order.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want:maporder
	}
}

// CopyMap rebuilds a map from a map — order-independent, allowed.
func CopyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// OverSlice appends while ranging a slice — not a map, allowed.
func OverSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// StructField ranges over a map reached through a struct field of another
// package, resolved via the module index.
func StructField(r *kinds.Registry) []string {
	var names []string
	for k := range r.Entries {
		names = append(names, k) // want:maporder
	}
	return names
}

// CallResult ranges over a named map type returned by a function.
func CallResult() []string {
	var names []string
	for k := range kinds.NewTable() {
		names = append(names, k) // want:maporder
	}
	return names
}

// LoopLocal appends to a slice created inside the loop body — invisible
// outside one iteration, allowed.
func LoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		n += len(doubled)
	}
	return n
}

// Allowed demonstrates the escape comment on an order-dependent append
// whose consumer tolerates any order.
func Allowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow maporder -- consumer deduplicates
	}
	return keys
}
