// Package costmodel is the sanctioned conversion fixture: it sits in
// UnitExemptDirs, so the mixing and conversion sub-checks stay silent here
// while the naming sub-check still applies.
package costmodel

import "fixture/sim"

// NetSec models a transfer cost: dividing bytes by bandwidth is exactly
// what the exemption exists for, so there is no finding on this line.
func NetSec(b sim.Bytes, bw float64) sim.VTime {
	return sim.VTime(float64(b) / bw)
}

// Delay shows the naming sub-check survives the exemption.
func Delay(startSec float64) sim.VTime { // want:unitsafety
	return sim.VTime(startSec)
}
