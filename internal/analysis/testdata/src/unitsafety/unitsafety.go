// Package unitsafety is the unit-discipline fixture: exported signatures
// that smuggle units as raw numbers, arithmetic that mixes the two units,
// and conversions that cross from one unit to the other.
package unitsafety

import "fixture/sim"

// Event smuggles unit quantities as raw numbers in exported fields.
type Event struct {
	StartTime  float64 // want:unitsafety
	SpillBytes int64   // want:unitsafety
	Label      string
	Count      int64 // unsuspicious name: not flagged
}

// Typed carries its units properly and is never flagged.
type Typed struct {
	Start sim.VTime
	Spill sim.Bytes
}

// Schedule announces units in parameter and result names but declares raw
// types.
func Schedule(
	durSec float64, // want:unitsafety
	capacity int64, // want:unitsafety
) (elapsed float64) { // want:unitsafety
	// Raw numbers carry no unit, so this product is not a mixing violation:
	// the damage happened in the signature above.
	return durSec * float64(capacity)
}

// Throughput mixes the two unit types in one expression; laundering them
// through float64 conversions does not hide the units.
func Throughput(d sim.VTime, b sim.Bytes) float64 {
	bad := float64(d) * float64(b) // want:unitsafety
	_ = bad
	// Method calls are unit boundaries: MB() and Seconds() yield plain
	// magnitudes, so this division is legal.
	return b.MB() / d.Seconds()
}

// Transfer converts a bytes-carrying expression into virtual time outside
// the cost model.
func Transfer(b sim.Bytes, bw float64) sim.VTime {
	return sim.VTime(float64(b) / bw) // want:unitsafety
}

// Scale stays within one unit: a conversion that carries the same unit in
// and out is legal.
func Scale(d sim.VTime, f float64) sim.VTime {
	return sim.VTime(float64(d) * f)
}

// Allowed demonstrates the escape comment.
func Allowed(b sim.Bytes, bw float64) sim.VTime {
	return sim.VTime(float64(b) / bw) //lint:allow unitsafety -- ad-hoc probe
}
