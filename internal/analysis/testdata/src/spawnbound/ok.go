package spawnbound

import (
	"sync"

	"fixture/spawnbound/nowait"
)

// okWaitGroup joins through Done/Wait on the same WaitGroup object.
func okWaitGroup(items []int, work func(int)) {
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			work(v)
		}(v)
	}
	wg.Wait()
}

// okChannelJoin signals on a channel the function receives from.
func okChannelJoin(work func() int) int {
	res := make(chan int, 1)
	go func() {
		res <- work()
	}()
	return <-res
}

// okCloseJoin closes a done channel that is received from elsewhere.
func okCloseJoin(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// server shows the method-spawn pattern the service uses: the loop method
// closes a field channel and Close waits on the same field object.
type server struct {
	done chan struct{}
	work func()
}

func newServer(work func()) *server {
	s := &server{done: make(chan struct{}), work: work}
	go s.loop()
	return s
}

func (s *server) loop() {
	defer close(s.done)
	s.work()
}

func (s *server) Close() {
	<-s.done
}

// okSanctioned spawns the configured bounded-worker construct: its join
// lives inside the construct, so the spawn is sanctioned by name.
func okSanctioned() {
	go nowait.Pool()
}

// okRangeJoin consumes results with range, which also counts as receiving.
func okRangeJoin(items []int, work func(int) int) int {
	out := make(chan int)
	var wg sync.WaitGroup
	for _, v := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			out <- work(v)
		}(v)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}
