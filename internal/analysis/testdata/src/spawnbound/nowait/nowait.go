// Package nowait supplies out-of-package spawn targets for the spawnbound
// fixture: Detached is opaque and unsanctioned, Pool is the sanctioned
// bounded-worker construct named in cfg.SpawnJoinFuncs.
package nowait

// Detached runs forever with no completion signal.
func Detached() {
	for {
	}
}

// Pool is a bounded-worker entry point whose join lives inside the
// construct; the fixture config sanctions it as "nowait.Pool".
func Pool() {}
