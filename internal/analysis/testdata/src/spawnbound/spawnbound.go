// Package spawnbound is the violating fixture for the spawnbound rule:
// go statements whose goroutines have no visible join in the package.
package spawnbound

import (
	"sync"

	"fixture/spawnbound/nowait"
)

// FireAndForget spawns a goroutine that never signals completion.
func FireAndForget(work func()) {
	go func() { // want:spawnbound
		work()
	}()
}

// SignalNobodyWaits sends a completion signal on a channel nothing in the
// package ever receives from.
func SignalNobodyWaits(work func()) {
	orphan := make(chan struct{})
	go func() { // want:spawnbound
		work()
		orphan <- struct{}{}
	}()
}

// DoneWithoutWait calls WaitGroup.Done but the package never calls Wait.
func DoneWithoutWait(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() { // want:spawnbound
		defer wg.Done()
		work()
	}()
}

// ExternalSpawn launches a function from another package: its join is not
// visible here and the callee is not sanctioned.
func ExternalSpawn() {
	go nowait.Detached() // want:spawnbound
}

// MethodNoJoin spawns a same-package method whose body never signals.
type looper struct{ n int }

func (l *looper) spin() { l.n++ }

func MethodNoJoin(l *looper) {
	go l.spin() // want:spawnbound
}

// AllowedDetach is a documented deliberate detachment.
func AllowedDetach(work func()) {
	go func() { //lint:allow spawnbound -- janitor goroutine lives for the process lifetime
		work()
	}()
}
