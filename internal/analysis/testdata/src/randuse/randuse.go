// Package randuse is a seededrand-rule fixture.
package randuse

import (
	mrand "math/rand"
)

// Global draws from the process-global source — every call is forbidden.
func Global() int {
	mrand.Seed(42)        // want:seededrand
	f := mrand.Float64()  // want:seededrand
	mrand.Shuffle(3, func(i, j int) {}) // want:seededrand
	return mrand.Intn(10) + int(f) // want:seededrand
}

// Seeded builds an explicitly seeded generator — the constructors and the
// methods of *rand.Rand are all allowed.
func Seeded(seed int64) int {
	rng := mrand.New(mrand.NewSource(seed))
	return rng.Intn(10) + rng.Perm(3)[0]
}

// Allowed demonstrates the escape comment.
func Allowed() float64 {
	return mrand.Float64() //lint:allow seededrand
}
