package randuse

import (
	"math/rand"
	"testing"
)

// TestGlobalRandInTest shows that the seededrand rule covers _test.go files
// too: an unseeded draw makes a failing case unreproducible.
func TestGlobalRandInTest(t *testing.T) {
	if rand.Intn(10) > 20 { // want:seededrand
		t.Fatal("impossible")
	}
}
