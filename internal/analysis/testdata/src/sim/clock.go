// Package sim is a wallclock-rule fixture: it stands in for a simulator
// package where only virtual time is allowed.
package sim

import (
	"time"
)

// Tick exercises the forbidden wall-clock calls.
func Tick() float64 {
	start := time.Now()            // want:wallclock
	time.Sleep(time.Millisecond)   // want:wallclock
	<-time.After(time.Millisecond) // want:wallclock
	return time.Since(start).Seconds() // want:wallclock
}

// Durations shows that the time package itself stays usable: constants,
// types and arithmetic are not wall-clock reads.
func Durations(d time.Duration) time.Duration {
	return d + 2*time.Second
}

// Allowed demonstrates the escape comment, in both positions.
func Allowed() time.Time {
	//lint:allow wallclock -- boot stamp for log prefixes only
	t := time.Now()
	t2 := time.Now() //lint:allow wallclock
	if t2.After(t) {
		return t2
	}
	return t
}
