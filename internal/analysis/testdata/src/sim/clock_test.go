package sim

import (
	"testing"
	"time"
)

// TestClockExempt shows that _test.go files are outside the wallclock
// rule's scope: measuring real elapsed time in a test is fine.
func TestClockExempt(t *testing.T) {
	start := time.Now()
	if time.Since(start) < 0 {
		t.Fatal("clock went backwards")
	}
}
