package sim

// VTime and Bytes mirror the simulator's unit types so the unitsafety
// fixtures resolve them exactly like the real internal/sim package: the
// rule recognises units by named type, not by import path.

// VTime is a quantity of virtual seconds.
type VTime float64

// Seconds returns the raw magnitude.
func (t VTime) Seconds() float64 { return float64(t) }

// Bytes is a quantity of data volume.
type Bytes int64

// MB returns the dimensionless magnitude in megabytes; as a method call it
// is a unit boundary for the unitsafety rule.
func (b Bytes) MB() float64 { return float64(b) / 1e6 }
