package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// checkDroppedErr flags error results assigned to the blank identifier.
// A silently dropped error hides exactly the failures the resilience layer
// is supposed to surface; callers must handle, return or log them. Result
// types come from go/types, so the check resolves methods, cross-package
// calls and function values alike; calls without type information (test
// files, unresolved packages) are skipped, so every finding points at a
// value that really is an error.
func checkDroppedErr(m *Module, f *File) []Finding {
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		flag := func(call *ast.CallExpr) {
			out = append(out, Finding{
				File: f.Path,
				Line: f.line(st.Pos()),
				Rule: RuleDroppedErr,
				Msg:  fmt.Sprintf("error result of %s assigned to _; handle or return it", calleeLabel(f, call)),
			})
		}
		if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
			// a, _ := f(...): the blank positions of one multi-value call.
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			results, resolved := callResults(f, call)
			if !resolved || len(results) != len(st.Lhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if isBlank(lhs) && isErrorType(results[i]) {
					flag(call)
					break
				}
			}
			return true
		}
		if len(st.Rhs) == len(st.Lhs) {
			// _ = f(...), possibly in a parallel assignment.
			for i, lhs := range st.Lhs {
				if !isBlank(lhs) {
					continue
				}
				call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				results, resolved := callResults(f, call)
				if resolved && len(results) == 1 && isErrorType(results[0]) {
					flag(call)
				}
			}
		}
		return true
	})
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callResults returns the resolved result types of a call expression. The
// second return is false when no type information is available for it.
func callResults(f *File, call *ast.CallExpr) ([]types.Type, bool) {
	t := f.TypeOf(call)
	if t == nil {
		return nil, false
	}
	if tup, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tup.Len())
		for i := range out {
			out[i] = tup.At(i).Type()
		}
		return out, true
	}
	return []types.Type{t}, true
}

// calleeLabel renders the call target for the diagnostic.
func calleeLabel(f *File, call *ast.CallExpr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), call.Fun); err != nil || buf.Len() == 0 {
		return "call"
	}
	return buf.String()
}
