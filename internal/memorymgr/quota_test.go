package memorymgr

import (
	"errors"
	"testing"

	"metadataflow/internal/sim"
)

func TestTenantQuotasReserveRelease(t *testing.T) {
	q := NewTenantQuotas(100)
	if err := q.Reserve("a", 60); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	if err := q.Reserve("a", 40); err != nil {
		t.Fatalf("reserve to exactly the quota: %v", err)
	}
	err := q.Reserve("a", 1)
	if err == nil {
		t.Fatal("over-quota reserve succeeded")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota error is %T, want *QuotaError", err)
	}
	if qe.Tenant != "a" || qe.Want != 1 || qe.Reserved != 100 || qe.Quota != 100 {
		t.Fatalf("quota error fields: %+v", qe)
	}
	// Tenants are isolated: b has its own full quota.
	if err := q.Reserve("b", 100); err != nil {
		t.Fatalf("tenant b reserve: %v", err)
	}
	q.Release("a", 50)
	if got := q.Reserved("a"); got != 50 {
		t.Fatalf("reserved after release = %d, want 50", got)
	}
	if err := q.Reserve("a", 50); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if got := q.Peak("a"); got != 100 {
		t.Fatalf("peak = %d, want 100", got)
	}
}

func TestTenantQuotasReleaseClamps(t *testing.T) {
	q := NewTenantQuotas(10)
	if err := q.Reserve("a", 4); err != nil {
		t.Fatal(err)
	}
	q.Release("a", 99) // double/over-release must not mint quota
	if got := q.Reserved("a"); got != 0 {
		t.Fatalf("reserved after over-release = %d, want 0", got)
	}
	if err := q.Reserve("a", 10); err != nil {
		t.Fatalf("full reserve after clamped release: %v", err)
	}
	if err := q.Reserve("a", 1); err == nil {
		t.Fatal("quota not enforced after clamped release")
	}
}

func TestTenantQuotasDeterministicTenantOrder(t *testing.T) {
	q := NewTenantQuotas(sim.Bytes(1) << 30)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := q.Reserve(name, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := q.Tenants()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("tenants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tenants = %v, want %v", got, want)
		}
	}
}

func TestTenantQuotasRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTenantQuotas(0) did not panic")
		}
	}()
	NewTenantQuotas(0)
}

func TestTenantQuotasProbeAndHeadroom(t *testing.T) {
	q := NewTenantQuotas(100)
	if got := q.Headroom("a"); got != 100 {
		t.Fatalf("fresh headroom = %d, want 100", got)
	}
	// Probe never mutates: a fitting probe changes nothing.
	if err := q.Probe("a", 100); err != nil {
		t.Fatalf("probe within quota: %v", err)
	}
	if got := q.Headroom("a"); got != 100 {
		t.Errorf("probe consumed headroom: %d", got)
	}
	if err := q.Probe("a", 101); err == nil {
		t.Error("over-quota probe passed")
	}
	if err := q.Probe("a", -1); err == nil {
		t.Error("negative probe passed")
	}

	if err := q.Reserve("a", 60); err != nil {
		t.Fatal(err)
	}
	if got := q.Headroom("a"); got != 40 {
		t.Errorf("headroom after reserve = %d, want 40", got)
	}
	// Probe agrees with what Reserve would do at this instant.
	if err := q.Probe("a", 40); err != nil {
		t.Errorf("probe at exact headroom: %v", err)
	}
	var qe *QuotaError
	if err := q.Probe("a", 41); !errors.As(err, &qe) || qe.Reserved != 60 {
		t.Errorf("probe past headroom: %v", err)
	}
	// Other tenants are unaffected.
	if got := q.Headroom("b"); got != 100 {
		t.Errorf("tenant b headroom = %d, want 100", got)
	}
}
