package memorymgr

import (
	"testing"
	"testing/quick"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/sim"
)

type accMap map[dataset.PartKey]int

func (m accMap) FutureAccesses(k dataset.PartKey) int { return m[k] }

func key(i int) dataset.PartKey { return dataset.PartKey{Dataset: dataset.ID(i), Index: 0} }

func newAlloc(capacity sim.Bytes, policy PolicyKind, acc AccessCounter) (*Allocator, *cluster.Node) {
	node := &cluster.Node{}
	return NewAllocator(node, cluster.DefaultConfig(), capacity, policy, acc), node
}

func TestCheckAccountingBalancedAndAuditHelpers(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 1000, 1)
	a.Put(key(3), 1000, 2) // evicts key(1)
	a.Pin(key(2))
	if err := a.CheckAccounting(); err != nil {
		t.Fatalf("CheckAccounting on consistent state: %v", err)
	}
	if got := a.PinnedParts(); got != 1 {
		t.Errorf("PinnedParts = %d, want 1", got)
	}
	if got := a.TrackedParts(); got != 3 {
		t.Errorf("TrackedParts = %d, want 3", got)
	}
	keys := a.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v, want 3 entries", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i].Dataset < keys[i-1].Dataset {
			t.Fatalf("Keys not sorted: %v", keys)
		}
	}
	a.Unpin(key(2))
	a.Discard(key(2))
	if got := a.PinnedParts(); got != 0 {
		t.Errorf("PinnedParts after unpin+discard = %d, want 0", got)
	}
	if err := a.CheckAccounting(); err != nil {
		t.Fatalf("CheckAccounting after discard: %v", err)
	}
}

// TestCheckAccountingCatchesCorruption corrupts the allocator's internals
// the way a bookkeeping bug would — the test double behind the chaos
// harness's accounting oracle. Both drift modes must be detected: the used
// counter disagreeing with the resident entries, and resident bytes
// exceeding the capacity budget.
func TestCheckAccountingCatchesCorruption(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)

	// Drift: a Discard that forgot to release its bytes.
	a.used += 500
	if err := a.CheckAccounting(); err == nil {
		t.Fatal("used/resident drift not detected")
	}
	a.used -= 500

	// Over-budget residency: an eviction that never happened.
	a.entries[key(1)].bytes = 3000
	a.used = 3000
	if err := a.CheckAccounting(); err == nil {
		t.Fatal("over-budget residency not detected")
	}
}

func TestPutAndAccessHit(t *testing.T) {
	a, _ := newAlloc(1<<20, LRU, nil)
	a.Put(key(1), 1000, 0)
	end, hit, err := a.Access(key(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("resident partition must hit")
	}
	if end <= 1 {
		t.Fatal("access must advance time")
	}
	m := a.Metrics()
	if m.Hits != 1 || m.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", m.Hits, m.Misses)
	}
}

func TestAccessUnknownErrors(t *testing.T) {
	a, _ := newAlloc(1<<20, LRU, nil)
	if _, _, err := a.Access(key(9), 0); err == nil {
		t.Fatal("unknown partition must error")
	}
}

func TestEvictionOnOverflowLRU(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 1000, 1)
	a.Put(key(3), 1000, 2) // must evict key(1), the least recently used
	if a.Resident(key(1)) {
		t.Fatal("LRU should have evicted the oldest partition")
	}
	if !a.Resident(key(2)) || !a.Resident(key(3)) {
		t.Fatal("younger partitions should stay resident")
	}
	if a.Metrics().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", a.Metrics().Evictions)
	}
	// Re-access of the spilled partition is a miss that reloads it.
	_, hit, err := a.Access(key(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("spilled partition must miss")
	}
	if !a.Resident(key(1)) {
		t.Fatal("miss must reload the partition into memory")
	}
}

func TestLRUTouchOnAccess(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 1000, 1)
	a.Access(key(1), 2) // key(1) is now more recent than key(2)
	a.Put(key(3), 1000, 3)
	if a.Resident(key(2)) {
		t.Fatal("key(2) should have been evicted (least recently used)")
	}
	if !a.Resident(key(1)) {
		t.Fatal("recently touched key(1) should stay")
	}
}

func TestAMMEvictsLowestPreference(t *testing.T) {
	// AMM preference = acc(d) · size · α: the partition with the fewest
	// remaining reads (weighted by size) goes first, regardless of recency.
	acc := accMap{key(1): 5, key(2): 0, key(3): 2}
	a, _ := newAlloc(2500, AMM, acc)
	a.Put(key(1), 1000, 0) // oldest, but 5 future accesses
	a.Put(key(2), 1000, 1) // no future accesses -> evict first
	a.Put(key(3), 1000, 2)
	if a.Resident(key(2)) {
		t.Fatal("AMM should evict the partition with no future accesses")
	}
	if !a.Resident(key(1)) {
		t.Fatal("frequently needed partition must stay despite being oldest")
	}
}

func TestAMMWeighsSize(t *testing.T) {
	// Same access count: the bigger partition has higher preference
	// (costlier to reload), so the smaller one is evicted.
	acc := accMap{key(1): 2, key(2): 2}
	a, _ := newAlloc(3600, AMM, acc)
	a.Put(key(1), 2000, 0)
	a.Put(key(2), 500, 1)
	a.Put(key(3), 1500, 2)
	if a.Resident(key(2)) {
		t.Fatal("AMM should evict the cheaper-to-reload partition")
	}
	if !a.Resident(key(1)) {
		t.Fatal("expensive partition should stay")
	}
}

func TestOversizePartitionGoesToDisk(t *testing.T) {
	a, _ := newAlloc(1000, LRU, nil)
	a.Put(key(1), 5000, 0)
	if a.Resident(key(1)) {
		t.Fatal("partition larger than capacity must go to disk")
	}
	if !a.Known(key(1)) {
		t.Fatal("oversize partition must still be tracked")
	}
	_, hit, err := a.Access(key(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("oversize partition access must be a miss")
	}
}

func TestPinnedSparedWhileUnpinnedExists(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Pin(key(1))
	a.Put(key(2), 1000, 1)
	a.Put(key(3), 1000, 2)
	if !a.Resident(key(1)) {
		t.Fatal("pinned partition must be spared")
	}
	if a.Resident(key(2)) {
		t.Fatal("unpinned partition should have been evicted instead")
	}
}

func TestUnpinReturnsBytesToEvictable(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Pin(key(1))
	a.Put(key(2), 1000, 1)
	// Capacity forces an eviction: the pinned partition is spared, so the
	// newer one is the only candidate.
	a.Put(key(3), 1000, 2)
	if !a.Resident(key(1)) {
		t.Fatal("pinned partition must be spared while pinned")
	}
	a.Unpin(key(1))
	// After Unpin the 1000 pinned bytes are evictable again: the next Put
	// picks key(1) as the LRU victim (oldest access).
	a.Put(key(4), 1000, 3)
	if a.Resident(key(1)) {
		t.Fatal("unpinned partition must return to the evictable pool")
	}
	if !a.Resident(key(4)) {
		t.Fatal("new partition should occupy the reclaimed bytes")
	}
}

func TestDiscardFreesMemory(t *testing.T) {
	a, _ := newAlloc(2000, LRU, nil)
	a.Put(key(1), 1500, 0)
	a.Discard(key(1))
	if a.Used() != 0 {
		t.Fatalf("used = %d after discard, want 0", a.Used())
	}
	a.Put(key(2), 1500, 1)
	if a.Metrics().Evictions != 0 {
		t.Fatal("no eviction needed after discard")
	}
}

func TestFailNodeDropsResidency(t *testing.T) {
	a, _ := newAlloc(1<<20, AMM, accMap{})
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 2000, 1)
	a.FailNode()
	if a.Resident(key(1)) || a.Resident(key(2)) {
		t.Fatal("failure must drop all resident partitions")
	}
	if a.Used() != 0 {
		t.Fatalf("used = %d after failure, want 0", a.Used())
	}
	// Partitions are recoverable from their checkpoints.
	_, hit, err := a.Access(key(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("recovery access must read from disk")
	}
}

func TestCrashSplitsCheckpointedFromLost(t *testing.T) {
	a, n := newAlloc(1<<20, AMM, accMap{})
	a.SetCheckpointing(true)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 2000, 1)
	_, disk0, _ := n.FreeAt()
	end := a.Checkpoint(key(1), 2)
	if end <= 2 {
		t.Fatal("checkpoint must charge a disk write")
	}
	if _, disk1, _ := n.FreeAt(); disk1 <= disk0 {
		t.Fatal("checkpoint must occupy the disk timeline")
	}
	if a.Checkpoint(key(1), end) != end {
		t.Fatal("re-checkpointing a durable partition must be free")
	}
	if !a.Resident(key(1)) {
		t.Fatal("checkpointing must not evict")
	}
	lost := a.Crash()
	if len(lost) != 1 || lost[0].Key != key(2) {
		t.Fatalf("lost = %v, want only un-checkpointed key(2)", lost)
	}
	if !a.Known(key(1)) || a.Resident(key(1)) {
		t.Fatal("checkpointed partition must survive on disk, non-resident")
	}
	if a.Known(key(2)) {
		t.Fatal("lost partition must be forgotten")
	}
	if a.Used() != 0 {
		t.Fatalf("used = %d after crash, want 0", a.Used())
	}
	m := a.Metrics()
	if m.Checkpoints != 1 || m.CheckpointedBytes != 1000 {
		t.Fatalf("checkpoint metrics = %d/%d, want 1/1000", m.Checkpoints, m.CheckpointedBytes)
	}
}

func TestEvacuateAndAdoptSpilled(t *testing.T) {
	a, _ := newAlloc(1<<20, AMM, accMap{})
	a.SetCheckpointing(true)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 2000, 1)
	a.Checkpoint(key(2), 2)
	ckpt, lost := a.Evacuate()
	if len(ckpt) != 1 || ckpt[0].Key != key(2) {
		t.Fatalf("checkpointed = %v, want key(2)", ckpt)
	}
	if len(lost) != 1 || lost[0].Key != key(1) {
		t.Fatalf("lost = %v, want key(1)", lost)
	}
	if a.Known(key(1)) || a.Known(key(2)) || a.Used() != 0 {
		t.Fatal("evacuated allocator must be empty")
	}

	survivor, _ := newAlloc(1<<20, AMM, accMap{})
	survivor.AdoptSpilled(ckpt[0].Key, ckpt[0].Bytes)
	if !survivor.Known(key(2)) || survivor.Resident(key(2)) {
		t.Fatal("adopted partition must be known on-disk, non-resident")
	}
	_, hit, err := survivor.Access(key(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first access of an adopted partition must be a disk read")
	}
}

func TestCheckpointedVictimSpillsForFree(t *testing.T) {
	a, n := newAlloc(2500, LRU, nil)
	a.SetCheckpointing(true)
	a.Put(key(1), 1000, 0)
	a.Checkpoint(key(1), 1)
	_, diskBefore, _ := n.FreeAt()
	spilled := a.Metrics().SpilledBytes
	a.Put(key(2), 1000, 2)
	a.Put(key(3), 1000, 3) // evicts key(1), which is already durable
	if a.Resident(key(1)) {
		t.Fatal("key(1) should have been evicted")
	}
	if _, diskAfter, _ := n.FreeAt(); diskAfter != diskBefore {
		t.Fatal("evicting a checkpointed partition must not re-write it")
	}
	if a.Metrics().SpilledBytes != spilled {
		t.Fatal("no spill bytes for a durable victim")
	}
	if a.Metrics().Evictions == 0 {
		t.Fatal("the eviction itself must still be counted")
	}
}

func TestSpillWithoutCheckpointingUnchanged(t *testing.T) {
	a, n := newAlloc(2500, LRU, nil)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 1000, 1)
	_, diskBefore, _ := n.FreeAt()
	a.Put(key(3), 1000, 2)
	if _, diskAfter, _ := n.FreeAt(); diskAfter <= diskBefore {
		t.Fatal("without checkpointing mode every spill charges a disk write")
	}
}

func TestHitRatio(t *testing.T) {
	var m Metrics
	if m.HitRatio() != 1 {
		t.Fatal("empty metrics hit ratio must be 1")
	}
	m.Hits, m.Misses = 3, 1
	if m.HitRatio() != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", m.HitRatio())
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{Hits: 1, Misses: 2, BytesFromMem: 10, BytesFromDisk: 20, Evictions: 1, SpilledBytes: 5, PeakResidentBytes: 100}
	b := Metrics{Hits: 3, Misses: 4, PeakResidentBytes: 50}
	a.Merge(&b)
	if a.Hits != 4 || a.Misses != 6 || a.PeakResidentBytes != 100 {
		t.Fatalf("merge result wrong: %+v", a)
	}
}

// Property: used bytes never exceed capacity after any Put sequence (except
// transient oversize partitions, which bypass memory entirely).
func TestCapacityInvariantProperty(t *testing.T) {
	const capacity = 10000
	f := func(sizes []uint16) bool {
		a, _ := newAlloc(capacity, LRU, nil)
		for i, s := range sizes {
			size := sim.Bytes(s)%4000 + 1
			a.Put(key(i), size, sim.VTime(i))
			if a.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every access after a Put either hits in memory or reloads; the
// partition is always known afterwards, and hit+miss counts equal accesses.
func TestAccessAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a, _ := newAlloc(5000, AMM, accMap{})
		puts := 0
		var accesses int64
		for i, op := range ops {
			if op%3 == 0 || puts == 0 {
				a.Put(key(puts), sim.Bytes(op)%2000+1, sim.VTime(i))
				puts++
				continue
			}
			target := key(int(op) % puts)
			if _, _, err := a.Access(target, sim.VTime(i)); err != nil {
				return false
			}
			accesses++
		}
		m := a.Metrics()
		return m.Hits+m.Misses == accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDropDurableDemotesOnlyDiskOnlyCopies(t *testing.T) {
	a, _ := newAlloc(2500, LRU, nil)
	a.SetCheckpointing(true)
	a.Put(key(1), 1000, 0)
	a.Put(key(2), 1000, 1)
	a.Checkpoint(key(1), 2)
	a.Checkpoint(key(2), 3)
	// Resident partitions keep their memory copy: the durable one is not
	// load-bearing, so a corrupt checkpoint demotes nothing.
	if _, ok := a.DropDurable(key(1)); ok {
		t.Fatal("DropDurable demoted a memory-resident partition")
	}
	// After a crash only durable copies survive; a corrupt one must come
	// back as lost.
	if lost := a.Crash(); len(lost) != 0 {
		t.Fatalf("Crash lost %v, want none (all checkpointed)", lost)
	}
	l, ok := a.DropDurable(key(1))
	if !ok || l.Key != key(1) || l.Bytes != 1000 {
		t.Fatalf("DropDurable = %+v, %v", l, ok)
	}
	if a.Known(key(1)) {
		t.Fatal("demoted partition still tracked")
	}
	if _, ok := a.DropDurable(key(1)); ok {
		t.Fatal("DropDurable demoted an untracked partition")
	}
	if !a.Checkpointed(key(2)) {
		t.Fatal("unrelated durable copy disturbed")
	}
	if err := a.CheckAccounting(); err != nil {
		t.Fatalf("CheckAccounting: %v", err)
	}
}
