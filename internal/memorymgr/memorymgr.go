// Package memorymgr implements the worker-side memory allocator of §5 and
// the eviction policies of §4.3: the least-recently-used baseline and
// anticipatory memory management (AMM, Alg. 2). An allocator manages one
// node's dataset memory for one job, tracks residency (in memory vs. spilled
// to disk), charges virtual I/O time on the node's resource timelines, and
// records the memory-hit-ratio statistics reported in §6.2.
package memorymgr

import (
	"fmt"
	"math"
	"sort"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// PolicyKind selects an eviction policy.
type PolicyKind int

const (
	// LRU evicts the dataset partition that has not been used for the
	// longest (the Spark-style baseline, §2.1).
	LRU PolicyKind = iota
	// AMM evicts the partition with the lowest preference
	// pre(d) = acc(d) · δ(n,d) · α (Alg. 2).
	AMM
)

// String implements fmt.Stringer.
func (p PolicyKind) String() string {
	switch p {
	case LRU:
		return "LRU"
	case AMM:
		return "AMM"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// AccessCounter reports acc(d): how many times the dataset owning a
// partition will still be read as operator input, given the stages executed
// and branches pruned so far. The engine implements this from the MDF
// structure (Alg. 2, lines 1–3).
type AccessCounter interface {
	FutureAccesses(key dataset.PartKey) int
}

// Metrics aggregates memory-manager statistics for one job run.
type Metrics struct {
	// Hits and Misses count partition accesses served from memory or disk.
	Hits, Misses int64
	// BytesFromMem and BytesFromDisk are the corresponding byte volumes.
	BytesFromMem, BytesFromDisk sim.Bytes
	// Evictions counts spill decisions; SpilledBytes their volume.
	Evictions    int64
	SpilledBytes sim.Bytes
	// Checkpoints counts anticipatory checkpoint writes; CheckpointedBytes
	// their volume. Only populated when checkpointing is enabled.
	Checkpoints       int64
	CheckpointedBytes sim.Bytes
	// PeakResidentBytes is the high-water mark of memory use across nodes.
	PeakResidentBytes sim.Bytes
}

// HitRatio returns the fraction of data accesses served from memory
// (the paper's "memory hit ratio", §6.2).
func (m *Metrics) HitRatio() float64 {
	total := m.Hits + m.Misses
	if total == 0 {
		return 1
	}
	return float64(m.Hits) / float64(total)
}

// Merge accumulates other into m.
func (m *Metrics) Merge(other *Metrics) {
	m.Hits += other.Hits
	m.Misses += other.Misses
	m.BytesFromMem += other.BytesFromMem
	m.BytesFromDisk += other.BytesFromDisk
	m.Evictions += other.Evictions
	m.SpilledBytes += other.SpilledBytes
	m.Checkpoints += other.Checkpoints
	m.CheckpointedBytes += other.CheckpointedBytes
	if other.PeakResidentBytes > m.PeakResidentBytes {
		m.PeakResidentBytes = other.PeakResidentBytes
	}
}

type entry struct {
	key        dataset.PartKey
	bytes      sim.Bytes
	lastAccess sim.VTime
	inMemory   bool
	pinned     bool
	// onDisk records a durable copy on this node's disk, written either by a
	// spill or by an anticipatory checkpoint. A crashed node re-reads onDisk
	// partitions; the rest are lost and must be re-derived by lineage.
	onDisk bool
}

// Allocator manages the dataset memory of one worker node for one job.
type Allocator struct {
	node     *cluster.Node
	cfg      cluster.Config
	capacity sim.Bytes
	policy   PolicyKind
	acc      AccessCounter
	alpha    float64

	used    sim.Bytes
	entries map[dataset.PartKey]*entry
	spilled map[dataset.PartKey]sim.Bytes
	metrics Metrics
	seq     sim.VTime // tie-breaking sequence for identical timestamps

	// checkpointing enables durable-copy awareness: spilling a partition
	// that already has an on-disk copy skips the redundant write, and the
	// engine may call Checkpoint to write copies anticipatorily. Off by
	// default so fault-free runs charge exactly the seed's costs.
	checkpointing bool

	// probe, when non-nil, receives residency counter samples and
	// evict/checkpoint decisions with their Alg. 2 valuations.
	probe obs.Probe
}

// NewAllocator creates an allocator with the given memory capacity on node.
// acc may be nil when the policy is LRU.
func NewAllocator(node *cluster.Node, cfg cluster.Config, capacity sim.Bytes, policy PolicyKind, acc AccessCounter) *Allocator {
	return &Allocator{
		node:     node,
		cfg:      cfg,
		capacity: capacity,
		policy:   policy,
		acc:      acc,
		alpha:    cfg.Alpha(),
		entries:  make(map[dataset.PartKey]*entry),
		spilled:  make(map[dataset.PartKey]sim.Bytes),
	}
}

// Metrics returns the accumulated statistics.
func (a *Allocator) Metrics() *Metrics { return &a.metrics }

// SetProbe installs (or, with nil, removes) the telemetry probe.
func (a *Allocator) SetProbe(p obs.Probe) { a.probe = p }

// sampleResident reports the node's current resident bytes to the probe.
func (a *Allocator) sampleResident(t sim.VTime) {
	if a.probe != nil {
		a.probe.Counter(a.node.ID, "mem.resident_bytes", t, float64(a.used))
	}
}

// sampleSpilled reports the node's cumulative spill volume to the probe.
func (a *Allocator) sampleSpilled(t sim.VTime) {
	if a.probe != nil {
		a.probe.Counter(a.node.ID, "mem.spilled_bytes", t, float64(a.metrics.SpilledBytes))
	}
}

// label renders a run-stable partition label via the probe.
func (a *Allocator) label(key dataset.PartKey) string {
	return a.probe.Label(int64(key.Dataset), key.Index)
}

// SpilledByPartition returns the cumulative bytes spilled per partition at
// this node, for spill attribution reports.
func (a *Allocator) SpilledByPartition() map[dataset.PartKey]sim.Bytes {
	out := make(map[dataset.PartKey]sim.Bytes, len(a.spilled))
	for k, v := range a.spilled {
		out[k] = v
	}
	return out
}

// Capacity returns the allocator's memory budget.
func (a *Allocator) Capacity() sim.Bytes { return a.capacity }

// Used returns the bytes currently resident in memory.
func (a *Allocator) Used() sim.Bytes { return a.used }

// Resident reports whether the partition is currently in memory.
func (a *Allocator) Resident(key dataset.PartKey) bool {
	e, ok := a.entries[key]
	return ok && e.inMemory
}

// Known reports whether the allocator tracks the partition at all
// (in memory or on disk).
func (a *Allocator) Known(key dataset.PartKey) bool {
	_, ok := a.entries[key]
	return ok
}

// Pin marks a partition so that it is evicted only when no unpinned victim
// exists; models Spark's explicit cache() designation (§6.1).
func (a *Allocator) Pin(key dataset.PartKey) {
	if e, ok := a.entries[key]; ok {
		e.pinned = true
	}
}

// Unpin clears a Pin, returning the partition to the evictable pool. The
// engine unpins a branch's partitions when `choose` discards the branch, so
// pinned reuse cannot leak memory-budget for the rest of the job; the
// leakcheck rule in internal/analysis enforces that every package calling
// Pin also calls Unpin.
func (a *Allocator) Unpin(key dataset.PartKey) {
	if e, ok := a.entries[key]; ok {
		e.pinned = false
	}
}

func (a *Allocator) touch(e *entry, t sim.VTime) {
	a.seq += 1e-9
	e.lastAccess = t + a.seq
}

// Put stores a freshly produced partition, evicting per policy if memory is
// exhausted, and returns the virtual time at which the write completes. A
// partition larger than the whole budget goes straight to disk.
func (a *Allocator) Put(key dataset.PartKey, bytes sim.Bytes, t sim.VTime) sim.VTime {
	e := &entry{key: key, bytes: bytes}
	a.entries[key] = e
	if bytes > a.capacity {
		e.inMemory = false
		e.onDisk = true
		a.metrics.Evictions++
		a.metrics.SpilledBytes += bytes
		a.spilled[key] += bytes
		if a.probe != nil {
			// No policy choice here — the partition cannot fit at all — but
			// the audit log must still explain where the spill came from.
			a.probe.Decision(obs.Decision{
				T: t, Node: a.node.ID, Component: "memorymgr", Kind: "evict",
				Subject: a.label(key),
				Detail:  fmt.Sprintf("oversized: %d bytes exceed the %d-byte memory budget, written straight to disk", bytes, a.capacity),
			})
		}
		end := a.node.Disk(t, a.cfg.DiskWriteSec(bytes))
		a.sampleSpilled(end)
		return end
	}
	t = a.makeRoom(bytes, t)
	e.inMemory = true
	a.used += bytes
	if a.used > a.metrics.PeakResidentBytes {
		a.metrics.PeakResidentBytes = a.used
	}
	a.touch(e, t)
	end := a.node.CPU(t, a.cfg.MemWriteSec(bytes))
	a.sampleResident(end)
	return end
}

// Access reads a partition as operator input, returning the completion time
// and whether the access was a memory hit. Disk misses reload the partition
// into memory (evicting per policy).
func (a *Allocator) Access(key dataset.PartKey, t sim.VTime) (end sim.VTime, hit bool, err error) {
	e, ok := a.entries[key]
	if !ok {
		return t, false, fmt.Errorf("memorymgr: access to unknown partition %s", key)
	}
	if e.inMemory {
		a.metrics.Hits++
		a.metrics.BytesFromMem += e.bytes
		a.touch(e, t)
		return a.node.CPU(t, a.cfg.MemReadSec(e.bytes)), true, nil
	}
	a.metrics.Misses++
	a.metrics.BytesFromDisk += e.bytes
	end = a.node.Disk(t, a.cfg.DiskReadSec(e.bytes))
	if e.bytes <= a.capacity {
		end = a.makeRoom(e.bytes, end)
		e.inMemory = true
		a.used += e.bytes
		if a.used > a.metrics.PeakResidentBytes {
			a.metrics.PeakResidentBytes = a.used
		}
		a.sampleResident(end)
	}
	a.touch(e, end)
	return end, false, nil
}

// Discard drops a partition entirely (R3: datasets no longer needed are
// discarded as soon as possible). Discarding is free.
func (a *Allocator) Discard(key dataset.PartKey) {
	e, ok := a.entries[key]
	if !ok {
		return
	}
	if e.inMemory {
		a.used -= e.bytes
	}
	delete(a.entries, key)
}

// FailNode models a node failure under checkpoint-based fault tolerance
// (§5): all resident partitions drop out of memory and must be re-read from
// their checkpoints on disk.
//
// Deprecated: FailNode assumes every partition has a checkpoint. Crash
// distinguishes checkpointed from lost partitions; use it with a
// faults.Plan instead.
func (a *Allocator) FailNode() {
	for _, e := range a.entries {
		if e.inMemory {
			e.inMemory = false
			a.used -= e.bytes
		}
	}
}

// SetCheckpointing switches the allocator into durable-copy-aware mode: see
// the checkpointing field. The engine enables it for fault-injected runs.
func (a *Allocator) SetCheckpointing(on bool) { a.checkpointing = on }

// Checkpoint writes a durable on-disk copy of a resident partition without
// evicting it, charging the disk write as a background operation starting at
// t, and returns the write-completion time. It is a no-op (returning t) when
// the partition is unknown or already durable. The engine drives this for
// AMM's anticipatory checkpointing of consumed intermediates.
func (a *Allocator) Checkpoint(key dataset.PartKey, t sim.VTime) sim.VTime {
	e, ok := a.entries[key]
	if !ok || e.onDisk {
		return t
	}
	e.onDisk = true
	a.metrics.Checkpoints++
	a.metrics.CheckpointedBytes += e.bytes
	end := a.node.Disk(t, a.cfg.DiskWriteSec(e.bytes))
	if a.probe != nil {
		a.probe.Decision(obs.Decision{
			T: t, Node: a.node.ID, Component: "memorymgr", Kind: "checkpoint",
			Subject: a.label(key),
			Detail:  fmt.Sprintf("bytes=%d pref=%g", e.bytes, a.preference(e)),
		})
		a.probe.Counter(a.node.ID, "mem.checkpointed_bytes", end, float64(a.metrics.CheckpointedBytes))
	}
	return end
}

// Checkpointed reports whether the partition has a durable on-disk copy at
// this node.
func (a *Allocator) Checkpointed(key dataset.PartKey) bool {
	e, ok := a.entries[key]
	return ok && e.onDisk
}

// Lost identifies a partition whose only copy disappeared in a failure; the
// engine re-derives it by lineage.
type Lost struct {
	Key   dataset.PartKey
	Bytes sim.Bytes
}

// Crash models a process restart of the node (a non-permanent failure):
// every resident partition drops out of memory; partitions with a durable
// on-disk copy survive and will be re-read on next access, the rest are
// removed from the allocator and returned for lineage re-derivation.
func (a *Allocator) Crash() []Lost {
	var lost []Lost
	for _, e := range a.entries {
		if e.inMemory {
			e.inMemory = false
			a.used -= e.bytes
		}
		if !e.onDisk {
			lost = append(lost, Lost{Key: e.key, Bytes: e.bytes})
			delete(a.entries, e.key)
		}
	}
	sortLost(lost)
	return lost
}

// DropDurable demotes a partition whose durable copy turned out to be
// unreadable — the checkpoint store failed verification on load. The
// entry is removed from the allocator and returned as lost so the engine
// re-derives it by lineage. Reports false when the partition is
// untracked, still memory-resident (the durable copy is not
// load-bearing), or has no durable copy to distrust.
func (a *Allocator) DropDurable(key dataset.PartKey) (Lost, bool) {
	e, ok := a.entries[key]
	if !ok || e.inMemory || !e.onDisk {
		return Lost{}, false
	}
	delete(a.entries, key)
	return Lost{Key: e.key, Bytes: e.bytes}, true
}

// SortLost orders failure reports by key for deterministic recovery. The
// engine merges allocator-reported losses with checkpoint-verification
// demotions and re-sorts before re-deriving.
func SortLost(ls []Lost) { sortLost(ls) }

// Evacuate empties the allocator for a permanent node loss, returning the
// partitions that have durable copies (re-creatable from the distributed
// file system on a surviving node via AdoptSpilled) separately from those
// lost outright (requiring lineage re-derivation).
func (a *Allocator) Evacuate() (checkpointed, lost []Lost) {
	for _, e := range a.entries {
		l := Lost{Key: e.key, Bytes: e.bytes}
		if e.onDisk {
			checkpointed = append(checkpointed, l)
		} else {
			lost = append(lost, l)
		}
	}
	a.entries = make(map[dataset.PartKey]*entry)
	a.used = 0
	sortLost(checkpointed)
	sortLost(lost)
	return checkpointed, lost
}

// AdoptSpilled registers a partition at this node as an on-disk copy without
// charging any I/O; the engine charges the transfer that moved it. Used when
// rebalancing a dead node's checkpointed partitions onto survivors.
func (a *Allocator) AdoptSpilled(key dataset.PartKey, bytes sim.Bytes) {
	if _, ok := a.entries[key]; ok {
		return
	}
	a.entries[key] = &entry{key: key, bytes: bytes, onDisk: true}
}

// PinnedParts counts the partitions currently pinned at this node. At the
// end of a run it must be zero: every Pin is matched by an Unpin or the
// partition was discarded. The chaos harness audits this.
func (a *Allocator) PinnedParts() int {
	n := 0
	for _, e := range a.entries {
		if e.pinned {
			n++
		}
	}
	return n
}

// TrackedParts counts the partitions the allocator tracks (resident or on
// disk).
func (a *Allocator) TrackedParts() int { return len(a.entries) }

// Keys returns the tracked partition keys in deterministic order, for
// lineage audits that cross-check allocator contents against the engine's
// placement map.
func (a *Allocator) Keys() []dataset.PartKey {
	keys := make([]dataset.PartKey, 0, len(a.entries))
	for k := range a.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Dataset != keys[j].Dataset {
			return keys[i].Dataset < keys[j].Dataset
		}
		return keys[i].Index < keys[j].Index
	})
	return keys
}

// CheckAccounting verifies the allocator's internal bookkeeping: the used
// counter must equal the sum of resident entry sizes, and resident bytes
// must not exceed the capacity budget. Returns nil when the books balance.
// The chaos harness calls this after every run; it is the oracle that
// catches incremental-accounting drift (a Discard or eviction forgetting to
// release bytes) that the metrics counters alone cannot see.
func (a *Allocator) CheckAccounting() error {
	var resident sim.Bytes
	for _, e := range a.entries {
		if e.inMemory {
			resident += e.bytes
		}
	}
	if resident != a.used {
		return fmt.Errorf("memorymgr: node %d used=%d but resident entries sum to %d", a.node.ID, a.used, resident)
	}
	if a.used > a.capacity {
		return fmt.Errorf("memorymgr: node %d resident %d bytes exceed the %d-byte budget", a.node.ID, a.used, a.capacity)
	}
	return nil
}

// sortLost orders failure reports by key for deterministic recovery.
func sortLost(ls []Lost) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key.Dataset != ls[j].Key.Dataset {
			return ls[i].Key.Dataset < ls[j].Key.Dataset
		}
		return ls[i].Key.Index < ls[j].Key.Index
	})
}

// makeRoom evicts partitions per policy until bytes fit, charging disk
// writes for each spill, and returns the time at which room is available.
func (a *Allocator) makeRoom(bytes sim.Bytes, t sim.VTime) sim.VTime {
	for a.used+bytes > a.capacity {
		victim, cands := a.pickVictim()
		if victim == nil {
			break // nothing evictable; allow transient over-commit
		}
		if a.probe != nil {
			a.probe.Decision(a.evictDecision(victim, cands, t))
		}
		victim.inMemory = false
		a.used -= victim.bytes
		a.metrics.Evictions++
		if a.checkpointing && victim.onDisk {
			// A durable copy already exists; dropping residency is free.
			continue
		}
		victim.onDisk = true
		a.metrics.SpilledBytes += victim.bytes
		a.spilled[victim.key] += victim.bytes
		t = a.node.Disk(t, a.cfg.DiskWriteSec(victim.bytes))
		a.sampleSpilled(t)
	}
	return t
}

// preference computes the Alg. 2 valuation pre(d) = acc(d)·δ(n,d)·α of an
// entry; under LRU the score reported instead is the last-access time.
func (a *Allocator) preference(e *entry) float64 {
	acc := 0
	if a.acc != nil {
		acc = a.acc.FutureAccesses(e.key)
	}
	return float64(acc) * float64(e.bytes) * a.alpha
}

// evictDecision describes one eviction for the audit log: the victim and
// every candidate weighed, scored by the active policy (AMM preference or
// LRU last-access age).
func (a *Allocator) evictDecision(victim *entry, cands []*entry, t sim.VTime) obs.Decision {
	d := obs.Decision{
		T: t, Node: a.node.ID, Component: "memorymgr", Kind: "evict",
		Subject: a.label(victim.key),
		Detail:  fmt.Sprintf("policy=%s bytes=%d", a.policy, victim.bytes),
	}
	for _, e := range cands {
		score := e.lastAccess.Seconds()
		if a.policy == AMM {
			score = a.preference(e)
		}
		d.Candidates = append(d.Candidates, obs.Candidate{
			Label: a.label(e.key), Score: score, Chosen: e == victim,
		})
	}
	return d
}

// pickVictim chooses the partition to evict, returning it with the sorted
// candidate set it was chosen from (for decision auditing). Pinned
// partitions are spared while any unpinned candidate exists. LRU picks the
// oldest access; AMM the lowest preference acc(d)·δ(n,d)·α, breaking ties
// by LRU then key order for determinism.
func (a *Allocator) pickVictim() (*entry, []*entry) {
	var cands []*entry
	for _, e := range a.entries {
		if e.inMemory && !e.pinned {
			cands = append(cands, e)
		}
	}
	if len(cands) == 0 {
		for _, e := range a.entries {
			if e.inMemory {
				cands = append(cands, e)
			}
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key.Dataset != cands[j].key.Dataset {
			return cands[i].key.Dataset < cands[j].key.Dataset
		}
		return cands[i].key.Index < cands[j].key.Index
	})
	switch a.policy {
	case AMM:
		best, bestPref, bestAge := cands[0], math.Inf(1), sim.VTime(math.Inf(1))
		for _, e := range cands {
			pref := a.preference(e)
			if pref < bestPref || (pref == bestPref && e.lastAccess < bestAge) {
				best, bestPref, bestAge = e, pref, e.lastAccess
			}
		}
		return best, cands
	default: // LRU
		best := cands[0]
		for _, e := range cands {
			if e.lastAccess < best.lastAccess {
				best = e
			}
		}
		return best, cands
	}
}
