package memorymgr

import (
	"fmt"
	"sort"
	"sync"

	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// This file implements per-tenant memory-quota accounting for the service
// layer: every admitted job reserves its simulated cluster memory footprint
// (per-worker budget × workers) against its tenant's quota before it may
// queue, and releases the reservation when the job leaves the system. The
// allocators already cap what a single run can keep resident per node; the
// quota pool caps what all of a tenant's queued and running jobs may claim
// together, so one tenant cannot drive the AMM of the shared cluster past
// its share no matter how many jobs it submits.

// QuotaError reports a reservation that would exceed the tenant's quota.
// The service maps it to 429 with a Retry-After hint.
type QuotaError struct {
	// Tenant is the over-quota tenant.
	Tenant string
	// Want is the rejected reservation; Reserved and Quota describe the
	// tenant's state at rejection time.
	Want, Reserved, Quota sim.Bytes
}

// Error implements the error interface.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("memorymgr: tenant %q quota exceeded: want %d bytes, %d of %d reserved",
		e.Tenant, e.Want, e.Reserved, e.Quota)
}

// TenantQuotas tracks memory reservations per tenant against a uniform
// per-tenant quota. It is safe for concurrent use; all accounting is in
// sim.Bytes of simulated cluster memory, never host memory.
type TenantQuotas struct {
	mu       sync.Mutex
	quota    sim.Bytes
	reserved map[string]sim.Bytes
	peak     map[string]sim.Bytes

	// probe receives per-tenant reservation/headroom time series; seq is
	// the logical clock stamping them (see SetProbe).
	probe obs.Probe
	seq   int64
}

// NewTenantQuotas returns a pool granting every tenant the same quota;
// perTenant <= 0 panics (a zero quota would reject every job and is always
// a configuration error).
func NewTenantQuotas(perTenant sim.Bytes) *TenantQuotas {
	if perTenant <= 0 {
		panic(fmt.Sprintf("memorymgr: non-positive tenant quota %d", perTenant))
	}
	return &TenantQuotas{
		quota:    perTenant,
		reserved: make(map[string]sim.Bytes),
		peak:     make(map[string]sim.Bytes),
	}
}

// Quota returns the per-tenant quota.
func (q *TenantQuotas) Quota() sim.Bytes {
	return q.quota
}

// SetProbe attaches a telemetry probe: every successful Reserve and every
// Release emits the tenant's reserved bytes and remaining headroom as
// gauge series (quota.reserved_bytes.<tenant>, quota.headroom_bytes.<tenant>).
// The quota pool spans jobs, so it has no single virtual clock; events are
// stamped with a logical reservation-sequence time instead (one virtual
// second per accounting event), which is deterministic for a fixed
// submission sequence. nil detaches the probe.
func (q *TenantQuotas) SetProbe(p obs.Probe) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.probe = p
}

// emitLocked samples the tenant's quota series. Callers hold q.mu.
func (q *TenantQuotas) emitLocked(tenant string) {
	if q.probe == nil {
		return
	}
	q.seq++
	t := sim.VTime(q.seq)
	q.probe.SeriesSet(obs.NodeMaster, "quota.reserved_bytes."+tenant, t, float64(q.reserved[tenant]))
	q.probe.SeriesSet(obs.NodeMaster, "quota.headroom_bytes."+tenant, t, float64(q.quota-q.reserved[tenant]))
}

// probeLocked reports whether a reservation of bytes would currently fit
// the tenant's quota, without claiming it. Callers hold q.mu.
func (q *TenantQuotas) probeLocked(tenant string, bytes sim.Bytes) error {
	if bytes < 0 {
		return fmt.Errorf("memorymgr: negative reservation %d for tenant %q", bytes, tenant)
	}
	if q.reserved[tenant]+bytes > q.quota {
		return &QuotaError{Tenant: tenant, Want: bytes, Reserved: q.reserved[tenant], Quota: q.quota}
	}
	return nil
}

// Probe reports whether a reservation of bytes could be admitted for the
// tenant right now, without reserving anything: nil means a matching
// Reserve would have succeeded at this instant, a *QuotaError carries the
// same diagnosis Reserve would have returned. Admission-time feasibility
// checks (the plan verifier, dry-run clients) use it to diagnose quota
// rejections without mutating the books; by the time a real Reserve runs
// the answer may of course have changed.
func (q *TenantQuotas) Probe(tenant string, bytes sim.Bytes) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.probeLocked(tenant, bytes)
}

// Headroom returns how many bytes the tenant could still reserve.
func (q *TenantQuotas) Headroom(tenant string) sim.Bytes {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.quota - q.reserved[tenant]
}

// Reserve claims bytes against the tenant's quota, returning a *QuotaError
// when the claim would exceed it. A successful Reserve must be paired with
// exactly one Release when the job completes, fails or is canceled.
func (q *TenantQuotas) Reserve(tenant string, bytes sim.Bytes) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.probeLocked(tenant, bytes); err != nil {
		return err
	}
	q.reserved[tenant] += bytes
	if q.reserved[tenant] > q.peak[tenant] {
		q.peak[tenant] = q.reserved[tenant]
	}
	q.emitLocked(tenant)
	return nil
}

// Release returns a reservation to the tenant's quota. Releasing more than
// is reserved clamps to zero instead of going negative, so a double release
// cannot mint quota.
func (q *TenantQuotas) Release(tenant string, bytes sim.Bytes) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if bytes > q.reserved[tenant] {
		bytes = q.reserved[tenant]
	}
	q.reserved[tenant] -= bytes
	if q.reserved[tenant] == 0 {
		delete(q.reserved, tenant)
	}
	q.emitLocked(tenant)
}

// Reserved returns the tenant's current reservation.
func (q *TenantQuotas) Reserved(tenant string) sim.Bytes {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.reserved[tenant]
}

// Peak returns the tenant's reservation high-water mark.
func (q *TenantQuotas) Peak(tenant string) sim.Bytes {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.peak[tenant]
}

// Tenants returns every tenant that ever held a reservation, sorted, so
// snapshot emission iterates in a deterministic order.
func (q *TenantQuotas) Tenants() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.peak))
	for t := range q.peak {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
