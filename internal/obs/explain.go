package obs

import (
	"fmt"
	"io"
)

// This file renders the decision audit log as text (mdfrun -explain): one
// line per decision in virtual-time order, with the scored candidates the
// decision weighed indented below it. The format is stable enough to diff
// two runs of the same seed.

// WriteDecisions renders the recorder's decision log as text.
func (r *Recorder) WriteDecisions(w io.Writer) error {
	decisions := r.Decisions()
	if len(decisions) == 0 {
		_, err := fmt.Fprintln(w, "(no decisions recorded; run with telemetry enabled)")
		return err
	}
	for _, d := range decisions {
		if err := writeDecision(w, d); err != nil {
			return err
		}
	}
	return nil
}

func writeDecision(w io.Writer, d Decision) error {
	where := "master"
	if d.Node != NodeMaster {
		where = fmt.Sprintf("node %d", d.Node)
	}
	line := fmt.Sprintf("[%10.2f] %-9s %-10s %s  %s", d.T, d.Component, d.Kind, where, d.Subject)
	if d.Detail != "" {
		line += "  (" + d.Detail + ")"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range d.Candidates {
		mark := " "
		if c.Chosen {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, "             %s %-28s score=%g\n", mark, c.Label, c.Score); err != nil {
			return err
		}
	}
	return nil
}
