package obs

import (
	"bytes"
	"math"
	"testing"
)

func TestLogExpExactPowers(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{8, 3},      // exact power of two lands in its own bucket
		{8.0001, 4}, // just past the bound rolls over
		{1, 0},
		{0.5, -1},
		{0.75, 0},
		{3, 2},
		{0, logExpFloor},
		{-1, logExpFloor},
		{math.NaN(), logExpFloor},
	}
	for _, c := range cases {
		if got := logExp(c.v); got != c.want {
			t.Errorf("logExp(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func recordFixture(r *Recorder) {
	r.SeriesAdd(NodeMaster, "sched.rank_churn", 5, 2)
	r.SeriesAdd(NodeMaster, "sched.rank_churn", 7, 1)
	r.SeriesAdd(NodeMaster, "sched.rank_churn", 15, 4)
	r.SeriesSet(NodeMaster, "engine.branch_score.b0", 12, 0.5)
	r.SeriesSet(NodeMaster, "engine.branch_score.b0", 18, 0.9) // same bucket: last wins
	r.SeriesObserve(0, "stage_latency", 3, 8)                  // exact power of two
	r.SeriesObserve(0, "stage_latency", 4, 0.3)
	id := r.IntervalBegin(NodeMaster, "branch_active", 0)
	r.IntervalEnd(id, 25)
	r.Counter(1, "mem.resident_bytes", 9, 4096)
	sp := r.SpanBegin(0, KindStage, "T1", 0)
	r.SpanEnd(sp, 12)
	r.ResourceBusy(0, "cpu", 5, 25)
}

func TestSeriesDocBucketsAndKinds(t *testing.T) {
	r := NewRecorder()
	recordFixture(r)
	doc := r.Series(10)

	if doc.Schema != SeriesSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, SeriesSchema)
	}
	if doc.Buckets != 3 {
		t.Fatalf("buckets = %d, want 3 (events reach t=25)", doc.Buckets)
	}

	find := func(name string, node int) *Series {
		for i := range doc.Series {
			if doc.Series[i].Name == name && doc.Series[i].Node == node {
				return &doc.Series[i]
			}
		}
		t.Fatalf("series %q node %d missing; have %v", name, node, names(doc))
		return nil
	}

	churn := find("sched.rank_churn", NodeMaster)
	if churn.Kind != SeriesCounter || len(churn.Points) != 2 {
		t.Fatalf("rank_churn kind=%s points=%v", churn.Kind, churn.Points)
	}
	if churn.Points[0] != (SeriesPoint{Bucket: 0, Value: 3}) {
		t.Fatalf("rank_churn bucket 0 = %+v, want sum 3", churn.Points[0])
	}
	if churn.Points[1] != (SeriesPoint{Bucket: 1, Value: 4}) {
		t.Fatalf("rank_churn bucket 1 = %+v, want 4", churn.Points[1])
	}

	score := find("engine.branch_score.b0", NodeMaster)
	if score.Kind != SeriesGauge || len(score.Points) != 1 || score.Points[0].Value != 0.9 {
		t.Fatalf("branch_score = %+v, want last-wins 0.9", score.Points)
	}

	lat := find("stage_latency", 0)
	if lat.Kind != SeriesHistogram || len(lat.Hist) != 1 {
		t.Fatalf("stage_latency = %+v", lat.Hist)
	}
	hp := lat.Hist[0]
	if hp.Count != 2 || hp.Sum != 8.3 {
		t.Fatalf("stage_latency bucket 0: count=%d sum=%v", hp.Count, hp.Sum)
	}
	if len(hp.Log) != 2 || hp.Log[0].Exp != -1 || hp.Log[1].Exp != 3 {
		t.Fatalf("stage_latency log buckets = %+v", hp.Log)
	}

	// Interval => start counter + duration histogram.
	starts := find("branch_active", NodeMaster)
	if starts.Kind != SeriesCounter || starts.Points[0].Value != 1 {
		t.Fatalf("branch_active starts = %+v", starts.Points)
	}
	dur := find("branch_active.duration", NodeMaster)
	if dur.Kind != SeriesHistogram || dur.Hist[0].Sum != 25 {
		t.Fatalf("branch_active.duration = %+v", dur.Hist)
	}

	// Counter track derived as a gauge series.
	res := find("mem.resident_bytes", 1)
	if res.Kind != SeriesGauge || res.Points[0].Value != 4096 {
		t.Fatalf("mem.resident_bytes = %+v", res.Points)
	}

	// Task spans derive duration histograms; resource spans derive
	// utilization gauges.
	stageLat := find("lat.stage", 0)
	if stageLat.Hist[0].Sum != 12 {
		t.Fatalf("lat.stage = %+v", stageLat.Hist)
	}
	util := find("util.cpu", 0)
	if len(util.Points) != 3 {
		t.Fatalf("util.cpu = %+v, want 3 buckets", util.Points)
	}
	// Busy 5..25 over 10s buckets: 0.5, 1.0, 0.5.
	if util.Points[0].Value != 0.5 || util.Points[1].Value != 1 || util.Points[2].Value != 0.5 {
		t.Fatalf("util.cpu fractions = %+v", util.Points)
	}
}

func names(doc *SeriesDoc) []string {
	out := make([]string, len(doc.Series))
	for i, s := range doc.Series {
		out[i] = s.Name
	}
	return out
}

// TestSeriesDeterministic pins the double-run byte-compare contract: two
// identically fed recorders serialise byte-identical mdf.series/v1 docs.
func TestSeriesDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		r := NewRecorder()
		recordFixture(r)
		if err := r.Series(10).WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("series doc not deterministic:\n%s\nvs\n%s", bufs[0].String(), bufs[1].String())
	}
}

func TestSeriesDefaultBucket(t *testing.T) {
	r := NewRecorder()
	r.SeriesAdd(0, "c", 0, 1)
	doc := r.Series(0)
	if doc.BucketSec != DefaultBucketSec {
		t.Fatalf("bucket_sec = %v, want default %v", doc.BucketSec, DefaultBucketSec)
	}
}
