package obs

import "sort"

// MergeSnapshots aggregates per-job metrics snapshots into one service-level
// document of the same schema. The merge is commutative and deterministic —
// every collection is re-sorted by name — so aggregating the snapshots of a
// fixed job set yields byte-identical JSON regardless of the order the jobs
// finished in:
//
//   - counters and gauges sum by name, except mem.hit_ratio, which is
//     recomputed from the summed mem.hits and mem.misses (a sum of ratios is
//     meaningless);
//   - histograms with identical bucket bounds merge bucket-wise; a histogram
//     whose bounds differ from the first occurrence of its name is dropped
//     rather than mis-merged, and every drop is counted in the
//     obs.merge_dropped_histograms counter (always present, zero in the
//     common all-compatible case) so the loss is visible in the document;
//   - completion_sec takes the maximum (the service-level makespan of the
//     merged jobs);
//   - per-node allocator states are omitted: jobs run on isolated per-job
//     clusters, so "node 0" of different jobs is not the same memory;
//   - fault events concatenate in snapshot order (callers pass snapshots in
//     job-ID order to keep this stable).
func MergeSnapshots(snaps []*Snapshot) *Snapshot {
	out := NewSnapshot()
	counters := make(map[string]int64)
	gauges := make(map[string]float64)
	hists := make(map[string]*Histogram)
	var histOrder []string
	var droppedHists int64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.CompletionSec > out.CompletionSec {
			out.CompletionSec = s.CompletionSec
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for i := range s.Histograms {
			h := &s.Histograms[i]
			have, ok := hists[h.Name]
			if !ok {
				cp := *h
				cp.Buckets = append([]Bucket(nil), h.Buckets...)
				hists[h.Name] = &cp
				histOrder = append(histOrder, h.Name)
				continue
			}
			if !sameBounds(have.Buckets, h.Buckets) {
				droppedHists++
				continue
			}
			have.Count += h.Count
			have.Sum += h.Sum
			have.Overflow += h.Overflow
			for i := range have.Buckets {
				have.Buckets[i].Count += h.Buckets[i].Count
			}
		}
		out.Faults = append(out.Faults, s.Faults...)
	}
	// Surface the drop count even when zero, so consumers can rely on the
	// counter existing and alert on it going nonzero.
	counters["obs.merge_dropped_histograms"] += droppedHists
	if hits, ok := counters["mem.hits"]; ok {
		if misses, ok := counters["mem.misses"]; ok {
			ratio := 1.0
			if hits+misses > 0 {
				ratio = float64(hits) / float64(hits+misses)
			}
			gauges["mem.hit_ratio"] = ratio
		}
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.AddCounter(name, counters[name])
	}
	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.AddGauge(name, gauges[name])
	}
	sort.Strings(histOrder)
	for _, name := range histOrder {
		out.Histograms = append(out.Histograms, *hists[name])
	}
	out.Normalize()
	return out
}

func sameBounds(a, b []Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Le != b[i].Le {
			return false
		}
	}
	return true
}
