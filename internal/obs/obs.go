// Package obs is the unified virtual-time telemetry layer of the runtime:
// a Probe interface threaded through the engine, scheduler, memory manager,
// cluster and fault layer, and a Recorder that materialises what the probes
// report into three artefacts:
//
//   - per-node task spans, rendered as a multi-track Chrome trace
//     (WriteChromeTrace) with one process per simulated node, one labelled
//     track per event kind, and counter tracks for resident bytes, spill
//     and checkpoint volume, and scheduler queue depth;
//   - a decision audit log (WriteDecisions) capturing each scheduling pick
//     with its Alg. 1 candidate scores and each AMM evict/checkpoint with
//     its Alg. 2 valuation;
//   - a metrics snapshot (Snapshot) of counters, gauges and histograms over
//     sim.VTime/sim.Bytes, serialised as schema-stable JSON.
//
// Everything is keyed by virtual time, never wall clock, and every
// collection is kept in deterministic (insertion or explicitly sorted)
// order, so running the same seed twice yields byte-identical artefacts.
// A nil Probe disables the layer: instrumented components guard every
// report behind a nil check, so an untraced run does no telemetry work.
//
// Dataset identity deserves a note: dataset.ID is a process-global counter,
// so raw IDs differ between two runs in the same process. Probes therefore
// never serialise IDs; the engine registers each dataset when it is
// produced (RegisterDataset) and the Recorder hands out run-local aliases
// ("name#seq") in registration order, which IS deterministic.
package obs

import (
	"fmt"
	"sync"

	"metadataflow/internal/sim"
)

// Kind classifies a span track. The engine emits the task kinds; the
// cluster's resource observer emits the resource kinds.
type Kind string

const (
	// KindStage is a regular stage task executing on a node.
	KindStage Kind = "stage"
	// KindEval is a worker-side choose-evaluator invocation.
	KindEval Kind = "eval"
	// KindChoose is the master-side selection of a choose stage.
	KindChoose Kind = "choose"
	// KindPruned marks a stage skipped as superfluous (instantaneous).
	KindPruned Kind = "pruned"
	// KindRecovery is failure-recovery work (lineage re-derivation,
	// checkpoint rebalancing).
	KindRecovery Kind = "recovery"
	// KindCPU, KindDisk and KindNet are resource-occupancy spans reported
	// by the cluster's node timelines.
	KindCPU  Kind = "cpu"
	KindDisk Kind = "disk"
	KindNet  Kind = "net"
)

// NodeMaster is the node index of master-side events: scheduling picks,
// choose selections, and the scheduler queue-depth counter.
const NodeMaster = -1

// SpanID identifies a span begun on a Probe, to be closed with SpanEnd.
type SpanID int

// Probe is the telemetry interface the runtime components report into.
// Implementations must tolerate events arriving in virtual-time order with
// equal timestamps (ordering ties are broken by call order, which the
// deterministic engine fixes). The zero-cost disabled state is a nil Probe
// at the call site, not a Nop value: components guard with `if p != nil`.
type Probe interface {
	// SpanBegin opens a task span on a node track and returns its ID.
	SpanBegin(node int, kind Kind, name string, start sim.VTime) SpanID
	// SpanEnd closes a span begun earlier. Every SpanBegin must be paired
	// with a SpanEnd (the mdflint leakcheck rule enforces the balance per
	// package, like Pin/Unpin).
	SpanEnd(id SpanID, end sim.VTime)
	// Counter records one sample of a per-node counter track.
	Counter(node int, name string, t sim.VTime, value float64)
	// Decision appends one entry to the decision audit log.
	Decision(d Decision)
	// RegisterDataset associates a dataset's process-global ID with its
	// display name, so later Label calls can render a run-stable alias.
	// Repeated registration of the same ID is a no-op.
	RegisterDataset(id int64, name string)
	// Label renders a run-stable display label for partition part of the
	// registered dataset id.
	Label(id int64, part int) string

	// SeriesAdd adds a delta to a bucketed counter series (see series.go):
	// the per-bucket value is the sum of the deltas reported in the bucket.
	SeriesAdd(node int, name string, t sim.VTime, delta float64)
	// SeriesSet samples a gauge series: the per-bucket value is the last
	// value set in the bucket (call order, which the engine fixes).
	SeriesSet(node int, name string, t sim.VTime, value float64)
	// SeriesObserve adds one observation to a per-bucket log-bucketed
	// (HDR-style) histogram series.
	SeriesObserve(node int, name string, t sim.VTime, value float64)
	// IntervalBegin opens a named interval (a branch lifetime, a recovery
	// window) and returns its ID. Every IntervalBegin must be paired with an
	// IntervalEnd (the mdflint leakcheck rule enforces the balance per
	// package, like SpanBegin/SpanEnd).
	IntervalBegin(node int, name string, start sim.VTime) SpanID
	// IntervalEnd closes an interval begun earlier.
	IntervalEnd(id SpanID, end sim.VTime)
}

// Nop is a Probe that discards everything. It exists for call sites that
// need a non-nil Probe; instrumented components prefer a nil Probe, which
// skips even the interface call.
type Nop struct{}

// SpanBegin implements Probe.
func (Nop) SpanBegin(int, Kind, string, sim.VTime) SpanID { return 0 }

// SpanEnd implements Probe.
func (Nop) SpanEnd(SpanID, sim.VTime) {}

// Counter implements Probe.
func (Nop) Counter(int, string, sim.VTime, float64) {}

// Decision implements Probe.
func (Nop) Decision(Decision) {}

// RegisterDataset implements Probe.
func (Nop) RegisterDataset(int64, string) {}

// Label implements Probe.
func (Nop) Label(int64, int) string { return "" }

// SeriesAdd implements Probe.
func (Nop) SeriesAdd(int, string, sim.VTime, float64) {}

// SeriesSet implements Probe.
func (Nop) SeriesSet(int, string, sim.VTime, float64) {}

// SeriesObserve implements Probe.
func (Nop) SeriesObserve(int, string, sim.VTime, float64) {}

// IntervalBegin implements Probe.
func (Nop) IntervalBegin(int, string, sim.VTime) SpanID { return 0 }

// IntervalEnd implements Probe.
func (Nop) IntervalEnd(SpanID, sim.VTime) {}

var _ Probe = Nop{}

// Span is one closed task span on a node track.
type Span struct {
	// Node is the worker index, or NodeMaster.
	Node int
	// Kind selects the track within the node's process.
	Kind Kind
	// Name labels the span (stage label, operator name, ...).
	Name string
	// Start and End bound the span in virtual time; equal for instants.
	Start, End sim.VTime
}

// CounterSample is one sample of a per-node counter track.
type CounterSample struct {
	// Node is the worker index, or NodeMaster.
	Node int
	// Name is the counter track name (e.g. "mem.resident_bytes").
	Name string
	// T is the sample's virtual time.
	T sim.VTime
	// Value is the sampled value.
	Value float64
}

// Candidate is one scored option of a Decision.
type Candidate struct {
	// Label identifies the candidate (stage label, partition alias).
	Label string
	// Score is the value the decision ranked the candidate by: the
	// scheduling hint for BAS picks, the evaluator score for choose
	// selections, the Alg. 2 preference acc·δ·α for AMM evictions.
	Score float64
	// Chosen marks the candidate(s) the decision selected.
	Chosen bool
}

// Decision is one entry of the decision audit log.
type Decision struct {
	// T is the decision's virtual time.
	T sim.VTime
	// Node is the worker the decision concerns, or NodeMaster.
	Node int
	// Component names the deciding layer: "scheduler", "engine",
	// "memorymgr" or "faults".
	Component string
	// Kind names the decision: "pick", "choose", "evict", "checkpoint",
	// "crash", "retry", "rederive", "rebalance", "quarantine".
	Kind string
	// Subject is what was decided about (the chosen stage, the victim
	// partition, the crashed node).
	Subject string
	// Detail is free-form context (trigger, policy, byte volumes).
	Detail string
	// Candidates are the scored options the decision weighed, in
	// evaluation order; empty when the decision had no alternatives.
	Candidates []Candidate
}

// Recorder is the materialising Probe: it retains every span, counter
// sample and decision in call order. A mutex makes concurrent reporters
// safe (parallel baseline jobs may share one recorder); within one engine
// run all calls arrive from a single goroutine in deterministic order.
type Recorder struct {
	mu        sync.Mutex
	spans     []Span
	counters  []CounterSample
	decisions []Decision
	series    []seriesSample
	intervals []Interval

	aliasOf map[int64]string
	aliases int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{aliasOf: make(map[int64]string)}
}

var _ Probe = (*Recorder)(nil)

// SpanBegin implements Probe.
func (r *Recorder) SpanBegin(node int, kind Kind, name string, start sim.VTime) SpanID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Node: node, Kind: kind, Name: name, Start: start, End: start})
	return SpanID(len(r.spans) - 1)
}

// SpanEnd implements Probe.
func (r *Recorder) SpanEnd(id SpanID, end sim.VTime) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < 0 || int(id) >= len(r.spans) {
		return
	}
	if end > r.spans[id].End {
		r.spans[id].End = end
	}
}

// Counter implements Probe.
func (r *Recorder) Counter(node int, name string, t sim.VTime, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, CounterSample{Node: node, Name: name, T: t, Value: value})
}

// Decision implements Probe.
func (r *Recorder) Decision(d Decision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decisions = append(r.decisions, d)
}

// RegisterDataset implements Probe: the first registration of an ID assigns
// the next run-local alias, "name#seq". Registration order is the engine's
// deterministic production order, so aliases are stable across runs even
// though raw dataset IDs are not.
func (r *Recorder) RegisterDataset(id int64, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.aliasOf[id]; ok {
		return
	}
	r.aliases++
	r.aliasOf[id] = fmt.Sprintf("%s#%d", name, r.aliases)
}

// Label implements Probe: "alias/p<part>", or a fixed placeholder for
// unregistered datasets (never the raw ID, which is not run-stable).
func (r *Recorder) Label(id int64, part int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	alias, ok := r.aliasOf[id]
	if !ok {
		alias = "unregistered"
	}
	return fmt.Sprintf("%s/p%d", alias, part)
}

// SeriesAdd implements Probe.
func (r *Recorder) SeriesAdd(node int, name string, t sim.VTime, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, seriesSample{node: node, name: name, op: opAdd, t: t, v: delta})
}

// SeriesSet implements Probe.
func (r *Recorder) SeriesSet(node int, name string, t sim.VTime, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, seriesSample{node: node, name: name, op: opSet, t: t, v: value})
}

// SeriesObserve implements Probe.
func (r *Recorder) SeriesObserve(node int, name string, t sim.VTime, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.series = append(r.series, seriesSample{node: node, name: name, op: opObserve, t: t, v: value})
}

// IntervalBegin implements Probe.
func (r *Recorder) IntervalBegin(node int, name string, start sim.VTime) SpanID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.intervals = append(r.intervals, Interval{Node: node, Name: name, Start: start, End: start})
	return SpanID(len(r.intervals) - 1)
}

// IntervalEnd implements Probe.
func (r *Recorder) IntervalEnd(id SpanID, end sim.VTime) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) < 0 || int(id) >= len(r.intervals) {
		return
	}
	if end > r.intervals[id].End {
		r.intervals[id].End = end
	}
}

// Intervals returns a copy of the recorded intervals in begin order.
func (r *Recorder) Intervals() []Interval {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Interval(nil), r.intervals...)
}

// ResourceBusy implements the cluster's resource Observer: each occupation
// of a node's CPU, disk or network timeline becomes a span on that node's
// matching resource track.
func (r *Recorder) ResourceBusy(node int, resource string, start, end sim.VTime) {
	id := r.SpanBegin(node, Kind(resource), resource, start)
	r.SpanEnd(id, end)
}

// Spans returns a copy of the recorded spans in call order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// CounterSamples returns a copy of the recorded counter samples in call
// order.
func (r *Recorder) CounterSamples() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CounterSample(nil), r.counters...)
}

// Decisions returns a copy of the decision audit log in call order.
func (r *Recorder) Decisions() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.decisions...)
}
