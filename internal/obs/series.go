package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"metadataflow/internal/sim"
)

// This file defines the deterministic time-series layer: virtual-time-
// bucketed counters, gauges and log-bucketed (HDR-style) histograms,
// reported through the Probe series methods (SeriesAdd, SeriesSet,
// SeriesObserve, IntervalBegin/IntervalEnd) and materialised by
// Recorder.Series into a schema-stable mdf.series/v1 document.
//
// Determinism contract: bucket indices are floor(t / bucket_sec) over
// sim.VTime (never wall clock); log-histogram bucketing uses math.Frexp,
// which is exact binary decomposition, not a transcendental approximation;
// every collection in the document is sorted (series by name then node,
// points by bucket index), so serialising the series of the same seed twice
// is byte-identical. Beyond the explicit series samples, Series derives
//
//   - a gauge series from every Counter track (last sample per bucket),
//   - a per-bucket duration histogram from every task span kind
//     ("lat.<kind>", e.g. lat.stage, lat.eval), and
//   - a utilization gauge from every resource span kind ("util.<kind>",
//     e.g. util.cpu/util.disk/util.net: busy fraction of each bucket),
//
// so the memory manager's counter tracks and the cluster's resource
// timelines become time series without those layers changing.

// SeriesSchema is the time-series document schema identifier.
const SeriesSchema = "mdf.series/v1"

// DefaultBucketSec is the default virtual-time bucket width in seconds.
const DefaultBucketSec = 10.0

// Series kinds.
const (
	// SeriesCounter sums SeriesAdd deltas per bucket.
	SeriesCounter = "counter"
	// SeriesGauge keeps the last SeriesSet value per bucket.
	SeriesGauge = "gauge"
	// SeriesHistogram log-buckets SeriesObserve values per bucket.
	SeriesHistogram = "histogram"
)

// LogBucket is one power-of-two bucket of a per-bucket histogram: the count
// of observations v with 2^(Exp-1) < v <= 2^Exp. Exp 0 with the special
// floor marker collects non-positive observations.
type LogBucket struct {
	Exp   int   `json:"exp"`
	Count int64 `json:"count"`
}

// logExpFloor marks the log bucket collecting observations <= 0, which have
// no power-of-two bound.
const logExpFloor = math.MinInt32

// logExp returns the histogram bucket exponent of v: the smallest e with
// v <= 2^e, computed exactly via binary decomposition (no transcendental
// functions, so bucketing is bit-reproducible).
func logExp(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return logExpFloor
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		// v is an exact power of two: 2^(exp-1), upper bound of bucket exp-1.
		return exp - 1
	}
	return exp
}

// SeriesPoint is one bucketed value of a counter or gauge series.
type SeriesPoint struct {
	// Bucket is the bucket index; the bucket covers virtual time
	// [Bucket*bucket_sec, (Bucket+1)*bucket_sec).
	Bucket int `json:"bucket"`
	// Value is the bucket's value: the summed deltas of a counter series,
	// the last set value of a gauge series.
	Value float64 `json:"value"`
}

// HistPoint is one bucketed histogram of a histogram series.
type HistPoint struct {
	Bucket int     `json:"bucket"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	// Log are the power-of-two buckets with nonzero counts, ascending by
	// exponent; an entry with "exp" logExpFloor collects values <= 0.
	Log []LogBucket `json:"log,omitempty"`
}

// Series is one named time series of the document.
type Series struct {
	// Name identifies the series ("sched.queue_depth",
	// "engine.branch_score.T9[choose].b2", "util.cpu", ...).
	Name string `json:"name"`
	// Node is the worker index the series belongs to, or NodeMaster.
	Node int `json:"node"`
	// Kind is SeriesCounter, SeriesGauge or SeriesHistogram.
	Kind string `json:"kind"`
	// Points holds counter/gauge buckets in ascending bucket order.
	Points []SeriesPoint `json:"points,omitempty"`
	// Hist holds histogram buckets in ascending bucket order.
	Hist []HistPoint `json:"hist,omitempty"`
}

// SeriesDoc is the mdf.series/v1 document: every time series of one run.
type SeriesDoc struct {
	Schema string `json:"schema"`
	// BucketSec is the virtual-time bucket width.
	BucketSec sim.VTime `json:"bucket_sec"`
	// Buckets is the number of buckets covering the run (max index + 1).
	Buckets int `json:"buckets"`
	// Series are sorted by name, then node.
	Series []Series `json:"series"`
}

// WriteJSON serialises the document as indented JSON. The builder sorts
// every collection, so the bytes depend only on the recorded telemetry.
func (d *SeriesDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// seriesOp distinguishes the three explicit series sample kinds.
type seriesOp uint8

const (
	opAdd seriesOp = iota
	opSet
	opObserve
)

// seriesSample is one explicit series report retained by the Recorder.
type seriesSample struct {
	node int
	name string
	op   seriesOp
	t    sim.VTime
	v    float64
}

// Interval is one closed named interval reported through
// IntervalBegin/IntervalEnd (a branch lifetime, a drain window).
type Interval struct {
	// Node is the worker index, or NodeMaster.
	Node int
	// Name labels the interval series.
	Name string
	// Start and End bound the interval in virtual time.
	Start, End sim.VTime
}

// seriesKey identifies one series while building the document.
type seriesKey struct {
	name string
	node int
	kind string
}

// seriesBuilder accumulates bucketed values for one document.
type seriesBuilder struct {
	bucketSec float64
	points    map[seriesKey]map[int]float64 // counter/gauge buckets
	hists     map[seriesKey]map[int]*histAccum
	maxBucket int
}

type histAccum struct {
	count int64
	sum   float64
	log   map[int]int64
}

func newSeriesBuilder(bucketSec float64) *seriesBuilder {
	if bucketSec <= 0 {
		bucketSec = DefaultBucketSec
	}
	return &seriesBuilder{
		bucketSec: bucketSec,
		points:    make(map[seriesKey]map[int]float64),
		hists:     make(map[seriesKey]map[int]*histAccum),
	}
}

// bucketOf maps a virtual time onto its bucket index.
func (b *seriesBuilder) bucketOf(t sim.VTime) int {
	if t <= 0 {
		return 0
	}
	return int(t.Seconds() / b.bucketSec)
}

func (b *seriesBuilder) note(bucket int) {
	if bucket > b.maxBucket {
		b.maxBucket = bucket
	}
}

func (b *seriesBuilder) add(node int, name string, t sim.VTime, delta float64) {
	key := seriesKey{name: name, node: node, kind: SeriesCounter}
	bucket := b.bucketOf(t)
	m := b.points[key]
	if m == nil {
		m = make(map[int]float64)
		b.points[key] = m
	}
	m[bucket] += delta
	b.note(bucket)
}

func (b *seriesBuilder) set(node int, name string, t sim.VTime, value float64) {
	key := seriesKey{name: name, node: node, kind: SeriesGauge}
	bucket := b.bucketOf(t)
	m := b.points[key]
	if m == nil {
		m = make(map[int]float64)
		b.points[key] = m
	}
	// Samples arrive in call order, which the deterministic engine fixes;
	// the last write of a bucket wins.
	m[bucket] = value
	b.note(bucket)
}

func (b *seriesBuilder) observe(node int, name string, t sim.VTime, value float64) {
	key := seriesKey{name: name, node: node, kind: SeriesHistogram}
	bucket := b.bucketOf(t)
	m := b.hists[key]
	if m == nil {
		m = make(map[int]*histAccum)
		b.hists[key] = m
	}
	h := m[bucket]
	if h == nil {
		h = &histAccum{log: make(map[int]int64)}
		m[bucket] = h
	}
	h.count++
	h.sum += value
	h.log[logExp(value)]++
	b.note(bucket)
}

// utilization spreads a busy interval over the buckets it overlaps, adding
// the busy fraction of each bucket to a gauge series.
func (b *seriesBuilder) utilization(node int, name string, start, end sim.VTime) {
	if end < start {
		return
	}
	key := seriesKey{name: name, node: node, kind: SeriesGauge}
	m := b.points[key]
	if m == nil {
		m = make(map[int]float64)
		b.points[key] = m
	}
	first, last := b.bucketOf(start), b.bucketOf(end)
	for bi := first; bi <= last; bi++ {
		lo := float64(bi) * b.bucketSec
		hi := lo + b.bucketSec
		s, e := start.Seconds(), end.Seconds()
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			m[bi] += (e - s) / b.bucketSec
		}
	}
	b.note(last)
}

// doc renders the accumulated buckets into the sorted document.
func (b *seriesBuilder) doc() *SeriesDoc {
	doc := &SeriesDoc{
		Schema:    SeriesSchema,
		BucketSec: sim.VTime(b.bucketSec),
		Buckets:   b.maxBucket + 1,
		Series:    []Series{},
	}
	keys := make([]seriesKey, 0, len(b.points)+len(b.hists))
	for k := range b.points {
		keys = append(keys, k)
	}
	for k := range b.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		s := Series{Name: k.name, Node: k.node, Kind: k.kind}
		if k.kind == SeriesHistogram {
			buckets := make([]int, 0, len(b.hists[k]))
			for bi := range b.hists[k] {
				buckets = append(buckets, bi)
			}
			sort.Ints(buckets)
			for _, bi := range buckets {
				h := b.hists[k][bi]
				hp := HistPoint{Bucket: bi, Count: h.count, Sum: h.sum}
				exps := make([]int, 0, len(h.log))
				for e := range h.log {
					exps = append(exps, e)
				}
				sort.Ints(exps)
				for _, e := range exps {
					hp.Log = append(hp.Log, LogBucket{Exp: e, Count: h.log[e]})
				}
				s.Hist = append(s.Hist, hp)
			}
		} else {
			buckets := make([]int, 0, len(b.points[k]))
			for bi := range b.points[k] {
				buckets = append(buckets, bi)
			}
			sort.Ints(buckets)
			for _, bi := range buckets {
				s.Points = append(s.Points, SeriesPoint{Bucket: bi, Value: b.points[k][bi]})
			}
		}
		doc.Series = append(doc.Series, s)
	}
	return doc
}

// Series materialises the recorded telemetry into the mdf.series/v1
// document with the given virtual-time bucket width (<= 0 uses
// DefaultBucketSec). Besides the explicit series samples it derives
// a gauge series from every Counter track, a "lat.<kind>" duration
// histogram from every task span kind, a "util.<kind>" busy-fraction gauge
// from every resource span kind (cpu, disk, net), and for every interval
// series a per-bucket start counter plus a "<name>.duration" histogram.
func (r *Recorder) Series(bucketSec sim.VTime) *SeriesDoc {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := newSeriesBuilder(float64(bucketSec))
	for _, s := range r.series {
		switch s.op {
		case opAdd:
			b.add(s.node, s.name, s.t, s.v)
		case opSet:
			b.set(s.node, s.name, s.t, s.v)
		case opObserve:
			b.observe(s.node, s.name, s.t, s.v)
		}
	}
	for _, c := range r.counters {
		b.set(c.Node, c.Name, c.T, c.Value)
	}
	for _, sp := range r.spans {
		switch sp.Kind {
		case KindCPU, KindDisk, KindNet:
			b.utilization(sp.Node, "util."+string(sp.Kind), sp.Start, sp.End)
		default:
			b.observe(sp.Node, "lat."+string(sp.Kind), sp.End, (sp.End - sp.Start).Seconds())
		}
	}
	for _, iv := range r.intervals {
		b.add(iv.Node, iv.Name, iv.Start, 1)
		b.observe(iv.Node, iv.Name+".duration", iv.End, (iv.End - iv.Start).Seconds())
	}
	return b.doc()
}
