package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file renders a Recorder's spans and counter samples in the Chrome
// Trace Event Format (the JSON consumed by chrome://tracing and
// https://ui.perfetto.dev). Unlike the engine's legacy single-process
// writer, the layout here is multi-track: one trace process (pid) per
// simulated node plus one for the master, one named thread (tid) per span
// kind present on that node, and "C" counter tracks for the per-node
// counter samples. Track numbering is derived from the kinds actually
// present, in a fixed rank order, so adding a new Kind never silently
// collapses onto an existing track.

// usPerVirtualSecond maps one virtual second to one millisecond of trace
// time, keeping thousand-second jobs navigable in the viewer.
const usPerVirtualSecond = 1000.0

// kindRank fixes the display order of kind tracks within a node's process.
// Kinds not listed sort after these, alphabetically.
var kindRank = map[Kind]int{
	KindStage:    0,
	KindEval:     1,
	KindChoose:   2,
	KindPruned:   3,
	KindRecovery: 4,
	KindCPU:      5,
	KindDisk:     6,
	KindNet:      7,
}

// chromeEvent is one entry of the Chrome Trace Event Format. Args carries
// the payload of "M" metadata events and "C" counter samples.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	Phase string `json:"ph"`
	// Ts and Dur are in trace microseconds (see usPerVirtualSecond).
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args *eventArgs `json:"args,omitempty"`
}

// eventArgs is the fixed-shape args payload: Name for metadata events,
// Value for counter samples. A struct (not a map) keeps JSON field order
// deterministic.
type eventArgs struct {
	Name  string   `json:"name,omitempty"`
	Value *float64 `json:"value,omitempty"`
}

// pidOf maps a node index to its trace process: pid 1 is the master,
// pid 2+i is worker i.
func pidOf(node int) int {
	if node == NodeMaster {
		return 1
	}
	return 2 + node
}

// processLabel names a trace process for the process_name metadata event.
func processLabel(node int) string {
	if node == NodeMaster {
		return "master"
	}
	return fmt.Sprintf("node %d", node)
}

// WriteChromeTrace renders the recorder's spans and counter samples as a
// multi-track Chrome trace. Output is deterministic: events are grouped by
// node then track, and within a track keep the recorder's call order
// (which the engine derives from virtual time).
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	counters := r.CounterSamples()

	// Discover the tracks present per node. Kind tracks come first in
	// kindRank order, then counter tracks sorted by name.
	kindsByNode := map[int]map[Kind]bool{}
	countersByNode := map[int]map[string]bool{}
	for _, s := range spans {
		m := kindsByNode[s.Node]
		if m == nil {
			m = map[Kind]bool{}
			kindsByNode[s.Node] = m
		}
		m[s.Kind] = true
	}
	for _, c := range counters {
		m := countersByNode[c.Node]
		if m == nil {
			m = map[string]bool{}
			countersByNode[c.Node] = m
		}
		m[c.Name] = true
	}
	nodeSet := map[int]bool{}
	for n := range kindsByNode {
		nodeSet[n] = true
	}
	for n := range countersByNode {
		nodeSet[n] = true
	}
	nodes := make([]int, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)

	kindTid := map[int]map[Kind]int{}
	counterTid := map[int]map[string]int{}
	events := make([]chromeEvent, 0, len(spans)+len(counters)+4*len(nodes))

	for _, n := range nodes {
		pid := pidOf(n)
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", Pid: pid, Tid: 0,
			Args: &eventArgs{Name: processLabel(n)},
		})
		kinds := make([]Kind, 0, len(kindsByNode[n]))
		for k := range kindsByNode[n] {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool {
			ri, iok := kindRank[kinds[i]]
			rj, jok := kindRank[kinds[j]]
			if iok != jok {
				return iok // ranked kinds before unranked
			}
			if iok && ri != rj {
				return ri < rj
			}
			return kinds[i] < kinds[j]
		})
		names := make([]string, 0, len(countersByNode[n]))
		for name := range countersByNode[n] {
			names = append(names, name)
		}
		sort.Strings(names)

		kindTid[n] = map[Kind]int{}
		counterTid[n] = map[string]int{}
		tid := 1
		for _, k := range kinds {
			kindTid[n][k] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
				Args: &eventArgs{Name: string(k)},
			})
			tid++
		}
		for _, name := range names {
			counterTid[n][name] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
				Args: &eventArgs{Name: name},
			})
			tid++
		}
	}

	for _, s := range spans {
		ce := chromeEvent{
			Name: s.Name,
			Cat:  string(s.Kind),
			Ts:   s.Start.Seconds() * usPerVirtualSecond,
			Pid:  pidOf(s.Node),
			Tid:  kindTid[s.Node][s.Kind],
		}
		if s.End > s.Start {
			ce.Phase = "X"
			ce.Dur = (s.End - s.Start).Seconds() * usPerVirtualSecond
		} else {
			ce.Phase = "i"
		}
		events = append(events, ce)
	}
	for _, c := range counters {
		v := c.Value
		events = append(events, chromeEvent{
			Name:  c.Name,
			Phase: "C",
			Ts:    c.T.Seconds() * usPerVirtualSecond,
			Pid:   pidOf(c.Node),
			Tid:   counterTid[c.Node][c.Name],
			Args:  &eventArgs{Value: &v},
		})
	}

	return json.NewEncoder(w).Encode(traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: otherData{
			Note: "1 ms of trace time = 1 virtual cluster second",
		},
	})
}

// traceFile is the top-level trace JSON document. Structs (not maps) keep
// field order, and therefore the serialized bytes, deterministic.
type traceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       otherData     `json:"otherData"`
}

type otherData struct {
	Note string `json:"note"`
}
