package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderSpansAndAliases(t *testing.T) {
	r := NewRecorder()
	id := r.SpanBegin(0, KindStage, "load", 1)
	r.SpanEnd(id, 3)
	id2 := r.SpanBegin(NodeMaster, KindChoose, "pick", 5)
	r.SpanEnd(id2, 5) // instant: end == start

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Node != 0 || spans[0].Start != 1 || spans[0].End != 3 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].End != spans[1].Start {
		t.Errorf("instant span widened: %+v", spans[1])
	}

	// SpanEnd never narrows a span and tolerates bogus ids.
	r.SpanEnd(id, 2)
	r.SpanEnd(SpanID(99), 10)
	r.SpanEnd(SpanID(-1), 10)
	if got := r.Spans()[0].End; got != 3 {
		t.Errorf("SpanEnd narrowed span to %v", got)
	}

	// Aliases follow registration order, not raw IDs, and re-registration
	// is a no-op.
	r.RegisterDataset(9001, "filtered")
	r.RegisterDataset(17, "joined")
	r.RegisterDataset(9001, "filtered")
	if got := r.Label(9001, 0); got != "filtered#1/p0" {
		t.Errorf("Label(9001,0) = %q", got)
	}
	if got := r.Label(17, 3); got != "joined#2/p3" {
		t.Errorf("Label(17,3) = %q", got)
	}
	if got := r.Label(555, 0); got != "unregistered/p0" {
		t.Errorf("unregistered Label = %q", got)
	}
	if strings.Contains(r.Label(9001, 0), "9001") {
		t.Error("label leaks the raw dataset ID")
	}
}

func TestResourceBusyBecomesSpan(t *testing.T) {
	r := NewRecorder()
	r.ResourceBusy(2, "disk", 4, 9)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Node != 2 || s.Kind != KindDisk || s.Start != 4 || s.End != 9 {
		t.Errorf("resource span = %+v", s)
	}
}

func TestWriteChromeTraceMultiTrack(t *testing.T) {
	r := NewRecorder()
	id := r.SpanBegin(0, KindStage, "map", 0)
	r.SpanEnd(id, 2)
	id = r.SpanBegin(1, KindStage, "map", 0)
	r.SpanEnd(id, 3)
	id = r.SpanBegin(1, KindEval, "eval[b0]", 3)
	r.SpanEnd(id, 4)
	id = r.SpanBegin(NodeMaster, KindChoose, "choose", 4)
	r.SpanEnd(id, 4)
	r.Counter(1, "mem.resident_bytes", 2, 4096)
	r.Counter(NodeMaster, "sched.queue_depth", 0, 3)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Pid   int    `json:"pid"`
			Tid   int    `json:"tid"`
			Args  *struct {
				Name  string   `json:"name"`
				Value *float64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	pids := map[int]bool{}
	processNames := map[int]string{}
	threadNames := map[[2]int]string{}
	var counterEvents, spanEvents int
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			processNames[ev.Pid] = ev.Args.Name
		case ev.Phase == "M" && ev.Name == "thread_name":
			threadNames[[2]int{ev.Pid, ev.Tid}] = ev.Args.Name
		case ev.Phase == "C":
			counterEvents++
			if ev.Args == nil || ev.Args.Value == nil {
				t.Errorf("counter event %q missing args.value", ev.Name)
			}
		case ev.Phase == "X" || ev.Phase == "i":
			spanEvents++
		}
	}
	// One pid for the master and one per worker node present.
	for _, pid := range []int{1, 2, 3} {
		if !pids[pid] {
			t.Errorf("missing pid %d (pids: %v)", pid, pids)
		}
	}
	if processNames[1] != "master" || processNames[2] != "node 0" || processNames[3] != "node 1" {
		t.Errorf("process names = %v", processNames)
	}
	// Node 1 (pid 3) has stage and eval kind tracks plus a counter track,
	// each with its own labeled tid.
	want := map[string]bool{"stage": false, "eval": false, "mem.resident_bytes": false}
	for k, name := range threadNames {
		if k[0] == 3 {
			if _, ok := want[name]; ok {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("pid 3 missing labeled track %q (tracks: %v)", name, threadNames)
		}
	}
	if counterEvents != 2 {
		t.Errorf("counter events = %d, want 2", counterEvents)
	}
	if spanEvents != 4 {
		t.Errorf("span events = %d, want 4", spanEvents)
	}

	// Re-encoding the same recorder is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("double encoding differs")
	}
}

func TestSnapshotNormalizeAndJSON(t *testing.T) {
	s := NewSnapshot()
	s.CompletionSec = 12.5
	s.AddCounter("zeta", 2)
	s.AddCounter("alpha", 1)
	s.AddGauge("ratio", 0.5)
	h := NewHistogram("stage_sec", "virtual_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100) // overflow
	s.Histograms = append(s.Histograms, *h)
	s.Nodes = append(s.Nodes, NodeSnapshot{ID: 1}, NodeSnapshot{ID: 0, Alive: true})
	s.Faults = append(s.Faults, FaultEvent{Kind: "crash", Node: 2})
	s.Normalize()

	if s.Counters[0].Name != "alpha" || s.Nodes[0].ID != 0 {
		t.Errorf("Normalize did not sort: %+v %+v", s.Counters, s.Nodes)
	}
	if h.Count != 3 || h.Buckets[0].Count != 1 || h.Buckets[1].Count != 1 || h.Overflow != 1 {
		t.Errorf("histogram = %+v", h)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if m["schema"] != SnapshotSchema {
		t.Errorf("schema = %v", m["schema"])
	}
	if v, ok := s.CounterValue("alpha"); !ok || v != 1 {
		t.Errorf("CounterValue(alpha) = %v, %v", v, ok)
	}
	if _, ok := s.CounterValue("missing"); ok {
		t.Error("CounterValue(missing) found something")
	}
}

func TestWriteDecisions(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	if err := r.WriteDecisions(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no decisions recorded") {
		t.Errorf("empty log output = %q", buf.String())
	}

	r.Decision(Decision{
		T: 3.5, Node: NodeMaster, Component: "scheduler", Kind: "pick",
		Subject: "b1.map", Detail: "policy=bas",
		Candidates: []Candidate{
			{Label: "b1.map", Score: 2, Chosen: true},
			{Label: "b0.map", Score: 1},
		},
	})
	r.Decision(Decision{T: 7, Node: 2, Component: "memorymgr", Kind: "evict", Subject: "d#1/p0"})
	buf.Reset()
	if err := r.WriteDecisions(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scheduler", "pick", "b1.map", "* b1.map", "policy=bas", "node 2", "evict"} {
		if !strings.Contains(out, want) {
			t.Errorf("decisions output missing %q:\n%s", want, out)
		}
	}
	// The chosen candidate is starred; the loser is not.
	if strings.Contains(out, "* b0.map") {
		t.Errorf("loser starred:\n%s", out)
	}
}

func TestNopProbe(t *testing.T) {
	var p Probe = Nop{}
	id := p.SpanBegin(0, KindStage, "x", 0)
	p.SpanEnd(id, 1)
	p.Counter(0, "c", 0, 1)
	p.Decision(Decision{})
	p.RegisterDataset(1, "d")
	if got := p.Label(1, 0); got != "" {
		t.Errorf("Nop.Label = %q", got)
	}
}
