package obs

import (
	"encoding/json"
	"io"
	"sort"

	"metadataflow/internal/sim"
)

// This file defines the metrics snapshot: a point-in-time aggregation of
// counters, gauges, histograms and per-node memory-manager state, taken at
// the end of a run and serialized as schema-stable JSON (mdfrun -metrics).
// The schema is pinned by tests: field names and ordering never change
// within a schema version, and Normalize sorts every collection so the
// serialized bytes are byte-identical across runs of the same seed.

// SnapshotSchema is the current snapshot schema identifier.
const SnapshotSchema = "mdf.metrics/v1"

// Count is one monotonic counter of the snapshot.
type Count struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Stat is one gauge (a point-in-time float measurement).
type Stat struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one non-cumulative histogram bucket: the count of observations
// v with prevLe < v <= Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Histogram is a fixed-bound histogram over float observations. Overflow
// counts observations beyond the last bucket bound (kept out of Buckets so
// no bound is +Inf, which JSON cannot represent).
type Histogram struct {
	Name     string   `json:"name"`
	Unit     string   `json:"unit"`
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow"`
}

// NewHistogram returns an empty histogram with the given ascending bucket
// bounds.
func NewHistogram(name, unit string, bounds []float64) *Histogram {
	h := &Histogram{Name: name, Unit: unit, Buckets: make([]Bucket, len(bounds))}
	for i, le := range bounds {
		h.Buckets[i].Le = le
	}
	return h
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.Count++
	h.Sum += v
	for i := range h.Buckets {
		if v <= h.Buckets[i].Le {
			h.Buckets[i].Count++
			return
		}
	}
	h.Overflow++
}

// NodeSnapshot is the end-of-run memory-manager state of one worker.
type NodeSnapshot struct {
	ID    int  `json:"id"`
	Alive bool `json:"alive"`
	// ResidentBytes and CapacityBytes describe memory occupancy;
	// SpilledBytes and CheckpointedBytes are cumulative disk volumes.
	ResidentBytes     sim.Bytes `json:"resident_bytes"`
	CapacityBytes     sim.Bytes `json:"capacity_bytes"`
	SpilledBytes      sim.Bytes `json:"spilled_bytes"`
	CheckpointedBytes sim.Bytes `json:"checkpointed_bytes"`
	Hits              int64     `json:"hits"`
	Misses            int64     `json:"misses"`
	Evictions         int64     `json:"evictions"`
	Checkpoints       int64     `json:"checkpoints"`
}

// FaultEvent is one injected fault, copied from the injector's history so
// snapshot consumers need not import the fault layer.
type FaultEvent struct {
	// Kind is "crash", "slowdown", "diskfault" or "panic".
	Kind string `json:"kind"`
	// Node is the afflicted worker.
	Node int `json:"node"`
	// Op names the operator a panic was injected into; empty otherwise.
	Op string `json:"op,omitempty"`
	// Detail is free-form context (permanence, slow factors, stage).
	Detail string `json:"detail,omitempty"`
}

// Snapshot is the end-of-run metrics document.
type Snapshot struct {
	Schema string `json:"schema"`
	// CompletionSec is the job's virtual makespan.
	CompletionSec sim.VTime      `json:"completion_sec"`
	Counters      []Count        `json:"counters"`
	Gauges        []Stat         `json:"gauges"`
	Histograms    []Histogram    `json:"histograms"`
	Nodes         []NodeSnapshot `json:"nodes"`
	Faults        []FaultEvent   `json:"faults"`
}

// NewSnapshot returns an empty snapshot carrying the current schema id.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Schema:     SnapshotSchema,
		Counters:   []Count{},
		Gauges:     []Stat{},
		Histograms: []Histogram{},
		Nodes:      []NodeSnapshot{},
		Faults:     []FaultEvent{},
	}
}

// AddCounter appends a counter.
func (s *Snapshot) AddCounter(name string, value int64) {
	s.Counters = append(s.Counters, Count{Name: name, Value: value})
}

// AddGauge appends a gauge.
func (s *Snapshot) AddGauge(name string, value float64) {
	s.Gauges = append(s.Gauges, Stat{Name: name, Value: value})
}

// CounterValue returns the named counter's value, or false if absent.
func (s *Snapshot) CounterValue(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Normalize sorts every collection into its canonical order (names
// ascending, nodes by id; fault events keep injection order). Serializing
// a normalized snapshot of a deterministic run is byte-identical across
// runs.
func (s *Snapshot) Normalize() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].ID < s.Nodes[j].ID })
}

// WriteJSON serializes the snapshot as indented JSON. Callers should
// Normalize first; struct-typed fields keep key order fixed, so the bytes
// depend only on the snapshot's contents.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
