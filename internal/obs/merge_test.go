package obs

import (
	"bytes"
	"testing"
)

func mergeFixtures() []*Snapshot {
	a := NewSnapshot()
	a.CompletionSec = 10
	a.AddCounter("mem.hits", 8)
	a.AddCounter("mem.misses", 2)
	a.AddCounter("stages", 5)
	a.AddGauge("mem.hit_ratio", 0.8)
	ha := NewHistogram("stage_sec", "sec", []float64{1, 2})
	ha.Observe(0.5)
	ha.Observe(1.5)
	a.Histograms = append(a.Histograms, *ha)

	b := NewSnapshot()
	b.CompletionSec = 25
	b.AddCounter("mem.hits", 2)
	b.AddCounter("mem.misses", 8)
	b.AddCounter("recoveries", 1)
	b.AddGauge("mem.hit_ratio", 0.2)
	hb := NewHistogram("stage_sec", "sec", []float64{1, 2})
	hb.Observe(3)
	b.Histograms = append(b.Histograms, *hb)

	return []*Snapshot{a, b}
}

func TestMergeSnapshotsSumsAndRecomputesRatio(t *testing.T) {
	m := MergeSnapshots(mergeFixtures())
	if got, ok := m.CounterValue("mem.hits"); !ok || got != 10 {
		t.Fatalf("mem.hits = %d, %v; want 10", got, ok)
	}
	if got, ok := m.CounterValue("mem.misses"); !ok || got != 10 {
		t.Fatalf("mem.misses = %d, %v; want 10", got, ok)
	}
	if got, ok := m.CounterValue("stages"); !ok || got != 5 {
		t.Fatalf("stages = %d, %v; want 5", got, ok)
	}
	if got, ok := m.CounterValue("recoveries"); !ok || got != 1 {
		t.Fatalf("recoveries = %d, %v; want 1", got, ok)
	}
	// Ratio recomputed from summed hits/misses — NOT 0.8+0.2.
	var ratio float64
	found := false
	for _, g := range m.Gauges {
		if g.Name == "mem.hit_ratio" {
			ratio, found = g.Value, true
		}
	}
	if !found || ratio != 0.5 {
		t.Fatalf("mem.hit_ratio = %v (found=%v), want 0.5", ratio, found)
	}
	if m.CompletionSec != 25 {
		t.Fatalf("completion_sec = %v, want max 25", m.CompletionSec)
	}
	if len(m.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1 merged", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 3 || h.Sum != 5 || h.Overflow != 1 {
		t.Fatalf("merged histogram count=%d sum=%v overflow=%d, want 3/5/1", h.Count, h.Sum, h.Overflow)
	}
}

// TestMergeSnapshotsOrderIndependent pins the property the /metrics endpoint
// relies on: merging the same snapshot set in any order yields byte-identical
// JSON.
func TestMergeSnapshotsOrderIndependent(t *testing.T) {
	snaps := mergeFixtures()
	fwd := MergeSnapshots(snaps)
	rev := MergeSnapshots([]*Snapshot{snaps[1], snaps[0]})

	var bufFwd, bufRev bytes.Buffer
	if err := fwd.WriteJSON(&bufFwd); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteJSON(&bufRev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufFwd.Bytes(), bufRev.Bytes()) {
		t.Fatalf("merge not order-independent:\n%s\nvs\n%s", bufFwd.String(), bufRev.String())
	}
}

func TestMergeSnapshotsSkipsMismatchedBounds(t *testing.T) {
	a := NewSnapshot()
	ha := NewHistogram("h", "sec", []float64{1, 2})
	ha.Observe(1)
	a.Histograms = append(a.Histograms, *ha)

	b := NewSnapshot()
	hb := NewHistogram("h", "sec", []float64{5, 10})
	hb.Observe(1)
	b.Histograms = append(b.Histograms, *hb)

	m := MergeSnapshots([]*Snapshot{a, b})
	if len(m.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(m.Histograms))
	}
	if m.Histograms[0].Count != 1 {
		t.Fatalf("mismatched-bounds histogram merged: count = %d, want 1", m.Histograms[0].Count)
	}
	// The drop must be surfaced, not silent.
	if got, ok := m.CounterValue("obs.merge_dropped_histograms"); !ok || got != 1 {
		t.Fatalf("obs.merge_dropped_histograms = %d, %v; want 1", got, ok)
	}
}

// TestMergeSnapshotsDropCounterAlwaysPresent pins that the drop counter
// exists (at zero) even when every histogram merges cleanly, so dashboards
// can rely on the series.
func TestMergeSnapshotsDropCounterAlwaysPresent(t *testing.T) {
	m := MergeSnapshots(mergeFixtures())
	if got, ok := m.CounterValue("obs.merge_dropped_histograms"); !ok || got != 0 {
		t.Fatalf("obs.merge_dropped_histograms = %d, %v; want present at 0", got, ok)
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	m := MergeSnapshots(nil)
	if m.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", m.Schema)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
