// Package chaos is the deterministic simulation-testing harness of the
// runtime, in the FoundationDB style: the engine is a seeded discrete-event
// simulator, so the harness can generate thousands of randomized trials —
// a random cluster shape, a random synthetic MDF, a random fault plan — and
// replay any failing one bit-for-bit from its seed. Each trial runs the
// workload twice, fault-free (golden) and faulted, and checks a battery of
// invariant oracles (oracles.go) over the pair. On a violation, a
// delta-debugging shrinker (shrink.go) minimizes the fault plan while the
// violation reproduces and writes a self-contained repro file (repro.go)
// replayable via mdfrun -faults or mdfchaos -replay.
package chaos

import (
	"fmt"
	"hash/fnv"
	"io"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/stats"
	"metadataflow/internal/workload/synthetic"
)

// TrialSpec is the complete, JSON-serializable description of one chaos
// trial: everything needed to rebuild the cluster, the workload and the
// fault plan deterministically. A repro file embeds one.
type TrialSpec struct {
	// Seed identifies the trial (informational; the spec itself is already
	// fully concrete).
	Seed int64 `json:"seed"`
	// Workers is the cluster size.
	Workers int `json:"workers"`
	// MemPerWorkerMB is the per-worker dataset memory budget in MiB. Trials
	// draw it near the workload's per-worker data share to exercise
	// near-OOM eviction behaviour.
	MemPerWorkerMB int64 `json:"memPerWorkerMB"`
	// Policy is the eviction policy: "LRU" or "AMM".
	Policy string `json:"policy"`
	// Scheduler is the scheduling policy: "bas" or "bfs".
	Scheduler string `json:"scheduler"`
	// Incremental, PinReused and Speculative mirror engine.Options.
	Incremental bool `json:"incremental"`
	PinReused   bool `json:"pinReused"`
	Speculative bool `json:"speculative"`
	// Workload parameterises the synthetic nested-explore MDF (§6, Fig. 23).
	Workload synthetic.Params `json:"workload"`
	// Faults is the fault plan of the faulted run; the golden run omits it.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// MemPerWorker returns the budget as accounted bytes.
func (s *TrialSpec) MemPerWorker() sim.Bytes { return sim.Bytes(s.MemPerWorkerMB) << 20 }

// Validate checks the spec is executable.
func (s *TrialSpec) Validate() error {
	if s.Workers < 1 {
		return fmt.Errorf("chaos: trial needs at least one worker, have %d", s.Workers)
	}
	if s.MemPerWorkerMB < 1 {
		return fmt.Errorf("chaos: trial needs a positive memory budget, have %d MiB", s.MemPerWorkerMB)
	}
	switch s.Policy {
	case "LRU", "AMM":
	default:
		return fmt.Errorf("chaos: unknown policy %q", s.Policy)
	}
	switch s.Scheduler {
	case "bas", "bfs":
	default:
		return fmt.Errorf("chaos: unknown scheduler %q", s.Scheduler)
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if s.Faults != nil {
		return s.Faults.ValidateFor(s.Workers)
	}
	return nil
}

// GenTrialSpec derives trial number `trial` of the sweep seeded with
// sweepSeed. Every field is drawn from an RNG derived from (sweepSeed,
// trial), so a sweep is reproducible trial-by-trial and two sweeps with the
// same seed are identical.
func GenTrialSpec(sweepSeed int64, trial int) (TrialSpec, error) {
	rng := stats.NewRNG(sweepSeed).Derive(fmt.Sprintf("trial-%d", trial))
	workers := 2 + rng.Intn(7) // 2..8
	outer := 2 + rng.Intn(3)   // 2..4
	inner := 2 + rng.Intn(3)
	// Partitions may undershoot the worker count so some trials place the
	// sole copy of a partition on a single crashing node.
	partitions := 1 + rng.Intn(2*workers)
	virtualMB := int64(64 + rng.Intn(448)) // 64..511 MiB of accounted input

	spec := TrialSpec{
		Seed:        sweepSeed,
		Workers:     workers,
		Policy:      []string{"LRU", "AMM"}[rng.Intn(2)],
		Scheduler:   []string{"bas", "bfs"}[rng.Intn(2)],
		Incremental: rng.Intn(2) == 0,
		PinReused:   rng.Intn(2) == 0,
		Speculative: rng.Intn(2) == 0,
		Workload: synthetic.Params{
			Rows:           200 + rng.Intn(600),
			Partitions:     partitions,
			VirtualBytes:   virtualMB << 20,
			OuterBranches:  outer,
			InnerBranches:  inner,
			OpsPerItem:     1 + rng.Intn(4),
			InnerSizeScale: 0.25 + 0.75*rng.Float64(),
			Seed:           int64(trial) + 1,
		},
	}
	// Near-OOM budget: between half and triple the per-worker share of the
	// accounted input, floored so tiny shares stay executable.
	share := virtualMB / int64(workers)
	memMB := int64(float64(share) * (0.5 + 2.5*rng.Float64()))
	if memMB < 8 {
		memMB = 8
	}
	spec.MemPerWorkerMB = memMB

	crashes := rng.Intn(4)
	permanent := 0
	if crashes > 0 && workers > 2 {
		permanent = rng.Intn(crashes + 1)
	}
	// The crash trigger bound tracks the workload's stage count so most
	// crashes land mid-run, including inside choose/recovery windows.
	maxStage := outer*(inner+2) + 2
	plan, err := faults.Generate(faults.GenConfig{
		Seed:       rng.Int63(),
		Workers:    workers,
		Crashes:    crashes,
		Permanent:  permanent,
		Correlated: rng.Intn(2),
		Repeats:    rng.Intn(2),
		EvalPanics: rng.Intn(3),
		// PanicTimes stays below the default 3-attempt retry budget so every
		// injected panic is recoverable and the faulted run must still reach
		// the golden result.
		PanicTimes:      1 + rng.Intn(2),
		TransformPanics: rng.Intn(2),
		Slowdowns:       rng.Intn(3),
		DiskFaults:      rng.Intn(3),
		MaxFactor:       1.5 + 6*rng.Float64(),
		WindowSec:       20 + 100*rng.Float64(),
		MaxStage:        maxStage,
	})
	if err != nil {
		return TrialSpec{}, err
	}
	spec.Faults = plan
	return spec, nil
}

// Outcome is everything the oracles inspect about one run of a trial.
type Outcome struct {
	// Err is the run's terminal error, nil on success. The remaining fields
	// are only meaningful when Err is nil.
	Err error
	// Completion is the job's virtual completion time.
	Completion sim.VTime
	// Snapshot is the run's mdf.metrics/v1 snapshot.
	Snapshot *obs.Snapshot
	// Selections maps each choose stage's label to its selected branches.
	Selections map[string][]int
	// Checksums are the FNV-1a digests of the output partitions, in
	// partition order: the faulted run must reproduce the golden bytes.
	Checksums []uint64
	// Lineage and Accounting are the engine's self-audit violation lists.
	Lineage    []string
	Accounting []string
	// ResidentOver lists probe samples where a node's resident bytes
	// exceeded the budget (empty without a probe).
	ResidentOver []string
	// SpanOpens and SpanCloses count probe span begin/end calls (zero
	// without a probe); an imbalance is a telemetry leak.
	SpanOpens, SpanCloses int
	// NegativeSpans counts probe spans ending before they start.
	NegativeSpans int
	// Quarantined is the number of branches quarantined by persistent
	// operator failures; equivalence is only checked when it is zero.
	Quarantined int
}

// countingProbe wraps a Recorder and counts span begin/end calls, because
// the Recorder itself only retains merged spans. The wrapper is how the
// harness checks the span-balance invariant from outside the obs package.
type countingProbe struct {
	*obs.Recorder
	opens, closes int
}

// SpanBegin implements obs.Probe.
func (p *countingProbe) SpanBegin(node int, kind obs.Kind, name string, start sim.VTime) obs.SpanID {
	p.opens++
	return p.Recorder.SpanBegin(node, kind, name, start)
}

// SpanEnd implements obs.Probe.
func (p *countingProbe) SpanEnd(id obs.SpanID, end sim.VTime) {
	p.closes++
	p.Recorder.SpanEnd(id, end)
}

// checksumOutput digests each output partition's rows.
func checksumOutput(d *dataset.Dataset) []uint64 {
	if d == nil {
		return nil
	}
	out := make([]uint64, len(d.Parts))
	for i, p := range d.Parts {
		h := fnv.New64a()
		for _, r := range p.Rows {
			fmt.Fprintf(h, "%v\x1f", r)
		}
		out[i] = h.Sum64()
	}
	return out
}

// runOnce executes the spec's workload with the given fault plan (nil for
// the golden run) and observes the outcome. When probed is set, a counting
// recorder is attached so the outcome carries span-balance and per-sample
// residency evidence.
func runOnce(spec *TrialSpec, plan *faults.Plan, probed bool) *Outcome {
	out := &Outcome{}
	g, err := synthetic.BuildMDF(spec.Workload)
	if err != nil {
		out.Err = err
		return out
	}
	gplan, err := graph.BuildPlan(g)
	if err != nil {
		out.Err = err
		return out
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = spec.Workers
	cfg.MemPerWorker = spec.MemPerWorker()
	cl, err := cluster.New(cfg)
	if err != nil {
		out.Err = err
		return out
	}
	policy := memorymgr.LRU
	if spec.Policy == "AMM" {
		policy = memorymgr.AMM
	}
	var sched scheduler.Policy
	if spec.Scheduler == "bfs" {
		sched = scheduler.BFS()
	} else {
		sched = scheduler.BAS(nil)
	}
	var probe *countingProbe
	opts := engine.Options{
		Cluster:      cl,
		MemPerWorker: spec.MemPerWorker(),
		Policy:       policy,
		Scheduler:    sched,
		Incremental:  spec.Incremental,
		PinReused:    spec.PinReused,
		Speculative:  spec.Speculative,
		Faults:       plan,
		// The golden run checkpoints too: overhead comparisons must not
		// conflate recovery cost with checkpointing cost.
		Checkpoint: true,
	}
	if probed {
		probe = &countingProbe{Recorder: obs.NewRecorder()}
		opts.Probe = probe
	}
	run, err := engine.NewRun(gplan, opts, 0)
	if err != nil {
		out.Err = err
		return out
	}
	res, err := run.RunToCompletion()
	if err != nil {
		out.Err = err
		return out
	}
	out.Completion = res.CompletionTime()
	out.Snapshot = run.Snapshot()
	out.Selections = run.ChooseSelections()
	out.Checksums = checksumOutput(res.Output)
	out.Lineage = run.AuditLineage()
	out.Accounting = run.AuditAccounting()
	out.Quarantined = res.Metrics.BranchesQuarantined
	if probe != nil {
		out.SpanOpens, out.SpanCloses = probe.opens, probe.closes
		capacity := float64(spec.MemPerWorker())
		for _, c := range probe.CounterSamples() {
			if c.Name == "mem.resident_bytes" && c.Value > capacity {
				out.ResidentOver = append(out.ResidentOver, fmt.Sprintf(
					"node %d resident %.0f bytes > budget %.0f at t=%.3f",
					c.Node, c.Value, capacity, c.T.Seconds()))
			}
		}
		for _, s := range probe.Spans() {
			if s.End < s.Start {
				out.NegativeSpans++
			}
		}
	}
	return out
}

// TrialResult is the outcome of one complete trial.
type TrialResult struct {
	Spec       TrialSpec
	Golden     *Outcome
	Faulted    *Outcome
	Violations []Violation
}

// RunTrial executes the trial's golden and faulted runs and applies the
// oracles selected by filter (empty = all; see oracles.go for names).
func RunTrial(spec TrialSpec, filter string) (*TrialResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	golden := runOnce(&spec, nil, false)
	faulted := runOnce(&spec, spec.Faults, true)
	return &TrialResult{
		Spec:       spec,
		Golden:     golden,
		Faulted:    faulted,
		Violations: CheckOracles(&spec, golden, faulted, filter),
	}, nil
}

// violationCheck re-runs the trial with a candidate fault plan and reports
// whether the given oracle still fires — the shrinker's predicate.
func violationCheck(spec TrialSpec, oracle string) func(*faults.Plan) bool {
	return func(p *faults.Plan) bool {
		s := spec
		s.Faults = p
		res, err := RunTrial(s, oracle)
		if err != nil {
			return false
		}
		for _, v := range res.Violations {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}
}

// SweepResult summarises a sweep.
type SweepResult struct {
	Trials     int
	Violations int
	// Repro is the repro of the first violation found, already shrunk; nil
	// when every trial passed.
	Repro *Repro
}

// Sweep runs `trials` generated trials from sweepSeed, logging one line per
// trial to out. The log uses only seeded, virtual-time data, so two sweeps
// with identical arguments produce byte-identical output — `make
// chaos-short` relies on that. On the first violation the fault plan is
// shrunk and returned as a repro; subsequent trials still run (and are
// counted) so one sweep reports the full violation tally.
func Sweep(sweepSeed int64, trials int, filter string, out io.Writer) (*SweepResult, error) {
	res := &SweepResult{Trials: trials}
	for i := 0; i < trials; i++ {
		spec, err := GenTrialSpec(sweepSeed, i)
		if err != nil {
			return nil, fmt.Errorf("chaos: trial %d: %w", i, err)
		}
		tr, err := RunTrial(spec, filter)
		if err != nil {
			return nil, fmt.Errorf("chaos: trial %d: %w", i, err)
		}
		if len(tr.Violations) == 0 {
			fmt.Fprintf(out, "trial %3d ok      workers=%d mem=%dMiB events=%d golden=%.3fs faulted=%.3fs\n",
				i, spec.Workers, spec.MemPerWorkerMB, spec.Faults.NumEvents(),
				tr.Golden.Completion.Seconds(), tr.Faulted.Completion.Seconds())
			continue
		}
		res.Violations++
		v := tr.Violations[0]
		fmt.Fprintf(out, "trial %3d FAILED  oracle=%s %s\n", i, v.Oracle, v.Detail)
		if res.Repro == nil {
			shrunk, runs := ShrinkPlan(spec.Faults, spec.Workers, 400, violationCheck(spec, v.Oracle))
			fmt.Fprintf(out, "          shrunk fault plan to %d events in %d runs\n", shrunk.NumEvents(), runs)
			reproSpec := spec
			reproSpec.Faults = shrunk
			res.Repro = &Repro{
				Schema: ReproSchema,
				Oracle: v.Oracle,
				Detail: v.Detail,
				Trial:  reproSpec,
			}
		}
	}
	return res, nil
}
