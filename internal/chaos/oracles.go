package chaos

import (
	"fmt"
	"sort"
	"strings"

	"metadataflow/internal/faults"
	"metadataflow/internal/sim"
)

// Oracle names, usable in the -oracle filter (comma-separated).
const (
	// OracleRunFailure fires when either run terminates with an error: a
	// valid generated trial must always complete, faults or not.
	OracleRunFailure = "run-failure"
	// OracleEquivalence fires when the faulted run's choose selections or
	// output partition checksums differ from the golden run's. Skipped when
	// the faulted run quarantined branches (a quarantine legitimately
	// changes the selection).
	OracleEquivalence = "equivalence"
	// OracleLineage fires on lineage-closure violations: a live partition
	// lost, duplicated, stranded on a dead node, or orphaned after
	// crash recovery and rebalancing.
	OracleLineage = "lineage"
	// OracleAccounting fires on allocator-accounting violations: resident
	// bytes exceeding the budget (per sample or at end), used/resident
	// drift, unbalanced pins, or unbalanced telemetry spans — all checked
	// through the mdf.metrics/v1 snapshot and the probe stream.
	OracleAccounting = "accounting"
	// OracleVTime fires on virtual-time violations: a non-positive
	// completion or a span ending before it starts.
	OracleVTime = "vtime"
	// OracleOverhead fires when the faulted completion time falls outside
	// the bounded-recovery envelope derived from the golden completion and
	// the fault plan.
	OracleOverhead = "overhead"
)

// AllOracles lists every oracle name.
var AllOracles = []string{
	OracleRunFailure, OracleEquivalence, OracleLineage,
	OracleAccounting, OracleVTime, OracleOverhead,
}

// Violation is one oracle failure.
type Violation struct {
	// Oracle is the failing oracle's name.
	Oracle string `json:"oracle"`
	// Detail states the observed vs. expected facts.
	Detail string `json:"detail"`
}

// parseFilter resolves the comma-separated oracle filter; empty selects all.
func parseFilter(filter string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(AllOracles))
	if strings.TrimSpace(filter) == "" {
		for _, name := range AllOracles {
			enabled[name] = true
		}
		return enabled, nil
	}
	known := make(map[string]bool, len(AllOracles))
	for _, name := range AllOracles {
		known[name] = true
	}
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("chaos: unknown oracle %q (want %s)", name, strings.Join(AllOracles, ", "))
		}
		enabled[name] = true
	}
	return enabled, nil
}

// ValidateFilter reports whether filter names only known oracles.
func ValidateFilter(filter string) error {
	_, err := parseFilter(filter)
	return err
}

// CheckOracles applies the oracle battery to a golden/faulted outcome pair
// and returns the violations in a deterministic order. filter selects a
// comma-separated subset of oracle names; empty means all. An unknown
// oracle name is itself reported as a violation rather than silently
// checking nothing.
func CheckOracles(spec *TrialSpec, golden, faulted *Outcome, filter string) []Violation {
	enabled, err := parseFilter(filter)
	if err != nil {
		return []Violation{{Oracle: OracleRunFailure, Detail: err.Error()}}
	}
	var out []Violation
	report := func(oracle, format string, args ...any) {
		out = append(out, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	if enabled[OracleRunFailure] {
		if golden.Err != nil {
			report(OracleRunFailure, "golden run failed: %v", golden.Err)
		}
		if faulted.Err != nil {
			report(OracleRunFailure, "faulted run failed: %v", faulted.Err)
		}
	}
	if golden.Err != nil || faulted.Err != nil {
		// The remaining oracles compare completed runs.
		return out
	}

	if enabled[OracleEquivalence] && faulted.Quarantined == 0 {
		checkEquivalence(golden, faulted, report)
	}

	if enabled[OracleLineage] {
		for _, v := range golden.Lineage {
			report(OracleLineage, "golden: %s", v)
		}
		for _, v := range faulted.Lineage {
			report(OracleLineage, "faulted: %s", v)
		}
	}

	if enabled[OracleAccounting] {
		checkAccounting(golden, faulted, report)
	}

	if enabled[OracleVTime] {
		checkVTime(golden, faulted, report)
	}

	if enabled[OracleOverhead] {
		checkOverhead(spec, golden, faulted, report)
	}
	return out
}

// checkEquivalence compares choose selections and output checksums between
// the golden and the faulted run. Operator functions compute over real
// in-process data that fault simulation never touches, so a recovered run
// must reproduce the golden decisions and bytes exactly.
func checkEquivalence(golden, faulted *Outcome, report func(string, string, ...any)) {
	labels := make(map[string]bool, len(golden.Selections)+len(faulted.Selections))
	for l := range golden.Selections {
		labels[l] = true
	}
	for l := range faulted.Selections {
		labels[l] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	for _, l := range sorted {
		g, gok := golden.Selections[l]
		f, fok := faulted.Selections[l]
		if gok != fok || !equalInts(g, f) {
			report(OracleEquivalence, "choose %s selected %v in golden but %v in faulted", l, g, f)
		}
	}
	if len(golden.Checksums) != len(faulted.Checksums) {
		report(OracleEquivalence, "output has %d partitions in golden but %d in faulted",
			len(golden.Checksums), len(faulted.Checksums))
		return
	}
	for i := range golden.Checksums {
		if golden.Checksums[i] != faulted.Checksums[i] {
			report(OracleEquivalence, "output partition %d checksum %016x in golden but %016x in faulted",
				i, golden.Checksums[i], faulted.Checksums[i])
		}
	}
}

// checkAccounting audits allocator bookkeeping and telemetry balance on
// both runs, partly through the mdf.metrics/v1 snapshot (pinned partitions,
// peak residency) and partly through the engine's self-audit and the probe
// stream (per-sample residency, span balance).
func checkAccounting(golden, faulted *Outcome, report func(string, string, ...any)) {
	for _, v := range golden.Accounting {
		report(OracleAccounting, "golden: %s", v)
	}
	for _, v := range faulted.Accounting {
		report(OracleAccounting, "faulted: %s", v)
	}
	for _, o := range []struct {
		name string
		out  *Outcome
	}{{"golden", golden}, {"faulted", faulted}} {
		if o.out.Snapshot == nil {
			report(OracleAccounting, "%s: no metrics snapshot", o.name)
			continue
		}
		if v, ok := o.out.Snapshot.CounterValue("mem.pinned_partitions"); !ok || v != 0 {
			report(OracleAccounting, "%s: mem.pinned_partitions = %d at end of run, want 0", o.name, v)
		}
		for _, n := range o.out.Snapshot.Nodes {
			if n.ResidentBytes > n.CapacityBytes {
				report(OracleAccounting, "%s: node %d resident %d bytes exceed the %d-byte budget",
					o.name, n.ID, n.ResidentBytes, n.CapacityBytes)
			}
		}
	}
	for _, v := range faulted.ResidentOver {
		report(OracleAccounting, "faulted: %s", v)
	}
	if faulted.SpanOpens != faulted.SpanCloses {
		report(OracleAccounting, "faulted: %d spans opened but %d closed", faulted.SpanOpens, faulted.SpanCloses)
	}
}

// checkVTime audits virtual-time sanity on both runs.
func checkVTime(golden, faulted *Outcome, report func(string, string, ...any)) {
	if golden.Completion <= 0 {
		report(OracleVTime, "golden completion %.3fs is not positive", golden.Completion.Seconds())
	}
	if faulted.Completion <= 0 {
		report(OracleVTime, "faulted completion %.3fs is not positive", faulted.Completion.Seconds())
	}
	if faulted.NegativeSpans > 0 {
		report(OracleVTime, "faulted: %d spans end before they start", faulted.NegativeSpans)
	}
}

// checkOverhead bounds the faulted completion time by an envelope derived
// from the golden run and the fault plan. Slowdown/disk windows and panic
// retries strictly add time, so for crash-free plans the faulted run cannot
// finish meaningfully earlier than golden (a small tolerance absorbs
// eviction-order perturbation). Crashes void that lower bound: re-derived
// partitions come back freshly resident and rebalanced, which can rewarm a
// thrashing near-OOM cache and legitimately beat the golden run. The upper
// bound always applies: recovery cost is bounded by re-running everything
// once per crash under the worst combined slowdown plus the full retry
// backoff budget.
func checkOverhead(spec *TrialSpec, golden, faulted *Outcome, report func(string, string, ...any)) {
	plan := spec.Faults
	if plan == nil {
		return
	}
	g := golden.Completion.Seconds()
	f := faulted.Completion.Seconds()
	tol := 0.01 * g
	if tol < 1 {
		tol = 1
	}
	// A quarantined branch legitimately sheds its remaining stages, so the
	// lower bound only applies to crash-free, fully recovered runs.
	if len(plan.Crashes) == 0 && faulted.Quarantined == 0 && f < g-tol {
		report(OracleOverhead, "faulted run finished at %.3fs, before golden %.3fs minus tolerance %.3fs", f, g, tol)
	}
	factor := 1.0
	for _, w := range plan.Slowdowns {
		factor *= w.Factor
	}
	for _, w := range plan.DiskFaults {
		factor *= w.Factor
	}
	bound := g*factor*float64(1+2*len(plan.Crashes)) + backoffBudget(plan) + g + 10
	if f > bound {
		report(OracleOverhead, "faulted run took %.3fs, beyond the recovery envelope %.3fs (golden %.3fs)", f, bound, g)
	}
}

// backoffBudget is the total virtual backoff the plan's panics can charge.
func backoffBudget(plan *faults.Plan) float64 {
	retry := plan.Retry.WithDefaults()
	var total sim.VTime
	for _, p := range plan.Panics {
		times := p.Times
		if times > retry.MaxAttempts {
			times = retry.MaxAttempts
		}
		for attempt := 1; attempt <= times; attempt++ {
			total += sim.VTime(retry.Backoff(attempt))
		}
	}
	return total.Seconds()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
