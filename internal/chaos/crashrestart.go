package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/faults"
	"metadataflow/internal/journal"
	"metadataflow/internal/service"
	"metadataflow/internal/stats"
)

// This file is the crash-restart oracle: the service-level analogue of the
// engine chaos harness. A trial runs a batch of jobs to completion on a
// durable server (the golden run), replays its journal, and then — for
// every record boundary k — materialises a crash at exactly that point: a
// fresh state directory holding the first k records (optionally decorated
// with a torn tail, journal bit flips and checkpoint-store corruption), a
// restarted server recovering from it, and the same clients blindly
// resubmitting every job. The oracle asserts strict equivalence: every
// job's final status and the service /metrics document (modulo the
// path-dependent service.recovery.* counters) must match the golden run
// byte for byte. Corrupted checkpoint entries must surface as lineage
// re-derivation, never as job failures.

// CrashJob is one client submission of a crash trial.
type CrashJob struct {
	// Tenant names the submitting tenant.
	Tenant string `json:"tenant"`
	// Priority orders admission; smaller is more urgent.
	Priority int `json:"priority,omitempty"`
	// Spec is the MDF job document.
	Spec json.RawMessage `json:"spec"`
	// Faults is the job's deterministic in-run fault plan, exercising the
	// engine's checkpoint-recovery machinery underneath the service crash.
	Faults json.RawMessage `json:"faults,omitempty"`
}

// CrashTrialSpec fully describes one crash-restart trial.
type CrashTrialSpec struct {
	// Seed identifies the trial and derives the per-boundary durability
	// damage (torn tails, bit flips).
	Seed int64 `json:"seed"`
	// Jobs are submitted sequentially — each waits for the previous to
	// finish — so the journal grows deterministically.
	Jobs []CrashJob `json:"jobs"`
	// MaxTornBytes bounds the torn-tail length appended after each cut;
	// 0 disables torn tails.
	MaxTornBytes int `json:"maxTornBytes,omitempty"`
}

// crashServiceConfig is the fixed service envelope of every crash trial.
// Quotas are effectively unlimited and quarantine is disabled so the
// equivalence surface is the durability machinery, not admission control.
func crashServiceConfig(stateDir string) service.Config {
	return service.Config{
		Workers: 4, MemPerWorker: 64 << 20, TenantQuota: 1 << 40,
		QueueCap: 64, MaxActive: 2,
		QuarantineStrikes: 1 << 20,
		DisableVet:        true,
		StateDir:          stateDir,
		JournalNoSync:     true,
	}
}

// GenCrashTrialSpec derives crash trial `trial` of the sweep seeded with
// sweepSeed: 2–4 small exploratory jobs across two tenants, each with a
// fault plan mixing node crashes (transient and permanent) and
// checkpoint-load bit flips, and occasionally a persistently panicking
// job so terminal-failure records replay too.
func GenCrashTrialSpec(sweepSeed int64, trial int) (CrashTrialSpec, error) {
	rng := stats.NewRNG(sweepSeed).Derive(fmt.Sprintf("crash-%d", trial))
	spec := CrashTrialSpec{
		Seed:         rng.Int63(),
		MaxTornBytes: 1 + rng.Intn(64),
	}
	jobs := 2 + rng.Intn(3)
	for i := 0; i < jobs; i++ {
		rows := 40 + rng.Intn(81)
		parts := 2 + rng.Intn(3)
		lo := 0.3 + 0.4*rng.Float64()
		hi := 1.2 + 0.6*rng.Float64()
		name := fmt.Sprintf("crash-%d-%d", trial, i)
		doc := fmt.Sprintf(`{
  "name": %q,
  "source": {"rows": %d, "partitions": %d, "virtualBytes": 2097152, "seed": %d},
  "pipeline": [
    {"op": {"name": "std", "fn": "standardize"}},
    {"explore": {
      "name": "e",
      "branches": [{"label": "lo", "params": {"limit": %.3f}}, {"label": "hi", "params": {"limit": %.3f}}],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }}
  ]
}`, name, rows, parts, rng.Intn(1000), lo, hi)
		plan := &faults.Plan{Seed: rng.Int63()}
		for c := rng.Intn(2) + 1; c > 0; c-- {
			plan.Crashes = append(plan.Crashes, faults.Crash{
				Node:        rng.Intn(4),
				AfterStages: 1 + rng.Intn(3),
				Permanent:   rng.Intn(4) == 0,
			})
		}
		for f := rng.Intn(3); f > 0; f-- {
			plan.CkptFlips = append(plan.CkptFlips, faults.CkptFlip{
				Load: rng.Intn(3), Bit: rng.Intn(256),
			})
		}
		if rng.Intn(4) == 0 {
			// A persistent panic: the service retries the job with backoff
			// and eventually retires it failed, so the journal gains
			// retried records and a failed terminal record to replay.
			plan.Panics = append(plan.Panics, faults.PanicSpec{
				Op: "std", Target: faults.TargetTransform, Times: 1 << 20,
			})
		}
		fb, err := json.Marshal(plan)
		if err != nil {
			return CrashTrialSpec{}, err
		}
		spec.Jobs = append(spec.Jobs, CrashJob{
			Tenant:   fmt.Sprintf("tenant-%d", i%2),
			Priority: rng.Intn(3),
			Spec:     json.RawMessage(doc),
			Faults:   json.RawMessage(fb),
		})
	}
	return spec, nil
}

// crashRun submits every job of the trial sequentially against srv and
// returns each job's final status JSON keyed by job ID, plus the filtered
// metrics document.
func crashRun(srv *service.Server, spec *CrashTrialSpec) (map[string][]byte, []byte, error) {
	statuses := make(map[string][]byte)
	for i, cj := range spec.Jobs {
		st, err := srv.Submit(service.JobRequest{
			Tenant: cj.Tenant, Priority: cj.Priority,
			Spec: cj.Spec, Faults: cj.Faults,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("job %d submit: %w", i, err)
		}
		srv.WaitIdle()
		final, err := srv.Job(st.ID)
		if err != nil {
			return nil, nil, fmt.Errorf("job %s status: %w", st.ID, err)
		}
		b, err := json.Marshal(final)
		if err != nil {
			return nil, nil, err
		}
		statuses[st.ID] = b
	}
	m, err := metricsSansRecovery(srv)
	if err != nil {
		return nil, nil, err
	}
	return statuses, m, nil
}

// metricsSansRecovery renders the server's metrics with the
// path-dependent service.recovery.* counters removed.
func metricsSansRecovery(srv *service.Server) ([]byte, error) {
	m := srv.Metrics()
	kept := m.Counters[:0]
	for _, c := range m.Counters {
		if !strings.HasPrefix(c.Name, "service.recovery.") {
			kept = append(kept, c)
		}
	}
	m.Counters = kept
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// copyDir copies the regular files of src into dst (one level; the
// checkpoint store and journal both use flat directories).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// CrashViolation is one equivalence failure at a restart boundary.
type CrashViolation struct {
	// Boundary is the journal prefix length (in records) the crash left.
	Boundary int
	// Detail describes the divergence.
	Detail string
}

// CrashTrialResult summarises one trial.
type CrashTrialResult struct {
	Spec CrashTrialSpec
	// Records is the golden journal's record count; the trial restarts at
	// every boundary 0..Records inclusive.
	Records int
	// Rederived is the golden run's faults.partitions_rederived counter —
	// evidence that corrupt checkpoints were healed by lineage
	// re-derivation rather than failing jobs.
	Rederived int64
	// Violations lists every boundary whose restarted run diverged.
	Violations []CrashViolation
}

// RunCrashTrial runs the golden pass under stateRoot/golden and a
// kill-and-restart pass at every journal record boundary under
// stateRoot/cut-N. The caller owns stateRoot's lifetime.
func RunCrashTrial(spec CrashTrialSpec, stateRoot string) (*CrashTrialResult, error) {
	goldenDir := filepath.Join(stateRoot, "golden")
	srv, err := service.Open(crashServiceConfig(goldenDir))
	if err != nil {
		return nil, fmt.Errorf("chaos: golden open: %w", err)
	}
	statuses, metrics, err := crashRun(srv, &spec)
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("chaos: golden run: %w", err)
	}
	m := srv.Metrics()
	srv.Close()
	res := &CrashTrialResult{Spec: spec}
	res.Rederived, _ = m.CounterValue("faults.partitions_rederived")

	recs, err := journal.Replay(filepath.Join(goldenDir, "journal"))
	if err != nil {
		return nil, fmt.Errorf("chaos: golden journal: %w", err)
	}
	res.Records = len(recs)
	ckptKeys, err := ckptstore.New(filepath.Join(goldenDir, "ckpt")).Keys()
	if err != nil {
		return nil, fmt.Errorf("chaos: golden ckpt keys: %w", err)
	}

	for k := 0; k <= len(recs); k++ {
		cutDir := filepath.Join(stateRoot, fmt.Sprintf("cut-%04d", k))
		if err := crashAtBoundary(&spec, recs, ckptKeys, k, goldenDir, cutDir, statuses, metrics, res); err != nil {
			return nil, fmt.Errorf("chaos: boundary %d: %w", k, err)
		}
	}
	return res, nil
}

// crashAtBoundary materialises the crash state for one boundary, restarts
// a server over it, replays the clients, and records any divergence.
func crashAtBoundary(spec *CrashTrialSpec, recs []journal.Record, ckptKeys []ckptstore.Key,
	k int, goldenDir, cutDir string, golden map[string][]byte, goldenMetrics []byte,
	res *CrashTrialResult) error {
	jdir := filepath.Join(cutDir, "journal")
	if err := journal.WriteAll(jdir, recs[:k], journal.Options{NoSync: true}); err != nil {
		return err
	}
	dur := faults.GenDurability(spec.Seed+int64(k), spec.MaxTornBytes, k, len(ckptKeys))
	if k < len(recs) && dur.TornTailBytes > 0 {
		frame, err := journal.EncodeFrame(recs[k])
		if err != nil {
			return err
		}
		n := dur.TornTailBytes
		if n >= len(frame) {
			n = len(frame) - 1
		}
		if err := journal.AppendRaw(jdir, frame[:n]); err != nil {
			return err
		}
	}
	for _, f := range dur.JournalFlips {
		if int64(f.Index) < int64(k) {
			if err := journal.FlipBit(jdir, int64(f.Index), f.Bit); err != nil {
				return err
			}
		}
	}
	if err := copyDir(filepath.Join(goldenDir, "ckpt"), filepath.Join(cutDir, "ckpt")); err != nil {
		return err
	}
	if len(ckptKeys) > 0 {
		st := ckptstore.New(filepath.Join(cutDir, "ckpt"))
		for _, f := range dur.CkptFileFlips {
			if err := st.CorruptNth(f.Index%len(ckptKeys), f.Bit); err != nil {
				return err
			}
		}
	}

	srv, err := service.Open(crashServiceConfig(cutDir))
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	statuses, metrics, err := crashRun(srv, spec)
	srv.Close()
	if err != nil {
		return fmt.Errorf("restarted run: %w", err)
	}
	if len(statuses) != len(golden) {
		res.Violations = append(res.Violations, CrashViolation{Boundary: k,
			Detail: fmt.Sprintf("%d jobs after restart, golden had %d", len(statuses), len(golden))})
		return nil
	}
	ids := make([]string, 0, len(golden))
	for id := range golden {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		want := golden[id]
		got, ok := statuses[id]
		if !ok {
			res.Violations = append(res.Violations, CrashViolation{Boundary: k,
				Detail: fmt.Sprintf("job %s missing after restart", id)})
			continue
		}
		if !bytes.Equal(got, want) {
			res.Violations = append(res.Violations, CrashViolation{Boundary: k,
				Detail: fmt.Sprintf("job %s diverged: got %s want %s", id, got, want)})
		}
	}
	if !bytes.Equal(metrics, goldenMetrics) {
		res.Violations = append(res.Violations, CrashViolation{Boundary: k,
			Detail: fmt.Sprintf("metrics diverged (%d vs %d bytes)", len(metrics), len(goldenMetrics))})
	}
	return nil
}

// CrashSweepResult summarises a crash-restart sweep.
type CrashSweepResult struct {
	Trials     int
	Boundaries int
	Violations int
}

// CrashSweep runs `trials` generated crash trials from sweepSeed under
// stateRoot, logging one line per trial. Like Sweep, the log carries only
// seeded data, so two sweeps with identical arguments produce
// byte-identical output — and the golden journal each trial leaves under
// stateRoot/trial-N/golden/journal is likewise byte-reproducible.
func CrashSweep(sweepSeed int64, trials int, stateRoot string, out io.Writer) (*CrashSweepResult, error) {
	res := &CrashSweepResult{Trials: trials}
	for i := 0; i < trials; i++ {
		spec, err := GenCrashTrialSpec(sweepSeed, i)
		if err != nil {
			return nil, fmt.Errorf("chaos: crash trial %d: %w", i, err)
		}
		tr, err := RunCrashTrial(spec, filepath.Join(stateRoot, fmt.Sprintf("trial-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("chaos: crash trial %d: %w", i, err)
		}
		res.Boundaries += tr.Records + 1
		if len(tr.Violations) == 0 {
			fmt.Fprintf(out, "crash trial %3d ok      jobs=%d records=%d boundaries=%d rederived=%d\n",
				i, len(spec.Jobs), tr.Records, tr.Records+1, tr.Rederived)
			continue
		}
		res.Violations += len(tr.Violations)
		v := tr.Violations[0]
		fmt.Fprintf(out, "crash trial %3d FAILED  boundary=%d %s (and %d more)\n",
			i, v.Boundary, v.Detail, len(tr.Violations)-1)
	}
	return res, nil
}
