package chaos

import (
	"bytes"
	"strings"
	"testing"

	"metadataflow/internal/faults"
	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// TestShortSweepAllOraclesPass is the deterministic chaos sweep wired into
// go test: a fixed seed, enough trials to hit crashes, panics, quarantines
// and near-OOM budgets, and zero tolerated violations.
func TestShortSweepAllOraclesPass(t *testing.T) {
	var log bytes.Buffer
	res, err := Sweep(1234, 12, "", &log)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("sweep found %d violations:\n%s", res.Violations, log.String())
	}
	if res.Trials != 12 {
		t.Fatalf("trials = %d, want 12", res.Trials)
	}
}

func TestSweepLogIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Sweep(7, 4, "", &a); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if _, err := Sweep(7, 4, "", &b); err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("same-seed sweeps diverge:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

func TestGenTrialSpecDeterministicAndValid(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, err := GenTrialSpec(99, i)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		b, err := GenTrialSpec(99, i)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("trial %d invalid: %v", i, err)
		}
		if a.Workers != b.Workers || a.MemPerWorkerMB != b.MemPerWorkerMB ||
			a.Faults.NumEvents() != b.Faults.NumEvents() {
			t.Fatalf("trial %d not deterministic: %+v vs %+v", i, a, b)
		}
	}
}

// passingOutcome fabricates the outcome of a healthy run.
func passingOutcome(completion sim.VTime) *Outcome {
	s := obs.NewSnapshot()
	s.AddCounter("mem.pinned_partitions", 0)
	s.Nodes = append(s.Nodes, obs.NodeSnapshot{ID: 0, Alive: true, ResidentBytes: 100, CapacityBytes: 1000})
	s.Normalize()
	return &Outcome{
		Completion: completion,
		Snapshot:   s,
		Selections: map[string][]int{"T3[choose]": {1}},
		Checksums:  []uint64{0xabc, 0xdef},
	}
}

func oracleNames(vs []Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Oracle)
	}
	return out
}

func testSpec() *TrialSpec {
	return &TrialSpec{Faults: &faults.Plan{Crashes: []faults.Crash{{Node: 0, AfterStages: 1}}}}
}

func TestOraclesPassOnHealthyPair(t *testing.T) {
	vs := CheckOracles(testSpec(), passingOutcome(10), passingOutcome(11), "")
	if len(vs) != 0 {
		t.Fatalf("violations on healthy pair: %v", vs)
	}
}

// TestAccountingOracleCatchesInjectedBug corrupts the faulted outcome the
// way an allocator-accounting bug would surface — the acceptance-criteria
// test double: resident bytes over budget in the snapshot, a leftover pin,
// a per-sample breach, and a span imbalance must each be flagged.
func TestAccountingOracleCatchesInjectedBug(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Outcome)
	}{
		{"resident over budget", func(o *Outcome) {
			o.Snapshot.Nodes[0].ResidentBytes = 2000
		}},
		{"leftover pin", func(o *Outcome) {
			s := obs.NewSnapshot()
			s.AddCounter("mem.pinned_partitions", 1)
			s.Normalize()
			o.Snapshot = s
		}},
		{"per-sample breach", func(o *Outcome) {
			o.ResidentOver = []string{"node 0 resident 2000 bytes > budget 1000 at t=3.000"}
		}},
		{"span imbalance", func(o *Outcome) {
			o.SpanOpens, o.SpanCloses = 10, 9
		}},
		{"audit drift", func(o *Outcome) {
			o.Accounting = []string{"node 0: used=2000 but resident entries sum to 1000"}
		}},
	}
	for _, c := range cases {
		faulted := passingOutcome(11)
		c.corrupt(faulted)
		vs := CheckOracles(testSpec(), passingOutcome(10), faulted, OracleAccounting)
		if len(vs) == 0 {
			t.Errorf("%s: accounting oracle did not fire", c.name)
			continue
		}
		for _, v := range vs {
			if v.Oracle != OracleAccounting {
				t.Errorf("%s: unexpected oracle %s", c.name, v.Oracle)
			}
		}
	}
}

func TestEquivalenceOracleCatchesDivergence(t *testing.T) {
	faulted := passingOutcome(11)
	faulted.Selections = map[string][]int{"T3[choose]": {2}}
	vs := CheckOracles(testSpec(), passingOutcome(10), faulted, OracleEquivalence)
	if len(vs) == 0 || vs[0].Oracle != OracleEquivalence {
		t.Fatalf("selection divergence not flagged: %v", vs)
	}

	faulted = passingOutcome(11)
	faulted.Checksums = []uint64{0xabc, 0xbad}
	vs = CheckOracles(testSpec(), passingOutcome(10), faulted, OracleEquivalence)
	if len(vs) == 0 || !strings.Contains(vs[0].Detail, "checksum") {
		t.Fatalf("checksum divergence not flagged: %v", vs)
	}

	// A quarantined branch legitimately changes the selection: no violation.
	faulted = passingOutcome(11)
	faulted.Selections = map[string][]int{"T3[choose]": {2}}
	faulted.Quarantined = 1
	if vs := CheckOracles(testSpec(), passingOutcome(10), faulted, OracleEquivalence); len(vs) != 0 {
		t.Fatalf("equivalence checked despite quarantine: %v", vs)
	}
}

func TestLineageAndVTimeOracles(t *testing.T) {
	faulted := passingOutcome(11)
	faulted.Lineage = []string{"lost: partition 0 of live dataset \"results\" missing at its home node 1"}
	vs := CheckOracles(testSpec(), passingOutcome(10), faulted, OracleLineage)
	if len(vs) != 1 || vs[0].Oracle != OracleLineage {
		t.Fatalf("lineage violation not flagged: %v", vs)
	}

	faulted = passingOutcome(11)
	faulted.NegativeSpans = 2
	vs = CheckOracles(testSpec(), passingOutcome(10), faulted, OracleVTime)
	if len(vs) != 1 || vs[0].Oracle != OracleVTime {
		t.Fatalf("negative span not flagged: %v", vs)
	}
}

func TestOverheadOracleBounds(t *testing.T) {
	// The lower bound applies to crash-free plans (windows and panics only
	// ever add time).
	windowSpec := &TrialSpec{Faults: &faults.Plan{
		Slowdowns: []faults.Window{{Node: 0, From: 0, To: 10, Factor: 2}},
	}}
	vs := CheckOracles(windowSpec, passingOutcome(100), passingOutcome(10), OracleOverhead)
	if len(vs) != 1 || vs[0].Oracle != OracleOverhead {
		t.Fatalf("early finish not flagged: %v", vs)
	}
	// Quarantine legitimately sheds work: no lower-bound violation then.
	faulted := passingOutcome(10)
	faulted.Quarantined = 1
	if vs := CheckOracles(windowSpec, passingOutcome(100), faulted, OracleOverhead); len(vs) != 0 {
		t.Fatalf("early finish flagged despite quarantine: %v", vs)
	}
	// Crash recovery can rewarm the cache, so crash plans skip the lower
	// bound too.
	if vs := CheckOracles(testSpec(), passingOutcome(100), passingOutcome(10), OracleOverhead); len(vs) != 0 {
		t.Fatalf("early finish flagged despite crash plan: %v", vs)
	}
	// Blowing past the recovery envelope breaks the upper bound.
	vs = CheckOracles(testSpec(), passingOutcome(10), passingOutcome(10000), OracleOverhead)
	if len(vs) != 1 || vs[0].Oracle != OracleOverhead {
		t.Fatalf("runaway overhead not flagged: %v", vs)
	}
}

func TestRunFailureOracle(t *testing.T) {
	faulted := &Outcome{Err: errOutcome("boom")}
	vs := CheckOracles(testSpec(), passingOutcome(10), faulted, "")
	if len(vs) != 1 || vs[0].Oracle != OracleRunFailure {
		t.Fatalf("run failure not flagged: %v", vs)
	}
}

type errOutcome string

func (e errOutcome) Error() string { return string(e) }

func TestUnknownOracleFilterRejected(t *testing.T) {
	if err := ValidateFilter("equivalence,nonsense"); err == nil {
		t.Fatal("unknown oracle name accepted")
	}
	if err := ValidateFilter("equivalence, accounting"); err != nil {
		t.Fatalf("valid filter rejected: %v", err)
	}
}

// TestShrinkerMinimizesToCulprit drives the delta-debugging shrinker with a
// synthetic predicate: the "bug" reproduces whenever the plan still crashes
// node 2. From a 9-event plan the shrinker must isolate that single event —
// well within the acceptance bound of <= 3 events.
func TestShrinkerMinimizesToCulprit(t *testing.T) {
	plan := faults.MustGenerate(faults.GenConfig{
		Seed: 5, Workers: 4, Crashes: 3, Permanent: 1, EvalPanics: 2,
		Slowdowns: 2, DiskFaults: 2, PanicTimes: 2,
	})
	// Ensure the culprit event is present regardless of the seed's draws.
	plan.Crashes = append(plan.Crashes, faults.Crash{Node: 2, AfterStages: 5, Permanent: true})
	check := func(p *faults.Plan) bool {
		for _, c := range p.Crashes {
			if c.Node == 2 {
				return true
			}
		}
		return false
	}
	shrunk, runs := ShrinkPlan(plan, 4, 400, check)
	if got := shrunk.NumEvents(); got > 3 {
		t.Fatalf("shrunk to %d events, want <= 3 (plan: %+v)", got, shrunk)
	}
	if !check(shrunk) {
		t.Fatal("shrunk plan no longer reproduces the violation")
	}
	if runs == 0 {
		t.Fatal("shrinker did not try any candidates")
	}
	// Field shrinking must also have simplified the surviving crash.
	for _, c := range shrunk.Crashes {
		if c.Node == 2 && c.Permanent {
			t.Error("culprit crash still permanent; field shrinking missed it")
		}
	}
}

// TestEndToEndInjectedViolationShrinks wires a genuine oracle through the
// sweep machinery: the accounting oracle is fed a corrupted outcome via a
// predicate closure, mimicking an allocator bug triggered by any crash of
// node 1, and the shrinker reduces a multi-event plan to the minimal repro.
func TestEndToEndInjectedViolationShrinks(t *testing.T) {
	plan := faults.MustGenerate(faults.GenConfig{
		Seed: 8, Workers: 4, Crashes: 4, Slowdowns: 2, EvalPanics: 1,
	})
	plan.Crashes = append(plan.Crashes, faults.Crash{Node: 1, AfterStages: 2})
	bug := func(p *faults.Plan) bool {
		// Simulated engine-with-bug: crashing node 1 corrupts accounting.
		for _, c := range p.Crashes {
			if c.Node == 1 {
				golden, faulted := passingOutcome(10), passingOutcome(11)
				faulted.Snapshot.Nodes[0].ResidentBytes = 5000
				vs := CheckOracles(testSpec(), golden, faulted, OracleAccounting)
				return len(vs) > 0
			}
		}
		return false
	}
	shrunk, _ := ShrinkPlan(plan, 4, 400, bug)
	if got := shrunk.NumEvents(); got > 3 {
		t.Fatalf("injected accounting bug shrunk to %d events, want <= 3", got)
	}
	if !bug(shrunk) {
		t.Fatal("shrunk plan no longer triggers the injected bug")
	}
}

func TestReproRoundTripAndReplay(t *testing.T) {
	spec, err := GenTrialSpec(42, 0)
	if err != nil {
		t.Fatalf("GenTrialSpec: %v", err)
	}
	r := &Repro{Schema: ReproSchema, Oracle: OracleAccounting, Detail: "test", Trial: spec}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !IsRepro(buf.Bytes()) {
		t.Fatal("serialized repro not recognised")
	}
	parsed, err := ParseRepro(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseRepro: %v", err)
	}
	if parsed.Oracle != OracleAccounting || parsed.Trial.Workers != spec.Workers {
		t.Fatalf("round trip lost data: %+v", parsed)
	}
	// The current engine is healthy, so replaying must report no violations.
	vs, err := Replay(parsed)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("healthy engine violates on replay: %v", vs)
	}
	if IsRepro([]byte(`{"crashes": [{"node": 0}]}`)) {
		t.Fatal("bare fault plan misdetected as repro")
	}
	if _, err := ParseRepro([]byte(`{"schema": "mdf.chaos-repro/v1", "trial": {}}`)); err == nil {
		t.Fatal("invalid trial accepted")
	}
}
