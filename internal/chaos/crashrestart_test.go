package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"metadataflow/internal/journal"
)

// TestCrashSweepEquivalentAtEveryBoundary runs a small sweep and demands
// zero violations: every kill-and-restart boundary of every trial must
// reproduce the golden statuses and metrics exactly.
func TestCrashSweepEquivalentAtEveryBoundary(t *testing.T) {
	var log bytes.Buffer
	res, err := CrashSweep(7, 2, t.TempDir(), &log)
	if err != nil {
		t.Fatalf("sweep: %v\n%s", err, log.Bytes())
	}
	if res.Violations != 0 {
		t.Fatalf("%d violations:\n%s", res.Violations, log.Bytes())
	}
	if res.Boundaries < 10 {
		t.Fatalf("only %d boundaries exercised — journals suspiciously short:\n%s",
			res.Boundaries, log.Bytes())
	}
}

// TestCrashSweepDeterministic runs the same sweep twice into separate
// state roots and compares both the log output and the golden journals
// byte for byte — the property `make crash-short` gates on.
func TestCrashSweepDeterministic(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir()}
	var logs [2]bytes.Buffer
	for i, root := range roots {
		if _, err := CrashSweep(11, 1, root, &logs[i]); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatalf("sweep logs diverged:\n%s\n---\n%s", logs[0].Bytes(), logs[1].Bytes())
	}
	for _, sub := range []string{"trial-0/golden/journal"} {
		a, err := os.ReadDir(filepath.Join(roots[0], sub))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadDir(filepath.Join(roots[1], sub))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("segment counts diverged: %d vs %d", len(a), len(b))
		}
		for i := range a {
			pa, _ := os.ReadFile(filepath.Join(roots[0], sub, a[i].Name()))
			pb, _ := os.ReadFile(filepath.Join(roots[1], sub, b[i].Name()))
			if !bytes.Equal(pa, pb) {
				t.Fatalf("journal segment %s diverged between identical sweeps", a[i].Name())
			}
		}
	}
}

// TestGenCrashTrialSpecShape pins the generator's envelope: job counts,
// tenants, and that each journal the golden run would write is replayable
// by construction (specs parse, fault plans parse).
func TestGenCrashTrialSpecShape(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		spec, err := GenCrashTrialSpec(3, trial)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Jobs) < 2 || len(spec.Jobs) > 4 {
			t.Fatalf("trial %d has %d jobs", trial, len(spec.Jobs))
		}
		if spec.MaxTornBytes < 1 {
			t.Fatalf("trial %d torn bound %d", trial, spec.MaxTornBytes)
		}
		again, err := GenCrashTrialSpec(3, trial)
		if err != nil {
			t.Fatal(err)
		}
		if string(again.Jobs[0].Spec) != string(spec.Jobs[0].Spec) {
			t.Fatalf("trial %d generation is not deterministic", trial)
		}
	}
}

// TestCrashTrialSurvivesPrefixDamage points the harness at a trial and
// additionally verifies the cut directories it leaves behind hold dense,
// replayable journals after the restarted server healed them.
func TestCrashTrialSurvivesPrefixDamage(t *testing.T) {
	spec, err := GenCrashTrialSpec(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	res, err := RunCrashTrial(spec, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	// Every healed cut journal must replay cleanly with dense sequences.
	for k := 0; k <= res.Records; k++ {
		jdir := filepath.Join(root, "cut-"+pad4(k), "journal")
		recs, err := journal.Replay(jdir)
		if err != nil {
			t.Fatalf("cut %d journal does not replay after heal: %v", k, err)
		}
		for i, rec := range recs {
			if rec.Seq != int64(i+1) {
				t.Fatalf("cut %d journal seq %d at index %d", k, rec.Seq, i)
			}
		}
	}
}

func pad4(k int) string {
	const digits = "0123456789"
	b := []byte{'0', '0', '0', '0'}
	for i := 3; i >= 0 && k > 0; i-- {
		b[i] = digits[k%10]
		k /= 10
	}
	return string(b)
}
