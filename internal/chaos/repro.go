package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ReproSchema is the self-describing schema tag of repro files. Additive
// changes keep v1; removing or renaming a field bumps the version.
const ReproSchema = "mdf.chaos-repro/v1"

// Repro is a self-contained, replayable chaos failure: the violated oracle
// and the complete (shrunken) trial spec, fault plan included. mdfchaos
// -replay re-runs it and re-applies the oracle; mdfrun -faults accepts the
// file too (it extracts the embedded plan and runs the oracle battery), so
// a checked-in repro doubles as a regression test.
type Repro struct {
	Schema string    `json:"schema"`
	Oracle string    `json:"oracle"`
	Detail string    `json:"detail"`
	Trial  TrialSpec `json:"trial"`
}

// WriteJSON serialises the repro with stable field order and indentation.
func (r *Repro) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseRepro decodes and validates a repro file.
func ParseRepro(data []byte) (*Repro, error) {
	var r Repro
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("chaos: bad repro file: %w", err)
	}
	if r.Schema != ReproSchema {
		return nil, fmt.Errorf("chaos: repro schema %q, want %q", r.Schema, ReproSchema)
	}
	if err := r.Trial.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: repro trial invalid: %w", err)
	}
	return &r, nil
}

// IsRepro reports whether data looks like a chaos repro file (as opposed to
// a bare fault plan), so mdfrun -faults can accept both formats.
func IsRepro(data []byte) bool {
	var probe struct {
		Schema string `json:"schema"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Schema == ReproSchema
}

// Replay re-runs a repro's trial and re-applies its oracle (or the full
// battery when the repro does not name one). It returns the violations
// observed; an empty slice means the failure no longer reproduces.
func Replay(r *Repro) ([]Violation, error) {
	res, err := RunTrial(r.Trial, r.Oracle)
	if err != nil {
		return nil, err
	}
	return res.Violations, nil
}
