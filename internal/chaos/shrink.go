package chaos

import (
	"metadataflow/internal/faults"
)

// ShrinkPlan minimizes a fault plan by delta debugging: while check (the
// "does the violation still reproduce?" predicate) keeps returning true, it
// greedily drops whole events, then shrinks the surviving events' fields
// (permanent crashes demoted to transient, triggers pulled toward the start
// of the run, degradation windows narrowed and flattened, panic budgets
// reduced). Candidates that fail ValidateFor(workers) are skipped. The
// search is bounded by maxRuns check invocations; it returns the smallest
// reproducing plan found and the number of runs spent. check must be true
// for the input plan (callers pass the plan that already violated).
func ShrinkPlan(p *faults.Plan, workers int, maxRuns int, check func(*faults.Plan) bool) (*faults.Plan, int) {
	runs := 0
	tryAdopt := func(cand *faults.Plan) bool {
		if runs >= maxRuns {
			return false
		}
		if err := cand.ValidateFor(workers); err != nil {
			return false
		}
		runs++
		return check(cand)
	}
	cur := clonePlan(p)

	// Phase 1: drop whole events to a fixpoint. Scanning from the end keeps
	// indices stable while deleting.
	for changed := true; changed && runs < maxRuns; {
		changed = false
		for i := len(cur.Crashes) - 1; i >= 0; i-- {
			cand := clonePlan(cur)
			cand.Crashes = append(cand.Crashes[:i], cand.Crashes[i+1:]...)
			if tryAdopt(cand) {
				cur, changed = cand, true
			}
		}
		for i := len(cur.Slowdowns) - 1; i >= 0; i-- {
			cand := clonePlan(cur)
			cand.Slowdowns = append(cand.Slowdowns[:i], cand.Slowdowns[i+1:]...)
			if tryAdopt(cand) {
				cur, changed = cand, true
			}
		}
		for i := len(cur.DiskFaults) - 1; i >= 0; i-- {
			cand := clonePlan(cur)
			cand.DiskFaults = append(cand.DiskFaults[:i], cand.DiskFaults[i+1:]...)
			if tryAdopt(cand) {
				cur, changed = cand, true
			}
		}
		for i := len(cur.Panics) - 1; i >= 0; i-- {
			cand := clonePlan(cur)
			cand.Panics = append(cand.Panics[:i], cand.Panics[i+1:]...)
			if tryAdopt(cand) {
				cur, changed = cand, true
			}
		}
	}

	// Phase 2: shrink the surviving events' fields to a fixpoint.
	for changed := true; changed && runs < maxRuns; {
		changed = false
		for i := range cur.Crashes {
			c := cur.Crashes[i]
			if c.Permanent {
				cand := clonePlan(cur)
				cand.Crashes[i].Permanent = false
				if tryAdopt(cand) {
					cur, changed = cand, true
				}
			}
			for _, after := range []int{0, c.AfterStages / 2} {
				if after >= cur.Crashes[i].AfterStages {
					continue
				}
				cand := clonePlan(cur)
				cand.Crashes[i].AfterStages = after
				if tryAdopt(cand) {
					cur, changed = cand, true
					break
				}
			}
			if cur.Crashes[i].At > 0 {
				cand := clonePlan(cur)
				cand.Crashes[i].At = 0
				if tryAdopt(cand) {
					cur, changed = cand, true
				}
			}
		}
		windows := func(ws []faults.Window, set func(*faults.Plan) []faults.Window) {
			for i := range ws {
				w := ws[i]
				if w.Factor > 2 {
					cand := clonePlan(cur)
					set(cand)[i].Factor = 2
					if tryAdopt(cand) {
						cur, changed = cand, true
						ws = set(cur)
					}
				}
				if w.To <= 0 || w.To-w.From > 1 {
					cand := clonePlan(cur)
					set(cand)[i].To = set(cand)[i].From + 1
					if tryAdopt(cand) {
						cur, changed = cand, true
						ws = set(cur)
					}
				}
			}
		}
		windows(cur.Slowdowns, func(p *faults.Plan) []faults.Window { return p.Slowdowns })
		windows(cur.DiskFaults, func(p *faults.Plan) []faults.Window { return p.DiskFaults })
		for i := range cur.Panics {
			if cur.Panics[i].Times > 1 {
				cand := clonePlan(cur)
				cand.Panics[i].Times = 1
				if tryAdopt(cand) {
					cur, changed = cand, true
				}
			}
		}
	}
	return cur, runs
}

// clonePlan deep-copies a fault plan so shrink candidates never alias.
func clonePlan(p *faults.Plan) *faults.Plan {
	out := &faults.Plan{Seed: p.Seed, Retry: p.Retry}
	out.Crashes = append([]faults.Crash(nil), p.Crashes...)
	out.Slowdowns = append([]faults.Window(nil), p.Slowdowns...)
	out.DiskFaults = append([]faults.Window(nil), p.DiskFaults...)
	out.Panics = append([]faults.PanicSpec(nil), p.Panics...)
	return out
}
