// Package graph implements the dataflow-graph model of the meta-dataflow
// paper (App. A) extended with the MDF structure of §3: operators connected
// by narrow or wide data dependencies, explore operators that open branches,
// and choose operators that close them.
//
// The package is purely structural plus per-operator executable payloads; the
// scheduling and memory-management policies live in internal/scheduler and
// internal/memorymgr, and the evaluator/selector implementations in
// internal/mdf.
package graph

import (
	"fmt"

	"metadataflow/internal/dataset"
)

// Kind classifies an operator.
type Kind int

const (
	// KindSource produces data from outside the dataflow (|•v| = 0).
	KindSource Kind = iota
	// KindTransform applies its function to its inputs.
	KindTransform
	// KindExplore opens an exploration scope: it forwards its single input
	// dataset to every successor branch (Def. 3.2).
	KindExplore
	// KindChoose closes an exploration scope: it scores every branch result
	// and selects a subset for further processing (Def. 3.3).
	KindChoose
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindTransform:
		return "transform"
	case KindExplore:
		return "explore"
	case KindChoose:
		return "choose"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DepKind classifies a data dependency (App. A execution model).
type DepKind int

const (
	// Narrow dependencies (map/filter-like) can be pipelined into one stage.
	Narrow DepKind = iota
	// Wide dependencies (group-by-like) force a stage boundary.
	Wide
)

// TransformFunc is the operator function f_v. It receives the output
// datasets of the operator's predecessors in edge order (empty for sources)
// and produces the operator's single output dataset. Implementations must
// set the VirtualBytes of the partitions they produce.
type TransformFunc func(ins []*dataset.Dataset) (*dataset.Dataset, error)

// Chooser carries the executable semantics of a choose operator: an
// evaluator function φ scoring a branch result, and a selection function ρ
// exposed as an incremental session. Implementations live in internal/mdf;
// the interface is defined here to keep the dependency graph acyclic.
type Chooser interface {
	// Score is the evaluator function φ_v, run on workers.
	Score(d *dataset.Dataset) float64
	// NewSession starts an incremental selection over total branches.
	NewSession(total int) ChooseSession
	// Associative reports whether the selection function is associative,
	// enabling incremental discarding of datasets (Tab. 1).
	Associative() bool
	// NonExhaustive reports whether a subset of results may be selected
	// without insight into the remaining results (Tab. 1).
	NonExhaustive() bool
	// MonotoneEval reports that the evaluator is monotone over the choices
	// of the explorable (Tab. 1).
	MonotoneEval() bool
	// ConvexEval reports that the evaluator is convex over the choices of
	// the explorable (Tab. 1).
	ConvexEval() bool
}

// ChooseSession consumes branch scores one at a time, which is how a choose
// executes incrementally under branch-aware scheduling (§3.1, §4.2).
type ChooseSession interface {
	// Offer records the score of branch (by input index). It returns the
	// set of already-offered branch indexes that are now certainly
	// discarded, and done=true when the remaining (unoffered) branches are
	// superfluous and need not execute at all.
	Offer(branch int, score float64) (discard []int, done bool)
	// Selected returns the branch indexes selected so far, in input order.
	// After all branches have been offered (or done was reported) this is
	// the final selection.
	Selected() []int
}

// Operator is a vertex of the dataflow graph.
type Operator struct {
	// ID is the operator's index within its graph.
	ID int
	// Name is a human-readable label.
	Name string
	// Kind classifies the operator.
	Kind Kind
	// Transform is the operator function for sources and transforms.
	Transform TransformFunc
	// Chooser holds the evaluator/selection semantics for choose operators.
	Chooser Chooser
	// CostPerMB is the virtual compute cost, in seconds per accounted
	// megabyte of input, charged by the cluster simulator.
	CostPerMB float64
	// FixedCost is a per-task virtual compute cost in seconds.
	FixedCost float64
	// Hint orders sibling branches for hinted scheduling (§4.2); branch
	// heads carry the explorable's parameter value (or a surrogate).
	Hint float64
	// BranchLabel names the explorable setting of a branch head.
	BranchLabel string
}

// Graph is a connected, acyclic dataflow graph.
type Graph struct {
	ops  []*Operator
	ins  map[int][]int
	outs map[int][]int
	deps map[[2]int]DepKind
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		ins:  make(map[int][]int),
		outs: make(map[int][]int),
		deps: make(map[[2]int]DepKind),
	}
}

// Add inserts op into the graph, assigning its ID.
func (g *Graph) Add(op *Operator) *Operator {
	op.ID = len(g.ops)
	g.ops = append(g.ops, op)
	return op
}

// Connect adds an edge from → to with the given dependency kind.
// Duplicate edges are rejected.
func (g *Graph) Connect(from, to *Operator, kind DepKind) error {
	if from == nil || to == nil {
		return fmt.Errorf("graph: connect with nil operator")
	}
	if from.ID >= len(g.ops) || g.ops[from.ID] != from {
		return fmt.Errorf("graph: operator %q not in graph", from.Name)
	}
	if to.ID >= len(g.ops) || g.ops[to.ID] != to {
		return fmt.Errorf("graph: operator %q not in graph", to.Name)
	}
	key := [2]int{from.ID, to.ID}
	if _, dup := g.deps[key]; dup {
		return fmt.Errorf("graph: duplicate edge %q -> %q", from.Name, to.Name)
	}
	g.deps[key] = kind
	g.outs[from.ID] = append(g.outs[from.ID], to.ID)
	g.ins[to.ID] = append(g.ins[to.ID], from.ID)
	return nil
}

// MustConnect is Connect that panics on error; for use in builders and tests.
func (g *Graph) MustConnect(from, to *Operator, kind DepKind) {
	if err := g.Connect(from, to, kind); err != nil {
		panic(err)
	}
}

// NumOps returns the number of operators.
func (g *Graph) NumOps() int { return len(g.ops) }

// Op returns the operator with the given ID.
func (g *Graph) Op(id int) *Operator { return g.ops[id] }

// Ops returns all operators in insertion order. The caller must not mutate
// the returned slice.
func (g *Graph) Ops() []*Operator { return g.ops }

// Pre returns •v: the predecessors of op in edge-insertion order.
func (g *Graph) Pre(op *Operator) []*Operator { return g.resolve(g.ins[op.ID]) }

// Post returns v•: the successors of op in edge-insertion order.
func (g *Graph) Post(op *Operator) []*Operator { return g.resolve(g.outs[op.ID]) }

// InDegree returns |•v|.
func (g *Graph) InDegree(op *Operator) int { return len(g.ins[op.ID]) }

// OutDegree returns |v•|.
func (g *Graph) OutDegree(op *Operator) int { return len(g.outs[op.ID]) }

// Dep returns the dependency kind of the edge from → to.
func (g *Graph) Dep(from, to *Operator) (DepKind, bool) {
	k, ok := g.deps[[2]int{from.ID, to.ID}]
	return k, ok
}

// Sources returns the operators with no predecessors.
func (g *Graph) Sources() []*Operator {
	var out []*Operator
	for _, op := range g.ops {
		if len(g.ins[op.ID]) == 0 {
			out = append(out, op)
		}
	}
	return out
}

// Sinks returns the operators with no successors.
func (g *Graph) Sinks() []*Operator {
	var out []*Operator
	for _, op := range g.ops {
		if len(g.outs[op.ID]) == 0 {
			out = append(out, op)
		}
	}
	return out
}

// Explores returns the explore operators V< in insertion order.
func (g *Graph) Explores() []*Operator { return g.byKind(KindExplore) }

// Chooses returns the choose operators V> in insertion order.
func (g *Graph) Chooses() []*Operator { return g.byKind(KindChoose) }

func (g *Graph) byKind(k Kind) []*Operator {
	var out []*Operator
	for _, op := range g.ops {
		if op.Kind == k {
			out = append(out, op)
		}
	}
	return out
}

func (g *Graph) resolve(ids []int) []*Operator {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Operator, len(ids))
	for i, id := range ids {
		out[i] = g.ops[id]
	}
	return out
}

// TopoSort returns the operators in a topological order, or an error if the
// graph has a cycle. The order is deterministic: among ready operators the
// lowest ID goes first.
func (g *Graph) TopoSort() ([]*Operator, error) {
	indeg := make([]int, len(g.ops))
	for id := range g.ops {
		indeg[id] = len(g.ins[id])
	}
	// Deterministic Kahn's algorithm using an index-ordered scan.
	var order []*Operator
	ready := make([]bool, len(g.ops))
	for id := range g.ops {
		if indeg[id] == 0 {
			ready[id] = true
		}
	}
	for len(order) < len(g.ops) {
		picked := -1
		for id := range g.ops {
			if ready[id] {
				picked = id
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("graph: cycle detected")
		}
		ready[picked] = false
		indeg[picked] = -1
		order = append(order, g.ops[picked])
		for _, next := range g.outs[picked] {
			indeg[next]--
			if indeg[next] == 0 {
				ready[next] = true
			}
		}
	}
	return order, nil
}
