package graph

import (
	"testing"
	"testing/quick"

	"metadataflow/internal/stats"
)

// buildNested builds src -> explore1 -> {b1: explore2{c1,c2} choose2, b2} ->
// choose1 -> sink.
func buildNested(t *testing.T) *Graph {
	t.Helper()
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	e1 := g.Add(&Operator{Name: "e1", Kind: KindExplore})
	g.MustConnect(src, e1, Narrow)
	// Branch 1 contains a nested scope.
	b1 := g.Add(&Operator{Name: "b1", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(e1, b1, Narrow)
	e2 := g.Add(&Operator{Name: "e2", Kind: KindExplore})
	g.MustConnect(b1, e2, Narrow)
	c1 := g.Add(&Operator{Name: "c1", Kind: KindTransform, Transform: passThrough})
	c2 := g.Add(&Operator{Name: "c2", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(e2, c1, Narrow)
	g.MustConnect(e2, c2, Narrow)
	ch2 := g.Add(&Operator{Name: "ch2", Kind: KindChoose, Chooser: fakeChooser{}})
	g.MustConnect(c1, ch2, Wide)
	g.MustConnect(c2, ch2, Wide)
	// Branch 2 is plain.
	b2 := g.Add(&Operator{Name: "b2", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(e1, b2, Narrow)
	ch1 := g.Add(&Operator{Name: "ch1", Kind: KindChoose, Chooser: fakeChooser{}})
	g.MustConnect(ch2, ch1, Wide)
	g.MustConnect(b2, ch1, Wide)
	sink := g.Add(&Operator{Name: "sink", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(ch1, sink, Narrow)
	return g
}

func TestNestedScopeDepths(t *testing.T) {
	g := buildNested(t)
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 2 {
		t.Fatalf("scopes = %d, want 2", len(scopes))
	}
	byName := map[string]*Scope{}
	for _, sc := range scopes {
		byName[sc.Explore.Name] = sc
	}
	if byName["e1"].Depth != 1 || byName["e2"].Depth != 2 {
		t.Errorf("depths: e1=%d e2=%d, want 1 and 2", byName["e1"].Depth, byName["e2"].Depth)
	}
	if byName["e1"].Choose.Name != "ch1" || byName["e2"].Choose.Name != "ch2" {
		t.Error("scope pairing wrong")
	}
	// Branch 1 of e1 includes the nested scope's operators.
	if len(byName["e1"].Branches[0]) < 4 {
		t.Errorf("outer branch 1 members = %d, want >= 4 (b1, e2, c1, c2, ch2)",
			len(byName["e1"].Branches[0]))
	}
}

func TestChooseWithoutExploreRejected(t *testing.T) {
	g := New()
	a := g.Add(&Operator{Name: "a", Kind: KindSource, Transform: passThrough})
	b := g.Add(&Operator{Name: "b", Kind: KindSource, Transform: passThrough})
	ch := g.Add(&Operator{Name: "ch", Kind: KindChoose, Chooser: fakeChooser{}})
	g.MustConnect(a, ch, Wide)
	g.MustConnect(b, ch, Wide)
	if err := g.Validate(); err == nil {
		t.Fatal("choose without matching explore accepted")
	}
}

func TestCrossScopePredecessorsRejected(t *testing.T) {
	// A vertex consuming from two different branches of the same explore
	// without going through the choose has predecessors in different
	// scopes... actually both are in the same scope; build instead a vertex
	// fed by one operator inside a scope and one outside it.
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	e := g.Add(&Operator{Name: "e", Kind: KindExplore})
	g.MustConnect(src, e, Narrow)
	a := g.Add(&Operator{Name: "a", Kind: KindTransform, Transform: passThrough})
	b := g.Add(&Operator{Name: "b", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(e, a, Narrow)
	g.MustConnect(e, b, Narrow)
	ch := g.Add(&Operator{Name: "ch", Kind: KindChoose, Chooser: fakeChooser{}})
	g.MustConnect(a, ch, Wide)
	g.MustConnect(b, ch, Wide)
	// mix consumes a (inside the scope) and ch's output (outside): its
	// predecessors carry different open-scope stacks.
	mix := g.Add(&Operator{Name: "mix", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(a, mix, Narrow)
	g.MustConnect(ch, mix, Narrow)
	if _, err := g.MatchScopes(); err == nil {
		t.Fatal("cross-scope consumer accepted")
	}
}

// TestPlanCoversAllOperators: every operator of a random layered MDF lands
// in exactly one stage, and stage-level dependencies respect operator-level
// ones.
func TestPlanCoversAllOperators(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		g := randomFlatMDF(rng)
		p, err := BuildPlan(g)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, st := range p.Stages {
			for _, op := range st.Ops {
				seen[op.ID]++
			}
		}
		if len(seen) != g.NumOps() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		// Stage dependencies must respect operator topology: for every
		// edge, the producing stage is the consuming stage or in its
		// transitive pre-set.
		for _, st := range p.Stages {
			for _, pre := range p.Pre(st) {
				if pre.ID >= st.ID {
					return false // stage IDs are topologically ordered
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomFlatMDF builds a random single-scope MDF with 2-6 branches of 1-4
// chained ops.
func randomFlatMDF(rng *stats.RNG) *Graph {
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	pre := g.Add(&Operator{Name: "pre", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(src, pre, Narrow)
	e := g.Add(&Operator{Name: "e", Kind: KindExplore})
	g.MustConnect(pre, e, Narrow)
	ch := g.Add(&Operator{Name: "ch", Kind: KindChoose, Chooser: fakeChooser{}})
	branches := rng.Intn(5) + 2
	for b := 0; b < branches; b++ {
		var prev *Operator = e
		chain := rng.Intn(4) + 1
		for c := 0; c < chain; c++ {
			op := g.Add(&Operator{Name: "t", Kind: KindTransform, Transform: passThrough})
			dep := Narrow
			if rng.Float64() < 0.3 {
				dep = Wide
			}
			g.MustConnect(prev, op, dep)
			prev = op
		}
		g.MustConnect(prev, ch, Wide)
	}
	sink := g.Add(&Operator{Name: "sink", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(ch, sink, Narrow)
	return g
}
