package graph

import "testing"

func TestCollapsedDFSNeverExceedsBFS(t *testing.T) {
	for _, B := range []int{2, 3, 4, 5} {
		for _, D := range []int{1, 2, 3} {
			dfs := SimulateCollapsed(B, D, DepthFirst)
			bfs := SimulateCollapsed(B, D, BreadthFirst)
			if len(dfs) != len(bfs) {
				t.Fatalf("B=%d D=%d: step counts differ (%d vs %d)", B, D, len(dfs), len(bfs))
			}
			if p, q := PeakMaintained(dfs), PeakMaintained(bfs); p > q {
				t.Errorf("B=%d D=%d: DFS peak %d > BFS peak %d", B, D, p, q)
			}
		}
	}
}

func TestCollapsedFinalCountsAgree(t *testing.T) {
	// After the full traversal both orders keep exactly the same datasets:
	// the selected dataset of every closed scope along the spine plus the
	// outer choose output. The last step is the outermost choose in both.
	for _, B := range []int{2, 3} {
		for _, D := range []int{1, 2} {
			dfs := SimulateCollapsed(B, D, DepthFirst)
			bfs := SimulateCollapsed(B, D, BreadthFirst)
			if a, b := dfs[len(dfs)-1].Maintained, bfs[len(bfs)-1].Maintained; a != b {
				t.Errorf("B=%d D=%d: final maintained %d (dfs) != %d (bfs)", B, D, a, b)
			}
		}
	}
}

func TestBFSMaintainedMatchesSimulation(t *testing.T) {
	// Eq. 2 gives the maintained count after the b-th stage of depth d in
	// breadth-first order. Cross-check against the step-by-step simulator.
	for _, B := range []int{2, 3, 4} {
		for _, D := range []int{1, 2, 3} {
			steps := SimulateCollapsed(B, D, BreadthFirst)
			for _, st := range steps {
				if st.IsChoose || st.Depth == 0 {
					continue
				}
				want := BFSMaintained(B, st.Depth, st.Index)
				if st.Maintained != want {
					t.Errorf("B=%d D=%d d=%d b=%d: sim=%d eq2=%d",
						B, D, st.Depth, st.Index, st.Maintained, want)
				}
			}
		}
	}
}

func TestDFSMaintainedMatchesSimulation(t *testing.T) {
	// Eq. 1 gives the maintained count after the b-th executed stage of
	// depth d in depth-first order (no incremental choose).
	for _, B := range []int{2, 3, 4} {
		for _, D := range []int{1, 2, 3} {
			steps := SimulateCollapsed(B, D, DepthFirst)
			for _, st := range steps {
				if st.IsChoose || st.Depth == 0 {
					continue
				}
				want := DFSMaintained(B, st.Depth, st.Index)
				if st.Maintained != want {
					t.Errorf("B=%d D=%d d=%d b=%d: sim=%d eq1=%d",
						B, D, st.Depth, st.Index, st.Maintained, want)
				}
			}
		}
	}
}

func TestBFSChooseMaintainedMatchesSimulation(t *testing.T) {
	// Eq. 5: maintained count after a breadth-first choose stage. Chooses
	// run bottom-up; the g-th choose of scope depth d matches the explore
	// stage numbered b = g·B at that depth.
	for _, B := range []int{2, 3} {
		for _, D := range []int{1, 2} {
			steps := SimulateCollapsed(B, D, BreadthFirst)
			chooseIdx := map[int]int{} // depth -> count seen
			for _, st := range steps {
				if !st.IsChoose {
					continue
				}
				chooseIdx[st.Depth]++
				want := BFSChooseMaintained(B, st.Depth-1, chooseIdx[st.Depth])
				if st.Maintained != want {
					t.Errorf("B=%d D=%d choose depth=%d idx=%d: sim=%d eq5=%d",
						B, D, st.Depth, chooseIdx[st.Depth], st.Maintained, want)
				}
			}
		}
	}
}

func TestPeakGapGrowsWithBreadth(t *testing.T) {
	// The BFS-DFS gap must widen as the branching factor grows (App. B's
	// "at a stage at d=3 when B=10 ... at least 98 datasets" observation).
	prevGap := -1
	for _, B := range []int{2, 4, 8} {
		dfs := PeakMaintained(SimulateCollapsed(B, 2, DepthFirst))
		bfs := PeakMaintained(SimulateCollapsed(B, 2, BreadthFirst))
		gap := bfs - dfs
		if gap <= prevGap {
			t.Errorf("B=%d: gap %d did not grow (prev %d)", B, gap, prevGap)
		}
		prevGap = gap
	}
}
