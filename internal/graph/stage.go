package graph

import (
	"fmt"
	"sort"
)

// Stage groups operators whose execution can be pipelined (App. A): a
// maximal chain of narrow dependencies between operators of in/out degree
// one. Explore and choose operators are assigned to their own stages (§4.2:
// "choose operators are assigned to separate stages").
type Stage struct {
	// ID is the stage's index within its plan.
	ID int
	// Ops is the pipelined operator chain in execution order.
	Ops []*Operator
}

// First returns the first operator of the chain.
func (s *Stage) First() *Operator { return s.Ops[0] }

// Last returns the last operator of the chain; the stage's output dataset is
// the output of this operator.
func (s *Stage) Last() *Operator { return s.Ops[len(s.Ops)-1] }

// IsChoose reports whether the stage is a singleton choose stage.
func (s *Stage) IsChoose() bool { return len(s.Ops) == 1 && s.Ops[0].Kind == KindChoose }

// IsExplore reports whether the stage is a singleton explore stage.
func (s *Stage) IsExplore() bool { return len(s.Ops) == 1 && s.Ops[0].Kind == KindExplore }

// String implements fmt.Stringer.
func (s *Stage) String() string {
	if len(s.Ops) == 1 {
		return fmt.Sprintf("T%d[%s]", s.ID, s.Ops[0].Name)
	}
	return fmt.Sprintf("T%d[%s..%s]", s.ID, s.Ops[0].Name, s.Ops[len(s.Ops)-1].Name)
}

// Plan is the stage decomposition of a graph, with stage-level dependency
// sets and the branch structure needed by branch-aware scheduling and
// anticipatory memory management.
type Plan struct {
	Graph  *Graph
	Stages []*Stage
	// Scopes are the explore/choose scopes of the MDF, outermost first.
	Scopes []*Scope

	stageOf map[int]*Stage // opID -> stage
	pre     map[int][]*Stage
	post    map[int][]*Stage
	// branchOf maps a stage ID to its innermost (scope index, branch index),
	// or nil when the stage is outside all scopes.
	branchOf map[int]*BranchRef
}

// BranchRef locates a stage within the scope structure.
type BranchRef struct {
	// Scope indexes Plan.Scopes.
	Scope int
	// Branch is the branch index within the scope.
	Branch int
}

// BuildPlan validates g and derives its stages.
func BuildPlan(g *Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Graph:    g,
		Scopes:   scopes,
		stageOf:  make(map[int]*Stage),
		pre:      make(map[int][]*Stage),
		post:     make(map[int][]*Stage),
		branchOf: make(map[int]*BranchRef),
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, op := range order {
		if _, staged := p.stageOf[op.ID]; staged {
			continue
		}
		st := &Stage{ID: len(p.Stages)}
		p.Stages = append(p.Stages, st)
		cur := op
		st.Ops = append(st.Ops, cur)
		p.stageOf[cur.ID] = st
		if cur.Kind == KindExplore || cur.Kind == KindChoose {
			continue // singleton stage
		}
		// Extend the chain while it stays pipelineable.
		for {
			outs := g.Post(cur)
			if len(outs) != 1 {
				break
			}
			next := outs[0]
			if next.Kind == KindExplore || next.Kind == KindChoose {
				break
			}
			if g.InDegree(next) != 1 {
				break
			}
			if dep, _ := g.Dep(cur, next); dep != Narrow {
				break
			}
			st.Ops = append(st.Ops, next)
			p.stageOf[next.ID] = st
			cur = next
		}
	}
	p.buildStageEdges()
	p.buildBranchRefs()
	return p, nil
}

func (p *Plan) buildStageEdges() {
	seen := make(map[[2]int]bool)
	for e := range p.Graph.deps {
		a := p.stageOf[e[0]]
		b := p.stageOf[e[1]]
		if a == b {
			continue
		}
		key := [2]int{a.ID, b.ID}
		if seen[key] {
			continue
		}
		seen[key] = true
		p.post[a.ID] = append(p.post[a.ID], b)
		p.pre[b.ID] = append(p.pre[b.ID], a)
	}
	for id := range p.pre {
		sort.Slice(p.pre[id], func(i, j int) bool { return p.pre[id][i].ID < p.pre[id][j].ID })
	}
	for id := range p.post {
		sort.Slice(p.post[id], func(i, j int) bool { return p.post[id][i].ID < p.post[id][j].ID })
	}
	// Preserve the choose's input-edge order for its pre-set, since branch
	// index corresponds to input position (Def. 3.3).
	for _, st := range p.Stages {
		if !st.IsChoose() {
			continue
		}
		choose := st.Ops[0]
		ordered := make([]*Stage, 0, len(p.Graph.ins[choose.ID]))
		for _, predOp := range p.Graph.ins[choose.ID] {
			ordered = append(ordered, p.stageOf[predOp])
		}
		p.pre[st.ID] = ordered
	}
}

func (p *Plan) buildBranchRefs() {
	// Innermost scope wins: iterate outermost→innermost so deeper scopes
	// overwrite. Scopes from MatchScopes are ordered by explore ID, which is
	// not necessarily by depth, so sort an index list by depth.
	idx := make([]int, len(p.Scopes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return p.Scopes[idx[i]].Depth < p.Scopes[idx[j]].Depth })
	for _, si := range idx {
		sc := p.Scopes[si]
		for bi, members := range sc.Branches {
			for _, opID := range members {
				st := p.stageOf[opID]
				p.branchOf[st.ID] = &BranchRef{Scope: si, Branch: bi}
			}
		}
	}
}

// StageOf returns the stage containing op.
func (p *Plan) StageOf(op *Operator) *Stage { return p.stageOf[op.ID] }

// Pre returns •T: the stages whose outputs the given stage consumes. For
// choose stages the order matches the choose operator's input-edge order.
func (p *Plan) Pre(st *Stage) []*Stage { return p.pre[st.ID] }

// Post returns T•: the stages that consume the given stage's output.
func (p *Plan) Post(st *Stage) []*Stage { return p.post[st.ID] }

// Branch returns the innermost scope/branch reference of a stage, or nil if
// the stage lies outside every exploration scope.
func (p *Plan) Branch(st *Stage) *BranchRef { return p.branchOf[st.ID] }

// SourceStages returns the stages with an empty pre-set.
func (p *Plan) SourceStages() []*Stage {
	var out []*Stage
	for _, st := range p.Stages {
		if len(p.pre[st.ID]) == 0 {
			out = append(out, st)
		}
	}
	return out
}

// Consumers returns the number of stages that consume the output of st.
func (p *Plan) Consumers(st *Stage) int { return len(p.post[st.ID]) }

// ScopeOfChoose returns the scope closed by the given choose stage, or nil.
func (p *Plan) ScopeOfChoose(st *Stage) *Scope {
	if !st.IsChoose() {
		return nil
	}
	for _, sc := range p.Scopes {
		if sc.Choose.ID == st.Ops[0].ID {
			return sc
		}
	}
	return nil
}

// ScopeOfExplore returns the scope opened by the given explore stage, or nil.
func (p *Plan) ScopeOfExplore(st *Stage) *Scope {
	if !st.IsExplore() {
		return nil
	}
	for _, sc := range p.Scopes {
		if sc.Explore.ID == st.Ops[0].ID {
			return sc
		}
	}
	return nil
}

// BranchStages returns the stages of branch b of scope sc in topological
// order.
func (p *Plan) BranchStages(sc *Scope, b int) []*Stage {
	var out []*Stage
	seen := map[int]bool{}
	for _, opID := range sc.Branches[b] {
		st := p.stageOf[opID]
		if !seen[st.ID] {
			seen[st.ID] = true
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
