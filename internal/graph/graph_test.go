package graph

import (
	"strings"
	"testing"

	"metadataflow/internal/dataset"
)

func passThrough(ins []*dataset.Dataset) (*dataset.Dataset, error) {
	if len(ins) == 0 {
		return dataset.New("src"), nil
	}
	return ins[0], nil
}

type fakeChooser struct{}

func (fakeChooser) Score(*dataset.Dataset) float64     { return 0 }
func (fakeChooser) NewSession(total int) ChooseSession { return &fakeSession{} }
func (fakeChooser) Associative() bool                  { return true }
func (fakeChooser) NonExhaustive() bool                { return false }
func (fakeChooser) MonotoneEval() bool                 { return false }
func (fakeChooser) ConvexEval() bool                   { return false }

type fakeSession struct{ sel []int }

func (s *fakeSession) Offer(b int, _ float64) ([]int, bool) {
	s.sel = append(s.sel, b)
	return nil, false
}
func (s *fakeSession) Selected() []int { return s.sel }

// buildSimpleMDF builds: src -> pre -> explore -> {b1, b2, b3} -> choose -> post
func buildSimpleMDF(t *testing.T) (*Graph, *Operator, *Operator) {
	t.Helper()
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	pre := g.Add(&Operator{Name: "pre", Kind: KindTransform, Transform: passThrough})
	exp := g.Add(&Operator{Name: "explore", Kind: KindExplore})
	b1 := g.Add(&Operator{Name: "b1", Kind: KindTransform, Transform: passThrough, Hint: 1})
	b2 := g.Add(&Operator{Name: "b2", Kind: KindTransform, Transform: passThrough, Hint: 2})
	b3 := g.Add(&Operator{Name: "b3", Kind: KindTransform, Transform: passThrough, Hint: 3})
	cho := g.Add(&Operator{Name: "choose", Kind: KindChoose, Chooser: fakeChooser{}})
	post := g.Add(&Operator{Name: "post", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(src, pre, Narrow)
	g.MustConnect(pre, exp, Narrow)
	g.MustConnect(exp, b1, Narrow)
	g.MustConnect(exp, b2, Narrow)
	g.MustConnect(exp, b3, Narrow)
	g.MustConnect(b1, cho, Wide)
	g.MustConnect(b2, cho, Wide)
	g.MustConnect(b3, cho, Wide)
	g.MustConnect(cho, post, Narrow)
	return g, exp, cho
}

func TestValidateSimpleMDF(t *testing.T) {
	g, _, _ := buildSimpleMDF(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDegreeAccessors(t *testing.T) {
	g, exp, cho := buildSimpleMDF(t)
	if got := g.OutDegree(exp); got != 3 {
		t.Errorf("explore out-degree = %d, want 3", got)
	}
	if got := g.InDegree(cho); got != 3 {
		t.Errorf("choose in-degree = %d, want 3", got)
	}
	if got := len(g.Sources()); got != 1 {
		t.Errorf("sources = %d, want 1", got)
	}
	if got := len(g.Sinks()); got != 1 {
		t.Errorf("sinks = %d, want 1", got)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g, _, _ := buildSimpleMDF(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[int]int{}
	for i, op := range order {
		pos[op.ID] = i
	}
	for _, op := range g.Ops() {
		for _, next := range g.Post(op) {
			if pos[op.ID] >= pos[next.ID] {
				t.Errorf("%s not before %s", op.Name, next.Name)
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	a := g.Add(&Operator{Name: "a", Kind: KindSource, Transform: passThrough})
	b := g.Add(&Operator{Name: "b", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(a, b, Narrow)
	g.MustConnect(b, a, Narrow)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateRejectsBadDegrees(t *testing.T) {
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	exp := g.Add(&Operator{Name: "explore", Kind: KindExplore})
	one := g.Add(&Operator{Name: "only", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(src, exp, Narrow)
	g.MustConnect(exp, one, Narrow)
	if err := g.Validate(); err == nil {
		t.Fatal("explore with one branch should fail validation")
	}
}

func TestValidateRejectsUnmatchedExplore(t *testing.T) {
	g := New()
	src := g.Add(&Operator{Name: "src", Kind: KindSource, Transform: passThrough})
	exp := g.Add(&Operator{Name: "explore", Kind: KindExplore})
	a := g.Add(&Operator{Name: "a", Kind: KindTransform, Transform: passThrough})
	b := g.Add(&Operator{Name: "b", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(src, exp, Narrow)
	g.MustConnect(exp, a, Narrow)
	g.MustConnect(exp, b, Narrow)
	if err := g.Validate(); err == nil {
		t.Fatal("explore without matching choose should fail validation")
	}
}

func TestValidateRejectsDisconnected(t *testing.T) {
	g := New()
	g.Add(&Operator{Name: "a", Kind: KindSource, Transform: passThrough})
	g.Add(&Operator{Name: "b", Kind: KindSource, Transform: passThrough})
	if err := g.Validate(); err == nil {
		t.Fatal("disconnected graph should fail validation")
	}
}

func TestMatchScopesSimple(t *testing.T) {
	g, exp, cho := buildSimpleMDF(t)
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatalf("MatchScopes: %v", err)
	}
	if len(scopes) != 1 {
		t.Fatalf("scopes = %d, want 1", len(scopes))
	}
	sc := scopes[0]
	if sc.Explore.ID != exp.ID || sc.Choose.ID != cho.ID {
		t.Errorf("scope pairs explore %d with choose %d", sc.Explore.ID, sc.Choose.ID)
	}
	if sc.Depth != 1 {
		t.Errorf("depth = %d, want 1", sc.Depth)
	}
	if len(sc.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(sc.Branches))
	}
	for i, br := range sc.Branches {
		if len(br) != 1 {
			t.Errorf("branch %d has %d members, want 1", i, len(br))
		}
	}
}

func TestStagePlanSimple(t *testing.T) {
	g, exp, cho := buildSimpleMDF(t)
	p, err := BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	// Expected stages: [src,pre], [explore], [b1], [b2], [b3], [choose], [post].
	if len(p.Stages) != 7 {
		t.Fatalf("stages = %d, want 7: %v", len(p.Stages), p.Stages)
	}
	first := p.Stages[0]
	if len(first.Ops) != 2 {
		t.Errorf("first stage should pipeline src+pre, has %d ops", len(first.Ops))
	}
	expSt := p.StageOf(exp)
	if !expSt.IsExplore() {
		t.Errorf("explore not in singleton stage")
	}
	choSt := p.StageOf(cho)
	if !choSt.IsChoose() {
		t.Errorf("choose not in singleton stage")
	}
	if got := len(p.Pre(choSt)); got != 3 {
		t.Errorf("choose stage pre-set = %d, want 3", got)
	}
	if got := len(p.Post(expSt)); got != 3 {
		t.Errorf("explore stage post-set = %d, want 3", got)
	}
	// Branch refs: the three branch stages belong to scope 0, branches 0..2.
	for i, want := range []int{0, 1, 2} {
		st := p.StageOf(g.Op(exp.ID + 1 + i))
		ref := p.Branch(st)
		if ref == nil || ref.Branch != want {
			t.Errorf("branch ref of b%d = %+v, want branch %d", i+1, ref, want)
		}
	}
}

func TestStageBoundaryOnWideDep(t *testing.T) {
	g := New()
	a := g.Add(&Operator{Name: "a", Kind: KindSource, Transform: passThrough})
	b := g.Add(&Operator{Name: "b", Kind: KindTransform, Transform: passThrough})
	c := g.Add(&Operator{Name: "c", Kind: KindTransform, Transform: passThrough})
	g.MustConnect(a, b, Wide)
	g.MustConnect(b, c, Narrow)
	p, err := BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, want 2 (wide dep forces boundary)", len(p.Stages))
	}
}

func TestDOTOutput(t *testing.T) {
	g, _, _ := buildSimpleMDF(t)
	dot := g.DOT("kde")
	for _, want := range []string{"digraph", "triangle", "invtriangle", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestPlanDOT(t *testing.T) {
	g, _, _ := buildSimpleMDF(t)
	p, err := BuildPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	dot := p.DOT("plan")
	for _, want := range []string{"digraph", "cluster_0", "compound=true", "ltail="} {
		if !strings.Contains(dot, want) {
			t.Errorf("plan DOT missing %q", want)
		}
	}
	// One cluster per stage.
	if got := strings.Count(dot, "subgraph cluster_"); got != len(p.Stages) {
		t.Errorf("clusters = %d, want %d", got, len(p.Stages))
	}
}
