package graph

import "fmt"

// Validate checks that the graph is a well-formed MDF per Def. 3.1 and
// App. A: non-empty, weakly connected, acyclic, with degree constraints on
// explore (|•v| = 1, |v•| > 1) and choose (|•v| > 1, |v•| = 1) operators,
// executable payloads on every operator, and properly nested explore/choose
// scopes so that every explore has a matching choose.
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("graph: empty")
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	if err := g.checkConnected(); err != nil {
		return err
	}
	for _, op := range g.ops {
		if err := g.checkOp(op); err != nil {
			return err
		}
	}
	if _, err := g.MatchScopes(); err != nil {
		return err
	}
	return nil
}

func (g *Graph) checkConnected() error {
	// Weak connectivity via union-find over edges.
	parent := make([]int, len(g.ops))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for e := range g.deps {
		a, b := find(e[0]), find(e[1])
		if a != b {
			parent[a] = b
		}
	}
	root := find(0)
	for i := range g.ops {
		if find(i) != root {
			return fmt.Errorf("graph: not connected (operator %q unreachable)", g.ops[i].Name)
		}
	}
	return nil
}

func (g *Graph) checkOp(op *Operator) error {
	in, out := g.InDegree(op), g.OutDegree(op)
	switch op.Kind {
	case KindSource:
		if in != 0 {
			return fmt.Errorf("graph: source %q has %d predecessors", op.Name, in)
		}
		if op.Transform == nil {
			return fmt.Errorf("graph: source %q has no function", op.Name)
		}
	case KindTransform:
		if in == 0 {
			return fmt.Errorf("graph: transform %q has no predecessors", op.Name)
		}
		if op.Transform == nil {
			return fmt.Errorf("graph: transform %q has no function", op.Name)
		}
	case KindExplore:
		if in != 1 {
			return fmt.Errorf("graph: explore %q must have exactly one predecessor, has %d", op.Name, in)
		}
		if out <= 1 {
			return fmt.Errorf("graph: explore %q must have more than one successor, has %d", op.Name, out)
		}
	case KindChoose:
		if in <= 1 {
			return fmt.Errorf("graph: choose %q must have more than one predecessor, has %d", op.Name, in)
		}
		if out > 1 {
			return fmt.Errorf("graph: choose %q must have at most one successor, has %d", op.Name, out)
		}
		if op.Chooser == nil {
			return fmt.Errorf("graph: choose %q has no chooser", op.Name)
		}
	default:
		return fmt.Errorf("graph: operator %q has unknown kind %d", op.Name, int(op.Kind))
	}
	return nil
}

// Scope describes one exploration scope: an explore operator, its matching
// choose, and the branches between them. Branch i is the subgraph reachable
// from the i-th successor of Explore without passing through Choose.
type Scope struct {
	Explore *Operator
	Choose  *Operator
	// Branches holds, per branch, the operator IDs belonging to the branch
	// in topological order (excluding the explore and choose themselves).
	Branches [][]int
	// Depth is the nesting depth (outermost scope has depth 1).
	Depth int
}

// MatchScopes pairs every explore with its matching choose by balanced
// traversal and returns the scopes in order of increasing explore ID.
// It errors on unbalanced or interleaved scopes.
func (g *Graph) MatchScopes() ([]*Scope, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	// nesting[v] = exploration depth at which v executes (stack of open
	// explores). Computed by propagating a scope stack along edges; all
	// predecessors of a vertex must agree.
	stacks := make(map[int][]int) // opID -> stack of open explore IDs
	for _, op := range order {
		var stack []int
		preds := g.Pre(op)
		if len(preds) == 0 {
			stack = nil
		} else {
			for i, p := range preds {
				ps := stacks[p.ID]
				// Leaving a choose pops its explore; entering computed below.
				eff := ps
				if p.Kind == KindExplore {
					eff = append(append([]int{}, ps...), p.ID)
				}
				if p.Kind == KindChoose {
					if len(ps) == 0 {
						return nil, fmt.Errorf("graph: choose %q closes no open explore", p.Name)
					}
					eff = ps[:len(ps)-1]
				}
				if i == 0 {
					stack = append([]int{}, eff...)
				} else if !equalInts(stack, eff) {
					return nil, fmt.Errorf("graph: operator %q has predecessors in different scopes", op.Name)
				}
			}
		}
		stacks[op.ID] = stack
	}
	// A choose's matching explore is the top of its own stack.
	scopes := make(map[int]*Scope) // exploreID -> scope
	for _, op := range order {
		switch op.Kind {
		case KindExplore:
			scopes[op.ID] = &Scope{Explore: op, Depth: len(stacks[op.ID]) + 1}
		case KindChoose:
			st := stacks[op.ID]
			if len(st) == 0 {
				return nil, fmt.Errorf("graph: choose %q has no matching explore", op.Name)
			}
			sc := scopes[st[len(st)-1]]
			if sc.Choose != nil {
				return nil, fmt.Errorf("graph: explore %q matched by two chooses (%q, %q)",
					sc.Explore.Name, sc.Choose.Name, op.Name)
			}
			sc.Choose = op
		}
	}
	var out []*Scope
	for _, op := range order {
		if op.Kind != KindExplore {
			continue
		}
		sc := scopes[op.ID]
		if sc.Choose == nil {
			return nil, fmt.Errorf("graph: explore %q has no matching choose", op.Name)
		}
		sc.Branches = g.branchMembers(sc)
		out = append(out, sc)
	}
	return out, nil
}

// branchMembers computes, per successor of the scope's explore, the operator
// IDs reachable without passing through the scope's choose.
func (g *Graph) branchMembers(sc *Scope) [][]int {
	heads := g.outs[sc.Explore.ID]
	branches := make([][]int, len(heads))
	for i, head := range heads {
		seen := map[int]bool{}
		var stack []int
		stack = append(stack, head)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] || id == sc.Choose.ID {
				continue
			}
			seen[id] = true
			for _, nxt := range g.outs[id] {
				stack = append(stack, nxt)
			}
		}
		members := make([]int, 0, len(seen))
		for _, op := range g.ops { // deterministic order
			if seen[op.ID] {
				members = append(members, op.ID)
			}
		}
		branches[i] = members
	}
	return branches
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
