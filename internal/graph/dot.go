package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz DOT syntax. Explore operators are drawn
// as triangles, choose operators as inverted triangles, and wide dependencies
// as dashed edges. The output is deterministic.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	for _, op := range g.ops {
		attrs := fmt.Sprintf("label=%q", op.Name)
		switch op.Kind {
		case KindExplore:
			attrs += ", shape=triangle, style=filled, fillcolor=lightblue"
		case KindChoose:
			attrs += ", shape=invtriangle, style=filled, fillcolor=lightsalmon"
		case KindSource:
			attrs += ", shape=ellipse"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", op.ID, attrs)
	}
	edges := make([][2]int, 0, len(g.deps))
	for e := range g.deps {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		style := ""
		if g.deps[e] == Wide {
			style = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e[0], e[1], style)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the stage plan in Graphviz DOT syntax: stages as clustered
// subgraphs of their pipelined operators, with stage-level dependencies.
func (p *Plan) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  compound=true;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"T%d\";\n", st.ID, st.ID)
		if ref := p.Branch(st); ref != nil {
			fmt.Fprintf(&b, "    style=filled;\n    fillcolor=\"#f0f6ff\";\n")
		}
		for _, op := range st.Ops {
			attrs := fmt.Sprintf("label=%q", op.Name)
			switch op.Kind {
			case KindExplore:
				attrs += ", shape=triangle"
			case KindChoose:
				attrs += ", shape=invtriangle"
			case KindSource:
				attrs += ", shape=ellipse"
			}
			fmt.Fprintf(&b, "    n%d [%s];\n", op.ID, attrs)
		}
		b.WriteString("  }\n")
	}
	for _, st := range p.Stages {
		for _, post := range p.Post(st) {
			fmt.Fprintf(&b, "  n%d -> n%d [ltail=cluster_%d, lhead=cluster_%d];\n",
				st.Last().ID, post.First().ID, st.ID, post.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
