package graph

// This file implements the collapsed-MDF analysis of App. B: closed-form
// counts of how many datasets the system must maintain after each stage of a
// symmetric collapsed MDF under depth-first (BAS) and breadth-first (BFS)
// traversal, plus a direct step-by-step simulator used to cross-check the
// formulas and Theorem 4.3.
//
// A collapsed MDF with breadth B and depth D is a perfect B-ary tree of
// explore stages: one stage at depth 0 (the source side), B^d stages at each
// depth d, and, below depth D, nested choose stages that select a single
// dataset per sibling group. Stages at depth d are numbered b = 1..B^d in
// execution order. Following App. B, the analysis assumes no early or
// incremental choose (the worst case for DFS).

// ipow returns base^exp for non-negative exp.
func ipow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

// DFSMaintained implements Eq. 1 of App. B: the number of datasets that must
// be maintained after the stage numbered b (1-based) at depth d completes
// under depth-first traversal of a collapsed MDF with breadth B.
func DFSMaintained(B, d, b int) int {
	if d == 0 {
		return 1
	}
	total := 1
	for x := 1; x <= d; x++ {
		bx := ipow(B, x)
		rem := (b - 1) % bx // (b-1) - floor((b-1)/B^x)·B^x
		childIdx := rem / ipow(B, x-1)
		lastChild := 0
		if rem >= bx-ipow(B, x-1) { // in the last child at this depth
			lastChild = 1
		}
		total += childIdx + 1 - lastChild
	}
	return total
}

// BFSMaintained implements Eq. 2 of App. B: the number of datasets that must
// be maintained after the stage numbered b (1-based) at depth d completes
// under breadth-first traversal of a collapsed MDF with breadth B.
func BFSMaintained(B, d, b int) int {
	if d == 0 {
		return 1
	}
	return ipow(B, d-1) - b/B + b
}

// BFSChooseMaintained implements Eq. 5 of App. B: the number of datasets
// maintained after the choose stage matching the explore stage numbered b at
// depth d completes under breadth-first traversal.
func BFSChooseMaintained(B, d, b int) int {
	return ipow(B, d+1) - B*b + b
}

// Traversal selects a traversal order for the collapsed-MDF simulator.
type Traversal int

const (
	// DepthFirst executes each branch to its choose before starting siblings
	// (the BAS order).
	DepthFirst Traversal = iota
	// BreadthFirst executes all stages of a depth before the next depth
	// (the baseline order).
	BreadthFirst
)

// CollapsedStep records the dataset count after one simulated stage.
type CollapsedStep struct {
	// Depth of the executed stage (0 = root; -1 for a choose stage, with
	// ChooseDepth holding the scope depth it closes).
	Depth int
	// Index is the 1-based execution index of the stage within its depth
	// (only meaningful for explore-tree stages).
	Index int
	// IsChoose marks a choose stage.
	IsChoose bool
	// Maintained is the number of datasets alive after the stage completes.
	Maintained int
}

// SimulateCollapsed executes a collapsed MDF of the given breadth and depth
// (depth >= 1) step by step in the given traversal order and returns, after
// every stage, how many datasets are maintained. Semantics follow App. B:
// each stage outputs one dataset read only by its children; a dataset is
// discarded once all readers have executed; each choose consumes the outputs
// of its B sibling branches and produces a single selected dataset; chooses
// are not incremental.
func SimulateCollapsed(breadth, depth int, order Traversal) []CollapsedStep {
	if breadth < 2 || depth < 1 {
		panic("graph: collapsed MDF needs breadth >= 2 and depth >= 1")
	}
	s := &collapsedSim{B: breadth, D: depth}
	s.aliveReaders = map[string]int{}
	// Root produces one dataset read by its B children.
	s.produce("n", breadth)
	s.steps = append(s.steps, CollapsedStep{Depth: 0, Index: 1, Maintained: s.alive})
	switch order {
	case DepthFirst:
		s.dfs("n", 1)
	case BreadthFirst:
		s.bfs()
	}
	return s.steps
}

type collapsedSim struct {
	B, D         int
	alive        int
	aliveReaders map[string]int
	steps        []CollapsedStep
	perDepthIdx  []int
}

func (s *collapsedSim) produce(node string, readers int) {
	s.alive++
	s.aliveReaders[node] = readers
}

func (s *collapsedSim) consume(node string) {
	if r, ok := s.aliveReaders[node]; ok {
		r--
		if r == 0 {
			delete(s.aliveReaders, node)
			s.alive--
		} else {
			s.aliveReaders[node] = r
		}
	}
}

func (s *collapsedSim) discard(node string) {
	if _, ok := s.aliveReaders[node]; ok {
		delete(s.aliveReaders, node)
		s.alive--
	}
}

func (s *collapsedSim) nextIdx(d int) int {
	for len(s.perDepthIdx) <= d {
		s.perDepthIdx = append(s.perDepthIdx, 0)
	}
	s.perDepthIdx[d]++
	return s.perDepthIdx[d]
}

// child returns the node key of child c (0-based) of node.
func child(node string, c int) string { return node + "." + string(rune('a'+c)) }

// runStage executes the explore-tree stage for node at depth d: it reads the
// parent dataset and produces its own.
func (s *collapsedSim) runStage(node string, d int, parent string) {
	s.consume(parent)
	readers := s.B
	if d == s.D {
		readers = 1 // leaf datasets are read only by their choose
	}
	s.produce(node, readers)
	s.steps = append(s.steps, CollapsedStep{Depth: d, Index: s.nextIdx(d), Maintained: s.alive})
}

// runChoose executes the choose closing the sibling group under parent at
// scope depth d: it consumes the B sibling datasets (leaf outputs or inner
// choose outputs) and produces one selected dataset.
func (s *collapsedSim) runChoose(siblings []string, outNode string, d int, readers int) {
	for _, sib := range siblings {
		s.consume(sib)
		s.discard(sib) // non-selected datasets are discarded; selected is re-produced below
	}
	s.produce(outNode, readers)
	s.steps = append(s.steps, CollapsedStep{Depth: d, IsChoose: true, Maintained: s.alive})
}

func (s *collapsedSim) dfs(parent string, d int) {
	var chooseInputs []string
	for c := 0; c < s.B; c++ {
		node := child(parent, c)
		s.runStage(node, d, parent)
		if d < s.D {
			s.dfs(node, d+1)
			chooseInputs = append(chooseInputs, node+"/choose")
		} else {
			chooseInputs = append(chooseInputs, node)
		}
	}
	readers := 1
	s.runChoose(chooseInputs, parent+"/choose", d, readers)
}

func (s *collapsedSim) bfs() {
	level := []string{"n"}
	for d := 1; d <= s.D; d++ {
		var next []string
		for _, parent := range level {
			for c := 0; c < s.B; c++ {
				node := child(parent, c)
				s.runStage(node, d, parent)
				next = append(next, node)
			}
		}
		level = next
	}
	// Chooses execute bottom-up, one per sibling group.
	for d := s.D; d >= 1; d-- {
		groups := ipow(s.B, d-1)
		parents := s.nodesAtDepth(d - 1)
		for gi := 0; gi < groups; gi++ {
			parent := parents[gi]
			var sibs []string
			for c := 0; c < s.B; c++ {
				if d == s.D {
					sibs = append(sibs, child(parent, c))
				} else {
					sibs = append(sibs, child(parent, c)+"/choose")
				}
			}
			s.runChoose(sibs, parent+"/choose", d, 1)
		}
	}
}

func (s *collapsedSim) nodesAtDepth(d int) []string {
	nodes := []string{"n"}
	for i := 0; i < d; i++ {
		var next []string
		for _, n := range nodes {
			for c := 0; c < s.B; c++ {
				next = append(next, child(n, c))
			}
		}
		nodes = next
	}
	return nodes
}

// PeakMaintained returns the maximum dataset count over the steps.
func PeakMaintained(steps []CollapsedStep) int {
	peak := 0
	for _, st := range steps {
		if st.Maintained > peak {
			peak = st.Maintained
		}
	}
	return peak
}
