package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to replay as a single-segment
// journal: torn tails, bit-flips, and truncated length prefixes must
// never panic — replay either succeeds or returns a typed corruption
// error naming the bad record's segment offset. Seed corpus entries are
// checked in under testdata/fuzz; `make fuzz-short` runs this target.
func FuzzJournalReplay(f *testing.F) {
	// Seeds: a clean two-record journal, its torn and bit-flipped
	// variants, a bad length prefix, and degenerate inputs.
	dir := f.TempDir()
	j := New(dir, Options{NoSync: true})
	if err := j.Open(); err != nil {
		f.Fatal(err)
	}
	for _, kind := range []string{KindAdmitted, KindTerminal} {
		if _, err := j.Append(Record{Kind: kind, Job: "job-0001", Tenant: "t"}); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:5])
	flipped := append([]byte(nil), clean...)
	flipped[len(clean)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})

	f.Fuzz(func(t *testing.T, seg []byte) {
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := Replay(d)
		if err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("replay error %v is not a *CorruptionError", err)
			}
			if ce.Record != int64(len(recs))+1 {
				t.Fatalf("corruption names record %d, prefix has %d", ce.Record, len(recs))
			}
			if ce.Offset < 0 || ce.Offset > int64(len(seg)) {
				t.Fatalf("corruption offset %d outside segment of %d bytes", ce.Offset, len(seg))
			}
		}
		// Opening for append must also cope: it truncates to the valid
		// prefix and accepts a new record.
		jw := New(d, Options{NoSync: true})
		if err := jw.Open(); err != nil {
			t.Fatalf("Open over fuzzed journal: %v", err)
		}
		if _, err := jw.Append(Record{Kind: KindStarted, Job: "job-0002"}); err != nil {
			t.Fatalf("Append after heal: %v", err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(d); err != nil {
			t.Fatalf("replay after heal: %v", err)
		}
	})
}
