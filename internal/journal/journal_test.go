package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"metadataflow/internal/sim"
)

// sampleRecords builds a small deterministic lifecycle sequence.
func sampleRecords(n int) []Record {
	kinds := []string{KindAdmitted, KindStarted, KindRetried, KindCheckpointed, KindTerminal}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Kind:   kinds[i%len(kinds)],
			Job:    "job-0001",
			Tenant: "acme",
			TSec:   sim.VTime(i) * 0.5,
			Spec:   json.RawMessage(`{"name":"t"}`),
		}
	}
	return recs
}

// appendAll opens a journal at dir, appends recs, and closes it.
func appendAll(t *testing.T, dir string, recs []Record, opts Options) {
	t.Helper()
	j := New(dir, opts)
	if err := j.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, rec := range recs {
		seq, err := j.Append(rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != int64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// readDir flattens a journal directory to (filename, bytes) pairs.
func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	out := make(map[string][]byte)
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		out[e.Name()] = b
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	recs := sampleRecords(12)
	appendAll(t, dir, recs, Options{})
	got, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("Replay: %d records, want %d", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.Seq != int64(i+1) || rec.Kind != recs[i].Kind || rec.TSec != recs[i].TSec {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	recs := sampleRecords(20)
	opts := Options{SegmentBytes: 256} // force several rotations
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	appendAll(t, dirA, recs, opts)
	appendAll(t, dirB, recs, opts)
	a, b := readDir(t, dirA), readDir(t, dirB)
	if len(a) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("segment counts differ: %d vs %d", len(a), len(b))
	}
	for name, ab := range a {
		if !bytes.Equal(ab, b[name]) {
			t.Fatalf("segment %s differs between identical runs", name)
		}
	}
}

func TestWriteAllReproducesPrefix(t *testing.T) {
	recs := sampleRecords(15)
	opts := Options{SegmentBytes: 256}
	full := filepath.Join(t.TempDir(), "full")
	appendAll(t, full, recs, opts)
	replayed, err := Replay(full)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for _, k := range []int{0, 1, 7, len(replayed)} {
		dir := filepath.Join(t.TempDir(), "prefix")
		if err := WriteAll(dir, replayed[:k], opts); err != nil {
			t.Fatalf("WriteAll k=%d: %v", k, err)
		}
		got, err := Replay(dir)
		if err != nil {
			t.Fatalf("Replay k=%d: %v", k, err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: %d records", k, len(got))
		}
		// The prefix bytes must match the full journal's leading bytes
		// segment-for-segment (the last prefix segment may be shorter).
		fullSegs, prefSegs := readDir(t, full), readDir(t, dir)
		for name, pb := range prefSegs {
			fb, ok := fullSegs[name]
			if !ok {
				t.Fatalf("k=%d: segment %s absent from full journal", k, name)
			}
			if !bytes.HasPrefix(fb, pb) {
				t.Fatalf("k=%d: segment %s is not a byte prefix of the original", k, name)
			}
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	appendAll(t, dir, sampleRecords(5), Options{})
	recs, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	frame, err := EncodeFrame(Record{Seq: 6, Kind: KindStarted, Job: "job-0002"})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	for _, torn := range []int{1, frameHeaderLen - 1, frameHeaderLen + 3, len(frame) - 1} {
		d := filepath.Join(t.TempDir(), "torn")
		if err := WriteAll(d, recs, Options{}); err != nil {
			t.Fatalf("WriteAll: %v", err)
		}
		if err := AppendRaw(d, frame[:torn]); err != nil {
			t.Fatalf("AppendRaw: %v", err)
		}
		got, err := Replay(d)
		if len(got) != len(recs) {
			t.Fatalf("torn=%d: %d records, want %d", torn, len(got), len(recs))
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("torn=%d: error %v, want *CorruptionError", torn, err)
		}
		if ce.Record != int64(len(recs)+1) {
			t.Fatalf("torn=%d: corruption at record %d, want %d", torn, ce.Record, len(recs)+1)
		}
		// Re-opening truncates the torn tail and continues the sequence.
		j := New(d, Options{})
		if err := j.Open(); err != nil {
			t.Fatalf("torn=%d: Open: %v", torn, err)
		}
		seq, err := j.Append(Record{Kind: KindTerminal, Job: "job-0001"})
		if err != nil || seq != int64(len(recs)+1) {
			t.Fatalf("torn=%d: Append after reopen: seq %d err %v", torn, seq, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if got, err := Replay(d); err != nil || len(got) != len(recs)+1 {
			t.Fatalf("torn=%d: replay after heal: %d records, err %v", torn, len(got), err)
		}
	}
}

func TestReplayBitFlip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	recs := sampleRecords(8)
	appendAll(t, dir, recs, Options{})
	if err := FlipBit(dir, 3, 11); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	got, err := Replay(dir)
	if len(got) != 3 {
		t.Fatalf("prefix %d records, want 3", len(got))
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v, want *CorruptionError", err)
	}
	if ce.Record != 4 {
		t.Fatalf("corruption at record %d, want 4", ce.Record)
	}
	// Open keeps the valid prefix only.
	j := New(dir, Options{})
	if err := j.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, err := Replay(dir); err != nil || len(got) != 3 {
		t.Fatalf("after Open: %d records, err %v", len(got), err)
	}
}

func TestReplayBadLengthPrefix(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	appendAll(t, dir, sampleRecords(2), Options{})
	// A frame claiming an absurd payload length must be rejected, not
	// allocated.
	if err := AppendRaw(dir, []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}); err != nil {
		t.Fatalf("AppendRaw: %v", err)
	}
	got, err := Replay(dir)
	if len(got) != 2 {
		t.Fatalf("%d records, want 2", len(got))
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Reason == "" {
		t.Fatalf("error %v, want *CorruptionError with reason", err)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	got, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing dir: %d records, err %v", len(got), err)
	}
}

func TestCorruptionErrorNamesOffset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	appendAll(t, dir, sampleRecords(4), Options{})
	// The offset must point at the third frame: the sum of the first two
	// frame lengths as written (seqs assigned).
	written, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	want := int64(0)
	for _, rec := range written[:2] {
		fr, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(len(fr))
	}
	if err := FlipBit(dir, 2, 0); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	_, err = Replay(dir)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v", err)
	}
	if ce.Offset != want || ce.Segment != "seg-000001.wal" {
		t.Fatalf("corruption at %s+%d, want seg-000001.wal+%d", ce.Segment, ce.Offset, want)
	}
}
