package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// CorruptionError names the first bad frame found during replay: the
// segment file, the byte offset of the frame within it, the dense index
// of the record that should have lived there, and why it was rejected.
// Everything before the bad frame is a trustworthy prefix; nothing after
// it is.
type CorruptionError struct {
	// Segment is the segment filename (not the full path).
	Segment string
	// Offset is the byte offset of the bad frame within Segment.
	Offset int64
	// Record is the 1-based sequence number the frame should have held.
	Record int64
	// Reason says what failed: torn frame, CRC mismatch, bad length,
	// undecodable payload, or a sequence gap.
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal: corrupt record %d at %s+%d: %s", e.Record, e.Segment, e.Offset, e.Reason)
}

// Replay reads the journal at dir and returns its valid record prefix.
// A missing directory is an empty journal. When the log is damaged the
// prefix up to the damage is returned together with a *CorruptionError
// describing the first bad frame; a torn tail after a crash is reported
// the same way and callers treat it as the expected end of the log.
func Replay(dir string) ([]Record, error) {
	recs, corrupt := replayDir(dir)
	if corrupt != nil {
		return recs, corrupt
	}
	return recs, nil
}

// replayDir scans every segment in order, decoding frames until the
// first damaged one. It returns a typed *CorruptionError (or nil) rather
// than error so callers can't lose the nil-ness to a non-nil interface.
func replayDir(dir string) ([]Record, *CorruptionError) {
	segs, err := segments(dir)
	if err != nil {
		return nil, &CorruptionError{Segment: "", Offset: 0, Record: 1, Reason: err.Error()}
	}
	var recs []Record
	seq := int64(1)
	for _, seg := range segs {
		b, err := os.ReadFile(filepath.Join(dir, seg))
		if err != nil {
			return recs, &CorruptionError{Segment: seg, Offset: 0, Record: seq, Reason: err.Error()}
		}
		off := int64(0)
		for off < int64(len(b)) {
			rec, n, reason := decodeFrame(b[off:], seq)
			if reason != "" {
				return recs, &CorruptionError{Segment: seg, Offset: off, Record: seq, Reason: reason}
			}
			recs = append(recs, rec)
			off += n
			seq++
		}
	}
	return recs, nil
}

// decodeFrame decodes one frame from the head of b, checking framing,
// CRC, payload decodability, and that the record carries the expected
// dense sequence number. Returns the record, the frame's byte length,
// and an empty reason on success.
func decodeFrame(b []byte, wantSeq int64) (Record, int64, string) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, fmt.Sprintf("torn frame header: %d of %d bytes", len(b), frameHeaderLen)
	}
	plen := binary.BigEndian.Uint32(b[0:4])
	if plen == 0 || plen > maxRecordBytes {
		return Record{}, 0, fmt.Sprintf("bad length prefix %d", plen)
	}
	if int64(len(b)-frameHeaderLen) < int64(plen) {
		return Record{}, 0, fmt.Sprintf("torn payload: %d of %d bytes", len(b)-frameHeaderLen, plen)
	}
	payload := b[frameHeaderLen : frameHeaderLen+int64(plen)]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Sprintf("crc mismatch: %08x, want %08x", got, want)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, "undecodable payload: " + err.Error()
	}
	if rec.Seq != wantSeq {
		return Record{}, 0, fmt.Sprintf("sequence gap: seq %d, want %d", rec.Seq, wantSeq)
	}
	return rec, frameHeaderLen + int64(plen), ""
}
