// Package journal is an append-only write-ahead log of job lifecycle
// records. The service appends one record per lifecycle transition
// (admitted, started, checkpointed, retried, terminal) and replays the
// log on restart to rebuild admission state.
//
// On-disk format: a journal is a directory of segment files named
// seg-000001.wal, seg-000002.wal, ... Each segment is a sequence of
// frames with no header or footer:
//
//	frame := u32BE(len(payload)) u32BE(crc32IEEE(payload)) payload
//
// The payload is the record's canonical JSON encoding. Records carry a
// dense sequence number starting at 1, assigned by Append, so replay can
// detect dropped or reordered frames. Encoding is deterministic —
// encoding/json emits struct fields in declaration order and map keys
// sorted — so two runs appending the same record sequence produce
// byte-identical segment files, which the crash-restart oracle exploits
// to reconstruct the exact journal prefix that existed at a crash point.
//
// Rotation is atomic at frame boundaries: a frame is never split across
// segments, and a new segment is created with O_EXCL only after the
// previous one is synced and closed. A crash therefore leaves at most one
// torn frame, at the tail of the newest segment, and replay treats
// everything after the last intact frame as lost.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"metadataflow/internal/sim"
)

// Record kinds, one per job lifecycle transition the service journals.
const (
	KindAdmitted     = "admitted"
	KindStarted      = "started"
	KindCheckpointed = "checkpointed"
	KindRetried      = "retried"
	KindTerminal     = "terminal"
)

// Record is one journaled lifecycle transition. Admitted records carry
// everything needed to re-admit the job verbatim (spec and fault-plan
// bytes, quota reservation, deadline); terminal records carry the full
// outcome — final state, counters the job contributed, and the metrics
// snapshot — so a recovered terminal job is indistinguishable from one
// that retired in-process. Fields irrelevant to a record's kind are
// zero and omitted from the encoding.
type Record struct {
	Seq    int64     `json:"seq"`
	Kind   string    `json:"kind"`
	Job    string    `json:"job"`
	Tenant string    `json:"tenant,omitempty"`
	TSec   sim.VTime `json:"tSec,omitempty"`

	// Admission payload.
	Priority     int             `json:"priority,omitempty"`
	DeadlineSec  sim.VTime       `json:"deadlineSec,omitempty"`
	ReserveBytes sim.Bytes       `json:"reserveBytes,omitempty"`
	SpecHash     string          `json:"specHash,omitempty"`
	Spec         json.RawMessage `json:"spec,omitempty"`
	Faults       json.RawMessage `json:"faults,omitempty"`

	// Started / retried payload.
	Attempt    int       `json:"attempt,omitempty"`
	BackoffSec sim.VTime `json:"backoffSec,omitempty"`

	// Checkpointed / terminal payload.
	Parts            int              `json:"parts,omitempty"`
	State            string           `json:"state,omitempty"`
	Error            string           `json:"error,omitempty"`
	CompletionSec    sim.VTime        `json:"completionSec,omitempty"`
	Retries          int              `json:"retries,omitempty"`
	Sheds            int              `json:"sheds,omitempty"`
	Strikes          int              `json:"strikes,omitempty"`
	DeadlineExceeded bool             `json:"deadlineExceeded,omitempty"`
	Selections       map[string][]int `json:"selections,omitempty"`
	AuditLineage     []string         `json:"auditLineage,omitempty"`
	AuditBooks       []string         `json:"auditBooks,omitempty"`
	Snapshot         json.RawMessage  `json:"snapshot,omitempty"`
}

// Options configures a journal writer.
type Options struct {
	// SegmentBytes rotates to a new segment once appending the next frame
	// would push the current segment past this size. Zero means 256 KiB.
	// A segment always holds at least one frame, so oversized records
	// still land whole.
	SegmentBytes int64 //lint:allow unitsafety -- real on-disk segment size, not simulated bytes
	// NoSync skips the fsync after each append and rotation. Replay
	// tolerates torn tails either way; NoSync trades the durability of
	// the last few records for throughput (used by tests and the
	// crash-restart harness, where "durable" is a directory tree).
	NoSync bool
}

const defaultSegmentBytes = 256 << 10

// frameHeaderLen is the length+CRC prefix preceding every payload.
const frameHeaderLen = 8

// maxRecordBytes bounds a single record payload. Replay rejects frames
// claiming more as corrupt rather than allocating unbounded memory from
// a damaged length prefix.
const maxRecordBytes = 8 << 20

// Journal is an append-only writer over a segment directory. Open before
// appending; Close syncs and releases the current segment. A Journal is
// not safe for concurrent use — the service serialises appends under its
// own admission lock.
type Journal struct {
	dir     string
	opts    Options
	f       *os.File
	seg     int
	segSize int64
	nextSeq int64
	open    bool
}

// New prepares a journal writer rooted at dir. No I/O happens until Open.
func New(dir string, opts Options) *Journal {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	return &Journal{dir: dir, opts: opts}
}

// Dir returns the journal's segment directory.
func (j *Journal) Dir() string { return j.dir }

// segmentName formats the nth segment's filename (1-based).
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.wal", n) }

// segments lists dir's segment files in ascending order. A missing
// directory is an empty journal.
func segments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.wal", &n); err == nil {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// Open readies the journal for appends. An existing directory is scanned
// for its valid record prefix: the tail segment is truncated after the
// last intact frame — dropping torn tails and anything after a corrupt
// frame, which replay already refuses to trust — and appends continue
// the dense sequence from there. A fresh directory starts at seq 1.
func (j *Journal) Open() error {
	if j.open {
		return fmt.Errorf("journal: already open")
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return err
	}
	recs, corrupt := replayDir(j.dir)
	j.nextSeq = 1
	if n := len(recs); n > 0 {
		j.nextSeq = recs[n-1].Seq + 1
	}
	segs, err := segments(j.dir)
	if err != nil {
		return err
	}
	if corrupt != nil {
		// Truncate the corrupt segment at the bad frame and drop every
		// later segment: the valid prefix is the journal.
		if err := os.Truncate(filepath.Join(j.dir, corrupt.Segment), corrupt.Offset); err != nil {
			return err
		}
		keep := sort.SearchStrings(segs, corrupt.Segment)
		for _, s := range segs[keep+1:] {
			if err := os.Remove(filepath.Join(j.dir, s)); err != nil {
				return err
			}
		}
		segs = segs[:keep+1]
	}
	if len(segs) == 0 {
		j.seg = 1
		f, err := os.OpenFile(filepath.Join(j.dir, segmentName(1)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		j.f, j.segSize = f, 0
	} else {
		last := segs[len(segs)-1]
		fmt.Sscanf(last, "seg-%06d.wal", &j.seg)
		f, err := os.OpenFile(filepath.Join(j.dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		j.f, j.segSize = f, st.Size()
	}
	j.open = true
	return nil
}

// Append assigns rec the next dense sequence number, frames it, and
// writes it to the current segment, rotating first if the frame would
// overflow it. Returns the assigned sequence number.
func (j *Journal) Append(rec Record) (int64, error) {
	if !j.open {
		return 0, fmt.Errorf("journal: append on closed journal")
	}
	rec.Seq = j.nextSeq
	frame, err := EncodeFrame(rec)
	if err != nil {
		return 0, err
	}
	if j.segSize > 0 && j.segSize+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotate(); err != nil {
			return 0, err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return 0, err
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return 0, err
		}
	}
	j.segSize += int64(len(frame))
	j.nextSeq++
	return rec.Seq, nil
}

// rotate seals the current segment and opens the next one. The old
// segment is synced before the new one is created, so a crash between
// the two leaves a clean frame boundary.
func (j *Journal) rotate() error {
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	j.seg++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.f, j.segSize = f, 0
	return nil
}

// Close syncs and closes the current segment. The journal can be
// re-opened afterwards; appends continue the sequence.
func (j *Journal) Close() error {
	if !j.open {
		return nil
	}
	j.open = false
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return err
		}
	}
	return j.f.Close()
}

// EncodeFrame returns the exact on-disk frame for rec: length prefix,
// CRC, and canonical JSON payload. Exposed so the crash-restart harness
// can construct torn-write tails byte-for-byte.
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// WriteAll writes a fresh journal at dir containing exactly recs with
// their sequence numbers preserved, using the same framing and rotation
// as a live writer. Because encoding is deterministic, WriteAll over a
// replayed prefix reproduces the original segment bytes — the
// crash-restart harness uses this to materialise the journal as of any
// record boundary. dir must not already contain segments.
func WriteAll(dir string, recs []Record, opts Options) error {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 {
		return fmt.Errorf("journal: WriteAll into non-empty journal %s", dir)
	}
	j := New(dir, opts)
	if err := j.Open(); err != nil {
		return err
	}
	for _, rec := range recs {
		want := rec.Seq
		got, err := j.Append(rec)
		if err != nil {
			j.Close()
			return err
		}
		if got != want {
			j.Close()
			return fmt.Errorf("journal: WriteAll seq %d, want %d (records must be a dense prefix)", got, want)
		}
	}
	return j.Close()
}
