package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file holds the durability-fault injectors the crash-restart
// oracle uses to decorate a reconstructed journal prefix: torn-write
// tails (AppendRaw) and bit-flip corruption (FlipBit). They write real
// damage to real files — replay and Open must survive whatever they
// produce.

// AppendRaw appends raw bytes to the newest segment, creating the first
// segment if the journal is empty. The oracle passes a prefix of the
// next record's encoded frame to model a write torn mid-record by a
// crash.
func AppendRaw(dir string, b []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	name := segmentName(1)
	if len(segs) > 0 {
		name = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FlipBit flips one bit inside the payload of the idx-th record
// (0-based) counted across the journal's segments. bit is taken modulo
// the payload's bit width, so any non-negative bit index lands inside
// the record. Replay afterwards must stop at that record with a CRC
// mismatch.
func FlipBit(dir string, idx int64, bit int) error {
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	if bit < 0 {
		return fmt.Errorf("journal: FlipBit bit %d", bit)
	}
	seen := int64(0)
	for _, seg := range segs {
		path := filepath.Join(dir, seg)
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		off := int64(0)
		for off+frameHeaderLen <= int64(len(b)) {
			_, n, reason := decodeFrame(b[off:], seen+1)
			if reason != "" {
				return fmt.Errorf("journal: FlipBit hit damage before record %d: %s", idx, reason)
			}
			if seen == idx {
				plen := n - frameHeaderLen
				k := int64(bit) % (plen * 8)
				b[off+frameHeaderLen+k/8] ^= 1 << (k % 8)
				return os.WriteFile(path, b, 0o644)
			}
			off += n
			seen++
		}
	}
	return fmt.Errorf("journal: FlipBit record %d out of range (%d records)", idx, seen)
}
