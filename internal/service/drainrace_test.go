package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDrainRacesSubmissionsAndWatchers hammers a draining server the way a
// SIGTERM lands in production: Drain is invoked while goroutines are still
// POSTing jobs and others hold ?follow=1 watch streams open. Under
// `go test -race` this is the concurrency gate for the shutdown path; the
// functional assertions are that every submission either runs to terminal
// or is rejected with the draining status (503), never lost, and that
// every follower's stream terminates with well-formed NDJSON.
func TestDrainRacesSubmissionsAndWatchers(t *testing.T) {
	s := New(Config{Workers: 2, MemPerWorker: 4 << 20, TenantQuota: 1 << 40,
		QueueCap: 256, MaxActive: 4, DrainStepBudget: 1 << 20})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close()

	const submitters, jobsEach, followers = 4, 6, 3
	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup

	// Follower goroutines hold streaming watch connections across the
	// drain; each line must decode and the stream must end once idle.
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/watch?follow=1")
			if err != nil {
				t.Errorf("watch follow: %v", err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var probe map[string]any
				if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
					t.Errorf("watch stream line %q: %v", sc.Text(), err)
					return
				}
			}
		}()
	}

	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for k := 0; k < jobsEach; k++ {
				body := fmt.Sprintf(`{"tenant": "t%d", "spec": %s}`, tenant, okSpec)
				resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(1)
				case http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					t.Errorf("submit status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}

	// Fire the drain mid-burst, exactly like the SIGTERM handler does.
	snap := s.Drain()
	wg.Wait()

	// Drain returned while submitters were still racing, so late
	// accounting lives in a final snapshot, not the drain-time one.
	if snap == nil {
		t.Fatal("drain snapshot nil")
	}
	s.WaitIdle()
	m := s.Metrics()
	done, _ := m.CounterValue("service.jobs_done")
	ckpt, _ := m.CounterValue("service.jobs_checkpointed")
	drainRej, _ := m.CounterValue("service.jobs_drain_rejected")
	if done+ckpt != accepted.Load() {
		t.Errorf("accepted %d jobs but %d done + %d checkpointed", accepted.Load(), done, ckpt)
	}
	if drainRej != rejected.Load() {
		t.Errorf("client saw %d drain rejections, server counted %d", rejected.Load(), drainRej)
	}
	if accepted.Load()+rejected.Load() != submitters*jobsEach {
		t.Errorf("lost submissions: %d accepted + %d rejected of %d",
			accepted.Load(), rejected.Load(), submitters*jobsEach)
	}
}
