package service

import (
	"bytes"
	"sort"

	"metadataflow/internal/obs"
)

// Metrics returns the service-level metrics snapshot: the merge of every
// terminal job's end-of-run snapshot (in job submission order, which makes
// the merge input — and therefore the output bytes — independent of the
// order jobs happened to finish in) plus the service's own admission and
// lifecycle counters and per-tenant quota gauges.
func (s *Server) Metrics() *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Server) metricsLocked() *obs.Snapshot {
	var snaps []*obs.Snapshot
	for _, id := range s.order {
		if j := s.jobs[id]; j.snapshot != nil {
			snaps = append(snaps, j.snapshot)
		}
	}
	m := obs.MergeSnapshots(snaps)

	m.AddCounter("service.jobs_submitted", s.ctr.submitted)
	m.AddCounter("service.jobs_shed", s.ctr.shed)
	m.AddCounter("service.jobs_quota_rejected", s.ctr.quotaRejected)
	m.AddCounter("service.jobs_vet_rejected", s.ctr.vetRejected)
	m.AddCounter("service.jobs_quarantine_rejected", s.ctr.quarantineRejected)
	m.AddCounter("service.jobs_drain_rejected", s.ctr.drainRejected)
	m.AddCounter("service.jobs_done", s.ctr.done)
	m.AddCounter("service.jobs_failed", s.ctr.failed)
	m.AddCounter("service.jobs_canceled", s.ctr.canceled)
	m.AddCounter("service.jobs_checkpointed", s.ctr.checkpointed)
	m.AddCounter("service.jobs_retried", s.ctr.retried)
	m.AddCounter("service.jobs_deadline_exceeded", s.ctr.deadlineExceeded)
	m.AddCounter("service.tenants_quarantined", s.ctr.quarantines)
	m.AddCounter("service.queue_depth", int64(s.queue.Len()))
	m.AddCounter("service.active_jobs", int64(len(s.active)))

	// Restart-recovery accounting, present only on durable servers so a
	// memory-only server's metrics bytes are unchanged by this feature.
	// Comparisons across a crash-restart boundary must strip the
	// service.recovery.* prefix (path-dependent by construction).
	if s.cfg.StateDir != "" {
		m.AddCounter("service.recovery.jobs_recovered", s.rctr.jobsRecovered)
		m.AddCounter("service.recovery.terminal_replayed", s.rctr.terminalReplayed)
		m.AddCounter("service.recovery.jobs_requeued", s.rctr.requeued)
		m.AddCounter("service.recovery.dedup_hits", s.rctr.dedupHits)
		m.AddCounter("service.recovery.journal_records", s.rctr.journalRecords)
		m.AddCounter("service.recovery.journal_truncated", s.rctr.journalTruncated)
		m.AddCounter("service.recovery.journal_append_errors", s.rctr.appendErrors)
	}

	// Per-tenant quota accounting; Tenants() is sorted, so emission order
	// is deterministic.
	for _, tenant := range s.quotas.Tenants() {
		m.AddGauge("service.tenant_peak_reserved_bytes."+tenant, float64(s.quotas.Peak(tenant)))
		m.AddGauge("service.tenant_reserved_bytes."+tenant, float64(s.quotas.Reserved(tenant)))
	}

	// Per-tenant lifecycle breakdown: every tenant that ever touched the
	// admission path gets the full counter set (zeros included), emitted in
	// sorted tenant order so the document bytes stay canonical.
	tenants := make([]string, 0, len(s.tctr))
	for t := range s.tctr {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		tc := s.tctr[t]
		p := "service.tenant." + t + "."
		m.AddCounter(p+"jobs_submitted", tc.submitted)
		m.AddCounter(p+"jobs_done", tc.done)
		m.AddCounter(p+"jobs_failed", tc.failed)
		m.AddCounter(p+"jobs_canceled", tc.canceled)
		m.AddCounter(p+"jobs_checkpointed", tc.checkpointed)
		m.AddCounter(p+"jobs_retried", tc.retried)
		m.AddCounter(p+"jobs_shed", tc.shed)
		m.AddCounter(p+"jobs_quota_rejected", tc.quotaRejected)
		m.AddCounter(p+"jobs_quarantine_rejected", tc.quarantineRejected)
	}

	m.Normalize()
	return m
}

// MetricsJSON serializes the aggregated snapshot. Same submissions in, same
// bytes out — the determinism tests compare this output directly.
func (s *Server) MetricsJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Metrics().WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
