// Package service is the multi-tenant MDF job service: a long-lived daemon
// that admits declarative job specs (internal/spec), runs many simulated
// MDF jobs concurrently under per-tenant memory quotas, and degrades
// gracefully under overload, repeated failure and shutdown.
//
// The robustness machinery is deliberately clock-free. The only goroutine
// that touches engine state is the step loop, every queue decision is made
// by the deterministic cross-job scheduler, deadlines are virtual-time
// budgets checked at scheduling boundaries, priority aging is counted in
// pop decisions and quarantine cooldown in job completions — so a fixed
// submission sequence always produces the same admissions, the same retry
// and quarantine decisions, and byte-identical aggregated metrics, which is
// what the service tests pin.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/journal"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/plan"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

// Config parameterises the service. Zero fields take defaults.
type Config struct {
	// Workers and MemPerWorker size the per-job simulated cluster. Every
	// job runs on its own cluster instance so one tenant's fault plan can
	// never degrade another tenant's nodes; contention is modelled by
	// MaxActive and the tenant quotas instead.
	Workers      int
	MemPerWorker sim.Bytes
	// TenantQuota caps the summed simulated memory footprint
	// (Workers × MemPerWorker per job) of a tenant's queued and running
	// jobs. Default: room for two jobs.
	TenantQuota sim.Bytes
	// QueueCap bounds the admission queue; submissions beyond it are shed
	// with ErrQueueFull (HTTP 429).
	QueueCap int
	// MaxActive bounds concurrently running jobs.
	MaxActive int
	// AgeEvery is the cross-job priority-aging period in pop decisions
	// (scheduler.CrossJobQueue).
	AgeEvery int
	// DeadlineSec is the default per-job virtual deadline in simulated
	// seconds; 0 means no deadline. A request may override it.
	DeadlineSec float64
	// Retry bounds service-level re-admission of jobs that failed with an
	// operator panic; zero fields take faults defaults.
	Retry faults.RetryPolicy
	// QuarantineStrikes is the number of panic-failed attempts after which
	// a tenant is quarantined (circuit broken).
	QuarantineStrikes int
	// QuarantineCooldownJobs is how many further job completions (any
	// tenant) a quarantine lasts; measured in completions, not seconds, so
	// it is deterministic.
	QuarantineCooldownJobs int
	// DrainStepBudget is how many more engine steps each active job may
	// take once draining starts before it is canceled and checkpointed.
	DrainStepBudget int
	// WatchBucketSec is the virtual-time bucket width of the telemetry
	// series behind /watch and /series; 0 takes obs.DefaultBucketSec.
	WatchBucketSec float64
	// DisableVet turns off plan vetting at admission. By default every
	// submitted spec runs the internal/plan rule battery — against this
	// config's cluster shape and tenant quota — and findings reject the
	// submission with a *VetError (HTTP 400) before any quota is reserved.
	DisableVet bool
	// StateDir, when non-empty, makes the service crash-consistent: a
	// write-ahead journal of job lifecycle records under StateDir/journal
	// and a content-addressed durable checkpoint store under
	// StateDir/ckpt. Open replays the journal on boot — re-reserving
	// tenant quotas, restoring terminal jobs verbatim, and re-admitting
	// incomplete jobs idempotently (recovery.go). New ignores this field;
	// use Open.
	StateDir string
	// JournalNoSync skips the fsync after each journal append. The
	// crash-restart harness sets it because its crashes are materialised
	// from replayed records, not real process kills; production keeps the
	// default (sync every record).
	JournalNoSync bool
	// BaseContext is the root from which per-job contexts are derived;
	// nil defaults to context.Background(). Job lifetimes are deliberately
	// NOT parented on the process signal context: drain grants each active
	// job DrainStepBudget more steps before cancelling, and a signal-
	// parented root would cancel every job instantly at shutdown and break
	// that budget. withDefaults is the single sanctioned context root in
	// library code (see the ctxflow allowlist and ARCHITECTURE.md).
	BaseContext context.Context
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MemPerWorker <= 0 {
		c.MemPerWorker = 256 << 20
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 2 * sim.Bytes(c.Workers) * c.MemPerWorker
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 2
	}
	if c.AgeEvery == 0 {
		c.AgeEvery = 4
	}
	c.Retry = c.Retry.WithDefaults()
	if c.QuarantineStrikes <= 0 {
		c.QuarantineStrikes = 3
	}
	if c.QuarantineCooldownJobs <= 0 {
		c.QuarantineCooldownJobs = 8
	}
	if c.DrainStepBudget <= 0 {
		c.DrainStepBudget = 4
	}
	if c.WatchBucketSec <= 0 {
		c.WatchBucketSec = obs.DefaultBucketSec
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	return c
}

// JobRequest is one job submission.
type JobRequest struct {
	// Tenant names the submitting tenant; required.
	Tenant string `json:"tenant"`
	// Priority orders admission; smaller is more urgent.
	Priority int `json:"priority"`
	// DeadlineSec overrides the service's default virtual deadline;
	// negative explicitly disables it.
	DeadlineSec float64 `json:"deadlineSec,omitempty"`
	// Spec is the MDF job document (internal/spec schema).
	Spec json.RawMessage `json:"spec"`
	// Faults is an optional deterministic fault plan injected into the
	// job's private cluster (internal/faults schema).
	Faults json.RawMessage `json:"faults,omitempty"`
}

// Job states.
const (
	StateQueued       = "queued"
	StateRunning      = "running"
	StateDone         = "done"
	StateFailed       = "failed"
	StateCanceled     = "canceled"
	StateCheckpointed = "checkpointed"
)

// Sentinel errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull sheds a submission when the admission queue is full.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("service: draining, not admitting jobs")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal rejects canceling a job that already finished.
	ErrTerminal = errors.New("service: job already terminal")
)

// QuarantineError rejects a submission from a quarantined tenant.
type QuarantineError struct {
	// Tenant is the quarantined tenant; CooldownJobs is how many job
	// completions remain until the quarantine lifts.
	Tenant       string
	CooldownJobs int
}

// Error implements the error interface.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("service: tenant %q quarantined for %d more job completions", e.Tenant, e.CooldownJobs)
}

// VetError rejects a submission whose spec failed plan vetting (HTTP 400
// with the findings as structured diagnostics). The job was never admitted
// and no quota was reserved.
type VetError struct {
	// Findings are the surviving plan-verifier diagnostics.
	Findings []plan.Finding
}

// Error implements the error interface.
func (e *VetError) Error() string {
	msg := fmt.Sprintf("service: spec rejected by plan vetting: %d finding(s)", len(e.Findings))
	if len(e.Findings) > 0 {
		msg += ": " + e.Findings[0].String()
	}
	return msg
}

// RequestError marks a malformed submission (HTTP 400).
type RequestError struct{ Err error }

// Error implements the error interface.
func (e *RequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause.
func (e *RequestError) Unwrap() error { return e.Err }

// Cancellation causes threaded through engine.Options.Context so the step
// loop can tell why a run stopped.
var (
	errDeadline     = errors.New("virtual deadline exceeded")
	errDrainCancel  = errors.New("canceled by drain")
	errClientCancel = errors.New("canceled by client")
)

// job is the service-side record of one submission.
type job struct {
	id       string
	tenant   string
	priority int
	deadline sim.VTime // 0 = none
	spec     *spec.Spec
	fplan    *faults.Plan
	reserve  sim.Bytes

	state    string
	attempts int
	backoff  float64 // accumulated virtual retry backoff, seconds
	err      error

	// Durability state, populated only on servers with a StateDir.
	// chains maps compiled-operator IDs to spec chain-prefix hashes (the
	// checkpoint-store keys); specHash is the spec's content hash, the
	// restart dedup key. retries, sheds, strikes and deadlineHit
	// accumulate the per-job counter deltas the terminal journal record
	// carries, so a replayed terminal job reconstructs the service
	// counters exactly.
	chains      []spec.Hash
	specHash    string
	retries     int
	sheds       int
	strikes     int
	deadlineHit bool

	// Running state, owned by the step loop. rec is the job's private
	// telemetry recorder, installed as the run's probe on every attempt.
	run        *engine.Run
	rec        *obs.Recorder
	cancel     context.CancelCauseFunc
	admitSeq   int
	drainSteps int

	// progress is the job's last engine.Progress view. Only the step loop
	// writes it (under s.mu, after each step and at retirement), so status
	// handlers read it without ever touching the run.
	progress engine.Progress

	// Terminal state.
	end          sim.VTime
	series       *obs.SeriesDoc
	snapshot     *obs.Snapshot
	checkpointed int
	auditLineage []string
	auditBooks   []string
	selections   map[string][]int
}

func (j *job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled, StateCheckpointed:
		return true
	}
	return false
}

// JobStatus is the externally visible job state (GET /jobs/{id}).
type JobStatus struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	State       string  `json:"state"`
	Priority    int     `json:"priority"`
	Attempts    int     `json:"attempts"`
	DeadlineSec float64 `json:"deadlineSec,omitempty"`
	// BackoffSec is the summed virtual retry backoff charged to the job.
	BackoffSec float64 `json:"backoffSec,omitempty"`
	Error      string  `json:"error,omitempty"`
	// CompletionSec is the job's virtual makespan once terminal.
	CompletionSec float64 `json:"completionSec,omitempty"`
	// CheckpointedParts counts partitions checkpointed by a drain.
	CheckpointedParts int `json:"checkpointedParts,omitempty"`
	// Audit explains the run: choose selections and the engine's
	// end-of-run lineage/accounting self-audit (empty = books close).
	Selections map[string][]int `json:"selections,omitempty"`
	Audit      []string         `json:"audit,omitempty"`
}

// counters aggregates service-level events for /metrics.
type counters struct {
	submitted, shed, quotaRejected, quarantineRejected, drainRejected int64
	vetRejected                                                       int64
	done, failed, canceled, checkpointed, retried, deadlineExceeded   int64
	quarantines                                                       int64
}

// Server is the MDF job service. All state is guarded by mu; the step loop
// is the only goroutine that advances engine runs.
type Server struct {
	cfg Config

	// done is closed by the step loop on exit; Close joins on it so no
	// goroutine outlives the server.
	done chan struct{}

	mu      sync.Mutex
	cond    *sync.Cond
	queue   *scheduler.CrossJobQueue
	quotas  *memorymgr.TenantQuotas
	jobs    map[string]*job
	order   []string // job IDs in submission order (metrics merge order)
	active  []*job
	strikes map[string]int
	// quarantined maps a tenant to the number of job completions left in
	// its cooldown.
	quarantined map[string]int
	seq         int
	admitSeq    int
	draining    bool
	stopped     bool
	ctr         counters

	// Telemetry: rec is the service-level recorder (quota series via
	// SetProbe, admission-event series on the shared logical clock), tctr
	// the per-tenant lifecycle counters surfaced on /metrics, watch the
	// append-only event log behind GET /watch.
	rec      *obs.Recorder
	tctr     map[string]*tenantCounters
	watch    []WatchEvent
	watchSeq int
	eventSeq int64

	// Durability: jnl is the write-ahead lifecycle journal and ckpts the
	// content-addressed checkpoint store, both nil on memory-only
	// servers. recovered maps tenant+specHash to the FIFO of recovered
	// job IDs that Submit dedups against after a restart; rctr counts
	// recovery events for /metrics (recovery.go).
	jnl       *journal.Journal
	ckpts     *ckptstore.Store
	recovered map[string][]string
	rctr      recoveryCounters
}

// New starts a memory-only server and its step loop. Config.StateDir is
// ignored; crash-consistent servers are built with Open.
func New(cfg Config) *Server {
	cfg.StateDir = ""
	s := newServer(cfg)
	go s.loop()
	return s
}

// newServer builds a server without starting the step loop; tests use it to
// stage state (e.g. drain mode) before any stepping can happen.
func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		done:        make(chan struct{}),
		queue:       scheduler.NewCrossJobQueue(cfg.QueueCap, cfg.AgeEvery),
		quotas:      memorymgr.NewTenantQuotas(cfg.TenantQuota),
		jobs:        make(map[string]*job),
		strikes:     make(map[string]int),
		quarantined: make(map[string]int),
		rec:         obs.NewRecorder(),
		tctr:        make(map[string]*tenantCounters),
		recovered:   make(map[string][]string),
	}
	s.cond = sync.NewCond(&s.mu)
	// Quota accounting shares the service recorder, so /series carries
	// per-tenant reserved/headroom gauges next to the admission series.
	s.quotas.SetProbe(s.rec)
	return s
}

// Submit validates and admits one job request. The spec and fault plan are
// compiled up front so malformed submissions fail fast with a
// *RequestError; admission rejections return ErrQueueFull, ErrDraining,
// *memorymgr.QuotaError or *QuarantineError.
func (s *Server) Submit(req JobRequest) (JobStatus, error) {
	if req.Tenant == "" {
		return JobStatus{}, &RequestError{Err: errors.New("service: tenant is required")}
	}
	if len(req.Spec) == 0 {
		return JobStatus{}, &RequestError{Err: errors.New("service: spec is required")}
	}
	sp, err := spec.Parse(req.Spec)
	if err != nil {
		return JobStatus{}, &RequestError{Err: err}
	}
	// Vet the plan against this service's cluster shape and quota before
	// taking the lock or reserving anything: a spec the verifier condemns
	// (degenerate, dead, or infeasible under this configuration) is rejected
	// up front with structured diagnostics, costing the service nothing.
	if !s.cfg.DisableVet {
		res, verr := plan.Verify(sp, plan.Config{
			Workers:      s.cfg.Workers,
			MemPerWorker: s.cfg.MemPerWorker,
			TenantQuota:  s.cfg.TenantQuota,
		})
		if verr != nil {
			return JobStatus{}, &RequestError{Err: verr}
		}
		if len(res.Findings) > 0 {
			s.mu.Lock()
			s.ctr.vetRejected++
			s.mu.Unlock()
			return JobStatus{}, &VetError{Findings: res.Findings}
		}
	}
	var fplan *faults.Plan
	if len(req.Faults) > 0 {
		fplan, err = faults.Parse(req.Faults)
		if err != nil {
			return JobStatus{}, &RequestError{Err: err}
		}
	}
	// The spec content hash is the durability identity: the journal dedup
	// key and, through OpChains, the checkpoint-store key space. Memory-only
	// servers skip the hash entirely.
	var hr *spec.HashReport
	if s.cfg.StateDir != "" {
		hr = sp.HashReport()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		s.ctr.drainRejected++
		return JobStatus{}, ErrDraining
	}
	if hr != nil {
		// Idempotent re-admission after a restart: a submission matching a
		// journal-recovered job (same tenant, same spec content) is the
		// same job, not a new one — return its current status.
		if j := s.takeRecoveredLocked(req.Tenant, hr.Spec.String()); j != nil {
			return s.statusLocked(j), nil
		}
	}
	if fplan != nil {
		if err := fplan.ValidateFor(s.cfg.Workers); err != nil {
			return JobStatus{}, &RequestError{Err: err}
		}
	}
	if left, ok := s.quarantined[req.Tenant]; ok {
		s.ctr.quarantineRejected++
		s.tenantLocked(req.Tenant).quarantineRejected++
		s.eventLocked("quarantine_rejected", req.Tenant)
		return JobStatus{}, &QuarantineError{Tenant: req.Tenant, CooldownJobs: left}
	}
	reserve := sim.Bytes(s.cfg.Workers) * s.cfg.MemPerWorker
	if err := s.quotas.Reserve(req.Tenant, reserve); err != nil {
		s.ctr.quotaRejected++
		s.tenantLocked(req.Tenant).quotaRejected++
		s.eventLocked("quota_rejected", req.Tenant)
		return JobStatus{}, err
	}
	deadline := sim.VTime(s.cfg.DeadlineSec)
	if req.DeadlineSec != 0 {
		deadline = sim.VTime(req.DeadlineSec)
	}
	if deadline < 0 {
		deadline = 0
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("job-%04d", s.seq),
		tenant:   req.Tenant,
		priority: req.Priority,
		deadline: deadline,
		spec:     sp,
		fplan:    fplan,
		reserve:  reserve,
		state:    StateQueued,
	}
	if hr != nil {
		j.chains = hr.OpChains
		j.specHash = hr.Spec.String()
	}
	if !s.queue.Push(j.id, j.tenant, j.priority) {
		s.quotas.Release(j.tenant, reserve)
		s.ctr.shed++
		s.tenantLocked(j.tenant).shed++
		s.eventLocked("shed", j.tenant)
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.ctr.submitted++
	s.tenantLocked(j.tenant).submitted++
	s.eventLocked("submitted", j.tenant)
	s.watchLifecycleLocked(j, 0)
	// The admitted record carries everything needed to re-admit the job
	// verbatim on restart: the raw spec and fault-plan bytes, the quota
	// reservation, and the dedup hash.
	s.journalLocked(journal.Record{
		Kind: journal.KindAdmitted, Job: j.id, Tenant: j.tenant,
		Priority: j.priority, DeadlineSec: j.deadline,
		ReserveBytes: j.reserve, SpecHash: j.specHash,
		Spec: req.Spec, Faults: req.Faults,
	})
	s.cond.Broadcast()
	return s.statusLocked(j), nil
}

// Job returns the status of one job.
func (s *Server) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return s.statusLocked(j), nil
}

// Cancel withdraws a queued job or cancels a running one. Terminal jobs
// return ErrTerminal.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.queue.Remove(j.id)
		s.finalizeQueuedLocked(j, StateCanceled, errClientCancel)
		s.cond.Broadcast()
		return nil
	case StateRunning:
		// The run observes the cause at its next scheduling boundary.
		j.cancel(errClientCancel)
		s.cond.Broadcast()
		return nil
	}
	return ErrTerminal
}

// Health is the /healthz document.
type Health struct {
	State   string `json:"state"` // "ok" or "draining"
	Queued  int    `json:"queued"`
	Active  int    `json:"active"`
	Jobs    int    `json:"jobs"`
	Drained bool   `json:"drained"`
}

// Healthz reports liveness and load.
func (s *Server) Healthz() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{State: "ok", Queued: s.queue.Len(), Active: len(s.active), Jobs: len(s.jobs)}
	if s.draining || s.stopped {
		h.State = "draining"
		h.Drained = !s.hasWorkLocked()
	}
	return h
}

// WaitIdle blocks until no job is queued or running. Tests use it to reach
// a deterministic quiescent point without draining.
func (s *Server) WaitIdle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.hasWorkLocked() {
		s.cond.Wait()
	}
}

// Drain gracefully shuts admission down: new submissions are rejected with
// ErrDraining, queued jobs still run, and every active job gets
// DrainStepBudget more engine steps before it is canceled and its live
// datasets checkpointed. Drain returns the final aggregated metrics
// snapshot once every admitted job is terminal. Safe to call more than
// once.
func (s *Server) Drain() *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.cond.Broadcast()
	for s.hasWorkLocked() {
		s.cond.Wait()
	}
	return s.metricsLocked()
}

// Close drains the server, stops the step loop, joins it, and releases
// the durable state handles.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	for s.hasWorkLocked() {
		s.cond.Wait()
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jnl != nil {
		_ = s.jnl.Close() //lint:allow droppederr -- best-effort teardown on shutdown
		s.jnl = nil
	}
	if s.ckpts != nil {
		_ = s.ckpts.Close() //lint:allow droppederr -- best-effort teardown on shutdown
		s.ckpts = nil
	}
}

func (s *Server) hasWorkLocked() bool {
	return s.queue.Len() > 0 || len(s.active) > 0
}

// loop is the step loop: the single goroutine that admits queued jobs and
// advances engine runs, one deterministic step at a time. Scheduling
// decisions happen under s.mu, but the engine Step itself runs with the
// lock released: Step executes real operator compute, and holding the
// service lock across it would block the whole HTTP surface (submit,
// status, health) for the duration of a stage. The run handle is owned
// exclusively by this goroutine while the job is active — nothing outside
// the step path touches j.run, and cancellation is delivered through the
// job's context, which is safe to fire concurrently — so the unlocked
// window introduces no races.
func (s *Server) loop() {
	defer close(s.done)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.stopped && !s.hasWorkLocked() {
			s.cond.Wait()
		}
		if s.stopped {
			return
		}
		s.admitLocked()
		if j := s.nextStepLocked(); j != nil {
			run := j.run
			s.mu.Unlock()
			alive := run.Step()
			s.mu.Lock()
			if !alive {
				s.removeActiveLocked(j)
				s.finalizeRunLocked(j)
			} else {
				// Refresh the job's progress view at the step boundary;
				// handlers read this stored copy, never the run.
				j.progress = run.Progress()
			}
		}
		s.cond.Broadcast()
	}
}

// admitLocked starts queued jobs while runner slots are free.
func (s *Server) admitLocked() {
	for len(s.active) < s.cfg.MaxActive && s.queue.Len() > 0 {
		t, ok := s.queue.Pop()
		if !ok {
			return
		}
		j := s.jobs[t.ID]
		if _, bad := s.quarantined[j.tenant]; bad {
			// The tenant was quarantined after this job queued.
			s.finalizeQueuedLocked(j, StateFailed, &QuarantineError{Tenant: j.tenant, CooldownJobs: s.quarantined[j.tenant]})
			continue
		}
		if err := s.startLocked(j); err != nil {
			s.finalizeQueuedLocked(j, StateFailed, err)
		}
	}
}

// startLocked builds a fresh per-job cluster and run for the job. Retries
// rebuild from the spec, so a deterministic fault plan replays identically
// on every attempt.
func (s *Server) startLocked(j *job) error {
	g, err := j.spec.Compile()
	if err != nil {
		return err
	}
	plan, err := graph.BuildPlan(g)
	if err != nil {
		return err
	}
	clCfg := cluster.DefaultConfig()
	clCfg.Workers = s.cfg.Workers
	clCfg.MemPerWorker = s.cfg.MemPerWorker
	cl, err := cluster.New(clCfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancelCause(s.cfg.BaseContext)
	// A fresh recorder per attempt: a retry replays the fault plan from
	// scratch, so its telemetry must not accumulate onto the failed
	// attempt's series.
	rec := obs.NewRecorder()
	run, err := engine.NewRun(plan, engine.Options{
		Cluster: cl,
		Policy:  memorymgr.AMM,
		Faults:  j.fplan,
		Context: ctx,
		Probe:   rec,
		// Durable servers mirror every checkpoint into the shared store,
		// keyed by spec chain hashes, so restarts and same-spec jobs
		// resume from verified on-disk copies.
		Checkpoint: s.ckpts != nil,
		Ckpts:      s.ckpts,
		CkptChains: j.chains,
	}, 0)
	if err != nil {
		cancel(nil)
		return err
	}
	j.run = run
	j.rec = rec
	j.cancel = cancel
	j.attempts++
	j.drainSteps = 0
	j.state = StateRunning
	j.progress = run.Progress()
	s.admitSeq++
	j.admitSeq = s.admitSeq
	s.active = append(s.active, j)
	s.watchLifecycleLocked(j, run.Now().Seconds())
	s.journalLocked(journal.Record{
		Kind: journal.KindStarted, Job: j.id, Tenant: j.tenant,
		Attempt: j.attempts, TSec: run.Now(),
	})
	return nil
}

// nextStepLocked picks the active run that is earliest in virtual time and
// applies deadline and drain-budget cancellation at the scheduling
// boundary. The caller (the step loop) performs the actual engine Step
// with s.mu released and finalizes the run when it stops.
func (s *Server) nextStepLocked() *job {
	if len(s.active) == 0 {
		return nil
	}
	idx := 0
	for i := 1; i < len(s.active); i++ {
		a, b := s.active[i], s.active[idx]
		if a.run.Now() < b.run.Now() || (a.run.Now() == b.run.Now() && a.admitSeq < b.admitSeq) {
			idx = i
		}
	}
	j := s.active[idx]
	if j.deadline > 0 && j.run.Now() >= j.deadline {
		j.cancel(errDeadline)
	}
	if s.draining {
		if j.drainSteps >= s.cfg.DrainStepBudget {
			j.cancel(errDrainCancel)
		}
		j.drainSteps++
	}
	return j
}

// removeActiveLocked drops a finished job from the active set. Only the
// step loop mutates s.active, but the job is re-found by identity rather
// than index so the removal cannot go stale.
func (s *Server) removeActiveLocked(j *job) {
	for i, a := range s.active {
		if a == j {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// finalizeRunLocked classifies a stopped run and either retires the job or
// requeues it for a retry.
func (s *Server) finalizeRunLocked(j *job) {
	err := j.run.Err()
	j.cancel(nil)
	switch {
	case err == nil:
		s.retireLocked(j, StateDone, nil)
		s.ctr.done++
	case errors.Is(err, errDrainCancel):
		j.checkpointed = j.run.CheckpointLive()
		s.journalLocked(journal.Record{
			Kind: journal.KindCheckpointed, Job: j.id, Tenant: j.tenant,
			Parts: j.checkpointed, TSec: j.run.Now(),
		})
		s.retireLocked(j, StateCheckpointed, err)
		s.ctr.checkpointed++
	case errors.Is(err, errClientCancel):
		s.retireLocked(j, StateCanceled, err)
		s.ctr.canceled++
	case errors.Is(err, errDeadline):
		j.deadlineHit = true
		s.retireLocked(j, StateFailed, err)
		s.ctr.deadlineExceeded++
		s.ctr.failed++
	case engine.IsPanic(err):
		s.strikeLocked(j.tenant)
		j.strikes++
		if j.attempts < s.cfg.Retry.MaxAttempts && !s.draining {
			// Transient failure with attempts left: requeue with the
			// policy's exponential backoff charged in virtual seconds.
			j.backoff += s.cfg.Retry.Backoff(j.attempts)
			j.progress = j.run.Progress()
			j.run, j.rec, j.cancel = nil, nil, nil
			if s.queue.Push(j.id, j.tenant, j.priority) {
				j.state = StateQueued
				j.err = nil
				j.retries++
				s.ctr.retried++
				s.tenantLocked(j.tenant).retried++
				s.eventLocked("retried", j.tenant)
				s.watchLifecycleLocked(j, 0)
				s.journalLocked(journal.Record{
					Kind: journal.KindRetried, Job: j.id, Tenant: j.tenant,
					Attempt: j.attempts, BackoffSec: sim.VTime(j.backoff),
				})
				return
			}
			// No room to retry: shed the retry, fail the job.
			j.sheds++
			s.retireLocked(j, StateFailed, fmt.Errorf("%w (retry shed: %v)", ErrQueueFull, err))
			s.ctr.shed++
			s.ctr.failed++
			return
		}
		s.retireLocked(j, StateFailed, err)
		s.ctr.failed++
	default:
		s.retireLocked(j, StateFailed, err)
		s.ctr.failed++
	}
}

// retireLocked moves a job that holds a run into a terminal state,
// capturing its snapshot and audit surface and releasing its quota.
func (s *Server) retireLocked(j *job, state string, err error) {
	j.state = state
	j.err = err
	j.end = j.run.Now()
	j.progress = j.run.Progress()
	j.snapshot = j.run.Snapshot()
	j.series = j.rec.Series(sim.VTime(s.cfg.WatchBucketSec))
	j.selections = j.run.ChooseSelections()
	j.auditLineage = j.run.AuditLineage()
	j.auditBooks = j.run.AuditAccounting()
	j.run, j.rec, j.cancel = nil, nil, nil
	s.quotas.Release(j.tenant, j.reserve)
	s.tenantRetireLocked(j)
	s.watchLifecycleLocked(j, j.end.Seconds())
	s.watchBucketsLocked(j)
	s.journalTerminalLocked(j)
	s.completionLocked()
}

// finalizeQueuedLocked retires a job that never got a run (withdrawn,
// quarantined at pop, or failed to start).
func (s *Server) finalizeQueuedLocked(j *job, state string, err error) {
	j.state = state
	j.err = err
	if state == StateCanceled {
		s.ctr.canceled++
	} else if state == StateFailed {
		s.ctr.failed++
	}
	s.quotas.Release(j.tenant, j.reserve)
	s.tenantRetireLocked(j)
	s.watchLifecycleLocked(j, 0)
	s.journalTerminalLocked(j)
	s.completionLocked()
}

// strikeLocked charges one panic-failed attempt to the tenant and trips
// the quarantine circuit breaker at the configured threshold.
func (s *Server) strikeLocked(tenant string) {
	s.strikes[tenant]++
	if s.strikes[tenant] >= s.cfg.QuarantineStrikes {
		if _, already := s.quarantined[tenant]; !already {
			s.quarantined[tenant] = s.cfg.QuarantineCooldownJobs
			s.ctr.quarantines++
		}
	}
}

// completionLocked counts one job completion against every active
// quarantine cooldown, lifting quarantines that reach zero.
func (s *Server) completionLocked() {
	for tenant, left := range s.quarantined {
		left--
		if left <= 0 {
			delete(s.quarantined, tenant)
			s.strikes[tenant] = 0
		} else {
			s.quarantined[tenant] = left
		}
	}
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:                j.id,
		Tenant:            j.tenant,
		State:             j.state,
		Priority:          j.priority,
		Attempts:          j.attempts,
		DeadlineSec:       float64(j.deadline),
		BackoffSec:        j.backoff,
		CheckpointedParts: j.checkpointed,
		Selections:        j.selections,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.terminal() {
		st.CompletionSec = float64(j.end)
		st.Audit = append(st.Audit, j.auditLineage...)
		st.Audit = append(st.Audit, j.auditBooks...)
	}
	return st
}
