package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"metadataflow/internal/journal"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

// otherSpec differs from okSpec in content (and therefore content hash) so
// dedup tests can tell "same job resubmitted" from "genuinely new job".
const otherSpec = `{
  "name": "other",
  "source": {"rows": 300, "partitions": 2, "virtualBytes": 1048576, "seed": 11},
  "pipeline": [{"op": {"name": "std", "fn": "standardize"}}]
}`

// metricsSansRecovery renders a server's metrics with the path-dependent
// service.recovery.* counters stripped — the equivalence surface for
// comparing a restarted server against one that never died.
func metricsSansRecovery(t *testing.T, s *Server) []byte {
	t.Helper()
	m := s.Metrics()
	kept := m.Counters[:0]
	for _, c := range m.Counters {
		if !strings.HasPrefix(c.Name, "service.recovery.") {
			kept = append(kept, c)
		}
	}
	m.Counters = kept
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func statusJSON(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	st, err := s.Job(id)
	if err != nil {
		t.Fatalf("job %s: %v", id, err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDurableRestartRestoresTerminalJobs is the tentpole round trip: a
// durable server runs jobs to terminal states (including a failing one,
// which exercises retried/strikes replay), dies, and a reopened server
// answers identically — same job statuses, same metrics bytes modulo the
// recovery counters — and deduplicates blind resubmissions onto the
// recovered jobs.
func TestDurableRestartRestoresTerminalJobs(t *testing.T) {
	cfg := Config{StateDir: t.TempDir(), JournalNoSync: true}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{
		submitOK(t, s, "alpha", okSpec, "").ID,
		submitOK(t, s, "beta", okSpec, "").ID,
		submitOK(t, s, "gamma", boomSpec, boomFaults).ID,
	}
	s.WaitIdle()
	golden := make(map[string][]byte)
	for _, id := range ids {
		golden[id] = statusJSON(t, s, id)
	}
	goldenMetrics := metricsSansRecovery(t, s)
	s.Close()

	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	for _, id := range ids {
		if got := statusJSON(t, r, id); !bytes.Equal(got, golden[id]) {
			t.Errorf("job %s after restart:\n got %s\nwant %s", id, got, golden[id])
		}
	}
	if got := metricsSansRecovery(t, r); !bytes.Equal(got, goldenMetrics) {
		t.Errorf("metrics diverged across restart:\n got %s\nwant %s", got, goldenMetrics)
	}
	m := r.Metrics()
	if got, _ := m.CounterValue("service.recovery.jobs_recovered"); got != 3 {
		t.Errorf("jobs_recovered = %d, want 3", got)
	}
	if got, _ := m.CounterValue("service.recovery.terminal_replayed"); got != 3 {
		t.Errorf("terminal_replayed = %d, want 3", got)
	}

	// A client blindly resubmitting after the crash gets the recovered job
	// back — same ID, no new admission.
	before, _ := r.Metrics().CounterValue("service.jobs_submitted")
	if st := submitOK(t, r, "alpha", okSpec, ""); st.ID != ids[0] {
		t.Errorf("dedup resubmit got %s, want recovered %s", st.ID, ids[0])
	}
	after, _ := r.Metrics().CounterValue("service.jobs_submitted")
	if after != before {
		t.Errorf("dedup resubmit changed jobs_submitted %d -> %d", before, after)
	}
	// A genuinely new spec continues the recovered ID sequence.
	if st := submitOK(t, r, "alpha", otherSpec, ""); st.ID != "job-0004" {
		t.Errorf("fresh submit after recovery got %s, want job-0004", st.ID)
	}
	r.WaitIdle()
}

// TestRecoveryRequeuesIncompleteJobs hand-builds a journal whose jobs never
// reached terminal records — one still queued, one mid-run — and checks a
// reopened server re-executes both to completion.
func TestRecoveryRequeuesIncompleteJobs(t *testing.T) {
	cfg := Config{StateDir: t.TempDir(), JournalNoSync: true}
	cfg = cfg.withDefaults()
	reserve := sim.Bytes(cfg.Workers) * cfg.MemPerWorker
	recs := []journal.Record{
		{Seq: 1, Kind: journal.KindAdmitted, Job: "job-0001", Tenant: "alpha",
			ReserveBytes: reserve, Spec: json.RawMessage(okSpec)},
		{Seq: 2, Kind: journal.KindAdmitted, Job: "job-0002", Tenant: "alpha",
			ReserveBytes: reserve, Spec: json.RawMessage(otherSpec)},
		{Seq: 3, Kind: journal.KindStarted, Job: "job-0001", Tenant: "alpha", Attempt: 1},
	}
	if err := journal.WriteAll(cfg.StateDir+"/journal", recs, journal.Options{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.WaitIdle()
	for _, id := range []string{"job-0001", "job-0002"} {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("recovered job %s state %q (err %q), want done", id, st.State, st.Error)
		}
	}
	m := s.Metrics()
	if got, _ := m.CounterValue("service.recovery.jobs_requeued"); got != 2 {
		t.Errorf("jobs_requeued = %d, want 2", got)
	}
	if got, _ := m.CounterValue("service.jobs_done"); got != 2 {
		t.Errorf("jobs_done = %d, want 2", got)
	}
}

// TestRecoveryReReservesQuota proves replayed admissions hold real quota:
// after recovering a journal whose incomplete job reserved the tenant's
// whole budget, a new submission for that tenant is quota-rejected while
// an identical resubmission rides the dedup index without double-reserving.
// The server's step loop is deliberately not started so the recovered job
// cannot complete (and release) underneath the assertions.
func TestRecoveryReReservesQuota(t *testing.T) {
	cfg := Config{
		StateDir: t.TempDir(), JournalNoSync: true,
		Workers: 2, MemPerWorker: 1 << 20, TenantQuota: 2 << 20,
	}
	sp, err := spec.Parse([]byte(okSpec))
	if err != nil {
		t.Fatal(err)
	}
	recs := []journal.Record{
		{Seq: 1, Kind: journal.KindAdmitted, Job: "job-0001", Tenant: "alpha",
			ReserveBytes: 2 << 20, SpecHash: sp.HashReport().Spec.String(),
			Spec: json.RawMessage(okSpec)},
	}
	if err := journal.WriteAll(cfg.StateDir+"/journal", recs, journal.Options{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	s := newServer(cfg)
	if err := s.openState(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobRequest{Tenant: "alpha", Spec: json.RawMessage(otherSpec)}); err == nil {
		t.Fatal("over-quota submit after recovery succeeded")
	} else {
		var qe *memorymgr.QuotaError
		if !errors.As(err, &qe) {
			t.Fatalf("over-quota submit error = %v, want *QuotaError", err)
		}
	}
	st, err := s.Submit(JobRequest{Tenant: "alpha", Spec: json.RawMessage(okSpec)})
	if err != nil {
		t.Fatalf("dedup resubmit: %v", err)
	}
	if st.ID != "job-0001" || st.State != StateQueued {
		t.Fatalf("dedup resubmit got %s/%s, want job-0001/queued", st.ID, st.State)
	}
	// Drain the recovered work normally now that assertions are done.
	go s.loop()
	s.WaitIdle()
	s.Close()
}

// TestRecoveryHealsCorruptJournal damages a finished server's journal — a
// bit flip in the final record plus a torn half-written frame — and checks
// the reopened server recovers the valid prefix, re-executes the job whose
// terminal record was lost, and leaves a journal whose full history replays
// cleanly with dense sequence numbers.
func TestRecoveryHealsCorruptJournal(t *testing.T) {
	cfg := Config{StateDir: t.TempDir(), JournalNoSync: true}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitOK(t, s, "alpha", okSpec, "")
	submitOK(t, s, "beta", otherSpec, "")
	s.WaitIdle()
	s.Close()

	jdir := cfg.StateDir + "/journal"
	recs, err := journal.Replay(jdir)
	if err != nil {
		t.Fatalf("golden journal does not replay: %v", err)
	}
	if len(recs) < 4 {
		t.Fatalf("golden journal only has %d records", len(recs))
	}
	if err := journal.FlipBit(jdir, int64(len(recs)-1), 13); err != nil {
		t.Fatal(err)
	}
	torn, err := journal.EncodeFrame(journal.Record{Seq: int64(len(recs) + 1), Kind: journal.KindStarted, Job: "job-0099"})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.AppendRaw(jdir, torn[:5]); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen over damaged journal: %v", err)
	}
	if got, _ := r.Metrics().CounterValue("service.recovery.journal_truncated"); got != 1 {
		t.Errorf("journal_truncated = %d, want 1", got)
	}
	r.WaitIdle()
	for _, id := range []string{"job-0001", "job-0002"} {
		st, err := r.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s state %q after heal, want done", id, st.State)
		}
	}
	r.Close()

	healed, err := journal.Replay(jdir)
	if err != nil {
		t.Fatalf("healed journal does not replay: %v", err)
	}
	for i, rec := range healed {
		if rec.Seq != int64(i+1) {
			t.Fatalf("healed journal seq %d at index %d — not dense", rec.Seq, i)
		}
	}
	if len(healed) < len(recs) {
		t.Errorf("healed journal has %d records, fewer than golden prefix %d", len(healed), len(recs))
	}
}

// TestMemoryOnlyServerUnchanged pins the compatibility contract: a server
// built with New never journals, never emits recovery counters, and its
// metrics bytes are identical to a pre-durability server's.
func TestMemoryOnlyServerUnchanged(t *testing.T) {
	s := New(Config{StateDir: "should-be-ignored"})
	defer s.Close()
	if s.jnl != nil || s.ckpts != nil {
		t.Fatal("New built durable state")
	}
	submitOK(t, s, "alpha", okSpec, "")
	s.WaitIdle()
	m := s.Metrics()
	for _, c := range m.Counters {
		if strings.HasPrefix(c.Name, "service.recovery.") {
			t.Fatalf("memory-only server emitted %s", c.Name)
		}
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("service.jobs_done")) {
		t.Fatal("metrics missing service counters")
	}
}
