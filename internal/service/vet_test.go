package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
)

// dupSpec carries a seeded defect: branches "a" and "b" resolve to the same
// sub-graph, so the plan verifier condemns it with a dupbranch finding.
const dupSpec = `{
  "name": "dup",
  "source": {"rows": 100, "partitions": 2, "virtualBytes": 1048576, "seed": 7},
  "pipeline": [
    {"explore": {
      "name": "e",
      "branches": [{"label": "a", "params": {"limit": 0.5}}, {"label": "b", "params": {"limit": 0.5}}],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }}
  ]
}`

// hugeSpec declares a source whose every partition (8 GiB split 8 ways)
// dwarfs the default service's 256 MiB per-worker budget: the allocator
// would write each one straight to disk, so vetting condemns it.
const hugeSpec = `{
  "name": "huge",
  "source": {"rows": 100, "partitions": 8, "virtualBytes": 8589934592, "seed": 7},
  "pipeline": [{"op": {"name": "id"}}]
}`

// TestSubmitVetRejectsBeforeReservation: a condemned spec is rejected with
// a *VetError carrying the findings, and no quota is ever reserved for the
// tenant — vetting runs strictly before admission accounting.
func TestSubmitVetRejectsBeforeReservation(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	_, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(dupSpec)})
	var vet *VetError
	if !errors.As(err, &vet) {
		t.Fatalf("submit returned %v, want *VetError", err)
	}
	if len(vet.Findings) == 0 || vet.Findings[0].Rule != "dupbranch" {
		t.Fatalf("findings = %+v, want a dupbranch finding", vet.Findings)
	}
	if got := s.quotas.Reserved("a"); got != 0 {
		t.Errorf("rejected submission reserved %d bytes", got)
	}
	if !strings.Contains(vet.Error(), "plan vetting") {
		t.Errorf("error text: %q", vet.Error())
	}

	// A healthy spec from the same tenant is unaffected.
	if _, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(okSpec)}); err != nil {
		t.Fatalf("healthy spec rejected after vet rejection: %v", err)
	}
	s.WaitIdle()

	m := s.Metrics()
	if got, ok := m.CounterValue("service.jobs_vet_rejected"); !ok || got != 1 {
		t.Errorf("jobs_vet_rejected = %d (present=%v), want 1", got, ok)
	}
}

// TestSubmitVetMemoryInfeasible: the memfeasible rule runs against the
// service's own cluster shape and quota, so a spec that could pass under
// mdfplan defaults is still rejected by a smaller service.
func TestSubmitVetMemoryInfeasible(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	_, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(hugeSpec)})
	var vet *VetError
	if !errors.As(err, &vet) {
		t.Fatalf("submit returned %v, want *VetError", err)
	}
	for _, f := range vet.Findings {
		if f.Rule != "memfeasible" {
			t.Errorf("unexpected rule %q: %s", f.Rule, f)
		}
	}
	if len(vet.Findings) != 1 {
		t.Errorf("findings = %+v, want the oversized-partition diagnosis", vet.Findings)
	}
	if got := s.quotas.Reserved("a"); got != 0 {
		t.Errorf("rejected submission reserved %d bytes", got)
	}
}

// TestSubmitVetEscapes: DisableVet admits condemned specs wholesale, and a
// spec-level allow escapes a single rule with the vet otherwise on.
func TestSubmitVetEscapes(t *testing.T) {
	s := New(Config{DisableVet: true})
	if _, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(dupSpec)}); err != nil {
		t.Fatalf("DisableVet still rejected: %v", err)
	}
	s.Close()

	s2 := New(Config{})
	defer s2.Close()
	allowed := strings.Replace(dupSpec, `"name": "dup",`, `"name": "dup", "allow": ["dupbranch"],`, 1)
	if _, err := s2.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(allowed)}); err != nil {
		t.Fatalf("allow escape still rejected: %v", err)
	}
}

// TestHTTPVetRejection pins the wire shape: 400 with the error line plus
// one structured finding object per diagnostic.
func TestHTTPVetRejection(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()

	rec := postJob(t, h, `{"tenant": "a", "spec": `+hugeSpec+`}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body)
	}
	var body struct {
		Error    string `json:"error"`
		Findings []struct {
			Path string `json:"path"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad body: %v\n%s", err, rec.Body)
	}
	if !strings.Contains(body.Error, "plan vetting") {
		t.Errorf("error line: %q", body.Error)
	}
	if len(body.Findings) == 0 {
		t.Fatal("no structured findings in 400 body")
	}
	for _, f := range body.Findings {
		if f.Rule != "memfeasible" || f.Path == "" || f.Msg == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
	if got := s.quotas.Reserved("a"); got != 0 {
		t.Errorf("rejected submission reserved %d bytes", got)
	}
}
