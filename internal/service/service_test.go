package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
)

// okSpec is a small healthy MDF job: one explore over two filter settings.
const okSpec = `{
  "name": "ok",
  "source": {"rows": 400, "partitions": 4, "virtualBytes": 1048576, "seed": 7},
  "pipeline": [
    {"explore": {
      "name": "e",
      "branches": [{"label": "lo", "params": {"limit": 0.5}}, {"label": "hi", "params": {"limit": 1.5}}],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }}
  ]
}`

// longSpec chains wide operators: every standardize is a stage boundary
// (narrow chains fuse into one stage), so the plan has enough stages that a
// drain's step budget cannot finish it.
const longSpec = `{
  "name": "long",
  "source": {"rows": 400, "partitions": 4, "virtualBytes": 1048576, "seed": 7},
  "pipeline": [
    {"op": {"name": "w1", "fn": "standardize"}},
    {"op": {"name": "w2", "fn": "standardize"}},
    {"op": {"name": "w3", "fn": "standardize"}},
    {"op": {"name": "w4", "fn": "standardize"}},
    {"op": {"name": "w5", "fn": "standardize"}},
    {"op": {"name": "w6", "fn": "standardize"}},
    {"op": {"name": "w7", "fn": "standardize"}},
    {"op": {"name": "w8", "fn": "standardize"}},
    {"op": {"name": "w9", "fn": "standardize"}},
    {"op": {"name": "w10", "fn": "standardize"}},
    {"op": {"name": "w11", "fn": "standardize"}},
    {"op": {"name": "w12", "fn": "standardize"}}
  ]
}`

// boomSpec's trunk operator panics on every invocation of the fault plan
// below, so every service-level attempt fails with a panic error.
const boomSpec = `{
  "name": "boom",
  "source": {"rows": 100, "partitions": 2, "virtualBytes": 1048576, "seed": 7},
  "pipeline": [{"op": {"name": "boom", "fn": "square"}}]
}`

const boomFaults = `{"panics": [{"op": "boom", "target": "transform", "times": 1000}]}`

func submitOK(t *testing.T, s *Server, tenant, specJSON, faultsJSON string) JobStatus {
	t.Helper()
	req := JobRequest{Tenant: tenant, Spec: json.RawMessage(specJSON)}
	if faultsJSON != "" {
		req.Faults = json.RawMessage(faultsJSON)
	}
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit for %s: %v", tenant, err)
	}
	return st
}

func TestServiceRunsJobsToCompletion(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		st := submitOK(t, s, fmt.Sprintf("tenant-%d", i), okSpec, "")
		ids = append(ids, st.ID)
	}
	s.WaitIdle()
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s state %q (err %q), want done", id, st.State, st.Error)
		}
		if st.CompletionSec <= 0 {
			t.Fatalf("job %s completionSec = %v", id, st.CompletionSec)
		}
		if len(st.Selections) == 0 {
			t.Fatalf("job %s has no choose selections in its explain output", id)
		}
		if len(st.Audit) != 0 {
			t.Fatalf("job %s audit found violations: %v", id, st.Audit)
		}
	}
	m := s.Metrics()
	if got, _ := m.CounterValue("service.jobs_done"); got != 3 {
		t.Fatalf("service.jobs_done = %d, want 3", got)
	}
}

// TestServiceOverloadShedsAndQuotaHolds is acceptance test (a): overload is
// shed with typed errors and no tenant's reservations ever exceed its
// quota.
func TestServiceOverloadShedsAndQuotaHolds(t *testing.T) {
	cfg := Config{
		Workers:      2,
		MemPerWorker: 1 << 20,
		TenantQuota:  2 << 20, // room for exactly one job (2 workers × 1 MiB)
		QueueCap:     2,
		MaxActive:    1,
	}
	// No loop: submissions stack up so the shedding paths are deterministic.
	s := newServer(cfg)

	if _, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(okSpec)}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Same tenant again: quota (1 job) is exhausted before the queue is.
	_, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(okSpec)})
	var qe *memorymgr.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota submit error = %v, want *QuotaError", err)
	}
	if qe.Reserved > qe.Quota {
		t.Fatalf("reservations exceeded quota: %d > %d", qe.Reserved, qe.Quota)
	}
	// A second tenant fills the queue; the third tenant is shed.
	if _, err := s.Submit(JobRequest{Tenant: "b", Spec: json.RawMessage(okSpec)}); err != nil {
		t.Fatalf("tenant b submit: %v", err)
	}
	if _, err := s.Submit(JobRequest{Tenant: "c", Spec: json.RawMessage(okSpec)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}

	// Run everything down and check the quota held throughout.
	go s.loop()
	s.WaitIdle()
	for _, tenant := range []string{"a", "b", "c"} {
		if peak := s.quotas.Peak(tenant); peak > s.quotas.Quota() {
			t.Fatalf("tenant %s peak reservation %d exceeded quota %d", tenant, peak, s.quotas.Quota())
		}
		if left := s.quotas.Reserved(tenant); left != 0 {
			t.Fatalf("tenant %s still holds %d bytes after idle", tenant, left)
		}
	}
	m := s.Metrics()
	if got, _ := m.CounterValue("service.jobs_shed"); got != 1 {
		t.Fatalf("service.jobs_shed = %d, want 1", got)
	}
	if got, _ := m.CounterValue("service.jobs_quota_rejected"); got != 1 {
		t.Fatalf("service.jobs_quota_rejected = %d, want 1", got)
	}
	s.Close()
}

func TestServiceDeadlineCancelsRun(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	st, err := s.Submit(JobRequest{
		Tenant:      "t",
		DeadlineSec: 1e-9, // expires after the first stage
		Spec:        json.RawMessage(longSpec),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("state = %q (err %q), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "virtual deadline exceeded") {
		t.Fatalf("error = %q, want deadline cause", got.Error)
	}
	m := s.Metrics()
	if v, _ := m.CounterValue("service.jobs_deadline_exceeded"); v != 1 {
		t.Fatalf("service.jobs_deadline_exceeded = %d, want 1", v)
	}
}

// TestServiceQuarantineIsolatesTenant is acceptance test (c): a spec that
// panics on every attempt burns its retries, trips the tenant's circuit
// breaker, and leaves other tenants' jobs unaffected.
func TestServiceQuarantineIsolatesTenant(t *testing.T) {
	s := New(Config{QuarantineStrikes: 3, QuarantineCooldownJobs: 4})
	defer s.Close()
	bad := submitOK(t, s, "noisy", boomSpec, boomFaults)
	good := submitOK(t, s, "quiet", okSpec, "")
	s.WaitIdle()

	badSt, err := s.Job(bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if badSt.State != StateFailed {
		t.Fatalf("panicking job state = %q, want failed", badSt.State)
	}
	if badSt.Attempts != 3 {
		t.Fatalf("panicking job attempts = %d, want 3 (retry budget)", badSt.Attempts)
	}
	// Backoff(1) + Backoff(2) = 1 + 2 virtual seconds across the retries.
	if badSt.BackoffSec != 3 {
		t.Fatalf("accumulated backoff = %v, want 3", badSt.BackoffSec)
	}

	goodSt, err := s.Job(good.ID)
	if err != nil {
		t.Fatal(err)
	}
	if goodSt.State != StateDone {
		t.Fatalf("other tenant's job state = %q (err %q), want done", goodSt.State, goodSt.Error)
	}

	// Three panic-failed attempts = three strikes: the tenant is now
	// quarantined and new submissions are rejected.
	_, err = s.Submit(JobRequest{Tenant: "noisy", Spec: json.RawMessage(okSpec)})
	var quarantine *QuarantineError
	if !errors.As(err, &quarantine) {
		t.Fatalf("quarantined submit error = %v, want *QuarantineError", err)
	}
	// Other tenants are admitted as usual.
	after := submitOK(t, s, "quiet", okSpec, "")
	s.WaitIdle()
	if st, _ := s.Job(after.ID); st.State != StateDone {
		t.Fatalf("post-quarantine job for healthy tenant = %q, want done", st.State)
	}

	m := s.Metrics()
	if v, _ := m.CounterValue("service.tenants_quarantined"); v != 1 {
		t.Fatalf("service.tenants_quarantined = %d, want 1", v)
	}
	if v, _ := m.CounterValue("service.jobs_retried"); v != 2 {
		t.Fatalf("service.jobs_retried = %d, want 2", v)
	}
}

// TestServiceDrainCheckpointsInFlight is acceptance test (b): draining
// stops admission, gives in-flight jobs a bounded step budget, checkpoints
// what could not finish, and flushes a valid mdf.metrics/v1 snapshot.
func TestServiceDrainCheckpointsInFlight(t *testing.T) {
	// Drain mode is staged before the loop starts, so the long job
	// deterministically exceeds the step budget and is checkpointed.
	s := newServer(Config{MaxActive: 2, DrainStepBudget: 3})
	long := submitOK(t, s, "a", longSpec, "")
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	go s.loop()
	snap := s.Drain()

	st, err := s.Job(long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCheckpointed {
		t.Fatalf("long job state = %q (err %q), want checkpointed", st.State, st.Error)
	}
	if st.CheckpointedParts == 0 {
		t.Fatal("drain checkpointed no partitions of the interrupted job")
	}

	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("drain snapshot schema = %q, want %q", snap.Schema, obs.SnapshotSchema)
	}
	if v, ok := snap.CounterValue("service.jobs_checkpointed"); !ok || v != 1 {
		t.Fatalf("service.jobs_checkpointed = %d, want 1", v)
	}
	if v, _ := snap.CounterValue("mem.checkpoints"); v == 0 {
		t.Fatal("merged snapshot records no checkpoints")
	}
	// The snapshot round-trips as JSON and admission is closed.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobRequest{Tenant: "a", Spec: json.RawMessage(okSpec)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}
	s.Close()
}

// TestServiceMetricsDeterministic is acceptance test (d): the same
// submission sequence produces byte-identical /metrics output.
func TestServiceMetricsDeterministic(t *testing.T) {
	render := func() []byte {
		// Stage every submission before the loop starts, so reservation
		// peaks and admission order cannot depend on stepping speed.
		s := newServer(Config{MaxActive: 3})
		defer s.Close()
		submitOK(t, s, "a", okSpec, "")
		submitOK(t, s, "b", longSpec, "")
		submitOK(t, s, "a", okSpec, "")
		submitOK(t, s, "c", boomSpec, boomFaults)
		go s.loop()
		s.WaitIdle()
		out, err := s.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := render()
	for i := 0; i < 2; i++ {
		if got := render(); !bytes.Equal(first, got) {
			t.Fatalf("metrics output differs between identical runs:\n%s\nvs\n%s", first, got)
		}
	}
	// The document is the pinned schema.
	var snap obs.Snapshot
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("metrics schema = %q, want %q", snap.Schema, obs.SnapshotSchema)
	}
}

func TestServiceCancelQueuedAndRunning(t *testing.T) {
	// No loop: a submitted job stays queued, so cancel-while-queued is
	// deterministic.
	s := newServer(Config{})
	st := submitOK(t, s, "t", okSpec, "")
	if err := s.Cancel(st.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", got.State)
	}
	if err := s.Cancel(st.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel terminal job = %v, want ErrTerminal", err)
	}
	if err := s.Cancel("job-9999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown job = %v, want ErrNotFound", err)
	}
	go s.loop()
	s.Close()
}

func TestServiceRejectsBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	cases := map[string]JobRequest{
		"no tenant":   {Spec: json.RawMessage(okSpec)},
		"no spec":     {Tenant: "t"},
		"bad spec":    {Tenant: "t", Spec: json.RawMessage(`{"source":{"rows":0},"pipeline":[]}`)},
		"bad faults":  {Tenant: "t", Spec: json.RawMessage(okSpec), Faults: json.RawMessage(`{"panics":[{"times":0}]}`)},
		"fault shape": {Tenant: "t", Spec: json.RawMessage(okSpec), Faults: json.RawMessage(`{"crashes":[{"node":-2}]}`)},
	}
	for name, req := range cases {
		_, err := s.Submit(req)
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Fatalf("%s: err = %v, want *RequestError", name, err)
		}
	}
}

// TestEngineContextCancellation pins the engine-level contract the service
// builds on: a canceled context stops the run at the next scheduling
// boundary with the cause wrapped in the error, and the partial snapshot
// stays readable.
func TestEngineContextCancellation(t *testing.T) {
	s := newServer(Config{})
	st := submitOK(t, s, "t", longSpec, "")
	go s.loop()
	// Cancel as soon as the job is observed running; the loop keeps
	// stepping until the cancellation is observed at a boundary.
	for {
		got, err := s.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateRunning {
			if err := s.Cancel(st.ID); err != nil {
				t.Fatal(err)
			}
			break
		}
		if got.State != StateQueued {
			// Too fast to catch running; nothing to verify here.
			t.Skipf("job reached %q before cancel", got.State)
		}
	}
	s.WaitIdle()
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state = %q (err %q), want canceled", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "canceled by client") {
		t.Fatalf("error %q does not carry the cancellation cause", got.Error)
	}
	s.Close()
}

// TestEngineIsPanicClassification pins the error classification the retry
// path depends on.
func TestEngineIsPanicClassification(t *testing.T) {
	if engine.IsPanic(errors.New("plain")) {
		t.Fatal("plain error classified as panic")
	}
	if engine.IsPanic(nil) {
		t.Fatal("nil classified as panic")
	}
}
