package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/faults"
	"metadataflow/internal/journal"
	"metadataflow/internal/obs"
	"metadataflow/internal/spec"
)

// This file is the service's crash-recovery path. A durable server
// (Config.StateDir set, built with Open) write-ahead-journals every job
// lifecycle transition (internal/journal) and mirrors engine checkpoints
// into a content-addressed store (internal/ckptstore). On boot, Open
// replays the journal's valid prefix and rebuilds admission state:
//
//   - terminal jobs are restored verbatim — final state, counters,
//     metrics snapshot, audit surface — and their quota stays released;
//   - incomplete jobs re-reserve their tenant quota and requeue at
//     attempt zero in admitted order: deterministic re-execution from the
//     journaled spec and fault plan IS the recovery mechanism, and the
//     engine resumes from whichever checkpoint-store entries verify;
//   - a dedup index maps (tenant, spec content hash) to recovered job
//     IDs, so clients that blindly re-submit their jobs after a crash get
//     the recovered job back instead of a duplicate admission.
//
// Torn journal tails and corrupt records cost only the records past the
// damage: replay trusts the longest valid prefix and the journal writer
// truncates the rest before appending resumes.

// recoveryCounters aggregates restart-recovery events for /metrics. They
// exist only on durable servers, and the crash-restart oracle strips them
// before comparing a restarted run's metrics against an uninterrupted one.
type recoveryCounters struct {
	jobsRecovered    int64
	terminalReplayed int64
	requeued         int64
	dedupHits        int64
	journalRecords   int64
	journalTruncated int64
	appendErrors     int64
}

// Open starts a server like New but with crash-consistent state rooted at
// cfg.StateDir: the job journal is replayed before the step loop starts,
// so recovered queued jobs begin executing immediately. An empty StateDir
// yields a memory-only server identical to New's.
func Open(cfg Config) (*Server, error) {
	s := newServer(cfg)
	if s.cfg.StateDir != "" {
		if err := s.openState(); err != nil {
			return nil, err
		}
	}
	go s.loop()
	return s, nil
}

// openState opens the checkpoint store, replays the journal's valid
// prefix into admission state, and readies the journal for appends. No
// lock is needed: the step loop has not started and the server has not
// been published.
func (s *Server) openState() error {
	s.ckpts = ckptstore.New(filepath.Join(s.cfg.StateDir, "ckpt"))
	if err := s.ckpts.Open(); err != nil {
		return err
	}
	jdir := filepath.Join(s.cfg.StateDir, "journal")
	recs, err := journal.Replay(jdir)
	if err != nil {
		var ce *journal.CorruptionError
		if !errors.As(err, &ce) {
			return err
		}
		// Damage past the valid prefix: recovery proceeds from the
		// prefix, and the writer's Open truncates the rest below.
		s.rctr.journalTruncated++
	}
	if err := s.replay(recs); err != nil {
		return err
	}
	jnl := journal.New(jdir, journal.Options{NoSync: s.cfg.JournalNoSync})
	if err := jnl.Open(); err != nil {
		return err
	}
	s.jnl = jnl
	return nil
}

// replay applies journal records in order, reconstructing jobs, counters,
// quota reservations and the watch log, then requeues every incomplete
// job. Replay mirrors the live transition code paths record by record so
// a restarted server is indistinguishable from one that never died.
func (s *Server) replay(recs []journal.Record) error {
	s.rctr.journalRecords = int64(len(recs))
	for _, rec := range recs {
		if rec.Kind == journal.KindAdmitted {
			if err := s.replayAdmitted(rec); err != nil {
				return err
			}
			continue
		}
		j, ok := s.jobs[rec.Job]
		if !ok {
			return fmt.Errorf("service: recovery: %s record for unknown job %s (seq %d)", rec.Kind, rec.Job, rec.Seq)
		}
		switch rec.Kind {
		case journal.KindStarted:
			j.attempts = rec.Attempt
			j.state = StateRunning
			s.watchLifecycleLocked(j, rec.TSec.Seconds())
		case journal.KindRetried:
			j.state = StateQueued
			j.backoff = rec.BackoffSec.Seconds()
			s.eventLocked("retried", j.tenant)
			s.watchLifecycleLocked(j, 0)
		case journal.KindCheckpointed:
			j.checkpointed = rec.Parts
		case journal.KindTerminal:
			if err := s.replayTerminal(j, rec); err != nil {
				return err
			}
		default:
			return fmt.Errorf("service: recovery: unknown record kind %q (seq %d)", rec.Kind, rec.Seq)
		}
	}
	// Requeue incomplete jobs in admitted order at attempt zero. Their
	// journaled spec and fault plan replay deterministically, so
	// re-execution reproduces the lost outcome; jobs that were running at
	// the crash transition back to queued in the watch log.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.terminal() {
			continue
		}
		wasRunning := j.state == StateRunning
		j.state = StateQueued
		j.attempts, j.backoff, j.err = 0, 0, nil
		j.checkpointed = 0
		j.retries, j.sheds, j.strikes, j.deadlineHit = 0, 0, 0, false
		if !s.queue.Push(j.id, j.tenant, j.priority) {
			return fmt.Errorf("service: recovery: queue full requeuing %s", j.id)
		}
		if wasRunning {
			s.watchLifecycleLocked(j, 0)
		}
		s.rctr.requeued++
	}
	s.rctr.jobsRecovered = int64(len(s.jobs))
	return nil
}

// replayAdmitted rebuilds one admission from its journal record: the job,
// its quota reservation, the submission counters and watch event, and the
// dedup index entry.
func (s *Server) replayAdmitted(rec journal.Record) error {
	sp, err := spec.Parse(rec.Spec)
	if err != nil {
		return fmt.Errorf("service: recovery: job %s spec: %w", rec.Job, err)
	}
	var fplan *faults.Plan
	if len(rec.Faults) > 0 {
		fplan, err = faults.Parse(rec.Faults)
		if err != nil {
			return fmt.Errorf("service: recovery: job %s faults: %w", rec.Job, err)
		}
	}
	if _, dup := s.jobs[rec.Job]; dup {
		return fmt.Errorf("service: recovery: duplicate admitted record for %s (seq %d)", rec.Job, rec.Seq)
	}
	j := &job{
		id:       rec.Job,
		tenant:   rec.Tenant,
		priority: rec.Priority,
		deadline: rec.DeadlineSec,
		spec:     sp,
		fplan:    fplan,
		reserve:  rec.ReserveBytes,
		state:    StateQueued,
		chains:   sp.HashReport().OpChains,
		specHash: rec.SpecHash,
	}
	if err := s.quotas.Reserve(j.tenant, j.reserve); err != nil {
		return fmt.Errorf("service: recovery: re-reserving quota for %s: %w", j.id, err)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	var n int
	if _, err := fmt.Sscanf(j.id, "job-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	key := j.tenant + "\x1f" + j.specHash
	s.recovered[key] = append(s.recovered[key], j.id)
	s.ctr.submitted++
	s.tenantLocked(j.tenant).submitted++
	s.eventLocked("submitted", j.tenant)
	s.watchLifecycleLocked(j, 0)
	return nil
}

// replayTerminal restores a retired job verbatim from its terminal
// record: final state, audit surface, metrics snapshot, and the counter
// deltas the job contributed in its first life.
func (s *Server) replayTerminal(j *job, rec journal.Record) error {
	switch rec.State {
	case StateDone:
		s.ctr.done++
	case StateFailed:
		s.ctr.failed++
	case StateCanceled:
		s.ctr.canceled++
	case StateCheckpointed:
		s.ctr.checkpointed++
	default:
		return fmt.Errorf("service: recovery: job %s unknown terminal state %q", j.id, rec.State)
	}
	j.state = rec.State
	if rec.Error != "" {
		j.err = errors.New(rec.Error)
	}
	j.end = rec.CompletionSec
	j.checkpointed = rec.Parts
	j.selections = rec.Selections
	j.auditLineage = rec.AuditLineage
	j.auditBooks = rec.AuditBooks
	if len(rec.Snapshot) > 0 {
		snap := &obs.Snapshot{}
		if err := json.Unmarshal(rec.Snapshot, snap); err != nil {
			return fmt.Errorf("service: recovery: job %s snapshot: %w", j.id, err)
		}
		j.snapshot = snap
	}
	s.ctr.retried += int64(rec.Retries)
	s.tenantLocked(j.tenant).retried += int64(rec.Retries)
	s.ctr.shed += int64(rec.Sheds)
	if rec.DeadlineExceeded {
		s.ctr.deadlineExceeded++
	}
	for i := 0; i < rec.Strikes; i++ {
		s.strikeLocked(j.tenant)
	}
	s.quotas.Release(j.tenant, j.reserve)
	s.tenantRetireLocked(j)
	s.watchLifecycleLocked(j, rec.CompletionSec.Seconds())
	s.completionLocked()
	s.rctr.terminalReplayed++
	return nil
}

// takeRecoveredLocked consumes the oldest recovered job matching the
// (tenant, spec content hash) dedup key, or nil when the submission is
// genuinely new. FIFO consumption keeps repeated identical submissions
// mapped to recovered jobs in their original admission order.
func (s *Server) takeRecoveredLocked(tenant, specHash string) *job {
	key := tenant + "\x1f" + specHash
	ids := s.recovered[key]
	if len(ids) == 0 {
		return nil
	}
	if len(ids) == 1 {
		delete(s.recovered, key)
	} else {
		s.recovered[key] = ids[1:]
	}
	s.rctr.dedupHits++
	return s.jobs[ids[0]]
}

// journalLocked appends one lifecycle record. Journal failures fail open:
// the error is counted, the journal is closed, and the service keeps
// running memory-only — degraded durability must never take down
// admission.
func (s *Server) journalLocked(rec journal.Record) {
	if s.jnl == nil {
		return
	}
	if _, err := s.jnl.Append(rec); err != nil {
		s.rctr.appendErrors++
		_ = s.jnl.Close() //lint:allow droppederr -- already failing open; nothing to do with a close error
		s.jnl = nil
	}
}

// journalTerminalLocked writes a job's terminal record: the full outcome,
// the counter deltas it contributed, and its metrics snapshot, so replay
// restores the job without re-running anything.
func (s *Server) journalTerminalLocked(j *job) {
	if s.jnl == nil {
		return
	}
	rec := journal.Record{
		Kind: journal.KindTerminal, Job: j.id, Tenant: j.tenant,
		TSec:             j.end,
		State:            j.state,
		CompletionSec:    j.end,
		Parts:            j.checkpointed,
		Retries:          j.retries,
		Sheds:            j.sheds,
		Strikes:          j.strikes,
		DeadlineExceeded: j.deadlineHit,
		Selections:       j.selections,
		AuditLineage:     j.auditLineage,
		AuditBooks:       j.auditBooks,
	}
	if j.err != nil {
		rec.Error = j.err.Error()
	}
	if j.snapshot != nil {
		if b, err := json.Marshal(j.snapshot); err == nil {
			rec.Snapshot = b
		}
	}
	s.journalLocked(rec)
}
