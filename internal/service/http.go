package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"metadataflow/internal/memorymgr"
	"metadataflow/internal/plan"
)

// This file maps the server's typed errors onto the HTTP surface:
//
//	POST   /jobs               submit a job             201, 400, 403, 413, 429, 503
//	GET    /jobs/{id}          status + audit/explain   200, 404
//	GET    /jobs/{id}/progress per-branch live progress 200, 404
//	DELETE /jobs/{id}          cancel                   200, 404, 409
//	GET    /metrics            aggregated snapshot      200
//	GET    /watch              NDJSON telemetry stream  200
//	GET    /series             service mdf.series/v1    200
//	GET    /healthz            liveness + load          200
//
// Overload semantics: a full queue or an exhausted tenant quota answers
// 429 with a Retry-After hint (load shedding — the job is never admitted,
// so the service cannot be pushed past its memory budget); a quarantined
// tenant answers 403 (circuit broken — retrying immediately is pointless);
// draining answers 503 (shutting down — retry against a replica). Bodies
// larger than MaxBodyBytes answer 413 before any decoding happens, so a
// misbehaving client cannot balloon the daemon's heap.

// MaxBodyBytes bounds a submission body.
const MaxBodyBytes = 1 << 20

// retryAfterSec is the Retry-After hint for shed submissions.
const retryAfterSec = "1"

type errorBody struct {
	Error string `json:"error"`
}

// vetErrorBody is the 400 body for plan-vetting rejections: the error line
// plus every finding as a structured object, so clients can map diagnostics
// back to spec paths without parsing prose.
type vetErrorBody struct {
	Error    string         `json:"error"`
	Findings []plan.Finding `json:"findings"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /watch", s.handleWatch)
	mux.HandleFunc("GET /series", s.handleSeries)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; nothing useful remains to do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		var reqErr *RequestError
		var vet *VetError
		var quarantine *QuarantineError
		var quota *memorymgr.QuotaError
		switch {
		case errors.As(err, &vet):
			writeJSON(w, http.StatusBadRequest, vetErrorBody{Error: vet.Error(), Findings: vet.Findings})
		case errors.As(err, &reqErr):
			writeError(w, http.StatusBadRequest, err)
		case errors.As(err, &quarantine):
			writeError(w, http.StatusForbidden, err)
		case errors.As(err, &quota), errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterSec)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(strings.TrimSpace(r.PathValue("id")))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	if err := s.Cancel(id); err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrTerminal):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	st, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out, err := s.MetricsJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(out); err != nil {
		return
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Healthz())
}
