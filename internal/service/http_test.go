package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"metadataflow/internal/obs"
)

func postJob(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestHTTPSubmitAndStatus(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()

	rec := postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /jobs = %d, body %s", rec.Code, rec.Body.String())
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Tenant != "a" {
		t.Fatalf("created status = %+v", st)
	}
	s.WaitIdle()

	rec = get(t, h, "/jobs/"+st.ID)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs/{id} = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %q, want done", st.State)
	}
	if len(st.Selections) == 0 {
		t.Fatal("status carries no explain/selections")
	}

	if rec := get(t, h, "/jobs/job-9999"); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", rec.Code)
	}
}

func TestHTTPOverloadStatusCodes(t *testing.T) {
	// No step loop: queued jobs stay queued, so every rejection is
	// deterministic.
	s := newServer(Config{
		Workers:      2,
		MemPerWorker: 1 << 20,
		TenantQuota:  2 << 20,
		QueueCap:     1,
		MaxActive:    1,
	})
	h := s.Handler()

	if rec := postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`); rec.Code != http.StatusCreated {
		t.Fatalf("first submit = %d", rec.Code)
	}
	// Tenant quota exhausted: 429 with Retry-After.
	rec := postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
	// Queue full for another tenant: also 429 + Retry-After.
	rec = postJob(t, h, `{"tenant": "b", "spec": `+okSpec+`}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After hint")
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("429 body %q not a JSON error (%v)", rec.Body.String(), err)
	}
	go s.loop()
	s.Close()
}

func TestHTTPBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()

	cases := map[string]string{
		"not json":      `{`,
		"unknown field": `{"tenant": "a", "sepc": {}}`,
		"no tenant":     `{"spec": ` + okSpec + `}`,
		"bad spec":      `{"tenant": "a", "spec": {"source": {"rows": 0}, "pipeline": []}}`,
	}
	for name, body := range cases {
		if rec := postJob(t, h, body); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", name, rec.Code)
		}
	}

	// An oversized body is rejected up front with 413.
	huge := `{"tenant": "a", "pad": "` + strings.Repeat("x", MaxBodyBytes+1) + `"}`
	if rec := postJob(t, h, huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", rec.Code)
	}
}

func TestHTTPCancel(t *testing.T) {
	// No loop: the job stays queued for a deterministic cancel.
	s := newServer(Config{})
	h := s.Handler()
	rec := postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`)
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}

	del := httptest.NewRequest("DELETE", "/jobs/"+st.ID, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, del)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %q", st.State)
	}

	// Terminal: 409. Unknown: 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+st.ID, nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel terminal = %d, want 409", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/job-9999", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", rec.Code)
	}
	go s.loop()
	s.Close()
}

func TestHTTPMetricsAndHealthz(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`)
	s.WaitIdle()

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Fatalf("metrics schema = %q", snap.Schema)
	}
	if v, ok := snap.CounterValue("service.jobs_done"); !ok || v != 1 {
		t.Fatalf("service.jobs_done = %d, want 1", v)
	}

	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", rec.Code)
	}
	var hl Health
	if err := json.Unmarshal(rec.Body.Bytes(), &hl); err != nil {
		t.Fatal(err)
	}
	if hl.State != "ok" {
		t.Fatalf("health state = %q, want ok", hl.State)
	}

	s.Close()
	rec = get(t, h, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &hl); err != nil {
		t.Fatal(err)
	}
	if hl.State != "draining" || !hl.Drained {
		t.Fatalf("health after close = %+v, want draining+drained", hl)
	}
	// Submissions after shutdown: 503.
	if rec := postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close = %d, want 503", rec.Code)
	}
}

// TestHTTPMetricsBytesStableAcrossReads pins that reading /metrics twice at
// quiescence returns identical bytes (the endpoint is a pure function of
// service state).
func TestHTTPMetricsBytesStableAcrossReads(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	postJob(t, h, `{"tenant": "a", "spec": `+okSpec+`}`)
	s.WaitIdle()
	a := get(t, h, "/metrics").Body.Bytes()
	b := get(t, h, "/metrics").Body.Bytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("metrics changed between reads at quiescence:\n%s\nvs\n%s", a, b)
	}
}
