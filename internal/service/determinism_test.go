package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentSubmissionDeterminism is the mdfserve double-run gate: N
// tenant goroutines submit jobs over the HTTP surface while status and
// health polls race the step loop, and the final /metrics document must
// come out byte-identical across two independent runs. Submission order is
// the one thing pinned — a token ring hands the POST slot from goroutine
// to goroutine — because the service contracts on it (job IDs, metrics
// merge order); everything else (scheduling, admission timing, poll
// interleaving) is left to the runtime scheduler, which is exactly what
// the determinism claim has to survive. Runs under `make race-short`.
func TestConcurrentSubmissionDeterminism(t *testing.T) {
	run := func() []byte {
		s := New(Config{MaxActive: 2})
		defer s.Close()
		h := s.Handler()

		const tenants = 6
		// tokens[i] gates tenant i's POST; each goroutine passes the slot
		// on as soon as its submission is acknowledged, then keeps polling
		// concurrently with everyone else.
		tokens := make([]chan struct{}, tenants+1)
		for i := range tokens {
			tokens[i] = make(chan struct{}, 1)
		}
		var wg sync.WaitGroup
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-tokens[i]
				spec := okSpec
				if i%3 == 1 {
					spec = longSpec
				}
				body := fmt.Sprintf(`{"tenant": "t%d", "priority": %d, "spec": %s}`, i, i%2, spec)
				rec := postJob(t, h, body)
				if rec.Code != http.StatusCreated {
					t.Errorf("tenant %d: POST /jobs = %d, body %s", i, rec.Code, rec.Body.String())
					tokens[i+1] <- struct{}{}
					return
				}
				var st JobStatus
				if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
					t.Errorf("tenant %d: %v", i, err)
					tokens[i+1] <- struct{}{}
					return
				}
				tokens[i+1] <- struct{}{}
				for k := 0; k < 5; k++ {
					get(t, h, "/jobs/"+st.ID)
					get(t, h, "/healthz")
				}
			}(i)
		}
		tokens[0] <- struct{}{}
		wg.Wait()
		s.WaitIdle()

		rec := get(t, h, "/metrics")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /metrics = %d, body %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}

	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("metrics differ across identical runs:\nrun 1:\n%s\nrun 2:\n%s", first, second)
	}
}
