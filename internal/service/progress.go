package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"

	"metadataflow/internal/engine"
	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// This file is the service's live-telemetry surface:
//
//	GET /jobs/{id}/progress  per-branch completion and live scores
//	GET /watch               NDJSON stream of lifecycle + bucket events
//	GET /series              service-level mdf.series/v1 document
//
// Everything here is deterministic for a fixed submission sequence. The
// step loop is the only writer of job progress and of run-derived watch
// events; submission-side events (queued, shed, quota/quarantine
// rejections) are appended by the submitting goroutine under s.mu in
// submission order. Service-level series (admission queue depth,
// per-tenant shed/retry/quarantine rates, quota reservations) span jobs
// and therefore have no single virtual clock; they are stamped with a
// logical event-sequence time — one virtual second per service event —
// exactly like the quota pool's reservation clock it shares a recorder
// with.

// WatchSchema identifies the /watch NDJSON stream format: one JSON header
// line carrying the schema and bucket width, then one JSON object per
// event in seq order.
const WatchSchema = "mdf.watch/v1"

// watchHeader is the first NDJSON line of a /watch stream.
type watchHeader struct {
	Schema    string  `json:"schema"`
	BucketSec float64 `json:"bucketSec"`
}

// WatchEvent is one /watch stream event. Lifecycle events record a job
// state transition at its virtual time; bucket events replay the
// master-node gauge series of a retired job (branch completion fractions,
// branch scores, scheduler queue depth) one virtual-time bucket at a
// time. Events carry a dense seq so clients can resume and tests can
// byte-compare double runs.
type WatchEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"` // "lifecycle" or "bucket"
	Job    string `json:"job"`
	Tenant string `json:"tenant"`
	// State is the job state entered (lifecycle events only).
	State string `json:"state,omitempty"`
	// TSec is the job's virtual time at a lifecycle transition.
	TSec float64 `json:"tSec"`
	// Bucket indexes the virtual-time bucket of a bucket event; Values
	// maps master-node gauge series to their value in that bucket
	// (encoding/json emits map keys sorted, keeping the bytes canonical).
	Bucket int                `json:"bucket,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// ProgressStatus is the GET /jobs/{id}/progress document: the engine's
// per-branch progress view wrapped with job identity. Queued jobs carry an
// empty Progress; terminal jobs keep their final one.
type ProgressStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	engine.Progress
}

// Progress returns the live exploration progress of one job. The stored
// progress is refreshed by the step loop after every engine step, so
// handlers never touch the run itself.
func (s *Server) Progress(id string) (ProgressStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ProgressStatus{}, ErrNotFound
	}
	return ProgressStatus{ID: j.id, Tenant: j.tenant, State: j.state, Progress: j.progress}, nil
}

// Series returns the service-level mdf.series/v1 document: per-tenant
// quota reservation/headroom gauges and admission-event series on the
// shared logical clock.
func (s *Server) Series() *obs.SeriesDoc {
	return s.rec.Series(sim.VTime(s.cfg.WatchBucketSec))
}

// tenantCounters is the per-tenant slice of the service lifecycle
// counters surfaced on /metrics.
type tenantCounters struct {
	submitted, done, failed, canceled, checkpointed, retried int64
	shed, quotaRejected, quarantineRejected                  int64
}

// tenantLocked lazily creates the tenant's counter record.
func (s *Server) tenantLocked(tenant string) *tenantCounters {
	tc, ok := s.tctr[tenant]
	if !ok {
		tc = &tenantCounters{}
		s.tctr[tenant] = tc
	}
	return tc
}

// tenantRetireLocked counts a job's terminal transition against its
// tenant's lifecycle counters and the service series. Called from both
// retire paths after j.state is final.
func (s *Server) tenantRetireLocked(j *job) {
	tc := s.tenantLocked(j.tenant)
	switch j.state {
	case StateDone:
		tc.done++
		s.eventLocked("done", j.tenant)
	case StateFailed:
		tc.failed++
		s.eventLocked("failed", j.tenant)
	case StateCanceled:
		tc.canceled++
		s.eventLocked("canceled", j.tenant)
	case StateCheckpointed:
		tc.checkpointed++
		s.eventLocked("checkpointed", j.tenant)
	}
}

// eventLocked records one service-level admission/lifecycle event on the
// shared logical clock: a per-tenant rate counter tick plus a queue-depth
// gauge sample. Callers hold s.mu.
func (s *Server) eventLocked(name, tenant string) {
	s.eventSeq++
	t := sim.VTime(s.eventSeq)
	s.rec.SeriesAdd(obs.NodeMaster, "service."+name+"."+tenant, t, 1)
	s.rec.SeriesSet(obs.NodeMaster, "service.queue_depth", t, float64(s.queue.Len()))
}

// watchLifecycleLocked appends a lifecycle event for the job's current
// state and wakes follow-mode watchers. tSec is the job's virtual time at
// the transition (0 before the job ever ran).
func (s *Server) watchLifecycleLocked(j *job, tSec float64) {
	s.watchSeq++
	s.watch = append(s.watch, WatchEvent{
		Seq: s.watchSeq, Kind: "lifecycle",
		Job: j.id, Tenant: j.tenant, State: j.state, TSec: tSec,
	})
	s.cond.Broadcast()
}

// watchBucketsLocked replays a retired job's master-node gauge series into
// bucket events, one event per populated bucket, in ascending bucket
// order. The job's series document is already fully sorted, so the event
// bytes are canonical.
func (s *Server) watchBucketsLocked(j *job) {
	if j.series == nil {
		return
	}
	byBucket := make(map[int]map[string]float64)
	var buckets []int
	for _, sr := range j.series.Series {
		if sr.Node != obs.NodeMaster || sr.Kind != obs.SeriesGauge {
			continue
		}
		for _, pt := range sr.Points {
			m := byBucket[pt.Bucket]
			if m == nil {
				m = make(map[string]float64)
				byBucket[pt.Bucket] = m
				buckets = append(buckets, pt.Bucket)
			}
			m[sr.Name] = pt.Value
		}
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		s.watchSeq++
		s.watch = append(s.watch, WatchEvent{
			Seq: s.watchSeq, Kind: "bucket",
			Job: j.id, Tenant: j.tenant, Bucket: b, Values: byBucket[b],
		})
	}
	s.cond.Broadcast()
}

// WatchEvents returns a copy of the watch log from seq (exclusive).
func (s *Server) WatchEvents(afterSeq int) []WatchEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, ev := range s.watch {
		if ev.Seq > afterSeq {
			return append([]WatchEvent(nil), s.watch[i:]...)
		}
	}
	return nil
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	st, err := s.Progress(strings.TrimSpace(r.PathValue("id")))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.Series().WriteJSON(w); err != nil {
		return
	}
}

// handleWatch streams the watch log as NDJSON: a header line, then every
// event in seq order. Plain GET replays the current log and closes;
// ?follow=1 keeps the stream open, flushing new events as the step loop
// appends them, until the service goes idle (no queued or active jobs).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	s.mu.Lock()
	hdr := watchHeader{Schema: WatchSchema, BucketSec: s.cfg.WatchBucketSec}
	s.mu.Unlock()
	if err := enc.Encode(hdr); err != nil {
		return
	}
	next := 0
	for {
		s.mu.Lock()
		for follow && next >= len(s.watch) && s.hasWorkLocked() {
			s.cond.Wait()
		}
		evs := s.watch[next:]
		next = len(s.watch)
		more := follow && s.hasWorkLocked()
		s.mu.Unlock()
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if !more {
			return
		}
	}
}
