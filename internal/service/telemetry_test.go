package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// stagedRun builds a server with every submission queued before the step
// loop starts — the same staging trick the metrics determinism test uses —
// runs it to idle, and hands it to fn. Staging pins the interleaving of
// submissions against admissions, which is the precondition for the
// telemetry byte-compare gates.
func stagedRun(t *testing.T, fn func(s *Server)) {
	t.Helper()
	s := newServer(Config{MaxActive: 2})
	defer s.Close()
	submitOK(t, s, "a", okSpec, "")
	submitOK(t, s, "b", okSpec, "")
	submitOK(t, s, "a", okSpec, "")
	go s.loop()
	s.WaitIdle()
	fn(s)
}

// TestServiceProgressEndpoint pins the GET /jobs/{id}/progress document:
// a terminal job reports full completion with every branch scored or
// pruned, and unknown IDs answer 404.
func TestServiceProgressEndpoint(t *testing.T) {
	stagedRun(t, func(s *Server) {
		h := s.Handler()
		w := get(t, h, "/jobs/job-0001/progress")
		if w.Code != http.StatusOK {
			t.Fatalf("progress status = %d, body %s", w.Code, w.Body)
		}
		var ps ProgressStatus
		if err := json.Unmarshal(w.Body.Bytes(), &ps); err != nil {
			t.Fatal(err)
		}
		if ps.ID != "job-0001" || ps.State != StateDone || !ps.Done {
			t.Fatalf("unexpected progress: %+v", ps)
		}
		if len(ps.Branches) != 2 {
			t.Fatalf("branches = %d, want 2", len(ps.Branches))
		}
		scored := 0
		for _, bp := range ps.Branches {
			if bp.Completion != 1 {
				t.Fatalf("terminal branch incomplete: %+v", bp)
			}
			if bp.State == "scored" {
				scored++
			}
		}
		if scored == 0 {
			t.Fatal("no branch reported scored")
		}
		if w := get(t, h, "/jobs/nope/progress"); w.Code != http.StatusNotFound {
			t.Fatalf("missing job progress status = %d", w.Code)
		}
	})
}

// TestServiceWatchStream validates the /watch NDJSON shape: a schema
// header, a dense seq, the queued→running→terminal lifecycle per job, and
// bucket events carrying branch-progress gauges.
func TestServiceWatchStream(t *testing.T) {
	stagedRun(t, func(s *Server) {
		w := get(t, s.Handler(), "/watch")
		if w.Code != http.StatusOK {
			t.Fatalf("watch status = %d", w.Code)
		}
		sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
		if !sc.Scan() {
			t.Fatal("empty watch stream")
		}
		var hdr watchHeader
		if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
			t.Fatal(err)
		}
		if hdr.Schema != WatchSchema || hdr.BucketSec <= 0 {
			t.Fatalf("bad watch header: %+v", hdr)
		}
		states := map[string][]string{}
		buckets := 0
		seq := 0
		for sc.Scan() {
			var ev WatchEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			seq++
			if ev.Seq != seq {
				t.Fatalf("seq gap: got %d, want %d", ev.Seq, seq)
			}
			switch ev.Kind {
			case "lifecycle":
				states[ev.Job] = append(states[ev.Job], ev.State)
			case "bucket":
				buckets++
				found := false
				for name := range ev.Values {
					if strings.HasPrefix(name, "engine.branch_progress.") {
						found = true
					}
				}
				if !found {
					t.Fatalf("bucket event without branch progress: %+v", ev)
				}
			default:
				t.Fatalf("unknown event kind %q", ev.Kind)
			}
		}
		if buckets == 0 {
			t.Fatal("no bucket events in watch stream")
		}
		for job, seqStates := range states {
			want := []string{StateQueued, StateRunning, StateDone}
			if len(seqStates) != len(want) {
				t.Fatalf("job %s lifecycle = %v", job, seqStates)
			}
			for i, st := range want {
				if seqStates[i] != st {
					t.Fatalf("job %s lifecycle = %v, want %v", job, seqStates, want)
				}
			}
		}
		if len(states) != 3 {
			t.Fatalf("lifecycle covers %d jobs, want 3", len(states))
		}
	})
}

// TestServiceTelemetryDeterministic is the acceptance gate: two identical
// staged runs must produce byte-identical /watch streams, per-tenant
// /metrics documents and service-level /series artifacts.
func TestServiceTelemetryDeterministic(t *testing.T) {
	type capture struct{ watch, metrics, series []byte }
	render := func() capture {
		var c capture
		stagedRun(t, func(s *Server) {
			h := s.Handler()
			c.watch = get(t, h, "/watch").Body.Bytes()
			c.metrics = get(t, h, "/metrics").Body.Bytes()
			c.series = get(t, h, "/series").Body.Bytes()
		})
		return c
	}
	first := render()
	for i := 0; i < 2; i++ {
		got := render()
		if !bytes.Equal(first.watch, got.watch) {
			t.Fatalf("watch stream differs between identical runs:\n%s\nvs\n%s", first.watch, got.watch)
		}
		if !bytes.Equal(first.metrics, got.metrics) {
			t.Fatalf("metrics differ between identical runs:\n%s\nvs\n%s", first.metrics, got.metrics)
		}
		if !bytes.Equal(first.series, got.series) {
			t.Fatalf("series differ between identical runs:\n%s\nvs\n%s", first.series, got.series)
		}
	}
	// The per-tenant breakdown and quota series must actually be present.
	for _, name := range []string{
		`"service.tenant.a.jobs_submitted"`,
		`"service.tenant.b.jobs_done"`,
	} {
		if !bytes.Contains(first.metrics, []byte(name)) {
			t.Errorf("metrics missing per-tenant counter %s", name)
		}
	}
	for _, name := range []string{
		`"quota.reserved_bytes.a"`,
		`"quota.headroom_bytes.b"`,
		`"service.submitted.a"`,
		`"service.queue_depth"`,
	} {
		if !bytes.Contains(first.series, []byte(name)) {
			t.Errorf("series missing %s", name)
		}
	}
}

// TestServiceWatchFollow exercises follow mode: a watcher attached before
// the step loop starts must stream events live and terminate once the
// service goes idle, having seen every job reach a terminal state.
func TestServiceWatchFollow(t *testing.T) {
	s := newServer(Config{MaxActive: 1})
	defer s.Close()
	submitOK(t, s, "a", okSpec, "")
	submitOK(t, s, "b", okSpec, "")

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/watch?follow=1", nil))
		done <- w
	}()
	go s.loop()
	s.WaitIdle()
	w := <-done

	terminal := 0
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	sc.Scan() // header
	for sc.Scan() {
		var ev WatchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "lifecycle" && ev.State == StateDone {
			terminal++
		}
	}
	if terminal != 2 {
		t.Fatalf("follow stream saw %d terminal jobs, want 2", terminal)
	}
}
