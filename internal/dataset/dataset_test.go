package dataset

import (
	"testing"
	"testing/quick"
)

func intRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func TestFromRowsPartitioning(t *testing.T) {
	d := FromRows("t", intRows(10), 3, 8)
	if d.NumPartitions() != 3 {
		t.Fatalf("partitions = %d, want 3", d.NumPartitions())
	}
	if d.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", d.NumRows())
	}
	if d.VirtualBytes() != 80 {
		t.Fatalf("virtual bytes = %d, want 80", d.VirtualBytes())
	}
}

func TestFromRowsPanicsOnZeroParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows("t", intRows(3), 0, 1)
}

func TestRowsPreservesOrder(t *testing.T) {
	d := FromRows("t", intRows(17), 4, 1)
	for i, r := range d.Rows() {
		if r.(int) != i {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestFreshIDs(t *testing.T) {
	a := New("a")
	b := New("b")
	if a.ID == b.ID {
		t.Fatal("dataset IDs must be unique")
	}
}

func TestConcatCombinesPartitions(t *testing.T) {
	a := FromRows("a", intRows(4), 2, 10)
	b := FromRows("b", intRows(6), 3, 10)
	c := Concat("c", a, nil, b)
	if c.NumPartitions() != 5 {
		t.Fatalf("partitions = %d, want 5", c.NumPartitions())
	}
	if c.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", c.NumRows())
	}
	if c.VirtualBytes() != a.VirtualBytes()+b.VirtualBytes() {
		t.Fatal("concat must preserve total virtual size")
	}
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatal("concat must mint a fresh ID")
	}
}

func TestSetVirtualBytesSpreadsExactly(t *testing.T) {
	d := FromRows("t", intRows(9), 4, 0)
	d.SetVirtualBytes(1003)
	if got := d.VirtualBytes(); got != 1003 {
		t.Fatalf("total = %d, want 1003", got)
	}
}

func TestScaleVirtualBytes(t *testing.T) {
	d := FromRows("t", intRows(8), 2, 100)
	d.ScaleVirtualBytes(0.5)
	if got := d.VirtualBytes(); got != 400 {
		t.Fatalf("scaled total = %d, want 400", got)
	}
}

func TestRepartitionPreservesRowsAndBytes(t *testing.T) {
	d := FromRows("t", intRows(10), 2, 7)
	r := d.Repartition(5)
	if r.NumPartitions() != 5 {
		t.Fatalf("partitions = %d, want 5", r.NumPartitions())
	}
	if r.NumRows() != 10 || r.VirtualBytes() != d.VirtualBytes() {
		t.Fatal("repartition must preserve rows and bytes")
	}
}

func TestPartKeyIdentity(t *testing.T) {
	d := FromRows("t", intRows(4), 2, 1)
	if d.Key(0) == d.Key(1) {
		t.Fatal("partition keys must differ by index")
	}
	e := FromRows("t", intRows(4), 2, 1)
	if d.Key(0) == e.Key(0) {
		t.Fatal("partition keys must differ by dataset")
	}
}

// Property: for any row count and partition count, FromRows loses no rows,
// assigns every row exactly once, and SetVirtualBytes distributes exactly.
func TestFromRowsProperties(t *testing.T) {
	f := func(nRows uint8, nParts uint8, total uint32) bool {
		n := int(nRows)
		p := int(nParts)%8 + 1
		d := FromRows("q", intRows(n), p, 1)
		if d.NumRows() != n || d.NumPartitions() != p {
			return false
		}
		for i, r := range d.Rows() {
			if r.(int) != i {
				return false
			}
		}
		d.SetVirtualBytes(int64(total))
		return d.VirtualBytes() == int64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concatenation is associative with respect to rows and sizes.
func TestConcatAssociativeProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		da := FromRows("a", intRows(int(a)), int(a)%3+1, 2)
		db := FromRows("b", intRows(int(b)), int(b)%3+1, 3)
		dc := FromRows("c", intRows(int(c)), int(c)%3+1, 4)
		left := Concat("l", Concat("ab", da, db), dc)
		right := Concat("r", da, Concat("bc", db, dc))
		if left.NumRows() != right.NumRows() {
			return false
		}
		return left.VirtualBytes() == right.VirtualBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	d := FromRows("t", intRows(4), 2, 8)
	if s := d.String(); s == "" {
		t.Error("empty dataset string")
	}
	if s := d.Key(1).String(); s == "" {
		t.Error("empty part key string")
	}
	if d.Parts[0].NumRows() != 2 {
		t.Errorf("partition rows = %d, want 2", d.Parts[0].NumRows())
	}
}

func TestSetVirtualBytesEmptyDataset(t *testing.T) {
	d := New("empty")
	d.SetVirtualBytes(100) // must not panic
	if d.VirtualBytes() != 0 {
		t.Error("empty dataset cannot hold bytes")
	}
}
