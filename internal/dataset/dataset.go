// Package dataset implements the data model of the meta-dataflow paper
// (App. A): finite datasets of an opaque domain that can be partitioned
// across cluster nodes and concatenated with ⊕.
//
// A dataset carries two notions of size. The in-process payload (Rows) is
// real data that operator functions transform, so that downstream decisions
// such as choose scores are computed from genuine results. The virtual size
// (VirtualBytes) is the number of bytes the simulated cluster accounts for
// when charging I/O time and memory occupancy; it lets benchmarks process
// "gigabytes" per worker without holding gigabytes in RAM.
package dataset

import (
	"fmt"
	"sync/atomic"
)

// Row is a single data item. The model imposes no structure on rows
// (§2.1 "without imposing assumptions on the structure of data");
// workloads define concrete row types.
type Row any

// ID uniquely identifies a dataset within an engine run.
type ID int64

var nextID atomic.Int64

// NewID returns a fresh process-unique dataset ID.
func NewID() ID { return ID(nextID.Add(1)) }

// Partition is a horizontal fragment of a dataset, resident on one node.
type Partition struct {
	// Rows is the real payload the operators compute over.
	Rows []Row
	// VirtualBytes is the size the cluster simulator accounts for.
	VirtualBytes int64
}

// NumRows returns the number of rows in the partition.
func (p *Partition) NumRows() int { return len(p.Rows) }

// Dataset is a named, partitioned collection of rows.
type Dataset struct {
	ID    ID
	Name  string
	Parts []*Partition
}

// New creates an empty dataset with a fresh ID.
func New(name string) *Dataset {
	return &Dataset{ID: NewID(), Name: name}
}

// FromRows builds a dataset by splitting rows into parts partitions of
// near-equal length. The virtual size is bytesPerRow × row count, spread
// proportionally over the partitions. parts must be >= 1.
func FromRows(name string, rows []Row, parts int, bytesPerRow int64) *Dataset {
	if parts < 1 {
		panic("dataset: parts must be >= 1")
	}
	d := New(name)
	n := len(rows)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		pr := rows[lo:hi]
		d.Parts = append(d.Parts, &Partition{
			Rows:         pr,
			VirtualBytes: int64(len(pr)) * bytesPerRow,
		})
	}
	return d
}

// NumPartitions returns the number of partitions.
func (d *Dataset) NumPartitions() int { return len(d.Parts) }

// NumRows returns the total number of rows across partitions.
func (d *Dataset) NumRows() int {
	n := 0
	for _, p := range d.Parts {
		n += len(p.Rows)
	}
	return n
}

// VirtualBytes returns the total accounted size of the dataset.
func (d *Dataset) VirtualBytes() int64 {
	var b int64
	for _, p := range d.Parts {
		b += p.VirtualBytes
	}
	return b
}

// Rows returns all rows of the dataset in partition order. The returned
// slice is freshly allocated.
func (d *Dataset) Rows() []Row {
	out := make([]Row, 0, d.NumRows())
	for _, p := range d.Parts {
		out = append(out, p.Rows...)
	}
	return out
}

// SetVirtualBytes overrides the accounted size of the dataset, spreading
// total evenly over partitions. Used by synthetic workloads that decouple
// accounted size from payload size.
func (d *Dataset) SetVirtualBytes(total int64) {
	if len(d.Parts) == 0 {
		return
	}
	per := total / int64(len(d.Parts))
	rem := total - per*int64(len(d.Parts))
	for i, p := range d.Parts {
		p.VirtualBytes = per
		if int64(i) < rem {
			p.VirtualBytes++
		}
	}
}

// ScaleVirtualBytes multiplies every partition's accounted size by f.
func (d *Dataset) ScaleVirtualBytes(f float64) {
	for _, p := range d.Parts {
		p.VirtualBytes = int64(float64(p.VirtualBytes) * f)
	}
}

// Concat implements ⊕: it concatenates the datasets into a new dataset,
// preserving partitioning. Nil inputs are skipped. The result has a fresh ID.
func Concat(name string, ds ...*Dataset) *Dataset {
	out := New(name)
	for _, d := range ds {
		if d == nil {
			continue
		}
		out.Parts = append(out.Parts, d.Parts...)
	}
	return out
}

// Repartition redistributes all rows into parts near-equal partitions,
// preserving the total virtual size.
func (d *Dataset) Repartition(parts int) *Dataset {
	if parts < 1 {
		panic("dataset: parts must be >= 1")
	}
	total := d.VirtualBytes()
	rows := d.Rows()
	out := New(d.Name)
	n := len(rows)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		out.Parts = append(out.Parts, &Partition{Rows: rows[lo:hi]})
	}
	out.SetVirtualBytes(total)
	return out
}

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset(%d %q parts=%d rows=%d vbytes=%d)",
		d.ID, d.Name, d.NumPartitions(), d.NumRows(), d.VirtualBytes())
}

// PartKey identifies one partition of one dataset; the cluster simulator and
// memory manager key residency information by PartKey.
type PartKey struct {
	Dataset ID
	Index   int
}

// Key returns the PartKey for partition i of the dataset.
func (d *Dataset) Key(i int) PartKey { return PartKey{Dataset: d.ID, Index: i} }

// String implements fmt.Stringer.
func (k PartKey) String() string { return fmt.Sprintf("d%d/p%d", k.Dataset, k.Index) }
