package mdf

import (
	"sort"
	"testing"
	"testing/quick"

	"metadataflow/internal/dataset"
)

func offerAll(t *testing.T, sel Selector, scores []float64) (selected []int, discards []int, doneAt int) {
	t.Helper()
	s := sel.NewSession(len(scores))
	doneAt = -1
	for i, sc := range scores {
		d, done := s.Offer(i, sc)
		discards = append(discards, d...)
		if done && doneAt == -1 {
			doneAt = i
		}
	}
	return s.Selected(), discards, doneAt
}

func TestTopKSelectsHighest(t *testing.T) {
	sel, _, done := offerAll(t, TopK(2), []float64{3, 9, 1, 7, 5})
	if done != -1 {
		t.Fatal("top-k is exhaustive: must not finish early")
	}
	if want := []int{1, 3}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
}

func TestTopKDiscardsIncrementally(t *testing.T) {
	s := TopK(1).NewSession(3)
	if d, _ := s.Offer(0, 5); len(d) != 0 {
		t.Fatal("first offer cannot discard")
	}
	if d, _ := s.Offer(1, 9); !equal(d, []int{0}) {
		t.Fatalf("losing branch 0 should be discarded, got %v", d)
	}
	if d, _ := s.Offer(2, 1); !equal(d, []int{2}) {
		t.Fatalf("branch 2 should be discarded immediately, got %v", d)
	}
}

func TestMinMaxBottomK(t *testing.T) {
	scores := []float64{4, 2, 8, 6}
	if sel, _, _ := offerAll(t, Min(), scores); !equal(sel, []int{1}) {
		t.Errorf("Min selected %v, want [1]", sel)
	}
	if sel, _, _ := offerAll(t, Max(), scores); !equal(sel, []int{2}) {
		t.Errorf("Max selected %v, want [2]", sel)
	}
	if sel, _, _ := offerAll(t, BottomK(2), scores); !equal(sel, []int{0, 1}) {
		t.Errorf("BottomK selected %v, want [0 1]", sel)
	}
}

func TestThresholdSelectsAllPassing(t *testing.T) {
	sel, discards, done := offerAll(t, Threshold(5, false), []float64{4, 6, 5, 9})
	if done != -1 {
		t.Fatal("threshold is exhaustive")
	}
	if want := []int{1, 2, 3}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
	if !equal(discards, []int{0}) {
		t.Fatalf("discards %v, want [0]", discards)
	}
}

func TestThresholdAtMost(t *testing.T) {
	sel, _, _ := offerAll(t, Threshold(5, true), []float64{4, 6, 5, 9})
	if want := []int{0, 2}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
}

func TestInterval(t *testing.T) {
	sel, _, _ := offerAll(t, Interval(3, 6), []float64{2, 3, 6.5, 4, 6})
	if want := []int{1, 3, 4}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
}

func TestKThresholdStopsEarly(t *testing.T) {
	sel, _, done := offerAll(t, KThreshold(2, 5, false), []float64{6, 1, 8, 9, 7})
	if done != 2 {
		t.Fatalf("done at offer %d, want 2 (after second pass)", done)
	}
	if want := []int{0, 2}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
}

func TestKIntervalStopsEarly(t *testing.T) {
	_, _, done := offerAll(t, KInterval(1, 2, 4), []float64{5, 3, 2})
	if done != 1 {
		t.Fatalf("done at %d, want 1", done)
	}
}

func TestModeSelectsMostFrequent(t *testing.T) {
	sel, discards, done := offerAll(t, Mode(), []float64{2, 3, 2, 3, 2})
	if want := []int{0, 2, 4}; !equal(sel, want) {
		t.Fatalf("selected %v, want %v", sel, want)
	}
	// Mode discards only at the final offer.
	if done != 4 {
		t.Fatalf("mode done at %d, want 4", done)
	}
	if !equal(discards, []int{1, 3}) {
		t.Fatalf("discards %v, want [1 3]", discards)
	}
}

func TestModeIncompleteSelectsNothing(t *testing.T) {
	s := Mode().NewSession(3)
	s.Offer(0, 1)
	if sel := s.Selected(); sel != nil {
		t.Fatalf("incomplete mode session selected %v", sel)
	}
}

func TestSelectorProperties(t *testing.T) {
	cases := []struct {
		sel           Selector
		assoc, nonExh bool
	}{
		{TopK(3), true, false},
		{Min(), true, false},
		{Max(), true, false},
		{Threshold(1, false), true, false},
		{Interval(0, 1), true, false},
		{KThreshold(2, 1, false), true, true},
		{KInterval(2, 0, 1), true, true},
		{Mode(), false, false},
	}
	for _, c := range cases {
		if c.sel.Associative() != c.assoc {
			t.Errorf("%s: associative = %v, want %v", c.sel.Name(), c.sel.Associative(), c.assoc)
		}
		if c.sel.NonExhaustive() != c.nonExh {
			t.Errorf("%s: non-exhaustive = %v, want %v", c.sel.Name(), c.sel.NonExhaustive(), c.nonExh)
		}
	}
}

func TestSelectorPanicsOnBadK(t *testing.T) {
	for _, f := range []func(){
		func() { TopK(0) },
		func() { BottomK(0) },
		func() { KThreshold(0, 1, false) },
		func() { KInterval(0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for k < 1")
				}
			}()
			f()
		}()
	}
}

func dsOfSize(n int) *dataset.Dataset {
	rows := make([]dataset.Row, n)
	return dataset.FromRows("d", rows, 1, 1)
}

func TestEvaluators(t *testing.T) {
	if got := SizeEvaluator().Score(dsOfSize(7)); got != 7 {
		t.Errorf("SizeEvaluator = %v, want 7", got)
	}
	if got := RatioEvaluator(10).Score(dsOfSize(5)); got != 0.5 {
		t.Errorf("RatioEvaluator = %v, want 0.5", got)
	}
	if got := RatioEvaluator(0).Score(dsOfSize(5)); got != 0 {
		t.Errorf("RatioEvaluator with zero baseline = %v, want 0", got)
	}
	fe := FuncEvaluator("const", func(*dataset.Dataset) float64 { return 42 })
	if got := fe.Score(nil); got != 42 {
		t.Errorf("FuncEvaluator = %v, want 42", got)
	}
}

// TestMonotonePruning: with a monotone evaluator, sorted execution order and
// top-1 selection, the session reports done once scores decline past the
// current best (Tab. 1 row 1).
func TestMonotonePruning(t *testing.T) {
	eval := Evaluator{Name: "m", Monotone: true, Fn: func(*dataset.Dataset) float64 { return 0 }}
	c := NewChooser(eval, TopK(1))
	s := c.NewSession(6)
	s.(OrderAware).SetSortedOrder(true)
	scores := []float64{10, 8, 6, 4, 2, 1} // monotone decreasing
	doneAt := -1
	for i, sc := range scores {
		if _, done := s.Offer(i, sc); done {
			doneAt = i
			break
		}
	}
	if doneAt == -1 || doneAt == len(scores)-1 {
		t.Fatalf("monotone pruning should stop early, done at %d", doneAt)
	}
	if sel := s.Selected(); !equal(sel, []int{0}) {
		t.Fatalf("selected %v, want [0]", sel)
	}
}

// TestMonotonePruningInactiveWithoutSortedOrder: without the sorted-order
// declaration the wrapper must not prune.
func TestMonotonePruningInactiveWithoutSortedOrder(t *testing.T) {
	eval := Evaluator{Name: "m", Monotone: true, Fn: func(*dataset.Dataset) float64 { return 0 }}
	c := NewChooser(eval, TopK(1))
	s := c.NewSession(6)
	for i, sc := range []float64{10, 8, 6, 4, 2, 1} {
		if _, done := s.Offer(i, sc); done {
			t.Fatalf("pruned at %d without sorted order", i)
		}
	}
}

// TestConvexPruning: a convex evaluator with min selection stops after the
// valley has clearly been passed (Tab. 1 row 2).
func TestConvexPruning(t *testing.T) {
	eval := Evaluator{Name: "c", Convex: true, Fn: func(*dataset.Dataset) float64 { return 0 }}
	c := NewChooser(eval, Min())
	s := c.NewSession(7)
	s.(OrderAware).SetSortedOrder(true)
	scores := []float64{9, 5, 2, 4, 7, 9, 11} // valley at index 2
	doneAt := -1
	for i, sc := range scores {
		if _, done := s.Offer(i, sc); done {
			doneAt = i
			break
		}
	}
	if doneAt == -1 || doneAt == len(scores)-1 {
		t.Fatalf("convex pruning should stop early, done at %d", doneAt)
	}
	if sel := s.Selected(); !equal(sel, []int{2}) {
		t.Fatalf("selected %v, want [2] (the valley)", sel)
	}
}

// TestNonAssociativeNeverWrapped: mode must not get property pruning even
// with a monotone evaluator.
func TestNonAssociativeNeverWrapped(t *testing.T) {
	eval := Evaluator{Name: "m", Monotone: true, Fn: func(*dataset.Dataset) float64 { return 0 }}
	c := NewChooser(eval, Mode())
	s := c.NewSession(4)
	if _, ok := s.(OrderAware); ok {
		t.Fatal("mode session must not be order-aware")
	}
}

func TestChooserPropertyForwarding(t *testing.T) {
	c := NewChooser(Evaluator{Monotone: true, Fn: func(*dataset.Dataset) float64 { return 1 }}, KThreshold(1, 0, false))
	if !c.Associative() || !c.NonExhaustive() || !c.MonotoneEval() || c.ConvexEval() {
		t.Fatal("chooser must forward evaluator/selector properties")
	}
	if c.Score(nil) != 1 {
		t.Fatal("chooser must forward scoring")
	}
}

// Property: for any scores, top-k selects exactly min(k, n) branches and
// they are the k best under the selector's ordering.
func TestTopKSelectionProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw)%4 + 1
		scores := make([]float64, len(raw))
		for i, r := range raw {
			scores[i] = float64(r)
		}
		s := TopK(k).NewSession(len(scores))
		for i, sc := range scores {
			s.Offer(i, sc)
		}
		sel := s.Selected()
		want := k
		if len(scores) < k {
			want = len(scores)
		}
		if len(sel) != want {
			return false
		}
		// Every selected score >= every unselected score.
		inSel := map[int]bool{}
		for _, b := range sel {
			inSel[b] = true
		}
		minSel := -1.0
		for _, b := range sel {
			if minSel < 0 || scores[b] < minSel {
				minSel = scores[b]
			}
		}
		for i, sc := range scores {
			if !inSel[i] && sc > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a session's discards and final selection are disjoint, and
// discards are never repeated.
func TestDiscardSelectionDisjointProperty(t *testing.T) {
	selectors := []Selector{TopK(2), Min(), Threshold(100, false), KThreshold(2, 100, false), Mode()}
	f := func(raw []uint16, which uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sel := selectors[int(which)%len(selectors)]
		s := sel.NewSession(len(raw))
		seen := map[int]bool{}
		done := false
		var offered int
		for i, r := range raw {
			if done {
				break
			}
			var d []int
			d, done = s.Offer(i, float64(r))
			offered++
			for _, b := range d {
				if seen[b] {
					return false // double discard
				}
				seen[b] = true
			}
		}
		for _, b := range s.Selected() {
			if seen[b] {
				return false // selected a discarded branch
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
