package mdf

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

// This file provides common operator-function constructors. Transform
// functions receive the predecessor outputs in edge order and must produce a
// dataset with accounted partition sizes; the helpers here preserve or scale
// the input's virtual sizes so the cluster simulator charges realistic I/O.

// SourceFromDataset returns a source function that emits a fixed dataset.
// Each invocation re-emits the same payload with a fresh dataset identity so
// that independent jobs account their inputs separately.
func SourceFromDataset(d *dataset.Dataset) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 0 {
			return nil, fmt.Errorf("mdf: source received %d inputs", len(ins))
		}
		out := dataset.New(d.Name)
		out.Parts = append(out.Parts, d.Parts...)
		return out, nil
	}
}

// SourceFunc returns a source function that calls gen on every invocation.
func SourceFunc(gen func() *dataset.Dataset) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 0 {
			return nil, fmt.Errorf("mdf: source received %d inputs", len(ins))
		}
		return gen(), nil
	}
}

// MapRows returns a transform applying f to every row, preserving
// partitioning and scaling each partition's accounted size by sizeScale
// (1.0 keeps the input size).
func MapRows(name string, sizeScale float64, f func(dataset.Row) dataset.Row) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 1 {
			return nil, fmt.Errorf("mdf: %s expects one input, got %d", name, len(ins))
		}
		in := ins[0]
		out := dataset.New(name)
		for _, p := range in.Parts {
			rows := make([]dataset.Row, len(p.Rows))
			for i, r := range p.Rows {
				rows[i] = f(r)
			}
			out.Parts = append(out.Parts, &dataset.Partition{
				Rows:         rows,
				VirtualBytes: int64(float64(p.VirtualBytes) * sizeScale),
			})
		}
		return out, nil
	}
}

// FilterRows returns a transform keeping the rows for which pred holds,
// scaling each partition's accounted size by the fraction of rows kept.
func FilterRows(name string, pred func(dataset.Row) bool) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 1 {
			return nil, fmt.Errorf("mdf: %s expects one input, got %d", name, len(ins))
		}
		in := ins[0]
		out := dataset.New(name)
		for _, p := range in.Parts {
			var rows []dataset.Row
			for _, r := range p.Rows {
				if pred(r) {
					rows = append(rows, r)
				}
			}
			vb := int64(0)
			if len(p.Rows) > 0 {
				vb = int64(float64(p.VirtualBytes) * float64(len(rows)) / float64(len(p.Rows)))
			}
			out.Parts = append(out.Parts, &dataset.Partition{Rows: rows, VirtualBytes: vb})
		}
		return out, nil
	}
}

// WholeDataset returns a transform applying f to the single input dataset
// as a whole (for aggregations and model training).
func WholeDataset(name string, f func(in *dataset.Dataset) (*dataset.Dataset, error)) graph.TransformFunc {
	return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		if len(ins) != 1 {
			return nil, fmt.Errorf("mdf: %s expects one input, got %d", name, len(ins))
		}
		return f(ins[0])
	}
}

// Identity returns a transform forwarding its input unchanged under a new
// dataset identity.
func Identity(name string) graph.TransformFunc {
	return MapRows(name, 1.0, func(r dataset.Row) dataset.Row { return r })
}
