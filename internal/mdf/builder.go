package mdf

import (
	"fmt"

	"metadataflow/internal/graph"
)

// Builder constructs MDF graphs fluently, mirroring the EXPLORE/CHOOSE
// syntax of the paper's Scala listings (Figs. 3b, 21–23). Errors are
// deferred and reported by Build.
type Builder struct {
	g   *graph.Graph
	err error
}

// NewBuilder returns an empty MDF builder.
func NewBuilder() *Builder { return &Builder{g: graph.New()} }

// Node is a builder handle to an operator, used to chain further operators.
type Node struct {
	b          *Builder
	op         *graph.Operator
	branchSpec *BranchSpec // set on explore forks: labels the next operator
}

// BranchSpec describes one explorable setting: a human-readable label and a
// numeric hint the scheduler can sort branches by (§4.2).
type BranchSpec struct {
	Label string
	Hint  float64
}

// Branches builds a BranchSpec slice from labels with hints 0..n-1.
func Branches(labels ...string) []BranchSpec {
	out := make([]BranchSpec, len(labels))
	for i, l := range labels {
		out[i] = BranchSpec{Label: l, Hint: float64(i)}
	}
	return out
}

// fail records the first error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Source adds a source operator (|•v| = 0) producing the job's input.
func (b *Builder) Source(name string, fn graph.TransformFunc, costPerMB float64) *Node {
	op := b.g.Add(&graph.Operator{Name: name, Kind: graph.KindSource, Transform: fn, CostPerMB: costPerMB})
	return &Node{b: b, op: op}
}

// Then appends a transform connected by a narrow dependency.
func (n *Node) Then(name string, fn graph.TransformFunc, costPerMB float64) *Node {
	return n.then(name, fn, costPerMB, graph.Narrow)
}

// ThenWide appends a transform connected by a wide dependency, forcing a
// stage boundary (e.g. a group-by).
func (n *Node) ThenWide(name string, fn graph.TransformFunc, costPerMB float64) *Node {
	return n.then(name, fn, costPerMB, graph.Wide)
}

func (n *Node) then(name string, fn graph.TransformFunc, costPerMB float64, dep graph.DepKind) *Node {
	if n == nil || n.b == nil {
		return n
	}
	op := n.b.g.Add(&graph.Operator{Name: name, Kind: graph.KindTransform, Transform: fn, CostPerMB: costPerMB})
	if n.branchSpec != nil {
		op.BranchLabel = n.branchSpec.Label
		op.Hint = n.branchSpec.Hint
	}
	if err := n.b.g.Connect(n.op, op, dep); err != nil {
		n.b.fail("mdf: %v", err)
	}
	return &Node{b: n.b, op: op}
}

// Explore opens an exploration scope with one branch per spec (Def. 3.2)
// and closes it with a choose applying the given chooser (Def. 3.3). The
// body builds each branch from the provided start node and must return the
// branch's final node. Nested Explore calls inside the body create nested
// scopes. The returned node is the choose operator's output.
func (n *Node) Explore(name string, specs []BranchSpec, chooser *Chooser, body func(start *Node, spec BranchSpec) *Node) *Node {
	if n == nil || n.b == nil {
		return n
	}
	b := n.b
	if len(specs) < 2 {
		b.fail("mdf: explore %q needs at least two branches, got %d", name, len(specs))
		return n
	}
	if chooser == nil {
		b.fail("mdf: explore %q has nil chooser", name)
		return n
	}
	exp := b.g.Add(&graph.Operator{Name: name, Kind: graph.KindExplore})
	if n.branchSpec != nil {
		exp.BranchLabel = n.branchSpec.Label
		exp.Hint = n.branchSpec.Hint
	}
	if err := b.g.Connect(n.op, exp, graph.Narrow); err != nil {
		b.fail("mdf: %v", err)
	}
	ends := make([]*Node, 0, len(specs))
	for i := range specs {
		spec := specs[i]
		start := &Node{b: b, op: exp, branchSpec: &spec}
		end := body(start, spec)
		if end == nil || end.op == exp {
			b.fail("mdf: branch %q of explore %q is empty", spec.Label, name)
			return n
		}
		ends = append(ends, end)
	}
	choose := b.g.Add(&graph.Operator{
		Name:      name + "/choose",
		Kind:      graph.KindChoose,
		Chooser:   chooser,
		CostPerMB: chooser.Eval.CostPerMB,
	})
	for _, end := range ends {
		if err := b.g.Connect(end.op, choose, graph.Wide); err != nil {
			b.fail("mdf: %v", err)
		}
	}
	return &Node{b: b, op: choose}
}

// Merge appends a transform consuming this node's output together with the
// outputs of the given other nodes (edge order: this node first). The
// transform function receives the inputs in that order. Merges create
// diamond-shaped dataflows, e.g. joining a profile computed on one path with
// the cleaned data of another.
func (n *Node) Merge(name string, fn graph.TransformFunc, costPerMB float64, others ...*Node) *Node {
	if n == nil || n.b == nil {
		return n
	}
	b := n.b
	op := b.g.Add(&graph.Operator{Name: name, Kind: graph.KindTransform, Transform: fn, CostPerMB: costPerMB})
	if n.branchSpec != nil {
		op.BranchLabel = n.branchSpec.Label
		op.Hint = n.branchSpec.Hint
	}
	if err := b.g.Connect(n.op, op, graph.Wide); err != nil {
		b.fail("mdf: %v", err)
	}
	for _, o := range others {
		if o == nil {
			b.fail("mdf: merge %q with nil input", name)
			return &Node{b: b, op: op}
		}
		if err := b.g.Connect(o.op, op, graph.Wide); err != nil {
			b.fail("mdf: %v", err)
		}
	}
	return &Node{b: b, op: op}
}

// Op exposes the underlying operator (for tests and tooling).
func (n *Node) Op() *graph.Operator { return n.op }

// Build validates and returns the constructed graph.
func (b *Builder) Build() (*graph.Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// Graph returns the graph without validation (for tooling that renders
// partial graphs).
func (b *Builder) Graph() *graph.Graph { return b.g }
