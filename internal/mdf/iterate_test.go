package mdf

import (
	"fmt"
	"testing"

	"metadataflow/internal/dataset"
)

func iterInput() *dataset.Dataset {
	rows := make([]dataset.Row, 64)
	for i := range rows {
		rows[i] = float64(1)
	}
	d := dataset.FromRows("x", rows, 2, 8)
	d.SetVirtualBytes(1 << 24)
	return d
}

// applyChain runs the unrolled rounds directly through the transform
// functions of a built graph path.
func buildIterGraph(t *testing.T, spec IterationSpec, branches int, divergeBranch int) ([]*dataset.Dataset, error) {
	t.Helper()
	// Build explore over branches; branch i multiplies values by (i+1) per
	// round; the diverge predicate flags branch divergeBranch.
	b := NewBuilder()
	src := b.Source("src", SourceFromDataset(iterInput()), 0.001)
	specs := make([]BranchSpec, branches)
	for i := range specs {
		specs[i] = BranchSpec{Label: fmt.Sprintf("b%d", i), Hint: float64(i)}
	}
	out := src.Explore("iter", specs, NewChooser(SizeEvaluator(), Max()),
		func(start *Node, bs BranchSpec) *Node {
			factor := bs.Hint + 1
			s := spec
			s.Step = func(round int, d *dataset.Dataset) (*dataset.Dataset, error) {
				return MapRows("step", 1.0, func(r dataset.Row) dataset.Row {
					return r.(float64) * factor
				})([]*dataset.Dataset{d})
			}
			s.Diverged = func(round int, d *dataset.Dataset) bool {
				return int(bs.Hint) == divergeBranch && round >= 2
			}
			return start.Iterate(s)
		})
	out.Then("sink", Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Execute transform chain manually for each branch (no engine needed):
	// walk from explore successors.
	scopes, err := g.MatchScopes()
	if err != nil {
		return nil, err
	}
	var results []*dataset.Dataset
	input, _ := SourceFromDataset(iterInput())(nil)
	for _, branch := range scopes[0].Branches {
		cur := input
		for _, opID := range branch {
			op := g.Op(opID)
			next, err := op.Transform([]*dataset.Dataset{cur})
			if err != nil {
				return nil, err
			}
			cur = next
		}
		results = append(results, cur)
	}
	return results, nil
}

func TestIterateRunsAllRounds(t *testing.T) {
	spec := IterationSpec{Name: "fix", Rounds: 3, CostPerMB: 0.01}
	results, err := buildIterGraph(t, spec, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Branch i multiplies by (i+1) three times: values (i+1)^3.
	for i, res := range results {
		want := float64((i + 1) * (i + 1) * (i + 1))
		if got := res.Rows()[0].(float64); got != want {
			t.Errorf("branch %d value = %v, want %v", i, got, want)
		}
	}
}

func TestIterateTerminatesDivergedBranch(t *testing.T) {
	spec := IterationSpec{Name: "fix", Rounds: 5, CostPerMB: 0.01}
	results, err := buildIterGraph(t, spec, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Terminated(results[1]) {
		t.Error("diverged branch should end terminated")
	}
	if Terminated(results[0]) || Terminated(results[2]) {
		t.Error("converging branches must not be terminated")
	}
	// The terminated marker carries no accounted bytes: remaining rounds
	// are effectively free.
	if results[1].VirtualBytes() != 0 {
		t.Errorf("terminated marker has %d accounted bytes, want 0", results[1].VirtualBytes())
	}
}

func TestIterateValidation(t *testing.T) {
	if err := (IterationSpec{Name: "x", Rounds: 0, Step: nil}).Validate(); err == nil {
		t.Error("rounds=0 accepted")
	}
	if err := (IterationSpec{Name: "x", Rounds: 1}).Validate(); err == nil {
		t.Error("nil step accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Iterate should panic on invalid spec")
		}
	}()
	b := NewBuilder()
	b.Source("src", SourceFromDataset(iterInput()), 0.001).Iterate(IterationSpec{Rounds: 0})
}
