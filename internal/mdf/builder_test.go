package mdf

import (
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

func srcFn() graph.TransformFunc {
	return SourceFunc(func() *dataset.Dataset {
		rows := make([]dataset.Row, 10)
		for i := range rows {
			rows[i] = i
		}
		return dataset.FromRows("in", rows, 2, 8)
	})
}

func TestBuilderLinearChain(t *testing.T) {
	b := NewBuilder()
	b.Source("src", srcFn(), 0.001).
		Then("a", Identity("a"), 0.001).
		ThenWide("b", Identity("b"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 3 {
		t.Fatalf("ops = %d, want 3", g.NumOps())
	}
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Wide dep forces a boundary: [src, a], [b].
	if len(plan.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(plan.Stages))
	}
}

func TestBuilderExploreStructure(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	out := src.Explore("e", Branches("x", "y"), NewChooser(SizeEvaluator(), Max()),
		func(start *Node, spec BranchSpec) *Node {
			return start.Then("f-"+spec.Label, Identity("f"), 0.001)
		})
	out.Then("sink", Identity("s"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 1 || len(scopes[0].Branches) != 2 {
		t.Fatalf("unexpected scope structure: %+v", scopes)
	}
	// Branch heads carry label and hint.
	heads := g.Post(scopes[0].Explore)
	if heads[0].BranchLabel != "x" || heads[1].BranchLabel != "y" {
		t.Errorf("branch labels = %q, %q", heads[0].BranchLabel, heads[1].BranchLabel)
	}
	if heads[1].Hint != 1 {
		t.Errorf("branch hint = %v, want 1", heads[1].Hint)
	}
}

func TestBuilderRejectsSingleBranch(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	src.Explore("e", Branches("only"), NewChooser(SizeEvaluator(), Max()),
		func(start *Node, spec BranchSpec) *Node {
			return start.Then("f", Identity("f"), 0.001)
		})
	if _, err := b.Build(); err == nil {
		t.Fatal("single-branch explore accepted")
	}
}

func TestBuilderRejectsNilChooser(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	src.Explore("e", Branches("x", "y"), nil,
		func(start *Node, spec BranchSpec) *Node {
			return start.Then("f", Identity("f"), 0.001)
		})
	if _, err := b.Build(); err == nil {
		t.Fatal("nil chooser accepted")
	}
}

func TestBuilderRejectsEmptyBranch(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	src.Explore("e", Branches("x", "y"), NewChooser(SizeEvaluator(), Max()),
		func(start *Node, spec BranchSpec) *Node {
			return start // empty branch body
		})
	if _, err := b.Build(); err == nil {
		t.Fatal("empty branch accepted")
	}
}

func TestBuilderNestedScopes(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	out := src.Explore("outer", Branches("A", "B"), NewChooser(SizeEvaluator(), Max()),
		func(start *Node, spec BranchSpec) *Node {
			mid := start.Then("m"+spec.Label, Identity("m"), 0.001)
			return mid.Explore("inner"+spec.Label, Branches("x", "y"),
				NewChooser(SizeEvaluator(), Max()),
				func(inner *Node, ispec BranchSpec) *Node {
					return inner.Then("f"+spec.Label+ispec.Label, Identity("f"), 0.001)
				})
		})
	out.Then("sink", Identity("s"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 3 {
		t.Fatalf("scopes = %d, want 3 (1 outer + 2 inner)", len(scopes))
	}
	depths := map[int]int{}
	for _, sc := range scopes {
		depths[sc.Depth]++
	}
	if depths[1] != 1 || depths[2] != 2 {
		t.Errorf("scope depths = %v, want 1 at depth 1 and 2 at depth 2", depths)
	}
}

func TestTransformHelpers(t *testing.T) {
	in, err := srcFn()(nil)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := MapRows("m", 0.5, func(r dataset.Row) dataset.Row { return r.(int) * 2 })([]*dataset.Dataset{in})
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Rows()[3].(int) != 6 {
		t.Errorf("MapRows result wrong: %v", mapped.Rows()[3])
	}
	if mapped.VirtualBytes() != in.VirtualBytes()/2 {
		t.Errorf("MapRows size scale: %d, want %d", mapped.VirtualBytes(), in.VirtualBytes()/2)
	}
	filtered, err := FilterRows("f", func(r dataset.Row) bool { return r.(int) < 5 })([]*dataset.Dataset{in})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.NumRows() != 5 {
		t.Errorf("FilterRows kept %d, want 5", filtered.NumRows())
	}
	if filtered.VirtualBytes() != in.VirtualBytes()/2 {
		t.Errorf("FilterRows size: %d, want half of %d", filtered.VirtualBytes(), in.VirtualBytes())
	}
	ident, err := Identity("i")([]*dataset.Dataset{in})
	if err != nil {
		t.Fatal(err)
	}
	if ident.NumRows() != in.NumRows() || ident.ID == in.ID {
		t.Error("Identity must preserve rows under a fresh identity")
	}
	whole, err := WholeDataset("w", func(d *dataset.Dataset) (*dataset.Dataset, error) {
		return dataset.FromRows("one", []dataset.Row{d.NumRows()}, 1, 4), nil
	})([]*dataset.Dataset{in})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Rows()[0].(int) != 10 {
		t.Error("WholeDataset result wrong")
	}
}

func TestTransformAritymismatch(t *testing.T) {
	in, _ := srcFn()(nil)
	if _, err := MapRows("m", 1, nil)([]*dataset.Dataset{in, in}); err == nil {
		t.Error("MapRows with 2 inputs accepted")
	}
	if _, err := SourceFromDataset(in)([]*dataset.Dataset{in}); err == nil {
		t.Error("source with inputs accepted")
	}
}

func TestSourceFromDatasetFreshIdentity(t *testing.T) {
	base, _ := srcFn()(nil)
	fn := SourceFromDataset(base)
	a, err := fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fn(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Error("each source invocation must mint a fresh dataset identity")
	}
	if a.NumRows() != base.NumRows() {
		t.Error("source must preserve payload")
	}
}
