package mdf

import (
	"fmt"
	"sort"

	"metadataflow/internal/graph"
)

// Selector is a selection function ρ_v (Def. 3.3): it picks the datasets of
// a subset of branches based on their scores. Selectors are stateless
// factories; each choose execution obtains a fresh incremental session.
//
// The property flags correspond to Tab. 1: an associative selector allows
// datasets of discarded branches to be dropped incrementally; a
// non-exhaustive selector may finalise its selection without insight into
// the remaining results, making not-yet-executed branches superfluous.
type Selector interface {
	// Name labels the selector.
	Name() string
	// Associative reports whether partial selections are valid (Tab. 1).
	Associative() bool
	// NonExhaustive reports whether the selection can complete before all
	// branches are scored (Tab. 1).
	NonExhaustive() bool
	// Better reports whether score a is preferable to score b under this
	// selector's ordering (used by property-based pruning).
	Better(a, b float64) bool
	// NewSession starts an incremental selection over total branches.
	NewSession(total int) graph.ChooseSession
}

// TopK selects the k branches with the highest scores.
func TopK(k int) Selector {
	if k < 1 {
		panic("mdf: TopK needs k >= 1")
	}
	return topK{k: k}
}

// Max selects the single branch with the highest score.
func Max() Selector { return topK{k: 1, name: "max"} }

// BottomK selects the k branches with the lowest scores.
func BottomK(k int) Selector {
	if k < 1 {
		panic("mdf: BottomK needs k >= 1")
	}
	return topK{k: k, lowest: true}
}

// Min selects the single branch with the lowest score, e.g. the branch with
// the lowest MISE in Ex. 3.4.
func Min() Selector { return topK{k: 1, lowest: true, name: "min"} }

type topK struct {
	k      int
	lowest bool
	name   string
}

func (s topK) Name() string {
	if s.name != "" {
		return s.name
	}
	if s.lowest {
		return fmt.Sprintf("bottom-%d", s.k)
	}
	return fmt.Sprintf("top-%d", s.k)
}
func (s topK) Associative() bool   { return true }
func (s topK) NonExhaustive() bool { return false }
func (s topK) Better(a, b float64) bool {
	if s.lowest {
		return a < b
	}
	return a > b
}
func (s topK) NewSession(total int) graph.ChooseSession {
	return &topKSession{sel: s, total: total}
}

type scored struct {
	branch int
	score  float64
}

type topKSession struct {
	sel     sessionOrdering
	total   int
	offered int
	kept    []scored
}

// sessionOrdering is the subset of Selector a session needs.
type sessionOrdering interface {
	Better(a, b float64) bool
}

func (s *topKSession) k() int { return s.sel.(topK).k }

func (s *topKSession) Offer(branch int, score float64) (discard []int, done bool) {
	s.offered++
	s.kept = append(s.kept, scored{branch, score})
	sort.SliceStable(s.kept, func(i, j int) bool { return s.sel.Better(s.kept[i].score, s.kept[j].score) })
	if len(s.kept) > s.k() {
		evicted := s.kept[len(s.kept)-1]
		s.kept = s.kept[:len(s.kept)-1]
		discard = []int{evicted.branch}
	}
	return discard, false
}

func (s *topKSession) Selected() []int { return branchesOf(s.kept) }

// NeverSelect reports whether a branch scoring sc — or anything worse — can
// no longer enter the selection.
func (s *topKSession) NeverSelect(sc float64) bool {
	if len(s.kept) < s.k() {
		return false
	}
	worstKept := s.kept[len(s.kept)-1].score
	return !s.sel.Better(sc, worstKept)
}

// Threshold selects every branch whose score is at least (or, when atMost is
// true, at most) the bound.
func Threshold(bound float64, atMost bool) Selector {
	return threshold{bound: bound, atMost: atMost}
}

type threshold struct {
	bound  float64
	atMost bool
}

func (s threshold) Name() string {
	if s.atMost {
		return fmt.Sprintf("threshold(<=%g)", s.bound)
	}
	return fmt.Sprintf("threshold(>=%g)", s.bound)
}
func (s threshold) Associative() bool   { return true }
func (s threshold) NonExhaustive() bool { return false }
func (s threshold) Better(a, b float64) bool {
	if s.atMost {
		return a < b
	}
	return a > b
}
func (s threshold) pass(score float64) bool {
	if s.atMost {
		return score <= s.bound
	}
	return score >= s.bound
}
func (s threshold) NewSession(total int) graph.ChooseSession {
	return &predSession{pred: s.pass, better: s.Better, total: total, k: -1}
}

// Interval selects every branch whose score falls within [lo, hi].
func Interval(lo, hi float64) Selector { return interval{lo: lo, hi: hi} }

type interval struct{ lo, hi float64 }

func (s interval) Name() string        { return fmt.Sprintf("interval[%g,%g]", s.lo, s.hi) }
func (s interval) Associative() bool   { return true }
func (s interval) NonExhaustive() bool { return false }
func (s interval) Better(a, b float64) bool {
	mid := (s.lo + s.hi) / 2
	da, db := abs(a-mid), abs(b-mid)
	return da < db
}
func (s interval) pass(score float64) bool { return score >= s.lo && score <= s.hi }
func (s interval) NewSession(total int) graph.ChooseSession {
	return &predSession{pred: s.pass, better: s.Better, total: total, k: -1}
}

// KThreshold selects the first k branches (in execution order) whose scores
// satisfy the threshold; once k are found, the remaining branches are
// superfluous (Tab. 1: associative and non-exhaustive).
func KThreshold(k int, bound float64, atMost bool) Selector {
	if k < 1 {
		panic("mdf: KThreshold needs k >= 1")
	}
	return kPred{k: k, base: threshold{bound: bound, atMost: atMost}}
}

// KInterval selects the first k branches whose scores fall within [lo, hi].
func KInterval(k int, lo, hi float64) Selector {
	if k < 1 {
		panic("mdf: KInterval needs k >= 1")
	}
	return kPred{k: k, base: interval{lo: lo, hi: hi}}
}

type predicated interface {
	Selector
	pass(float64) bool
}

type kPred struct {
	k    int
	base predicated
}

func (s kPred) Name() string             { return fmt.Sprintf("first-%d %s", s.k, s.base.Name()) }
func (s kPred) Associative() bool        { return true }
func (s kPred) NonExhaustive() bool      { return true }
func (s kPred) Better(a, b float64) bool { return s.base.Better(a, b) }
func (s kPred) NewSession(total int) graph.ChooseSession {
	return &predSession{pred: s.base.pass, better: s.base.Better, total: total, k: s.k}
}

// predSession selects branches passing a predicate; with k >= 0 it stops
// after k passing branches (the first-k semantics of k-threshold and
// k-interval).
type predSession struct {
	pred    func(float64) bool
	better  func(a, b float64) bool
	total   int
	k       int // -1: unbounded
	offered int
	kept    []scored
	done    bool
}

func (s *predSession) Offer(branch int, score float64) (discard []int, done bool) {
	s.offered++
	if s.done {
		return []int{branch}, true
	}
	if !s.pred(score) {
		return []int{branch}, false
	}
	s.kept = append(s.kept, scored{branch, score})
	if s.k >= 0 && len(s.kept) >= s.k {
		s.done = true
		return nil, true
	}
	return nil, false
}

func (s *predSession) Selected() []int { return branchesOf(s.kept) }

// NeverSelect: once a score fails the predicate, an equal-or-worse score
// fails it too (predicates are monotone in the preference order for
// threshold; for interval this holds on the worsening side).
func (s *predSession) NeverSelect(sc float64) bool { return !s.pred(sc) }

// Mode selects the branches whose score equals the most frequent score.
// Mode is not associative (Tab. 1): no dataset can be discarded until all
// branches are scored.
func Mode() Selector { return mode{} }

type mode struct{}

func (mode) Name() string             { return "mode" }
func (mode) Associative() bool        { return false }
func (mode) NonExhaustive() bool      { return false }
func (mode) Better(a, b float64) bool { return a > b }
func (mode) NewSession(total int) graph.ChooseSession {
	return &modeSession{total: total}
}

type modeSession struct {
	total   int
	offered []scored
}

func (s *modeSession) Offer(branch int, score float64) (discard []int, done bool) {
	s.offered = append(s.offered, scored{branch, score})
	if len(s.offered) < s.total {
		return nil, false
	}
	// Final offer: compute the mode and discard everything else.
	counts := map[float64]int{}
	for _, sc := range s.offered {
		counts[sc.score]++
	}
	best, bestN := 0.0, -1
	for _, sc := range s.offered { // deterministic: first-seen wins ties
		if counts[sc.score] > bestN {
			best, bestN = sc.score, counts[sc.score]
		}
	}
	for _, sc := range s.offered {
		if sc.score != best {
			discard = append(discard, sc.branch)
		}
	}
	return discard, true
}

func (s *modeSession) Selected() []int {
	if len(s.offered) < s.total {
		return nil
	}
	counts := map[float64]int{}
	for _, sc := range s.offered {
		counts[sc.score]++
	}
	best, bestN := 0.0, -1
	for _, sc := range s.offered {
		if counts[sc.score] > bestN {
			best, bestN = sc.score, counts[sc.score]
		}
	}
	var kept []scored
	for _, sc := range s.offered {
		if sc.score == best {
			kept = append(kept, sc)
		}
	}
	return branchesOf(kept)
}

func branchesOf(kept []scored) []int {
	out := make([]int, len(kept))
	for i, sc := range kept {
		out[i] = sc.branch
	}
	sort.Ints(out)
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
