package mdf

import (
	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

// Chooser composes an evaluator function and a selection function into the
// choose semantics of Def. 3.3. It implements graph.Chooser.
type Chooser struct {
	Eval Evaluator
	Sel  Selector
}

// NewChooser builds a chooser from an evaluator and a selector.
func NewChooser(eval Evaluator, sel Selector) *Chooser {
	return &Chooser{Eval: eval, Sel: sel}
}

// Score implements graph.Chooser: the evaluator function φ, run on workers.
func (c *Chooser) Score(d *dataset.Dataset) float64 { return c.Eval.Score(d) }

// Associative implements graph.Chooser.
func (c *Chooser) Associative() bool { return c.Sel.Associative() }

// NonExhaustive implements graph.Chooser.
func (c *Chooser) NonExhaustive() bool { return c.Sel.NonExhaustive() }

// MonotoneEval implements graph.Chooser.
func (c *Chooser) MonotoneEval() bool { return c.Eval.Monotone }

// ConvexEval implements graph.Chooser.
func (c *Chooser) ConvexEval() bool { return c.Eval.Convex }

// NewSession implements graph.Chooser. When the selector is associative and
// the evaluator declares a monotone or convex shape over the explorable's
// ordered choices, the session is wrapped with property-based pruning
// (Tab. 1, rows 1–2): once the observed scores move past the optimum in the
// worsening direction, the remaining branches are reported superfluous. The
// wrapper only acts after SetSortedOrder(true) is called, i.e. when the
// scheduler actually executes branches in the explorable's sorted order.
func (c *Chooser) NewSession(total int) graph.ChooseSession {
	base := c.Sel.NewSession(total)
	if !c.Sel.Associative() {
		return base
	}
	if !c.Eval.Monotone && !c.Eval.Convex {
		return base
	}
	ns, ok := base.(neverSelecter)
	if !ok {
		return base
	}
	return &propSession{
		base:     base,
		never:    ns,
		better:   c.Sel.Better,
		monotone: c.Eval.Monotone,
		convex:   c.Eval.Convex,
		total:    total,
	}
}

// neverSelecter is implemented by sessions that can report that a given
// score (or anything worse under the selector's preference) can no longer
// be selected.
type neverSelecter interface {
	NeverSelect(score float64) bool
}

// OrderAware is implemented by sessions whose pruning requires branches to
// be offered in the explorable's sorted order; the engine calls
// SetSortedOrder(true) when scheduling with a sorted hint.
type OrderAware interface {
	SetSortedOrder(sorted bool)
}

// propSession exploits monotone/convex evaluator shapes (Tab. 1): under
// sorted execution order, a monotone evaluator yields monotone observed
// scores, so two consecutive unselectable, worsening scores imply every
// remaining branch is inferior; a convex evaluator yields scores that fall
// then rise, so the same condition applies once past the valley.
type propSession struct {
	base     graph.ChooseSession
	never    neverSelecter
	better   func(a, b float64) bool
	monotone bool
	convex   bool
	total    int

	sorted    bool
	offered   int
	prev      float64
	prevNever bool
	hasPrev   bool
	improved  bool // convex: an improvement has been observed (valley found)
}

// SetSortedOrder implements OrderAware.
func (s *propSession) SetSortedOrder(sorted bool) { s.sorted = sorted }

// Offer implements graph.ChooseSession.
func (s *propSession) Offer(branch int, score float64) (discard []int, done bool) {
	discard, done = s.base.Offer(branch, score)
	s.offered++
	if done || !s.sorted || s.offered >= s.total {
		return discard, done
	}
	worsening := s.hasPrev && !s.better(score, s.prev)
	nowNever := s.never.NeverSelect(score)
	if s.hasPrev && s.better(score, s.prev) {
		s.improved = true
	}
	prune := false
	if s.monotone {
		prune = worsening && nowNever && s.prevNever
	} else if s.convex {
		prune = s.improved && worsening && nowNever && s.prevNever
	}
	s.prev, s.prevNever, s.hasPrev = score, nowNever, true
	if prune {
		return discard, true
	}
	return discard, done
}

// Selected implements graph.ChooseSession.
func (s *propSession) Selected() []int { return s.base.Selected() }
