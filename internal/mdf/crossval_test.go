package mdf

import (
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

func TestCrossValidateStructure(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	out := src.CrossValidate(CrossValidationSpec{
		Name:  "cv",
		Folds: 5,
		Train: func(fold, folds int) graph.TransformFunc {
			return WholeDataset("train", func(in *dataset.Dataset) (*dataset.Dataset, error) {
				train, val := FoldRows(in, fold, folds)
				// "Model" = (train size, val size) as a single row.
				return dataset.FromRows("model", []dataset.Row{[2]int{len(train), len(val)}}, 1, 8), nil
			})
		},
		Evaluate: FuncEvaluator("valsize", func(d *dataset.Dataset) float64 {
			return float64(d.Rows()[0].([2]int)[1])
		}),
	})
	out.Then("sink", Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 1 || len(scopes[0].Branches) != 5 {
		t.Fatalf("want one scope with 5 fold branches, got %+v", scopes)
	}
}

func TestCrossValidateSpecValidation(t *testing.T) {
	bad := []CrossValidationSpec{
		{Name: "x", Folds: 1, Train: func(int, int) graph.TransformFunc { return nil },
			Evaluate: SizeEvaluator()},
		{Name: "x", Folds: 3, Evaluate: SizeEvaluator()},
		{Name: "x", Folds: 3, Train: func(int, int) graph.TransformFunc { return nil }},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestFoldRowsPartition(t *testing.T) {
	rows := make([]dataset.Row, 10)
	for i := range rows {
		rows[i] = i
	}
	d := dataset.FromRows("d", rows, 3, 1)
	train, val := FoldRows(d, 1, 5)
	if len(val) != 2 || len(train) != 8 {
		t.Fatalf("fold sizes = %d/%d, want 8/2", len(train), len(val))
	}
	// Fold 1 of 5 validates rows 1 and 6.
	if val[0].(int) != 1 || val[1].(int) != 6 {
		t.Fatalf("validation rows = %v", val)
	}
	// Folds are disjoint and cover everything.
	seen := map[int]bool{}
	for _, r := range append(train, val...) {
		if seen[r.(int)] {
			t.Fatal("row in both subsets")
		}
		seen[r.(int)] = true
	}
	if len(seen) != 10 {
		t.Fatal("rows lost by folding")
	}
}

func TestMergeCreatesDiamond(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	left := src.Then("left", Identity("l"), 0.001)
	right := src.Then("right", Identity("r"), 0.001)
	merged := left.Merge("join", func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		return dataset.Concat("joined", ins...), nil
	}, 0.002, right)
	merged.Then("sink", Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The merge op must have two predecessors in order (left, right).
	var joinOp *graph.Operator
	for _, op := range g.Ops() {
		if op.Name == "join" {
			joinOp = op
		}
	}
	if joinOp == nil {
		t.Fatal("join op missing")
	}
	pres := g.Pre(joinOp)
	if len(pres) != 2 || pres[0].Name != "left" || pres[1].Name != "right" {
		t.Fatalf("join predecessors = %v", pres)
	}
}

func TestMergeRejectsNil(t *testing.T) {
	b := NewBuilder()
	src := b.Source("src", srcFn(), 0.001)
	src.Merge("join", Identity("x"), 0.001, nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("merge with nil input accepted")
	}
}
