package mdf

import (
	"fmt"

	"metadataflow/internal/dataset"
)

// This file implements the iterative-computation pattern of §3.2: dataflow
// jobs that perform a fixpoint computation unroll their iterations (App. A),
// and "to avoid full execution of branches, a choose operator is
// incorporated in the iteration itself. It then terminates the branch early
// if, e.g., the computation is not converging."
//
// In the unrolled encoding the in-loop termination check runs inside each
// round's operator: once the Diverged predicate rejects a branch's
// intermediate state, the remaining rounds forward an empty marker dataset
// whose accounted size is zero, so the simulated cluster charges
// (and a real cluster would spend) essentially nothing for them, and the
// closing choose scores the branch as failed.

// IterationSpec configures an unrolled iterative computation.
type IterationSpec struct {
	// Name labels the iteration's operators.
	Name string
	// Rounds is the unrolled iteration count.
	Rounds int
	// CostPerMB is the per-round virtual compute cost.
	CostPerMB float64
	// Step advances the computation by one round (1-based).
	Step func(round int, d *dataset.Dataset) (*dataset.Dataset, error)
	// Diverged inspects the state after a round; returning true terminates
	// the branch early (the in-loop choose of §3.2).
	Diverged func(round int, d *dataset.Dataset) bool
}

// Validate reports specification errors.
func (s IterationSpec) Validate() error {
	if s.Rounds < 1 {
		return fmt.Errorf("mdf: iteration needs >= 1 round, got %d", s.Rounds)
	}
	if s.Step == nil {
		return fmt.Errorf("mdf: iteration %q has no step function", s.Name)
	}
	return nil
}

// Iterate appends the unrolled rounds of the iterative computation to the
// node and returns the node after the final round. Terminated branches
// propagate an empty dataset through the remaining rounds at negligible
// cost. Iterate panics on an invalid spec (builder-time error).
func (n *Node) Iterate(spec IterationSpec) *Node {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	cur := n
	for r := 1; r <= spec.Rounds; r++ {
		round := r
		cur = cur.Then(fmt.Sprintf("%s/round%d", spec.Name, round),
			WholeDataset(spec.Name, func(in *dataset.Dataset) (*dataset.Dataset, error) {
				if in.NumRows() == 0 {
					// Terminated earlier: forward the empty marker.
					return emptyMarker(spec.Name), nil
				}
				out, err := spec.Step(round, in)
				if err != nil {
					return nil, err
				}
				if spec.Diverged != nil && spec.Diverged(round, out) {
					return emptyMarker(spec.Name), nil
				}
				return out, nil
			}), spec.CostPerMB)
	}
	return cur
}

// emptyMarker is the zero-cost dataset a terminated iteration forwards.
func emptyMarker(name string) *dataset.Dataset {
	d := dataset.New(name + "/terminated")
	d.Parts = append(d.Parts, &dataset.Partition{})
	return d
}

// Terminated reports whether a branch result is the marker of an iteration
// that was cut short; evaluators use it to score failed branches lowest.
func Terminated(d *dataset.Dataset) bool { return d.NumRows() == 0 }
