package mdf

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
)

// This file implements the cross-validation pattern of §3.2: "an explore
// operator splits the input data, a trainer trains the ML model, and a
// choose operator selects the highest quality result." Each fold branch
// shares the materialised input dataset; the per-fold trainer sees the fold
// index and the fold count and is responsible for carving out its own
// training/validation split.

// CrossValidationSpec configures a k-fold cross-validation scope.
type CrossValidationSpec struct {
	// Name labels the scope's operators.
	Name string
	// Folds is k; must be >= 2.
	Folds int
	// Train builds the per-fold trainer: it receives the fold index and
	// fold count and returns the branch's transform.
	Train func(fold, folds int) graph.TransformFunc
	// Evaluate scores a fold's result (e.g. validation accuracy).
	Evaluate Evaluator
	// Select picks the surviving folds; nil defaults to Max (the paper's
	// "selects the highest quality result").
	Select Selector
	// CostPerMB is the per-fold virtual compute cost.
	CostPerMB float64
}

// Validate reports specification errors.
func (s CrossValidationSpec) Validate() error {
	if s.Folds < 2 {
		return fmt.Errorf("mdf: cross validation needs >= 2 folds, got %d", s.Folds)
	}
	if s.Train == nil {
		return fmt.Errorf("mdf: cross validation %q has no trainer", s.Name)
	}
	if s.Evaluate.Fn == nil {
		return fmt.Errorf("mdf: cross validation %q has no evaluator", s.Name)
	}
	return nil
}

// CrossValidate appends a k-fold cross-validation scope to the node and
// returns the choose's output. It panics on an invalid spec (builder-time
// error).
func (n *Node) CrossValidate(spec CrossValidationSpec) *Node {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	sel := spec.Select
	if sel == nil {
		sel = Max()
	}
	specs := make([]BranchSpec, spec.Folds)
	for i := range specs {
		specs[i] = BranchSpec{Label: fmt.Sprintf("fold-%d", i), Hint: float64(i)}
	}
	return n.Explore(spec.Name, specs, NewChooser(spec.Evaluate, sel),
		func(start *Node, bs BranchSpec) *Node {
			fold := int(bs.Hint)
			return start.Then(fmt.Sprintf("%s/train-fold%d", spec.Name, fold),
				spec.Train(fold, spec.Folds), spec.CostPerMB)
		})
}

// FoldRows partitions the rows of a dataset round-robin into the training
// and validation subsets of the given fold; a convenience for trainers.
func FoldRows(d *dataset.Dataset, fold, folds int) (train, validate []dataset.Row) {
	i := 0
	for _, p := range d.Parts {
		for _, r := range p.Rows {
			if i%folds == fold {
				validate = append(validate, r)
			} else {
				train = append(train, r)
			}
			i++
		}
	}
	return train, validate
}
