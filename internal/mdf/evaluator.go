// Package mdf implements the meta-dataflow model of §3: evaluator functions
// φ that score branch results, selection functions ρ that pick a subset of
// branches, and their composition into the choose semantics of Def. 3.3,
// including the incremental-execution and branch-pruning optimisations of
// Tab. 1.
package mdf

import "metadataflow/internal/dataset"

// Evaluator is the evaluator function φ_v : D → ℝ of a choose operator. It
// computes a score over the values of a branch's result dataset or its
// metadata. Monotone and Convex declare the function's behaviour over the
// ordered choices of the explorable (Tab. 1); they must be supplied by the
// user for domain-specific evaluators.
type Evaluator struct {
	// Name labels the evaluator in logs and DOT output.
	Name string
	// Fn computes the score of a branch result; run on worker nodes.
	Fn func(d *dataset.Dataset) float64
	// Monotone declares the evaluator monotone over the explorable's
	// ordered choices.
	Monotone bool
	// Convex declares the evaluator convex over the explorable's ordered
	// choices.
	Convex bool
	// CostPerMB is the virtual compute cost of scoring, in seconds per
	// accounted megabyte of the branch result.
	CostPerMB float64
}

// Score applies the evaluator to a dataset.
func (e Evaluator) Score(d *dataset.Dataset) float64 { return e.Fn(d) }

// SizeEvaluator scores a branch by its dataset row count, the common
// metadata evaluator of §3.1 (φ(d) = |d|), e.g. to detect overly aggressive
// filtering.
func SizeEvaluator() Evaluator {
	return Evaluator{
		Name: "size",
		Fn:   func(d *dataset.Dataset) float64 { return float64(d.NumRows()) },
	}
}

// RatioEvaluator scores a branch by |d| / baseline rows, used by the time
// series job to bound the aggressiveness of masking (§6, Fig. 22).
func RatioEvaluator(baselineRows int) Evaluator {
	return Evaluator{
		Name: "ratio",
		Fn: func(d *dataset.Dataset) float64 {
			if baselineRows == 0 {
				return 0
			}
			return float64(d.NumRows()) / float64(baselineRows)
		},
	}
}

// FuncEvaluator wraps an arbitrary scoring function without property
// declarations.
func FuncEvaluator(name string, fn func(d *dataset.Dataset) float64) Evaluator {
	return Evaluator{Name: name, Fn: fn}
}
