package spec

import (
	"strings"
	"testing"
)

func mustHash(t *testing.T, doc string) Hash {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	return s.Hash()
}

// baseDoc is the sensitivity-table baseline: a trunk op, an explore with
// two parameterised branches, and an iterate.
const baseDoc = `{
  "name": "base",
  "source": {"rows": 100, "partitions": 4, "virtualBytes": 1048576, "distribution": "normal", "seed": 7},
  "pipeline": [
    {"op": {"name": "std", "fn": "standardize"}},
    {"explore": {
      "name": "e",
      "branches": [
        {"label": "lo", "params": {"limit": 0.5}},
        {"label": "hi", "params": {"limit": 1.5}}
      ],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }},
    {"iterate": {"name": "it", "rounds": 3, "op": {"name": "sq", "fn": "square"}}}
  ]
}`

// TestHashSensitivityTable drives the acceptance table: hash-invariant
// edits (reordering, whitespace, metadata) against hash-changing edits
// (every semantic knob).
func TestHashSensitivityTable(t *testing.T) {
	base := mustHash(t, baseDoc)

	edit := func(old, new string) string {
		if !strings.Contains(baseDoc, old) {
			t.Fatalf("baseline does not contain %q", old)
		}
		return strings.Replace(baseDoc, old, new, 1)
	}

	same := map[string]string{
		"whitespace collapsed": strings.Join(strings.Fields(baseDoc), " "),
		"job renamed":          edit(`"name": "base"`, `"name": "renamed"`),
		"op renamed":           edit(`"name": "std"`, `"name": "zzz"`),
		"explore renamed":      edit(`"name": "e"`, `"name": "other"`),
		"branch relabeled":     edit(`"label": "lo"`, `"label": "low"`),
		"schema version added": strings.Replace(baseDoc, `"name": "base"`, `"schema_version": "1.0.0", "name": "base"`, 1),
		"allow metadata added": strings.Replace(baseDoc, `"name": "base"`, `"name": "base", "allow": ["dupbranch"]`, 1),
		"key order swapped": strings.Replace(baseDoc,
			`"rows": 100, "partitions": 4`, `"partitions": 4, "rows": 100`, 1),
		"default materialised": edit(`"fn": "filter-absless", "paramKey": "limit"`,
			`"fn": "filter-absless", "paramKey": "limit", "costPerMB": 0.001`),
		"dead param added": edit(`"params": {"limit": 0.5}`, `"params": {"limit": 0.5, "unused": 9}`),
		"paramkey inlined": edit(`"body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}`,
			`"body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max", "k": 3}}`),
	}
	// A "max" selector ignores k, so materialising it must not move the
	// hash either — covered by "paramkey inlined" above (k is dead for max).
	for name, doc := range same {
		if got := mustHash(t, doc); got != base {
			t.Errorf("%s: hash moved %s -> %s; metadata edits must not change the hash", name, base, got)
		}
	}

	changed := map[string]string{
		"source rows":         edit(`"rows": 100`, `"rows": 200`),
		"source seed":         edit(`"seed": 7`, `"seed": 8`),
		"source distribution": edit(`"distribution": "normal"`, `"distribution": "uniform"`),
		"source bytes":        edit(`"virtualBytes": 1048576`, `"virtualBytes": 2097152`),
		"trunk operator":      edit(`"fn": "standardize"`, `"fn": "normalize"`),
		"branch param value":  edit(`"limit": 0.5`, `"limit": 0.6`),
		"branch order": edit(`{"label": "lo", "params": {"limit": 0.5}},
        {"label": "hi", "params": {"limit": 1.5}}`, `{"label": "hi", "params": {"limit": 1.5}},
        {"label": "lo", "params": {"limit": 0.5}}`),
		"evaluator":      edit(`"evaluator": "size"`, `"evaluator": "ratio"`),
		"selector kind":  edit(`"kind": "max"`, `"kind": "min"`),
		"iterate rounds": edit(`"rounds": 3`, `"rounds": 4`),
		"iterate op":     edit(`"fn": "square"`, `"fn": "abs"`),
		"op cost":        edit(`"fn": "standardize"`, `"fn": "standardize", "costPerMB": 0.5`),
		"branch hint":    edit(`"label": "lo"`, `"label": "lo", "hint": 9`),
	}
	for name, doc := range changed {
		if got := mustHash(t, doc); got == base {
			t.Errorf("%s: hash did not move; semantic edits must change the hash", name)
		}
	}
}

// TestHashParamKeyResolution: a filter written through ParamKey hashes the
// same as the literal parameter, because the engine computes the same
// result for both.
func TestHashParamKeyResolution(t *testing.T) {
	indirect := `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
	  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`
	literalParams := `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
	  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l","limit":99}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`
	if mustHash(t, indirect) != mustHash(t, literalParams) {
		t.Error("unused literal default under ParamKey changed the hash")
	}
}

// TestHashReportSubgraphs pins the structure of the hash report: chain
// prefixes for every step, branch hashes seeded by the incoming prefix,
// and equal bodies under equal params colliding.
func TestHashReportSubgraphs(t *testing.T) {
	s, err := Parse([]byte(baseDoc))
	if err != nil {
		t.Fatal(err)
	}
	r := s.HashReport()
	if r.Spec == 0 {
		t.Error("zero spec hash")
	}
	// source + 3 trunk steps + 2 branches × 1 body step = 6 chain points.
	if len(r.Chains) != 6 {
		t.Fatalf("chain points = %d, want 6: %+v", len(r.Chains), r.Chains)
	}
	if r.Chains[0].Path != "source" || r.Chains[1].Path != "pipeline[0]" {
		t.Errorf("unexpected chain paths: %+v", r.Chains[:2])
	}
	if len(r.Branches) != 2 {
		t.Fatalf("branch hashes = %d, want 2", len(r.Branches))
	}
	if r.Branches[0].Hash == r.Branches[1].Hash {
		t.Error("branches with different params must not collide")
	}

	// Two branches with identical resolved params collide.
	dup := strings.Replace(baseDoc, `"params": {"limit": 1.5}`, `"params": {"limit": 0.5}`, 1)
	sd, err := Parse([]byte(dup))
	if err != nil {
		t.Fatal(err)
	}
	rd := sd.HashReport()
	if rd.Branches[0].Hash != rd.Branches[1].Hash {
		t.Error("branches with identical resolved bodies must collide")
	}
}

// TestHashPinned pins one concrete hash value so accidental changes to the
// hash-inclusion rules are loud. If a deliberate format change moves it,
// update the constant and call it out in the change description.
func TestHashPinned(t *testing.T) {
	doc := `{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`
	const want = "6f9e6bbc062ab9c3"
	got := mustHash(t, doc).String()
	if got != want {
		t.Errorf("pinned hash moved: got %s, want %s", got, want)
	}
}
