package spec

import (
	"strings"
	"testing"
)

func mustHash(t *testing.T, doc string) Hash {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, doc)
	}
	return s.Hash()
}

// baseDoc is the sensitivity-table baseline: a trunk op, an explore with
// two parameterised branches, and an iterate.
const baseDoc = `{
  "name": "base",
  "source": {"rows": 100, "partitions": 4, "virtualBytes": 1048576, "distribution": "normal", "seed": 7},
  "pipeline": [
    {"op": {"name": "std", "fn": "standardize"}},
    {"explore": {
      "name": "e",
      "branches": [
        {"label": "lo", "params": {"limit": 0.5}},
        {"label": "hi", "params": {"limit": 1.5}}
      ],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }},
    {"iterate": {"name": "it", "rounds": 3, "op": {"name": "sq", "fn": "square"}}}
  ]
}`

// TestHashSensitivityTable drives the acceptance table: hash-invariant
// edits (reordering, whitespace, metadata) against hash-changing edits
// (every semantic knob).
func TestHashSensitivityTable(t *testing.T) {
	base := mustHash(t, baseDoc)

	edit := func(old, new string) string {
		if !strings.Contains(baseDoc, old) {
			t.Fatalf("baseline does not contain %q", old)
		}
		return strings.Replace(baseDoc, old, new, 1)
	}

	same := map[string]string{
		"whitespace collapsed": strings.Join(strings.Fields(baseDoc), " "),
		"job renamed":          edit(`"name": "base"`, `"name": "renamed"`),
		"op renamed":           edit(`"name": "std"`, `"name": "zzz"`),
		"explore renamed":      edit(`"name": "e"`, `"name": "other"`),
		"branch relabeled":     edit(`"label": "lo"`, `"label": "low"`),
		"schema version added": strings.Replace(baseDoc, `"name": "base"`, `"schema_version": "1.0.0", "name": "base"`, 1),
		"allow metadata added": strings.Replace(baseDoc, `"name": "base"`, `"name": "base", "allow": ["dupbranch"]`, 1),
		"key order swapped": strings.Replace(baseDoc,
			`"rows": 100, "partitions": 4`, `"partitions": 4, "rows": 100`, 1),
		"default materialised": edit(`"fn": "filter-absless", "paramKey": "limit"`,
			`"fn": "filter-absless", "paramKey": "limit", "costPerMB": 0.001`),
		"dead param added": edit(`"params": {"limit": 0.5}`, `"params": {"limit": 0.5, "unused": 9}`),
		"paramkey inlined": edit(`"body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}`,
			`"body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max", "k": 3}}`),
	}
	// A "max" selector ignores k, so materialising it must not move the
	// hash either — covered by "paramkey inlined" above (k is dead for max).
	for name, doc := range same {
		if got := mustHash(t, doc); got != base {
			t.Errorf("%s: hash moved %s -> %s; metadata edits must not change the hash", name, base, got)
		}
	}

	changed := map[string]string{
		"source rows":         edit(`"rows": 100`, `"rows": 200`),
		"source seed":         edit(`"seed": 7`, `"seed": 8`),
		"source distribution": edit(`"distribution": "normal"`, `"distribution": "uniform"`),
		"source bytes":        edit(`"virtualBytes": 1048576`, `"virtualBytes": 2097152`),
		"trunk operator":      edit(`"fn": "standardize"`, `"fn": "normalize"`),
		"branch param value":  edit(`"limit": 0.5`, `"limit": 0.6`),
		"branch order": edit(`{"label": "lo", "params": {"limit": 0.5}},
        {"label": "hi", "params": {"limit": 1.5}}`, `{"label": "hi", "params": {"limit": 1.5}},
        {"label": "lo", "params": {"limit": 0.5}}`),
		"evaluator":      edit(`"evaluator": "size"`, `"evaluator": "ratio"`),
		"selector kind":  edit(`"kind": "max"`, `"kind": "min"`),
		"iterate rounds": edit(`"rounds": 3`, `"rounds": 4`),
		"iterate op":     edit(`"fn": "square"`, `"fn": "abs"`),
		"op cost":        edit(`"fn": "standardize"`, `"fn": "standardize", "costPerMB": 0.5`),
		"branch hint":    edit(`"label": "lo"`, `"label": "lo", "hint": 9`),
	}
	for name, doc := range changed {
		if got := mustHash(t, doc); got == base {
			t.Errorf("%s: hash did not move; semantic edits must change the hash", name)
		}
	}
}

// TestHashParamKeyResolution: a filter written through ParamKey hashes the
// same as the literal parameter, because the engine computes the same
// result for both.
func TestHashParamKeyResolution(t *testing.T) {
	indirect := `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
	  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l"}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`
	literalParams := `{"source":{"rows":10},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a","params":{"l":1}},{"label":"b","params":{"l":2}}],
	  "body":[{"op":{"name":"f","fn":"filter-less","paramKey":"l","limit":99}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`
	if mustHash(t, indirect) != mustHash(t, literalParams) {
		t.Error("unused literal default under ParamKey changed the hash")
	}
}

// TestHashReportSubgraphs pins the structure of the hash report: chain
// prefixes for every step, branch hashes seeded by the incoming prefix,
// and equal bodies under equal params colliding.
func TestHashReportSubgraphs(t *testing.T) {
	s, err := Parse([]byte(baseDoc))
	if err != nil {
		t.Fatal(err)
	}
	r := s.HashReport()
	if r.Spec == 0 {
		t.Error("zero spec hash")
	}
	// source + 3 trunk steps + 2 branches × 1 body step = 6 chain points.
	if len(r.Chains) != 6 {
		t.Fatalf("chain points = %d, want 6: %+v", len(r.Chains), r.Chains)
	}
	if r.Chains[0].Path != "source" || r.Chains[1].Path != "pipeline[0]" {
		t.Errorf("unexpected chain paths: %+v", r.Chains[:2])
	}
	if len(r.Branches) != 2 {
		t.Fatalf("branch hashes = %d, want 2", len(r.Branches))
	}
	if r.Branches[0].Hash == r.Branches[1].Hash {
		t.Error("branches with different params must not collide")
	}

	// Two branches with identical resolved params collide.
	dup := strings.Replace(baseDoc, `"params": {"limit": 1.5}`, `"params": {"limit": 0.5}`, 1)
	sd, err := Parse([]byte(dup))
	if err != nil {
		t.Fatal(err)
	}
	rd := sd.HashReport()
	if rd.Branches[0].Hash != rd.Branches[1].Hash {
		t.Error("branches with identical resolved bodies must collide")
	}
}

// TestHashPinned pins one concrete hash value so accidental changes to the
// hash-inclusion rules are loud. If a deliberate format change moves it,
// update the constant and call it out in the change description.
func TestHashPinned(t *testing.T) {
	doc := `{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`
	const want = "6f9e6bbc062ab9c3"
	got := mustHash(t, doc).String()
	if got != want {
		t.Errorf("pinned hash moved: got %s, want %s", got, want)
	}
}

// TestOpChainsAlignWithCompile pins the OpChains contract: one chain
// hash per compiled operator, in the builder's operator-creation order,
// with trunk positions equal to the recorded step chain hashes. This is
// the index the durable checkpoint store keys on, so drift here silently
// re-keys every checkpoint.
func TestOpChainsAlignWithCompile(t *testing.T) {
	s, err := Parse([]byte(baseDoc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := s.HashReport()
	g, err := s.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ops := g.Ops()
	if len(r.OpChains) != len(ops) {
		t.Fatalf("OpChains has %d entries, compiled graph has %d operators", len(r.OpChains), len(ops))
	}
	chainAt := func(path string) Hash {
		t.Helper()
		for _, c := range r.Chains {
			if c.Path == path {
				return c.Hash
			}
		}
		t.Fatalf("no chain recorded at %s", path)
		return 0
	}
	// Creation order: source, trunk op, explore, branch0 body, branch1
	// body, choose, iterate rounds 0..2.
	if r.OpChains[0] != chainAt("source") {
		t.Fatalf("OpChains[0] = %v, want source chain %v", r.OpChains[0], chainAt("source"))
	}
	if r.OpChains[1] != chainAt("pipeline[0]") {
		t.Fatalf("OpChains[1] = %v, want trunk op chain", r.OpChains[1])
	}
	// The explore operator forwards its input.
	if r.OpChains[2] != chainAt("pipeline[0]") {
		t.Fatalf("explore OpChain = %v, want incoming prefix", r.OpChains[2])
	}
	if r.OpChains[3] != chainAt("pipeline[1].explore.branch[0].body[0]") {
		t.Fatalf("branch0 body OpChain = %v, want its recorded chain", r.OpChains[3])
	}
	if r.OpChains[4] != chainAt("pipeline[1].explore.branch[1].body[0]") {
		t.Fatalf("branch1 body OpChain = %v, want its recorded chain", r.OpChains[4])
	}
	if r.OpChains[5] != chainAt("pipeline[1]") {
		t.Fatalf("choose OpChain = %v, want explore step chain", r.OpChains[5])
	}
	// The final iterate round's chain is the step's identity; earlier
	// rounds get distinct forked chains.
	if r.OpChains[8] != chainAt("pipeline[2]") {
		t.Fatalf("last iterate round OpChain = %v, want step chain", r.OpChains[8])
	}
	if r.OpChains[6] == r.OpChains[7] || r.OpChains[7] == r.OpChains[8] {
		t.Fatalf("iterate rounds share chains: %v %v %v", r.OpChains[6], r.OpChains[7], r.OpChains[8])
	}
	// Parameterised branches must resolve to distinct body chains.
	if r.OpChains[3] == r.OpChains[4] {
		t.Fatal("parameterised branch bodies hash identically")
	}
}
