package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines the versioned canonical form of a spec document (see
// ARCHITECTURE.md, "Spec canonical form and plan vetting"). The canonical
// form is the fixpoint of Parse → Canonicalize → Parse:
//
//   - schema_version is always present and set to the current version;
//   - every defaultable field is materialised to the value Compile would
//     use (partitions, virtualBytes, distribution, op fn, costPerMB,
//     evaluator, selector kind, branch hints);
//   - dead fields — ones Compile never reads for the operator or selector
//     variant in use — are zeroed so they disappear under omitempty (an
//     affine "limit", a file source's distribution and seed, a branch
//     param no body op consumes, a max-selector's k);
//   - object keys are sorted lexicographically and the document is
//     rendered with a fixed two-space indent and a trailing newline.
//
// Two specs that differ only in key order, whitespace, or dead fields
// therefore canonicalize to byte-identical documents, and the semantic
// content hash (hash.go) is computed from the same normalized structure.

// CurrentSchemaVersion is the spec schema version written by Canonicalize
// and the only major version Parse accepts.
const CurrentSchemaVersion = "1.0.0"

// checkSchemaVersion validates an optional schema_version value: empty
// means current; otherwise it must be MAJOR.MINOR.PATCH with the current
// major version (minor/patch differences are backward compatible).
func checkSchemaVersion(v string) error {
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ".")
	if len(parts) != 3 {
		return fmt.Errorf("spec: malformed schema_version %q (want MAJOR.MINOR.PATCH)", v)
	}
	for _, p := range parts {
		if n, err := strconv.Atoi(p); err != nil || n < 0 || (len(p) > 1 && p[0] == '0') {
			return fmt.Errorf("spec: malformed schema_version %q (want MAJOR.MINOR.PATCH)", v)
		}
	}
	if major := parts[0]; major != strings.SplitN(CurrentSchemaVersion, ".", 2)[0] {
		return fmt.Errorf("spec: unsupported schema_version %q (this build speaks %s)", v, CurrentSchemaVersion)
	}
	return nil
}

// Canonicalize renders the spec in its canonical form: normalized
// structure, sorted keys, two-space indent, trailing newline. It is a
// fixpoint: parsing the result and canonicalizing again is byte-identical.
func (s *Spec) Canonicalize() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	raw, err := json.Marshal(s.normalized())
	if err != nil {
		return nil, fmt.Errorf("spec: canonicalize: %w", err)
	}
	// Round-trip through interface{} so every object's keys come out
	// lexicographically sorted (encoding/json sorts map keys). UseNumber
	// preserves the exact numeric literals the struct marshal produced.
	var v any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("spec: canonicalize: %w", err)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: canonicalize: %w", err)
	}
	return append(out, '\n'), nil
}

// Canonical parses a document and returns its canonical form; it is the
// one-call path used by mdfplan -canonical and -write.
func Canonical(data []byte) ([]byte, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return s.Canonicalize()
}

// Normalized returns a deep copy with every default materialised and every
// dead field zeroed — the structure Canonicalize renders and the content
// hash consumes. Static analyses (internal/plan) operate on it so they see
// the values Compile will actually use, not the document's spelling.
func (s *Spec) Normalized() *Spec {
	return s.normalized()
}

// normalized returns a deep copy with every default materialised and every
// dead field zeroed. It is idempotent; both Canonicalize and the content
// hash operate on its output.
func (s *Spec) normalized() *Spec {
	n := &Spec{
		SchemaVersion: CurrentSchemaVersion,
		Name:          s.Name,
		Allow:         normalizeAllow(s.Allow),
		Source:        normalizeSource(s.Source),
		Pipeline:      normalizeSteps(s.Pipeline, true),
	}
	return n
}

func normalizeAllow(allow []string) []string {
	if len(allow) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(allow))
	out := make([]string, 0, len(allow))
	for _, a := range allow {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Strings(out)
	return out
}

func normalizeSource(src Source) Source {
	if src.Partitions < 1 {
		src.Partitions = 8
	}
	if src.VirtualBytes <= 0 {
		src.VirtualBytes = 1 << 30
	}
	if src.File != "" {
		// A file source never consults the generator knobs.
		src.Distribution, src.Seed = "", 0
	} else {
		switch src.Distribution {
		case "uniform", "bimodal":
		default:
			// Compile treats every other value as the normal default.
			src.Distribution = "normal"
		}
	}
	return src
}

// normalizeSteps deep-copies and normalizes a pipeline. trunk marks the
// top-level pipeline, where ParamKey indirection has no params to read and
// is therefore dead.
func normalizeSteps(steps []Step, trunk bool) []Step {
	if steps == nil {
		return nil
	}
	out := make([]Step, len(steps))
	for i, st := range steps {
		switch {
		case st.Op != nil:
			op := normalizeOp(*st.Op, trunk)
			out[i].Op = &op
		case st.Iterate != nil:
			it := *st.Iterate
			it.Op = normalizeOp(it.Op, trunk)
			if it.DivergeAboveMeanAbs <= 0 {
				it.DivergeAboveMeanAbs = 0
			}
			out[i].Iterate = &it
		case st.Explore != nil:
			e := *st.Explore
			e.Body = normalizeSteps(st.Explore.Body, false)
			live := referencedParamKeys(e.Body)
			branches := make([]Branch, len(st.Explore.Branches))
			for j, br := range st.Explore.Branches {
				b := br
				if b.Hint == nil {
					// Compile defaults a missing hint to the branch index.
					h := float64(j)
					b.Hint = &h
				} else {
					h := *br.Hint
					b.Hint = &h
				}
				b.Params = normalizeParams(br.Params, live)
				branches[j] = b
			}
			e.Branches = branches
			e.Choose = normalizeChoose(st.Explore.Choose)
			out[i].Explore = &e
		default:
			out[i] = st // invalid; Validate already rejected it
		}
	}
	return out
}

func normalizeOp(op OpStep, trunk bool) OpStep {
	if op.Fn == "" {
		op.Fn = "identity"
	}
	if op.CostPerMB == 0 {
		op.CostPerMB = 0.001
	}
	if op.FixedCost <= 0 {
		op.FixedCost = 0
	}
	// Zero the parameters the operator function never reads.
	switch op.Fn {
	case "affine":
		op.Limit = 0
	case "filter-less", "filter-greater", "filter-absless":
		op.A, op.B = 0, 0
	default:
		op.A, op.B, op.Limit, op.ParamKey = 0, 0, 0, ""
	}
	// On the trunk there are no branch params for ParamKey to read.
	if trunk {
		op.ParamKey = ""
	}
	return op
}

// referencedParamKeys collects the ParamKey values the body's own operators
// consume. Nested explores are excluded: Compile passes each nested
// branch's params to its body, not the enclosing branch's, so a key only
// read inside a nested explore is dead at this level.
func referencedParamKeys(body []Step) map[string]bool {
	keys := make(map[string]bool)
	for _, st := range body {
		switch {
		case st.Op != nil && st.Op.ParamKey != "":
			keys[st.Op.ParamKey] = true
		case st.Iterate != nil && st.Iterate.Op.ParamKey != "":
			keys[st.Iterate.Op.ParamKey] = true
		}
	}
	return keys
}

func normalizeParams(params map[string]float64, live map[string]bool) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range params {
		if live[k] {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func normalizeChoose(c Choose) Choose {
	if c.Evaluator == "" {
		c.Evaluator = "size"
	}
	c.Selector = normalizeSelector(c.Selector)
	return c
}

func normalizeSelector(sel Selector) Selector {
	if sel.Kind == "" {
		sel.Kind = "max"
	}
	// Zero the parameters the selector variant never reads, and clamp K the
	// way the selector constructors do (max(1, K)).
	switch sel.Kind {
	case "topk", "bottomk":
		sel.K = max(1, sel.K)
		sel.Bound, sel.AtMost, sel.Lo, sel.Hi = 0, false, 0, 0
	case "threshold":
		sel.K, sel.Lo, sel.Hi = 0, 0, 0
	case "kthreshold":
		sel.K = max(1, sel.K)
		sel.Lo, sel.Hi = 0, 0
	case "interval":
		sel.K, sel.Bound, sel.AtMost = 0, 0, false
	case "kinterval":
		sel.K = max(1, sel.K)
		sel.Bound, sel.AtMost = 0, false
	default: // min, max, mode
		sel.K, sel.Bound, sel.AtMost, sel.Lo, sel.Hi = 0, 0, false, 0, 0
	}
	return sel
}
