package spec

import (
	"bytes"
	"testing"
)

// FuzzParse ensures the parser never panics on arbitrary input and that any
// document it accepts also compiles to a valid graph.
func FuzzParse(f *testing.F) {
	f.Add([]byte(SampleSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`))
	f.Add([]byte(`{"source":{"rows":5},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a"},{"label":"b"}],
	  "body":[{"op":{"name":"y"}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		g, err := s.Compile()
		if err != nil {
			// A structurally valid spec may still fail graph validation
			// (e.g. degenerate explores); it must fail cleanly.
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("compiled graph invalid: %v", err)
		}
	})
}

// FuzzCanonical drives the canonical-form contract on arbitrary input:
// Parse → Canonicalize → Parse must be a fixpoint (a second canonicalization
// is byte-identical) and the semantic hash must survive canonicalization
// unchanged — otherwise canonical files and hash-keyed memo tables would
// disagree about spec identity.
func FuzzCanonical(f *testing.F) {
	f.Add([]byte(SampleSpec))
	f.Add([]byte(`{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`))
	f.Add([]byte(`{"source":{"file":"/tmp/x","distribution":"uniform","seed":9},"pipeline":[{"op":{"name":"x","a":4,"paramKey":"zz"}}]}`))
	f.Add([]byte(`{"schema_version":"1.2.3","source":{"rows":7,"partitions":2},"pipeline":[
	  {"iterate":{"name":"i","rounds":3,"divergeAboveMeanAbs":10,"op":{"fn":"affine","a":0.5,"b":1,"name":"st"}}},
	  {"explore":{"name":"e",
	    "branches":[{"label":"a","params":{"l":1,"dead":9}},{"label":"b","hint":4,"params":{"l":2}}],
	    "body":[{"op":{"name":"f","fn":"filter-absless","paramKey":"l"}}],
	    "choose":{"evaluator":"ratio","monotone":true,"selector":{"kind":"topk","k":1}}}}]}`))
	f.Add([]byte(`{"allow":["dupbranch"],"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		h := s.Hash()
		c1, err := s.Canonicalize()
		if err != nil {
			// Parse succeeded, so the spec is valid and must canonicalize.
			t.Fatalf("valid spec failed to canonicalize: %v", err)
		}
		s2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, c1)
		}
		c2, err := s2.Canonicalize()
		if err != nil {
			t.Fatalf("canonical form does not recanonicalize: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalize is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", c1, c2)
		}
		if h2 := s2.Hash(); h2 != h {
			t.Fatalf("hash moved across canonicalization: %s -> %s\n%s", h, h2, c1)
		}
	})
}
