package spec

import "testing"

// FuzzParse ensures the parser never panics on arbitrary input and that any
// document it accepts also compiles to a valid graph.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`))
	f.Add([]byte(`{"source":{"rows":5},"pipeline":[{"explore":{"name":"e",
	  "branches":[{"label":"a"},{"label":"b"}],
	  "body":[{"op":{"name":"y"}}],
	  "choose":{"selector":{"kind":"max"}}}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		g, err := s.Compile()
		if err != nil {
			// A structurally valid spec may still fail graph validation
			// (e.g. degenerate explores); it must fail cleanly.
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("compiled graph invalid: %v", err)
		}
	})
}
