// Package spec compiles a declarative JSON description of a meta-dataflow
// into an executable graph. The vocabulary covers generic numeric operators
// (affine maps, filters, normalisation), the paper's evaluator and selection
// functions, and arbitrarily nested explore/choose scopes, so exploratory
// workflows can be described, versioned and executed without writing Go.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/stats"
)

// Spec is the root document.
type Spec struct {
	// SchemaVersion is the spec schema version ("MAJOR.MINOR.PATCH").
	// Empty means the current version; a major version other than the
	// current one is rejected. The canonical form always carries it.
	SchemaVersion string `json:"schema_version,omitempty"`
	// Name labels the job. It is metadata: excluded from the content hash.
	Name string `json:"name,omitempty"`
	// Allow suppresses plan-verifier rules by name for the whole document
	// (the JSON analogue of mdflint's //lint:allow escapes; see
	// internal/plan). Metadata: excluded from the content hash.
	Allow []string `json:"allow,omitempty"`
	// Source describes the generated input dataset.
	Source Source `json:"source"`
	// Pipeline is the sequence of steps after the source.
	Pipeline []Step `json:"pipeline"`
}

// Source configures the input dataset: either a synthetic generator (Rows
// plus Distribution) or a local file of newline-separated float64 values
// (File), in which case Rows caps how many values are read (0 = all).
type Source struct {
	// File, when set, reads newline-separated float64 values from disk.
	File string `json:"file,omitempty"`
	// Rows is the number of rows to generate (or a cap when File is set).
	Rows int `json:"rows"`
	// Partitions is the dataset partition count (default 8).
	Partitions int `json:"partitions"`
	// VirtualBytes is the accounted size (default 1 GiB).
	VirtualBytes int64 `json:"virtualBytes"`
	// Distribution is "normal" (default), "uniform" or "bimodal".
	Distribution string `json:"distribution,omitempty"`
	// Seed drives the generator.
	Seed int64 `json:"seed,omitempty"`
}

// Step is a plain operator (Op), an exploration scope (Explore), or an
// unrolled iteration (Iterate); exactly one must be present.
type Step struct {
	Op      *OpStep      `json:"op,omitempty"`
	Explore *ExploreStep `json:"explore,omitempty"`
	Iterate *IterateStep `json:"iterate,omitempty"`
}

// IterateStep unrolls an operator for a fixed number of rounds with an
// optional in-loop termination check (§3.2): when the mean absolute value
// of the intermediate result exceeds DivergeAboveMeanAbs, the remaining
// rounds are skipped at negligible cost.
type IterateStep struct {
	// Name labels the iteration's operators.
	Name string `json:"name"`
	// Rounds is the unrolled round count.
	Rounds int `json:"rounds"`
	// Op is applied once per round.
	Op OpStep `json:"op"`
	// DivergeAboveMeanAbs terminates the branch once exceeded; 0 disables.
	DivergeAboveMeanAbs float64 `json:"divergeAboveMeanAbs,omitempty"`
}

// OpStep is one operator application.
type OpStep struct {
	// Name labels the operator.
	Name string `json:"name"`
	// Fn selects the operator function: "identity", "affine" (a·x+b),
	// "square", "abs", "filter-less", "filter-greater", "filter-absless",
	// "normalize" (wide), "standardize" (wide).
	Fn string `json:"fn"`
	// A and B parameterise affine; Limit parameterises the filters. When
	// ParamKey is set inside an explore body, the branch's parameter with
	// that key overrides Limit/A.
	A        float64 `json:"a,omitempty"`
	B        float64 `json:"b,omitempty"`
	Limit    float64 `json:"limit,omitempty"`
	ParamKey string  `json:"paramKey,omitempty"`
	// CostPerMB is the virtual compute cost (default 0.001).
	CostPerMB float64 `json:"costPerMB,omitempty"`
	// FixedCost is an optional fixed virtual cost in seconds.
	FixedCost float64 `json:"fixedCost,omitempty"`
}

// ExploreStep is an exploration scope.
type ExploreStep struct {
	// Name labels the explore operator.
	Name string `json:"name"`
	// Branches lists the explorable settings.
	Branches []Branch `json:"branches"`
	// Body is the per-branch pipeline (may contain nested explores).
	Body []Step `json:"body"`
	// Choose closes the scope.
	Choose Choose `json:"choose"`
}

// Branch is one explorable setting.
type Branch struct {
	// Label names the setting.
	Label string `json:"label"`
	// Hint orders branches for sorted scheduling; defaults to the value of
	// Params[the first body op's ParamKey] or the branch index.
	Hint *float64 `json:"hint,omitempty"`
	// Params carries named parameter values consumed via OpStep.ParamKey.
	Params map[string]float64 `json:"params,omitempty"`
}

// Choose configures the scope's choose operator.
type Choose struct {
	// Evaluator is "size", "ratio" (rows / source rows), "mean",
	// "neg-mean-abs" or "stddev".
	Evaluator string `json:"evaluator"`
	// Monotone and Convex declare the evaluator's shape over the ordered
	// branches (Tab. 1).
	Monotone bool `json:"monotone,omitempty"`
	Convex   bool `json:"convex,omitempty"`
	// Selector picks the surviving branches.
	Selector Selector `json:"selector"`
	// CostPerMB is the evaluator's virtual compute cost.
	CostPerMB float64 `json:"costPerMB,omitempty"`
}

// Selector configures a selection function.
type Selector struct {
	// Kind is "topk", "bottomk", "min", "max", "threshold", "interval",
	// "kthreshold", "kinterval" or "mode".
	Kind string `json:"kind"`
	// K parameterises the k-variants.
	K int `json:"k,omitempty"`
	// Bound parameterises threshold/kthreshold; AtMost flips direction.
	Bound  float64 `json:"bound,omitempty"`
	AtMost bool    `json:"atMost,omitempty"`
	// Lo and Hi parameterise interval/kinterval.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
}

// Parse decodes a JSON document into a Spec. Decoding is strict: a field
// the schema does not define is an error, not silently dropped, so a typo
// like "partitons" fails the submission instead of running the job with a
// default the author never chose. Decode errors carry the offending
// line:column position so a bad spec points at itself, not at a byte
// offset the author would have to count.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		line, col := lineCol(data, decodeOffset(err, dec))
		return nil, fmt.Errorf("spec: line %d, column %d: %w", line, col, err)
	}
	// A second document after the first is a malformed spec, not trailing
	// input to ignore.
	if dec.More() {
		line, col := lineCol(data, dec.InputOffset())
		return nil, fmt.Errorf("spec: line %d, column %d: trailing data after document", line, col)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// decodeOffset extracts the byte offset of a json.Decoder error. The two
// typed errors carry the exact offset; everything else (e.g. the unknown-
// field error, which encoding/json reports as a bare string) falls back to
// the decoder's input offset, which points just past the offending token.
func decodeOffset(err error, dec *json.Decoder) int64 {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return syn.Offset
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return typ.Offset
	}
	return dec.InputOffset()
}

// lineCol translates a byte offset into 1-based line and column numbers.
// Offsets past the end of the document clamp to its last byte.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	if offset < 0 {
		offset = 0
	}
	line, col = 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Validate reports structural errors.
func (s *Spec) Validate() error {
	if err := checkSchemaVersion(s.SchemaVersion); err != nil {
		return err
	}
	if s.Source.Rows < 1 && s.Source.File == "" {
		return fmt.Errorf("spec: source needs rows >= 1 or a file")
	}
	if len(s.Pipeline) == 0 {
		return fmt.Errorf("spec: empty pipeline")
	}
	return validateSteps(s.Pipeline)
}

func validateSteps(steps []Step) error {
	for i, st := range steps {
		set := 0
		for _, present := range []bool{st.Op != nil, st.Explore != nil, st.Iterate != nil} {
			if present {
				set++
			}
		}
		if set != 1 {
			return fmt.Errorf("spec: step %d must set exactly one of op, explore, iterate", i)
		}
		switch {
		case st.Op != nil:
			if _, err := opFunc(*st.Op, nil); err != nil {
				return err
			}
		case st.Iterate != nil:
			if st.Iterate.Rounds < 1 {
				return fmt.Errorf("spec: iterate %q needs >= 1 round", st.Iterate.Name)
			}
			if _, err := opFunc(st.Iterate.Op, nil); err != nil {
				return err
			}
		case st.Explore != nil:
			e := st.Explore
			if len(e.Branches) < 2 {
				return fmt.Errorf("spec: explore %q needs >= 2 branches", e.Name)
			}
			if len(e.Body) == 0 {
				return fmt.Errorf("spec: explore %q has an empty body", e.Name)
			}
			if _, err := selector(e.Choose.Selector); err != nil {
				return err
			}
			if _, err := evaluator(e.Choose, 1); err != nil {
				return err
			}
			if err := validateSteps(e.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

// Compile builds the executable MDF graph.
func (s *Spec) Compile() (*graph.Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := mdf.NewBuilder()
	node := b.Source("src", sourceFunc(s.Source), 0.0005)
	node, err := compileSteps(node, s.Pipeline, s.Source.Rows, nil)
	if err != nil {
		return nil, err
	}
	_ = node
	return b.Build()
}

func compileSteps(node *mdf.Node, steps []Step, sourceRows int, params map[string]float64) (*mdf.Node, error) {
	for _, st := range steps {
		switch {
		case st.Op != nil:
			fn, err := opFunc(*st.Op, params)
			if err != nil {
				return nil, err
			}
			cost := st.Op.CostPerMB
			if cost == 0 {
				cost = 0.001
			}
			var dep func(string, graph.TransformFunc, float64) *mdf.Node
			if st.Op.Fn == "normalize" || st.Op.Fn == "standardize" {
				dep = node.ThenWide
			} else {
				dep = node.Then
			}
			node = dep(st.Op.Name, fn, cost)
			if st.Op.FixedCost > 0 {
				node.Op().FixedCost = st.Op.FixedCost
			}
		case st.Iterate != nil:
			it := st.Iterate
			fn, err := opFunc(it.Op, params)
			if err != nil {
				return nil, err
			}
			cost := it.Op.CostPerMB
			if cost == 0 {
				cost = 0.001
			}
			node = node.Iterate(mdf.IterationSpec{
				Name:      it.Name,
				Rounds:    it.Rounds,
				CostPerMB: cost,
				Step: func(round int, d *dataset.Dataset) (*dataset.Dataset, error) {
					return fn([]*dataset.Dataset{d})
				},
				Diverged: func(round int, d *dataset.Dataset) bool {
					if it.DivergeAboveMeanAbs <= 0 {
						return false
					}
					xs := floats(d)
					if len(xs) == 0 {
						return false
					}
					var sum float64
					for _, x := range xs {
						sum += math.Abs(x)
					}
					return sum/float64(len(xs)) > it.DivergeAboveMeanAbs
				},
			})
		case st.Explore != nil:
			e := st.Explore
			ev, err := evaluator(e.Choose, sourceRows)
			if err != nil {
				return nil, err
			}
			sel, err := selector(e.Choose.Selector)
			if err != nil {
				return nil, err
			}
			specs := make([]mdf.BranchSpec, len(e.Branches))
			for i, br := range e.Branches {
				hint := float64(i)
				if br.Hint != nil {
					hint = *br.Hint
				}
				specs[i] = mdf.BranchSpec{Label: br.Label, Hint: hint}
			}
			var compileErr error
			node = node.Explore(e.Name, specs, mdf.NewChooser(ev, sel),
				func(start *mdf.Node, bs mdf.BranchSpec) *mdf.Node {
					var brParams map[string]float64
					for i, br := range e.Branches {
						if br.Label == bs.Label && specs[i].Hint == bs.Hint {
							brParams = br.Params
							break
						}
					}
					end, err := compileSteps(start, e.Body, sourceRows, brParams)
					if err != nil && compileErr == nil {
						compileErr = err
					}
					return end
				})
			if compileErr != nil {
				return nil, compileErr
			}
		}
	}
	return node, nil
}

func sourceFunc(src Source) graph.TransformFunc {
	parts := src.Partitions
	if parts < 1 {
		parts = 8
	}
	vbytes := src.VirtualBytes
	if vbytes <= 0 {
		vbytes = 1 << 30
	}
	if src.File != "" {
		return func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
			if len(ins) != 0 {
				return nil, fmt.Errorf("spec: source received %d inputs", len(ins))
			}
			rows, err := readFloatFile(src.File, src.Rows)
			if err != nil {
				return nil, err
			}
			d := dataset.FromRows("src", rows, parts, 8)
			d.SetVirtualBytes(vbytes)
			return d, nil
		}
	}
	return mdf.SourceFunc(func() *dataset.Dataset {
		rng := stats.NewRNG(src.Seed)
		rows := make([]dataset.Row, src.Rows)
		for i := range rows {
			switch src.Distribution {
			case "uniform":
				rows[i] = rng.Uniform(-1, 1)
			case "bimodal":
				if rng.Float64() < 0.5 {
					rows[i] = rng.Normal(-2, 0.5)
				} else {
					rows[i] = rng.Normal(2, 0.5)
				}
			default:
				rows[i] = rng.Normal(0, 1)
			}
		}
		d := dataset.FromRows("src", rows, parts, 8)
		d.SetVirtualBytes(vbytes)
		return d
	})
}

// opFunc resolves an operator step to a transform; params override Limit/A
// via ParamKey.
func opFunc(op OpStep, params map[string]float64) (graph.TransformFunc, error) {
	pv := func(def float64) float64 {
		if op.ParamKey != "" {
			if v, ok := params[op.ParamKey]; ok {
				return v
			}
		}
		return def
	}
	switch op.Fn {
	case "identity", "":
		return mdf.Identity(op.Name), nil
	case "affine":
		return mdf.MapRows(op.Name, 1.0, func(r dataset.Row) dataset.Row {
			return pv(op.A)*r.(float64) + op.B
		}), nil
	case "square":
		return mdf.MapRows(op.Name, 1.0, func(r dataset.Row) dataset.Row {
			v := r.(float64)
			return v * v
		}), nil
	case "abs":
		return mdf.MapRows(op.Name, 1.0, func(r dataset.Row) dataset.Row {
			return math.Abs(r.(float64))
		}), nil
	case "filter-less":
		return mdf.FilterRows(op.Name, func(r dataset.Row) bool {
			return r.(float64) < pv(op.Limit)
		}), nil
	case "filter-greater":
		return mdf.FilterRows(op.Name, func(r dataset.Row) bool {
			return r.(float64) > pv(op.Limit)
		}), nil
	case "filter-absless":
		return mdf.FilterRows(op.Name, func(r dataset.Row) bool {
			return math.Abs(r.(float64)) < pv(op.Limit)
		}), nil
	case "normalize":
		return normalizeFn(op.Name), nil
	case "standardize":
		return standardizeFn(op.Name), nil
	}
	return nil, fmt.Errorf("spec: unknown op fn %q", op.Fn)
}

func normalizeFn(name string) graph.TransformFunc {
	return mdf.WholeDataset(name, func(in *dataset.Dataset) (*dataset.Dataset, error) {
		xs := floats(in)
		if len(xs) == 0 {
			return in, nil
		}
		lo, hi := stats.MinMax(xs)
		span := hi - lo
		if span == 0 {
			span = 1
		}
		return mdf.MapRows(name, 1.0, func(r dataset.Row) dataset.Row {
			return (r.(float64) - lo) / span
		})([]*dataset.Dataset{in})
	})
}

func standardizeFn(name string) graph.TransformFunc {
	return mdf.WholeDataset(name, func(in *dataset.Dataset) (*dataset.Dataset, error) {
		xs := floats(in)
		if len(xs) == 0 {
			return in, nil
		}
		mean, std := stats.Mean(xs), stats.StdDev(xs)
		if std == 0 {
			std = 1
		}
		return mdf.MapRows(name, 1.0, func(r dataset.Row) dataset.Row {
			return (r.(float64) - mean) / std
		})([]*dataset.Dataset{in})
	})
}

// readFloatFile loads newline-separated float64 values; cap limits the row
// count when positive.
func readFloatFile(path string, cap int) ([]dataset.Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var rows []dataset.Row
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", path, err)
		}
		rows = append(rows, v)
		if cap > 0 && len(rows) >= cap {
			break
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("spec: %s contains no values", path)
	}
	return rows, nil
}

func floats(d *dataset.Dataset) []float64 {
	out := make([]float64, 0, d.NumRows())
	for _, p := range d.Parts {
		for _, r := range p.Rows {
			out = append(out, r.(float64))
		}
	}
	return out
}

func evaluator(c Choose, sourceRows int) (mdf.Evaluator, error) {
	var ev mdf.Evaluator
	switch c.Evaluator {
	case "size", "":
		ev = mdf.SizeEvaluator()
	case "ratio":
		ev = mdf.RatioEvaluator(sourceRows)
	case "mean":
		ev = mdf.FuncEvaluator("mean", func(d *dataset.Dataset) float64 {
			xs := floats(d)
			if len(xs) == 0 {
				return math.Inf(-1) // empty results (e.g. terminated iterations) rank last
			}
			return stats.Mean(xs)
		})
	case "neg-mean-abs":
		ev = mdf.FuncEvaluator("neg-mean-abs", func(d *dataset.Dataset) float64 {
			xs := floats(d)
			if len(xs) == 0 {
				return math.Inf(-1)
			}
			var s float64
			for _, x := range xs {
				s += math.Abs(x)
			}
			return -s / float64(len(xs))
		})
	case "stddev":
		ev = mdf.FuncEvaluator("stddev", func(d *dataset.Dataset) float64 {
			xs := floats(d)
			if len(xs) == 0 {
				return math.Inf(-1)
			}
			return stats.StdDev(xs)
		})
	default:
		return ev, fmt.Errorf("spec: unknown evaluator %q", c.Evaluator)
	}
	ev.Monotone = c.Monotone
	ev.Convex = c.Convex
	ev.CostPerMB = c.CostPerMB
	return ev, nil
}

func selector(s Selector) (mdf.Selector, error) {
	switch s.Kind {
	case "topk":
		return mdf.TopK(max(1, s.K)), nil
	case "bottomk":
		return mdf.BottomK(max(1, s.K)), nil
	case "min":
		return mdf.Min(), nil
	case "max", "":
		return mdf.Max(), nil
	case "threshold":
		return mdf.Threshold(s.Bound, s.AtMost), nil
	case "interval":
		return mdf.Interval(s.Lo, s.Hi), nil
	case "kthreshold":
		return mdf.KThreshold(max(1, s.K), s.Bound, s.AtMost), nil
	case "kinterval":
		return mdf.KInterval(max(1, s.K), s.Lo, s.Hi), nil
	case "mode":
		return mdf.Mode(), nil
	}
	return nil, fmt.Errorf("spec: unknown selector %q", s.Kind)
}
