package spec

// SampleSpec is a representative two-branch exploration document shared by
// the in-package fuzz seeds and the external engine-integration tests.
const SampleSpec = `{
  "name": "demo",
  "source": {"rows": 2000, "partitions": 4, "virtualBytes": 268435456, "distribution": "normal", "seed": 3},
  "pipeline": [
    {"op": {"name": "standardize", "fn": "standardize", "costPerMB": 0.003}},
    {"explore": {
      "name": "outlier",
      "branches": [
        {"label": "k=3.0", "hint": 3.0, "params": {"limit": 3.0}},
        {"label": "k=2.0", "hint": 2.0, "params": {"limit": 2.0}},
        {"label": "k=1.0", "hint": 1.0, "params": {"limit": 1.0}}
      ],
      "body": [
        {"op": {"name": "filter", "fn": "filter-absless", "paramKey": "limit", "costPerMB": 0.002}}
      ],
      "choose": {"evaluator": "ratio", "monotone": true,
                 "selector": {"kind": "kthreshold", "k": 1, "bound": 0.9}}
    }},
    {"op": {"name": "sink", "fn": "identity"}}
  ]
}`
