package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCanonicalizeFixpoint: Parse → Canonicalize → Parse → Canonicalize is
// byte-identical, on the sample spec and on a minimal one.
func TestCanonicalizeFixpoint(t *testing.T) {
	for name, doc := range map[string]string{
		"sample":  SampleSpec,
		"minimal": `{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`,
		"iterate": `{"source":{"rows":5},"pipeline":[{"iterate":{"name":"i","rounds":3,"op":{"fn":"square","name":"sq"}}}]}`,
	} {
		c1, err := Canonical([]byte(doc))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("%s: reparse canonical: %v", name, err)
		}
		if !bytes.Equal(c1, c2) {
			t.Errorf("%s: canonicalize is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", name, c1, c2)
		}
	}
}

// TestCanonicalizeNormalizes pins the normalization rules: defaults are
// materialised, dead fields vanish, keys come out sorted.
func TestCanonicalizeNormalizes(t *testing.T) {
	doc := `{
	  "name": "n",
	  "source": {"rows": 10, "distribution": "weird", "seed": 3},
	  "pipeline": [
	    {"op": {"name": "id", "a": 4, "limit": 9, "paramKey": "zz"}},
	    {"explore": {
	      "name": "e",
	      "branches": [
	        {"label": "a", "params": {"limit": 1, "dead": 7}},
	        {"label": "b", "hint": 5, "params": {"limit": 2}}
	      ],
	      "body": [{"op": {"name": "f", "fn": "filter-less", "paramKey": "limit", "a": 3}}],
	      "choose": {"selector": {"kind": "max", "k": 9, "bound": 2}}
	    }}
	  ]
	}`
	out, err := Canonical([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"schema_version": "1.0.0"`,
		`"distribution": "normal"`, // unknown distribution → the default Compile uses
		`"partitions": 8`,          // default materialised
		`"virtualBytes": 1073741824`,
		`"fn": "identity"`,    // empty fn → identity
		`"costPerMB": 0.001`,  // default cost materialised
		`"hint": 0`,           // missing hint → branch index
		`"hint": 5`,           // explicit hint preserved
		`"evaluator": "size"`, // empty evaluator → size
	} {
		if !strings.Contains(s, want) {
			t.Errorf("canonical form missing %s:\n%s", want, s)
		}
	}
	for _, dead := range []string{
		`"dead"`,           // param no body op consumes
		`"a": 4`,           // identity reads no params
		`"a": 3`,           // filter-less reads no a
		`"limit": 9`,       // identity reads no limit
		`"paramKey": "zz"`, // trunk ops have no params to read
		`"k": 9`,           // max selector reads no k
		`"bound": 2`,       // max selector reads no bound
	} {
		if strings.Contains(s, dead) {
			t.Errorf("canonical form kept dead field %s:\n%s", dead, s)
		}
	}
	if !strings.Contains(s, `"seed": 3`) {
		t.Errorf("canonical form dropped the live seed:\n%s", s)
	}
}

// TestCanonicalizeFileSourceDropsGenerator: a file source's distribution
// and seed are dead and leave the canonical form.
func TestCanonicalizeFileSourceDropsGenerator(t *testing.T) {
	doc := `{"source":{"file":"/tmp/x","rows":0,"distribution":"uniform","seed":9},"pipeline":[{"op":{"name":"x"}}]}`
	out, err := Canonical([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "distribution") || strings.Contains(string(out), "seed") {
		t.Errorf("file source kept generator fields:\n%s", out)
	}
}

// TestSchemaVersion pins accept/reject behaviour for schema_version.
func TestSchemaVersion(t *testing.T) {
	mk := func(v string) string {
		return `{"schema_version":"` + v + `","source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`
	}
	for _, ok := range []string{"1.0.0", "1.2.3", "1.10.0"} {
		if _, err := Parse([]byte(mk(ok))); err != nil {
			t.Errorf("schema_version %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"2.0.0", "0.9.0", "1.0", "1", "v1.0.0", "1.00.0", "1.0.x", ""} {
		if bad == "" {
			continue // empty is the implicit current version
		}
		if _, err := Parse([]byte(mk(bad))); err == nil {
			t.Errorf("schema_version %q accepted", bad)
		}
	}
	// Missing version is fine and canonicalizes to the current one.
	out, err := Canonical([]byte(`{"source":{"rows":5},"pipeline":[{"op":{"name":"x"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"schema_version": "1.0.0"`) {
		t.Errorf("canonical form missing schema_version:\n%s", out)
	}
}

// TestGoldenCanonicalFixtures: every committed fixture under
// testdata/canonical is already in canonical form (the same property
// `make specvet` enforces), parses, and compiles.
func TestGoldenCanonicalFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "canonical", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no golden canonical fixtures")
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Canonical(data)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s is not in canonical form; run mdfplan -write over it.\nwant:\n%s", path, got)
		}
		s, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("%s does not compile: %v", path, err)
		}
	}
}
