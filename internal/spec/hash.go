package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file computes stable FNV-1a content hashes over a spec's semantic
// graph. The hash is a function of the normalized structure (canonical.go),
// so key order, whitespace, and every dead or defaultable field wash out;
// metadata — the job name, operator and explore names, branch labels, the
// allow list, and schema_version itself — is excluded by construction.
//
// Three granularities are exposed:
//
//   - Spec.Hash(): the whole-graph hash. Branch order, hints, costs,
//     selector and evaluator configuration are all included: two specs
//     with equal hashes schedule and compute identically.
//   - chain prefixes: one hash per (source, operator-prefix) pair, for
//     every position along the trunk and along each branch body. Two equal
//     chain hashes — across branches, retries, or separate jobs — name the
//     same intermediate result, which is what a cross-run memo table keys
//     on (ROADMAP item 3).
//   - branch sub-graphs: each explore branch's body hashed with its
//     parameters resolved through ParamKey, seeded by the incoming chain
//     prefix. Equal branch hashes inside one explore prove the branches
//     compute the same result (the dupbranch rule in internal/plan).
//
// ParamKey indirection is resolved before hashing: a filter written with
// {"paramKey": "limit"} under params {"limit": 2} hashes identically to
// the same filter written with {"limit": 2}, because the engine computes
// the same thing for both.

// Hash is a 64-bit FNV-1a content hash of a semantic (sub-)graph.
type Hash uint64

// String renders the hash as fixed-width hex.
func (h Hash) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// MarshalJSON renders the hash as its hex string, so reports survive JSON
// round-trips through readers that truncate 64-bit integers.
func (h Hash) MarshalJSON() ([]byte, error) { return []byte(`"` + h.String() + `"`), nil }

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (h *Hash) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("spec: bad hash %q: %w", s, err)
	}
	*h = Hash(v)
	return nil
}

// ChainHash names one (operator-prefix, source) pair: the semantic
// identity of the intermediate result produced at Path.
type ChainHash struct {
	// Path locates the step in the spec, e.g. "pipeline[1].explore.branch[2].body[0]".
	Path string `json:"path"`
	// Hash identifies the result computed by the chain from the source
	// through this step, parameters resolved.
	Hash Hash `json:"hash"`
}

// BranchHash is the resolved sub-graph hash of one explore branch.
type BranchHash struct {
	// ExplorePath locates the explore, e.g. "pipeline[1].explore".
	ExplorePath string `json:"explorePath"`
	// Branch is the branch index; Label is its (unhashed) label, carried
	// for diagnostics only.
	Branch int    `json:"branch"`
	Label  string `json:"label"`
	// Hash is the branch body's hash, seeded by the chain prefix entering
	// the explore and resolved against the branch's params.
	Hash Hash `json:"hash"`
}

// HashReport is the full hash surface of one spec.
type HashReport struct {
	// Spec is the whole-graph content hash.
	Spec Hash `json:"spec"`
	// Chains lists the prefix hash at every operator position, trunk and
	// branch bodies alike, in document order.
	Chains []ChainHash `json:"chains"`
	// Branches lists every explore branch's resolved sub-graph hash, in
	// document order.
	Branches []BranchHash `json:"branches"`
	// OpChains holds one chain-prefix hash per compiled operator, in the
	// builder's operator-creation order (source, then per step: the op
	// itself; each iterate round; an explore, its branch bodies in branch
	// order, then its choose). OpChains[i] is the semantic identity of
	// operator i's output dataset, which is what the durable checkpoint
	// store (internal/ckptstore) keys on. Excluded from the serialized
	// report: it is an engine-side index, not part of the canonical hash
	// surface.
	OpChains []Hash `json:"-"`
}

// Hash returns the spec's whole-graph semantic content hash.
func (s *Spec) Hash() Hash {
	return s.HashReport().Spec
}

// HashReport computes the whole-graph hash plus every chain-prefix and
// branch sub-graph hash.
func (s *Spec) HashReport() *HashReport {
	n := s.normalized()
	r := &HashReport{}
	w := newHasher(0)
	hashSource(w, n.Source)
	src := w.sum()
	r.Chains = append(r.Chains, ChainHash{Path: "source", Hash: src})
	r.OpChains = append(r.OpChains, src)
	hashSteps(w, n.Pipeline, nil, "pipeline", r)
	r.Spec = w.sum()
	return r
}

// fnv64 is an inline FNV-1a state. Unlike hash/fnv's hash.Hash64 it is a
// plain value, so a hasher can be snapshotted mid-stream — hashSteps
// forks per-iterate-round chain hashes off the pre-step state. Sums are
// bit-identical to fnv.New64a over the same bytes.
type fnv64 uint64

const (
	fnvOffset64 fnv64 = 14695981039346656037
	fnvPrime64  fnv64 = 1099511628211
)

func (h *fnv64) write(b []byte) {
	x := *h
	for _, c := range b {
		x ^= fnv64(c)
		x *= fnvPrime64
	}
	*h = x
}

// hasher streams tagged fields into FNV-1a. A non-zero seed folds a parent
// chain prefix in first, so sub-graph hashes compose with their context.
type hasher struct {
	buf   [8]byte
	sum64 fnv64
}

func newHasher(seed Hash) *hasher {
	w := &hasher{sum64: fnvOffset64}
	if seed != 0 {
		w.u64(uint64(seed))
	}
	return w
}

// clone snapshots the stream state, so a fork can fold divergent suffixes
// without disturbing the trunk.
func (w *hasher) clone() *hasher { return &hasher{sum64: w.sum64} }

func (w *hasher) sum() Hash { return Hash(w.sum64) }

func (w *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(v >> (56 - 8*i))
	}
	w.sum64.write(w.buf[:])
}

func (w *hasher) str(s string) {
	w.u64(uint64(len(s)))
	w.sum64.write([]byte(s))
}

func (w *hasher) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *hasher) i64(v int64)    { w.u64(uint64(v)) }
func (w *hasher) boolean(v bool) { w.u64(map[bool]uint64{false: 0, true: 1}[v]) }

func hashSource(w *hasher, src Source) {
	w.str("source")
	if src.File != "" {
		w.str("file")
		w.str(src.File)
	} else {
		w.str("synthetic")
		w.str(src.Distribution)
		w.i64(src.Seed)
	}
	w.i64(int64(src.Rows))
	w.i64(int64(src.Partitions))
	w.i64(src.VirtualBytes)
}

// hashSteps folds a normalized step sequence into w, resolving operator
// parameters against params, and records every chain prefix and branch
// sub-graph hash into r.
func hashSteps(w *hasher, steps []Step, params map[string]float64, path string, r *HashReport) {
	for i, st := range steps {
		stepPath := fmt.Sprintf("%s[%d]", path, i)
		switch {
		case st.Op != nil:
			hashOp(w, *st.Op, params)
			r.OpChains = append(r.OpChains, w.sum())
		case st.Iterate != nil:
			it := st.Iterate
			// The builder unrolls an iterate into Rounds operators; round
			// k's output is identified by the chain through k+1 rounds.
			// Forking from the pre-step state keeps the final round's
			// chain equal to the step's recorded chain hash below, so an
			// iterate's last checkpoint and its step-level identity agree.
			for k := 0; k < it.Rounds; k++ {
				rw := w.clone()
				rw.str("iterate")
				rw.i64(int64(k + 1))
				rw.f64(it.DivergeAboveMeanAbs)
				hashOp(rw, it.Op, params)
				r.OpChains = append(r.OpChains, rw.sum())
			}
			w.str("iterate")
			w.i64(int64(it.Rounds))
			w.f64(it.DivergeAboveMeanAbs)
			hashOp(w, it.Op, params)
		case st.Explore != nil:
			e := st.Explore
			prefix := w.sum()
			// The explore operator forwards its input, so its output
			// carries the incoming chain's identity.
			r.OpChains = append(r.OpChains, prefix)
			w.str("explore")
			w.i64(int64(len(e.Branches)))
			explorePath := stepPath + ".explore"
			for j, br := range e.Branches {
				bw := newHasher(prefix)
				hashSteps(bw, e.Body, br.Params, fmt.Sprintf("%s.branch[%d].body", explorePath, j), r)
				bh := bw.sum()
				r.Branches = append(r.Branches, BranchHash{
					ExplorePath: explorePath, Branch: j, Label: br.Label, Hash: bh,
				})
				w.u64(uint64(bh))
				if br.Hint != nil { // normalized() always fills it
					w.f64(*br.Hint)
				}
			}
			hashChoose(w, e.Choose)
			// The choose operator's output is the step's result.
			r.OpChains = append(r.OpChains, w.sum())
		}
		r.Chains = append(r.Chains, ChainHash{Path: stepPath, Hash: w.sum()})
	}
}

// hashOp folds one operator, with ParamKey indirection resolved so only
// effective parameter values reach the hash.
func hashOp(w *hasher, op OpStep, params map[string]float64) {
	w.str("op")
	w.str(op.Fn)
	resolve := func(def float64) float64 {
		if op.ParamKey != "" {
			if v, ok := params[op.ParamKey]; ok {
				return v
			}
		}
		return def
	}
	switch op.Fn {
	case "affine":
		w.f64(resolve(op.A))
		w.f64(op.B)
	case "filter-less", "filter-greater", "filter-absless":
		w.f64(resolve(op.Limit))
	}
	w.f64(op.CostPerMB)
	w.f64(op.FixedCost)
}

func hashChoose(w *hasher, c Choose) {
	w.str("choose")
	w.str(c.Evaluator)
	w.boolean(c.Monotone)
	w.boolean(c.Convex)
	w.f64(c.CostPerMB)
	sel := c.Selector
	w.str(sel.Kind)
	w.i64(int64(sel.K))
	w.f64(sel.Bound)
	w.boolean(sel.AtMost)
	w.f64(sel.Lo)
	w.f64(sel.Hi)
}
