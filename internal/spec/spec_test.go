package spec_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/spec"
)

func TestParseAndCompile(t *testing.T) {
	s, err := spec.Parse([]byte(spec.SampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Pipeline) != 3 {
		t.Fatalf("unexpected parse result: %+v", s)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Explores()) != 1 || len(g.Chooses()) != 1 {
		t.Fatal("explore/choose missing from compiled graph")
	}
}

func TestCompiledSpecExecutes(t *testing.T) {
	s, err := spec.Parse([]byte(spec.SampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	res, err := engine.Execute(g, engine.Options{
		Cluster:     cluster.MustNew(cfg),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(scheduler.SortedHint(true)),
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// k=3.0 keeps ~99.7% of standardized normals: the first branch in
	// descending-hint order passes >= 0.9, so the other two are pruned.
	if res.Metrics.BranchesPruned != 2 {
		t.Errorf("branches pruned = %d, want 2", res.Metrics.BranchesPruned)
	}
	if got := float64(res.Output.NumRows()) / 2000; got < 0.99 {
		t.Errorf("kept ratio = %v, want >= 0.99", got)
	}
}

func TestCompiledSpecExpands(t *testing.T) {
	s, err := spec.Parse([]byte(spec.SampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("expanded %d jobs, want 3", len(jobs))
	}
}

func TestNestedExploreSpec(t *testing.T) {
	nested := `{
	  "name": "nested",
	  "source": {"rows": 500, "partitions": 2},
	  "pipeline": [
	    {"explore": {
	      "name": "outer",
	      "branches": [{"label": "a", "params": {"s": 1}}, {"label": "b", "params": {"s": 2}}],
	      "body": [
	        {"op": {"name": "scale", "fn": "affine", "a": 1, "paramKey": "s"}},
	        {"explore": {
	          "name": "inner",
	          "branches": [{"label": "x", "params": {"l": 0.5}}, {"label": "y", "params": {"l": 1.5}}],
	          "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "l"}}],
	          "choose": {"evaluator": "size", "selector": {"kind": "max"}}
	        }}
	      ],
	      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
	    }},
	    {"op": {"name": "sink", "fn": "identity"}}
	  ]
	}`
	s, err := spec.Parse([]byte(nested))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatal(err)
	}
	if len(scopes) != 3 {
		t.Fatalf("scopes = %d, want 3 (outer + 2 inner)", len(scopes))
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expanded %d jobs, want 4", len(jobs))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"no rows":         `{"source": {"rows": 0}, "pipeline": [{"op": {"name": "x"}}]}`,
		"empty pipeline":  `{"source": {"rows": 10}, "pipeline": []}`,
		"both op/explore": `{"source": {"rows": 10}, "pipeline": [{"op": {"name": "x"}, "explore": {"name": "e", "branches": [{"label":"a"},{"label":"b"}], "body": [{"op":{"name":"y"}}], "choose": {"selector": {"kind":"max"}}}}]}`,
		"neither":         `{"source": {"rows": 10}, "pipeline": [{}]}`,
		"one branch":      `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e", "branches": [{"label":"a"}], "body": [{"op":{"name":"y"}}], "choose": {"selector": {"kind":"max"}}}}]}`,
		"empty body":      `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e", "branches": [{"label":"a"},{"label":"b"}], "body": [], "choose": {"selector": {"kind":"max"}}}}]}`,
		"bad selector":    `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e", "branches": [{"label":"a"},{"label":"b"}], "body": [{"op":{"name":"y"}}], "choose": {"selector": {"kind":"zzz"}}}}]}`,
		"bad evaluator":   `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e", "branches": [{"label":"a"},{"label":"b"}], "body": [{"op":{"name":"y"}}], "choose": {"evaluator": "zzz", "selector": {"kind":"max"}}}}]}`,
		"bad op fn":       `{"source": {"rows": 10}, "pipeline": [{"op": {"name": "x", "fn": "teleport"}}]}`,
	}
	for name, doc := range cases {
		if _, err := spec.Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAllOpFns(t *testing.T) {
	for _, fn := range []string{
		"identity", "affine", "square", "abs",
		"filter-less", "filter-greater", "filter-absless",
		"normalize", "standardize",
	} {
		doc := `{"source": {"rows": 100, "partitions": 2},
		         "pipeline": [{"op": {"name": "x", "fn": "` + fn + `", "a": 1, "limit": 1}}]}`
		s, err := spec.Parse([]byte(doc))
		if err != nil {
			t.Errorf("%s: %v", fn, err)
			continue
		}
		g, err := s.Compile()
		if err != nil {
			t.Errorf("%s: compile: %v", fn, err)
			continue
		}
		cfg := cluster.DefaultConfig()
		cfg.Workers = 2
		if _, err := engine.Execute(g, engine.Options{
			Cluster: cluster.MustNew(cfg), Policy: memorymgr.LRU,
			Scheduler: scheduler.BFS(),
		}); err != nil {
			t.Errorf("%s: execute: %v", fn, err)
		}
	}
}

func TestAllSelectors(t *testing.T) {
	for _, sel := range []string{
		`{"kind": "topk", "k": 2}`, `{"kind": "bottomk", "k": 2}`,
		`{"kind": "min"}`, `{"kind": "max"}`,
		`{"kind": "threshold", "bound": 10}`, `{"kind": "interval", "lo": 0, "hi": 1e9}`,
		`{"kind": "kthreshold", "k": 1, "bound": 1}`, `{"kind": "kinterval", "k": 1, "lo": 0, "hi": 1e9}`,
		`{"kind": "mode"}`,
	} {
		doc := `{"source": {"rows": 200, "partitions": 2},
		  "pipeline": [
		    {"explore": {"name": "e",
		      "branches": [{"label":"a","params":{"l":0.5}},{"label":"b","params":{"l":1.0}},{"label":"c","params":{"l":2.0}}],
		      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "l"}}],
		      "choose": {"evaluator": "size", "selector": ` + sel + `}}},
		    {"op": {"name": "sink", "fn": "identity"}}
		  ]}`
		s, err := spec.Parse([]byte(doc))
		if err != nil {
			t.Errorf("%s: %v", sel, err)
			continue
		}
		g, err := s.Compile()
		if err != nil {
			t.Errorf("%s: compile: %v", sel, err)
			continue
		}
		cfg := cluster.DefaultConfig()
		cfg.Workers = 2
		if _, err := engine.Execute(g, engine.Options{
			Cluster: cluster.MustNew(cfg), Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
		}); err != nil {
			t.Errorf("%s: execute: %v", sel, err)
		}
	}
}

func TestIterateStepSpec(t *testing.T) {
	doc := `{
	  "source": {"rows": 400, "partitions": 2, "seed": 2},
	  "pipeline": [
	    {"explore": {"name": "growth",
	      "branches": [{"label": "slow", "params": {"g": 1.05}}, {"label": "fast", "params": {"g": 3.0}}],
	      "body": [
	        {"iterate": {"name": "grow", "rounds": 6, "divergeAboveMeanAbs": 10,
	          "op": {"name": "scale", "fn": "affine", "paramKey": "g"}}}
	      ],
	      "choose": {"evaluator": "neg-mean-abs", "selector": {"kind": "max"}}}},
	    {"op": {"name": "sink", "fn": "identity"}}
	  ]
	}`
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = 2
	res, err := engine.Execute(g, engine.Options{
		Cluster: cluster.MustNew(cfg), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The fast-growth branch diverges past mean |x| = 10 and terminates;
	// the slow branch survives and is selected (higher neg-mean-abs).
	if res.Output.NumRows() == 0 {
		t.Fatal("diverging branch selected: output empty")
	}
}

func TestIterateStepValidation(t *testing.T) {
	bad := `{"source": {"rows": 10}, "pipeline": [
	  {"iterate": {"name": "x", "rounds": 0, "op": {"name": "y"}}}]}`
	if _, err := spec.Parse([]byte(bad)); err == nil {
		t.Error("zero rounds accepted")
	}
	both := `{"source": {"rows": 10}, "pipeline": [
	  {"op": {"name": "a"}, "iterate": {"name": "x", "rounds": 1, "op": {"name": "y"}}}]}`
	if _, err := spec.Parse([]byte(both)); err == nil {
		t.Error("op+iterate in one step accepted")
	}
}

func TestFileSource(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/values.txt"
	if err := os.WriteFile(path, []byte("# comment\n1.5\n2.5\n\n3.5\n4.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := `{"source": {"file": ` + fmt.Sprintf("%q", path) + `, "partitions": 2},
	  "pipeline": [{"op": {"name": "keep", "fn": "filter-greater", "limit": 2.0}}]}`
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = 2
	res, err := engine.Execute(g, engine.Options{
		Cluster: cluster.MustNew(cfg), Policy: memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 3 {
		t.Errorf("rows = %d, want 3 (values > 2.0)", res.Output.NumRows())
	}
}

func TestFileSourceCapAndErrors(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/values.txt"
	os.WriteFile(path, []byte("1\n2\n3\n4\n5\n"), 0o644)
	doc := `{"source": {"file": ` + fmt.Sprintf("%q", path) + `, "rows": 2},
	  "pipeline": [{"op": {"name": "id"}}]}`
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = 2
	res, err := engine.Execute(g, engine.Options{
		Cluster: cluster.MustNew(cfg), Policy: memorymgr.LRU, Scheduler: scheduler.BFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 2 {
		t.Errorf("rows = %d, want 2 (capped)", res.Output.NumRows())
	}
	// Missing file and malformed values fail at execution time.
	for _, body := range []string{"not-a-number\n", ""} {
		os.WriteFile(path, []byte(body), 0o644)
		s, err := spec.Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Execute(g, engine.Options{
			Cluster: cluster.MustNew(cfg), Policy: memorymgr.LRU, Scheduler: scheduler.BFS(),
		}); err == nil {
			t.Errorf("body %q: expected execution error", body)
		}
	}
}

// TestParseRejectsUnknownFields pins strict decoding: a field the schema
// does not define — at the top level or nested anywhere in the pipeline —
// fails Parse instead of being silently dropped.
func TestParseRejectsUnknownFields(t *testing.T) {
	cases := map[string]string{
		"top level": `{"source": {"rows": 10}, "pipeline": [{"op": {"name": "x"}}], "nme": "typo"}`,
		"in source": `{"source": {"rows": 10, "partitons": 4}, "pipeline": [{"op": {"name": "x"}}]}`,
		"in op":     `{"source": {"rows": 10}, "pipeline": [{"op": {"name": "x", "expense": 1}}]}`,
		"in choose": `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e",
			"branches": [{"label": "a"}, {"label": "b"}],
			"body": [{"op": {"name": "y"}}],
			"choose": {"selector": {"kind": "max"}, "evaluater": "size"}}}]}`,
		"in selector": `{"source": {"rows": 10}, "pipeline": [{"explore": {"name": "e",
			"branches": [{"label": "a"}, {"label": "b"}],
			"body": [{"op": {"name": "y"}}],
			"choose": {"selector": {"kind": "topk", "kk": 2}}}}]}`,
		"trailing document": `{"source": {"rows": 10}, "pipeline": [{"op": {"name": "x"}}]} {"extra": 1}`,
	}
	for name, doc := range cases {
		if _, err := spec.Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse accepted a document with an unknown field", name)
		}
	}
	// The same documents without the typos still parse.
	if _, err := spec.Parse([]byte(`{"source": {"rows": 10, "partitions": 4}, "pipeline": [{"op": {"name": "x", "costPerMB": 1}}]}`)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

// TestParseErrorPositions: decode errors point at the offending line and
// column instead of a bare byte offset.
func TestParseErrorPositions(t *testing.T) {
	cases := map[string]struct {
		doc  string
		want string // expected position fragment in the error
	}{
		"syntax error": {
			doc:  "{\"source\": {\"rows\": 5}\n \"pipeline\": [{\"op\": {\"name\": \"x\"}}]}",
			want: "line 2, column",
		},
		"type error": {
			doc:  "{\"source\": {\"rows\": 5},\n \"pipeline\": [{\"op\": {\"name\": 42}}]}",
			want: "line 2, column",
		},
		// Unknown-field errors carry no byte offset, so the position falls
		// back to the decoder's progress: the end of the document read so far.
		"unknown field": {
			doc:  "{\"source\": {\"rows\": 5,\n  \"partitons\": 4},\n \"pipeline\": [{\"op\": {\"name\": \"x\"}}]}",
			want: "line 3, column",
		},
		"trailing document": {
			doc:  "{\"source\": {\"rows\": 5}, \"pipeline\": [{\"op\": {\"name\": \"x\"}}]}\n{\"extra\": 1}",
			want: "line 2, column",
		},
		"first line": {
			doc:  `{"source": nope}`,
			want: "line 1, column 14", // at the first character that breaks the literal
		},
	}
	for name, tc := range cases {
		_, err := spec.Parse([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: Parse accepted a malformed document", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not carry position %q", name, err, tc.want)
		}
	}
}
