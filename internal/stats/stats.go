// Package stats provides the shared numeric helpers used by the workloads
// and the experiment harness: summary statistics, histograms, and seeded
// random variate generation.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// The summary helpers are generic over any float64-representation type, so
// they work directly on unit-typed quantities (e.g. []sim.VTime) as well as
// raw []float64 without stripping the unit first.

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean[F ~float64](xs []F) F {
	if len(xs) == 0 {
		return 0
	}
	s := F(0)
	for _, x := range xs {
		s += x
	}
	return s / F(len(xs))
}

// Variance returns the population variance of xs.
func Variance[F ~float64](xs []F) F {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := F(0)
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / F(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev[F ~float64](xs []F) F { return F(math.Sqrt(float64(Variance(xs)))) }

// MinMax returns the minimum and maximum of xs; it panics on empty input.
func MinMax[F ~float64](xs []F) (lo, hi F) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = min(lo, x)
		hi = max(hi, x)
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation; it panics on empty input.
func Quantile[F ~float64](xs []F, q float64) F {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]F(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := F(pos - float64(lo))
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary is a min/avg/max triple; the paper reports the average of 3 runs
// with min and max as error bars (§6).
type Summary struct {
	Min, Avg, Max float64
}

// Summarize computes a Summary over xs; it panics on empty input.
func Summarize[F ~float64](xs []F) Summary {
	lo, hi := MinMax(xs)
	return Summary{Min: float64(lo), Avg: float64(Mean(xs)), Max: float64(hi)}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f]", s.Avg, s.Min, s.Max)
}

// Histogram counts xs into bins uniform bins over [lo, hi). Values outside
// the range are clamped into the first or last bin.
func Histogram[F ~float64](xs []F, lo, hi F, bins int) []int {
	if bins < 1 {
		panic("stats: Histogram needs at least one bin")
	}
	counts := make([]int, bins)
	width := (hi - lo) / F(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// RNG wraps a seeded source of the random variates used by the synthetic
// data generators. A nil RNG is not usable; construct with NewRNG or
// NewRNGFrom.
//
// RNG exists so that every draw in the repository is replayable from a
// seed threaded through options: the top-level math/rand functions (the
// process-global source) are forbidden in internal/ by the seededrand rule
// of mdflint (see internal/analysis).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// NewRNGFrom wraps an explicitly seeded generator the caller already
// threads, so one seed can feed several layers without re-deriving it.
func NewRNGFrom(r *rand.Rand) *RNG {
	if r == nil {
		panic("stats: NewRNGFrom of nil *rand.Rand")
	}
	return &RNG{r: r}
}

// Derive returns an independent generator whose seed is a deterministic
// function of g's next draw and the label, for giving each component of a
// run (workload, fault plan, hint) its own replayable stream.
func (g *RNG) Derive(label string) *RNG {
	seed := g.r.Int63()
	for _, c := range label {
		seed = seed*1099511628211 + int64(c) // FNV-style fold, stays deterministic
	}
	return NewRNG(seed)
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Normal returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer, for deriving child
// seeds.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exponential returns an exponential variate with the given rate.
func (g *RNG) Exponential(rate float64) float64 { return g.r.ExpFloat64() / rate }
