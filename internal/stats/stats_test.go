package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean[float64](nil) != 0 || Variance[float64](nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty slice should panic")
		}
	}()
	MinMax[float64](nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 6})
	if s.Min != 1 || s.Max != 6 || s.Avg != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.2, 0.6, 0.9, -5, 10}, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3] (outliers clamped)", counts)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(6)
	same := true
	a2 := NewRNG(5)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestNewRNGFrom(t *testing.T) {
	a := NewRNG(5)
	b := NewRNGFrom(rand.New(rand.NewSource(5)))
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRNGFrom with the same seed must give the same stream")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewRNGFrom(nil) must panic")
		}
	}()
	NewRNGFrom(nil)
}

func TestDerive(t *testing.T) {
	a, b := NewRNG(5).Derive("faults"), NewRNG(5).Derive("faults")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Derive must be deterministic for the same seed and label")
		}
	}
	x, y := NewRNG(5).Derive("faults"), NewRNG(5).Derive("workload")
	same := true
	for i := 0; i < 10; i++ {
		if x.Float64() != y.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels gave identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Errorf("normal mean = %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.1 {
		t.Errorf("normal std = %v, want ~2", s)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestExponentialPositive(t *testing.T) {
	g := NewRNG(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = g.Exponential(2)
		if xs[i] < 0 {
			t.Fatal("exponential must be non-negative")
		}
	}
	if m := Mean(xs); math.Abs(m-0.5) > 0.05 {
		t.Errorf("exponential mean = %v, want ~0.5", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(4)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		lo, hi := MinMax(xs)
		return v1 <= v2+1e-9 && v1 >= lo-1e-9 && v2 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and zero for constant data.
func TestVarianceProperty(t *testing.T) {
	f := func(raw []uint16, c uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		if Variance(xs) < 0 {
			return false
		}
		constant := make([]float64, 10)
		for i := range constant {
			constant[i] = float64(c)
		}
		return Variance(constant) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
