package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"metadataflow/internal/faults"
	"metadataflow/internal/obs"
	"metadataflow/internal/stats"
)

func quick() Options { return Options{Seeds: 1, Quick: true} }

func firstX(t *Table) string { return t.Rows[0].X }
func lastX(t *Table) string  { return t.Rows[len(t.Rows)-1].X }

func cellAvg(t *testing.T, tab *Table, x, col string) float64 {
	t.Helper()
	s, ok := tab.Cell(x, col)
	if !ok {
		t.Fatalf("%s: missing cell (%s, %s)", tab.ID, x, col)
	}
	return s.Avg
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation",
		"stragglers", "recovery", "reliability"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestTable1ObservedOptimisations(t *testing.T) {
	tab, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Expected matrix per Tab. 1 (rows in order): discard-incrementally,
	// discard-superfluous.
	want := [][2]float64{
		{1, 1}, // monotone + associative
		{1, 1}, // convex + associative
		{1, 1}, // none + associative & non-exhaustive
		{1, 0}, // none + associative
		{0, 0}, // none + none (mode)
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(want))
	}
	for i, w := range want {
		got := tab.Rows[i]
		if got.Cells[0].Avg != w[0] || got.Cells[1].Avg != w[1] {
			t.Errorf("row %q: got (%g, %g), want (%g, %g)",
				got.X, got.Cells[0].Avg, got.Cells[1].Avg, w[0], w[1])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive: MDF beats sequential and both parallel baselines.
	x := "WxRxM (exhaustive)"
	mdfT := cellAvg(t, tab, x, "MDF")
	for _, col := range []string{"sequential", "4-parallel", "8-parallel"} {
		if b := cellAvg(t, tab, x, col); mdfT >= b {
			t.Errorf("exhaustive: MDF (%0.0fs) should beat %s (%0.0fs)", mdfT, col, b)
		}
	}
	// Early choose: MDF beats the exhaustive MDF and the 8-parallel
	// baseline by a wide margin.
	ec := cellAvg(t, tab, "W->RxM (early choose)", "MDF")
	if ec >= mdfT {
		t.Errorf("early choose MDF (%0.0fs) should beat exhaustive MDF (%0.0fs)", ec, mdfT)
	}
	par8 := cellAvg(t, tab, "WxRxM (exhaustive)", "8-parallel")
	if ec >= par8*0.5 {
		t.Errorf("early choose (%0.0fs) should be well under half of 8-parallel exhaustive (%0.0fs)", ec, par8)
	}
}

func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		seq := cellAvg(t, tab, row.X, "sequential")
		mdfT := cellAvg(t, tab, row.X, "MDF")
		if mdfT >= seq {
			t.Errorf("%s: MDF (%0.0fs) should beat sequential (%0.0fs)", row.X, mdfT, seq)
		}
	}
	// The MDF's relative advantage over sequential grows with input size.
	firstGain := cellAvg(t, tab, firstX(tab), "sequential") / cellAvg(t, tab, firstX(tab), "MDF")
	lastGain := cellAvg(t, tab, lastX(tab), "sequential") / cellAvg(t, tab, lastX(tab), "MDF")
	if lastGain < firstGain*0.9 {
		t.Errorf("MDF gain should not shrink with input size: %0.2fx -> %0.2fx", firstGain, lastGain)
	}
}

func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		seq := cellAvg(t, tab, row.X, "sequential")
		mdfT := cellAvg(t, tab, row.X, "MDF")
		if mdfT >= seq {
			t.Errorf("%s branches: MDF (%0.0fs) should beat sequential (%0.0fs)", row.X, mdfT, seq)
		}
	}
	// Sequential grows roughly linearly in the branch count (16 -> 64
	// quadruples the work).
	s16 := cellAvg(t, tab, "16", "sequential")
	s64 := cellAvg(t, tab, "64", "sequential")
	if s64 < 2.5*s16 {
		t.Errorf("sequential should grow ~linearly with branches: 16 -> %0.0fs, 64 -> %0.0fs", s16, s64)
	}
}

func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	x := firstX(tab)
	full := cellAvg(t, tab, x, "MDF")
	top4 := cellAvg(t, tab, x, "MDF (top-4)")
	first4 := cellAvg(t, tab, x, "MDF (first-4)")
	sorted := cellAvg(t, tab, x, "MDF (first-4, sorted)")
	// Top-4 discards datasets incrementally (paper: 34-39% saving).
	if top4 >= full*0.9 {
		t.Errorf("top-4 (%0.0fs) should clearly beat full MDF (%0.0fs)", top4, full)
	}
	// Non-exhaustive first-4 prunes superfluous branches: more pronounced.
	if first4 >= top4 {
		t.Errorf("first-4 (%0.0fs) should beat top-4 (%0.0fs)", first4, top4)
	}
	// Sorted hints are at least as good as definition order.
	if sorted > first4*1.05 {
		t.Errorf("sorted hints (%0.0fs) should be at least as good as definition order (%0.0fs)", sorted, first4)
	}
	// Random order varies, but its maximum stays below top-4 (the paper's
	// "the maximum is always less than that of MDF (top-4)").
	rnd, ok := tab.Cell(x, "MDF (first-4, random)")
	if !ok {
		t.Fatal("missing random cell")
	}
	if rnd.Max >= top4 {
		t.Errorf("random first-4 max (%0.0fs) should stay below top-4 (%0.0fs)", rnd.Max, top4)
	}
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	x := lastX(tab)
	seqT := cellAvg(t, tab, x, "Spark (sequential)")
	yarn := cellAvg(t, tab, x, "Spark (YARN)")
	cache := cellAvg(t, tab, x, "Spark (cache)")
	mdfT := cellAvg(t, tab, x, "SEEP (MDF)")
	if mdfT >= cache || mdfT >= yarn || mdfT >= seqT {
		t.Errorf("SEEP (MDF) (%0.0fs) should beat cache (%0.0fs), YARN (%0.0fs) and sequential (%0.0fs)",
			mdfT, cache, yarn, seqT)
	}
	if seqT <= yarn {
		t.Errorf("Spark sequential (%0.0fs) should be slowest (YARN %0.0fs)", seqT, yarn)
	}
}

func TestFig10Fig13Shape(t *testing.T) {
	rate, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rate.Rows {
		ammInc := cellAvg(t, rate, row.X, "AMM+incremental")
		lru := cellAvg(t, rate, row.X, "LRU")
		if ammInc < lru {
			t.Errorf("workers=%s: AMM+incremental rate (%0.1f) should be >= LRU (%0.1f)", row.X, ammInc, lru)
		}
	}
	// Hit ratio is roughly flat across worker counts (constant input per
	// worker): compare first and last rows per column.
	for _, col := range hit.Columns {
		a := cellAvg(t, hit, firstX(hit), col)
		b := cellAvg(t, hit, lastX(hit), col)
		if diff := a - b; diff > 0.15 || diff < -0.15 {
			t.Errorf("%s hit ratio should be stable across workers: %0.2f vs %0.2f", col, a, b)
		}
	}
}

func TestFig11Fig14Shape(t *testing.T) {
	ct, err := Fig11(quick())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Completion time grows with data size; hit ratio declines.
	for _, col := range ct.Columns {
		if a, b := cellAvg(t, ct, firstX(ct), col), cellAvg(t, ct, lastX(ct), col); b <= a {
			t.Errorf("%s completion should grow with data size: %0.0fs -> %0.0fs", col, a, b)
		}
	}
	for _, col := range hit.Columns {
		if a, b := cellAvg(t, hit, firstX(hit), col), cellAvg(t, hit, lastX(hit), col); b > a+0.01 {
			t.Errorf("%s hit ratio should not grow with data size: %0.2f -> %0.2f", col, a, b)
		}
	}
	// AMM+incremental achieves at least the LRU hit ratio at the largest size.
	if lru, amm := cellAvg(t, hit, lastX(hit), "LRU"), cellAvg(t, hit, lastX(hit), "AMM+incremental"); amm < lru {
		t.Errorf("AMM+incremental hit ratio (%0.2f) should be >= LRU (%0.2f)", amm, lru)
	}
}

func TestFig12Fig15Shape(t *testing.T) {
	ct, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig15(quick()); err != nil {
		t.Fatal(err)
	}
	// AMM+incremental should beat plain LRU at every branching factor.
	for _, row := range ct.Rows {
		lru := cellAvg(t, ct, row.X, "LRU")
		amm := cellAvg(t, ct, row.X, "AMM+incremental")
		if amm > lru {
			t.Errorf("|B1|=%s: AMM+incremental (%0.0fs) should not exceed LRU (%0.0fs)", row.X, amm, lru)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	tab, err := Fig16(quick())
	if err != nil {
		t.Fatal(err)
	}
	// All relative times are <= ~1 (never worse than LRU) and the
	// advantage of AMM+incremental shrinks as compute dominates.
	aFirst := cellAvg(t, tab, firstX(tab), "AMM+incremental")
	aLast := cellAvg(t, tab, lastX(tab), "AMM+incremental")
	if aFirst > 1.02 {
		t.Errorf("AMM+incremental at low cost should be <= LRU: %0.2fx", aFirst)
	}
	if aLast < aFirst-0.02 {
		t.Errorf("AMM+incremental advantage should shrink with compute cost: %0.2fx -> %0.2fx", aFirst, aLast)
	}
}

func TestFig17Fig18Shape(t *testing.T) {
	rel, err := Fig17(quick())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := Fig18(quick())
	if err != nil {
		t.Fatal(err)
	}
	// With little memory, AMM+incremental clearly beats LRU; with ample
	// memory the approaches converge.
	small := cellAvg(t, rel, firstX(rel), "AMM+incremental")
	large := cellAvg(t, rel, lastX(rel), "AMM+incremental")
	if small > 0.95 {
		t.Errorf("AMM+incremental should clearly beat LRU at small memory: %0.2fx", small)
	}
	if large < small {
		t.Errorf("relative time should converge toward 1 with memory: %0.2fx -> %0.2fx", small, large)
	}
	// Hit ratios grow with memory for every policy.
	for _, col := range hit.Columns {
		a := cellAvg(t, hit, firstX(hit), col)
		b := cellAvg(t, hit, lastX(hit), col)
		if b < a-0.01 {
			t.Errorf("%s hit ratio should grow with memory: %0.2f -> %0.2f", col, a, b)
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	text := tab.Format()
	if !strings.Contains(text, "table1") || !strings.Contains(text, "discard incrementally") {
		t.Errorf("Format output missing headers:\n%s", text)
	}
	csv := tab.CSV()
	if lines := strings.Count(csv, "\n"); lines != len(tab.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, len(tab.Rows)+1)
	}
}

func TestAblationShape(t *testing.T) {
	tab, err := Ablation(quick())
	if err != nil {
		t.Fatal(err)
	}
	x := firstX(tab)
	bfsLRU := cellAvg(t, tab, x, "BFS+LRU")
	basLRU := cellAvg(t, tab, x, "BAS+LRU")
	basAMMInc := cellAvg(t, tab, x, "BAS+AMM+incremental")
	if basLRU > bfsLRU {
		t.Errorf("BAS alone (%0.0fs) should not be slower than BFS (%0.0fs)", basLRU, bfsLRU)
	}
	if basAMMInc > basLRU {
		t.Errorf("full stack (%0.0fs) should not be slower than BAS+LRU (%0.0fs)", basAMMInc, basLRU)
	}
	if basAMMInc >= bfsLRU {
		t.Errorf("full stack (%0.0fs) should clearly beat the baseline (%0.0fs)", basAMMInc, bfsLRU)
	}
}

func TestStragglersShape(t *testing.T) {
	tab, err := Stragglers(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Without speculative re-execution a straggler gates every stage: the
	// job slows by roughly the slow factor, never more.
	base := cellAvg(t, tab, "1x", "SEEP (MDF)")
	slow := cellAvg(t, tab, "4x", "SEEP (MDF)")
	if slow <= base {
		t.Errorf("straggler run (%0.0fs) should be slower than clean (%0.0fs)", slow, base)
	}
	rel := cellAvg(t, tab, "4x", "relative")
	if rel <= 1 || rel > 4.2 {
		t.Errorf("4x straggler should slow the job by (1, 4.2]x, got %0.2fx", rel)
	}
	// With speculation the impact shrinks to roughly the lost capacity
	// share (one of eight workers at quarter speed): well under 2x.
	spec := cellAvg(t, tab, "4x", "relative (spec.)")
	if spec >= rel {
		t.Errorf("speculation (%0.2fx) should beat no mitigation (%0.2fx)", spec, rel)
	}
	if spec > 2 {
		t.Errorf("speculation should bound the 4x straggler impact under 2x, got %0.2fx", spec)
	}
}

func TestRecoveryShape(t *testing.T) {
	tab, err := Recovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	x := firstX(tab)
	clean := cellAvg(t, tab, x, "clean run")
	failed := cellAvg(t, tab, x, "with failure")
	if failed < clean {
		t.Errorf("failed run (%0.0fs) should not be faster than clean (%0.0fs)", failed, clean)
	}
	// Checkpoint recovery must cost far less than rerunning the job.
	overhead := cellAvg(t, tab, x, "overhead")
	if overhead > clean {
		t.Errorf("recovery overhead (%0.0fs) should be below a full rerun (%0.0fs)", overhead, clean)
	}
}

func TestReliabilityAMMBeatsLRU(t *testing.T) {
	tab, err := Reliability(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("reliability table is empty")
	}
	// AMM's anticipatory checkpoints must make its recovery overhead
	// strictly cheaper than LRU's lineage re-derivation at every fault
	// rate, under both schedulers.
	for _, row := range tab.Rows {
		for _, sched := range []string{"BFS", "BAS"} {
			lru := cellAvg(t, tab, row.X, "LRU+"+sched)
			amm := cellAvg(t, tab, row.X, "AMM+"+sched)
			if amm >= lru {
				t.Errorf("rate %s, %s: AMM overhead %0.2fs not strictly below LRU %0.2fs",
					row.X, sched, amm, lru)
			}
			if amm < 0 || lru < 0 {
				t.Errorf("rate %s, %s: negative overhead (AMM %0.2f, LRU %0.2f)",
					row.X, sched, amm, lru)
			}
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| evaluator/selection |") || !strings.Contains(md, "|---|") {
		t.Errorf("markdown malformed:\n%s", md)
	}
	if lines := strings.Count(md, "\n"); lines < len(tab.Rows)+3 {
		t.Errorf("markdown too short: %d lines", lines)
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{
		ID: "figX", Title: "demo", XLabel: "n", Unit: "virtual seconds",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{X: "1", Cells: []stats.Summary{{Min: 1, Avg: 2, Max: 3}, {Min: 4, Avg: 4, Max: 4}}},
		},
	}
	opts := Options{Seeds: 2}
	data, err := tab.JSON(opts.SeedList())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string  `json:"schema"`
		Experiment string  `json:"experiment"`
		Seeds      []int64 `json:"seeds"`
		Columns    []string
		Rows       []struct {
			X     string `json:"x"`
			Cells []struct {
				Min, Avg, Max float64
			} `json:"cells"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if doc.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, BenchSchema)
	}
	if doc.Experiment != "figX" || len(doc.Seeds) != 2 || doc.Seeds[1] != 2 {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Rows) != 1 || len(doc.Rows[0].Cells) != 2 || doc.Rows[0].Cells[0].Avg != 2 {
		t.Errorf("rows = %+v", doc.Rows)
	}
	again, err := tab.JSON(opts.SeedList())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("bench JSON is not byte-stable across serializations")
	}
}

func TestCheckFaultSnapshot(t *testing.T) {
	plan := &faults.Plan{Crashes: []faults.Crash{{Node: 0, AfterStages: 1}}}

	ok := obs.NewSnapshot()
	ok.AddCounter("faults.injected", 2)
	ok.AddCounter("faults.node_crashes", 1)
	ok.AddCounter("faults.partitions_rederived", 3)
	ok.AddCounter("faults.rederived_bytes", 1<<20)
	ok.Faults = append(ok.Faults, obs.FaultEvent{Kind: "crash", Node: 0})
	if err := checkFaultSnapshot(ok, plan); err != nil {
		t.Errorf("consistent snapshot rejected: %v", err)
	}

	silent := obs.NewSnapshot()
	if err := checkFaultSnapshot(silent, plan); err == nil {
		t.Error("snapshot with no injected faults accepted")
	}

	inconsistent := obs.NewSnapshot()
	inconsistent.AddCounter("faults.injected", 1)
	inconsistent.AddCounter("faults.node_crashes", 1)
	inconsistent.AddCounter("faults.partitions_rederived", 3)
	if err := checkFaultSnapshot(inconsistent, plan); err == nil {
		t.Error("snapshot with re-derived partitions but zero bytes accepted")
	}
}
