// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a Table whose series mirror the
// paper's: completion times (virtual seconds), processing rates or memory
// hit ratios, averaged over three seeded runs with min and max recorded as
// error bars, exactly as the paper reports its results.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/stats"
)

// Options tunes experiment scale.
type Options struct {
	// Seeds is the number of runs per data point (default 3, matching the
	// paper's protocol).
	Seeds int
	// Quick shrinks workloads and sweeps for fast test runs.
	Quick bool
	// Ctx, when non-nil, cancels a sweep between seeded runs: summarize
	// returns an error wrapping ErrInterrupted at the next data point after
	// the context is done. mdfbench threads its SIGINT/SIGTERM context
	// through here so a half-finished sweep exits promptly without leaving
	// partially written artifacts.
	Ctx context.Context
}

// ErrInterrupted marks a sweep canceled through Options.Ctx.
var ErrInterrupted = errors.New("experiments: interrupted")

// DefaultOptions mirrors the paper's three-run protocol.
func DefaultOptions() Options { return Options{Seeds: 3} }

// SeedList returns the seeds each data point is averaged over, for
// embedding in machine-readable output.
func (o Options) SeedList() []int64 { return o.seeds() }

func (o Options) seeds() []int64 {
	n := o.Seeds
	if n <= 0 {
		n = 3
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// Row is one x-axis point of a table.
type Row struct {
	X     string
	Cells []stats.Summary
}

// Table is the regenerated data of one figure or table.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Unit    string
	Columns []string
	Rows    []Row
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (%s)\n", t.ID, t.Title, t.Unit)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Cells))
		for j, c := range r.Cells {
			cells[i][j] = formatSummary(c)
		}
	}
	for j, col := range t.Columns {
		widths[j+1] = len(col)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], t.XLabel)
	for j, col := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], col)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r.X)
		for j := range t.Columns {
			cell := ""
			if j < len(cells[i]) {
				cell = cells[i][j]
			}
			fmt.Fprintf(&b, "  %*s", widths[j+1], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatSummary(s stats.Summary) string {
	if s.Min == s.Max {
		return fmt.Sprintf("%.2f", s.Avg)
	}
	return fmt.Sprintf("%.2f [%.2f,%.2f]", s.Avg, s.Min, s.Max)
}

// Markdown renders the table as a GitHub-flavoured markdown table
// (avg [min, max] cells), ready for EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s** — %s (%s)\n\n", t.ID, t.Title, t.Unit)
	fmt.Fprintf(&b, "| %s |", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|")
	for range len(t.Columns) + 1 {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %s |", formatSummary(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (avg only).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s", r.X)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, ",%.4f", c.Avg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BenchSchema versions the JSON document emitted by Table.JSON. Renaming or
// removing a field is a schema change and must bump this string.
const BenchSchema = "mdf.bench/v1"

// benchCell is one (x, column) summary in the JSON document.
type benchCell struct {
	Min float64 `json:"min"`
	Avg float64 `json:"avg"`
	Max float64 `json:"max"`
}

// benchRow is one x-axis point in the JSON document.
type benchRow struct {
	X     string      `json:"x"`
	Cells []benchCell `json:"cells"`
}

// benchDoc is the machine-readable form of one regenerated experiment.
// Struct-typed fields keep JSON key order, and so the serialized bytes,
// deterministic.
type benchDoc struct {
	Schema     string     `json:"schema"`
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	XLabel     string     `json:"x_label"`
	Unit       string     `json:"unit"`
	Seeds      []int64    `json:"seeds"`
	Columns    []string   `json:"columns"`
	Rows       []benchRow `json:"rows"`
}

// JSON renders the table as an indented, schema-stable JSON document
// (BenchSchema) carrying the experiment id, the data series with min/avg/max
// per cell, and the seeds behind each data point. The same table serializes
// to the same bytes.
func (t *Table) JSON(seeds []int64) ([]byte, error) {
	doc := benchDoc{
		Schema:     BenchSchema,
		Experiment: t.ID,
		Title:      t.Title,
		XLabel:     t.XLabel,
		Unit:       t.Unit,
		Seeds:      seeds,
		Columns:    t.Columns,
		Rows:       make([]benchRow, 0, len(t.Rows)),
	}
	if doc.Seeds == nil {
		doc.Seeds = []int64{}
	}
	if doc.Columns == nil {
		doc.Columns = []string{}
	}
	for _, r := range t.Rows {
		row := benchRow{X: r.X, Cells: make([]benchCell, 0, len(r.Cells))}
		for _, c := range r.Cells {
			row.Cells = append(row.Cells, benchCell{Min: c.Min, Avg: c.Avg, Max: c.Max})
		}
		doc.Rows = append(doc.Rows, row)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Column returns the index of the named column, or -1.
func (t *Table) Column(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Cell returns the summary at (row x, column name); ok is false when absent.
func (t *Table) Cell(x, column string) (stats.Summary, bool) {
	ci := t.Column(column)
	if ci < 0 {
		return stats.Summary{}, false
	}
	for _, r := range t.Rows {
		if r.X == x && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return stats.Summary{}, false
}

// Experiment is a regenerator for one figure or table.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) (*Table, error)
}

// Registry lists every experiment, keyed by lowercase ID (fig5..fig18,
// table1).
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Optimisations for choose operator function properties", Table1},
		{"fig5", "Deep learning job: completion time by exploration strategy", Fig5},
		{"fig6", "Data profiling job: completion time vs input size", Fig6},
		{"fig7", "Time series job: completion time vs explored branches", Fig7},
		{"fig8", "Time series job: choose-function variants and hints", Fig8},
		{"fig9", "Synthetic job: completion time vs branching factor", Fig9},
		{"fig10", "Scalability: processing rate vs worker count", Fig10},
		{"fig11", "Scalability: completion time vs dataset size", Fig11},
		{"fig12", "Topology: completion time vs outer branching factor", Fig12},
		{"fig13", "Scalability: memory hit ratio vs worker count", Fig13},
		{"fig14", "Scalability: memory hit ratio vs dataset size", Fig14},
		{"fig15", "Topology: memory hit ratio vs outer branching factor", Fig15},
		{"fig16", "Resources: relative completion time vs processing cost", Fig16},
		{"fig17", "Resources: relative completion time vs worker memory", Fig17},
		{"fig18", "Resources: memory hit ratio vs worker memory", Fig18},
		{"ablation", "Mechanism ablation: BAS / AMM / incremental in isolation", Ablation},
		{"stragglers", "Completion time with one straggling worker (§5)", Stragglers},
		{"recovery", "Completion time with a node failure mid-exploration (§5)", Recovery},
		{"reliability", "Recovery overhead: fault rate × policy (LRU/AMM × BFS/BAS)", Reliability},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == strings.ToLower(id) {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// --- shared execution helpers -------------------------------------------

// clusterConfig returns the testbed configuration with the given worker
// count and per-worker memory.
func clusterConfig(workers int, mem int64) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Workers = workers
	cfg.MemPerWorker = sim.Bytes(mem)
	return cfg
}

// mdfRun executes the MDF with the full machinery (BAS + AMM + incremental).
func mdfRun(g *graph.Graph, ccfg cluster.Config) (*engine.Result, error) {
	return configuredRun(g, ccfg, memorymgr.AMM, func() scheduler.Policy { return scheduler.BAS(nil) }, true, false)
}

// configuredRun executes one job with explicit policy knobs.
func configuredRun(g *graph.Graph, ccfg cluster.Config, pol memorymgr.PolicyKind,
	newSched func() scheduler.Policy, incremental, pinReused bool) (*engine.Result, error) {
	cl, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	return baseline.SingleJob(g, baseline.Config{
		Cluster:      cl,
		Policy:       pol,
		NewScheduler: newSched,
		Incremental:  incremental,
		PinReused:    pinReused,
	})
}

// seqRun executes the expanded family sequentially.
func seqRun(g *graph.Graph, ccfg cluster.Config) (float64, error) {
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		return 0, err
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return 0, err
	}
	res, err := baseline.Sequential(jobs, baseline.Config{Cluster: cl, Policy: memorymgr.LRU})
	if err != nil {
		return 0, err
	}
	return res.CompletionTime.Seconds(), nil
}

// parRun executes the expanded family k jobs at a time.
func parRun(g *graph.Graph, k int, ccfg cluster.Config) (float64, error) {
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		return 0, err
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return 0, err
	}
	res, err := baseline.Parallel(jobs, k, baseline.Config{Cluster: cl, Policy: memorymgr.LRU})
	if err != nil {
		return 0, err
	}
	return res.CompletionTime.Seconds(), nil
}

// summarize runs fn once per seed and summarises the returned values.
func summarize(o Options, seeds []int64, fn func(seed int64) (float64, error)) (stats.Summary, error) {
	vals := make([]float64, 0, len(seeds))
	for _, s := range seeds {
		if o.Ctx != nil && o.Ctx.Err() != nil {
			return stats.Summary{}, fmt.Errorf("%w: %v", ErrInterrupted, context.Cause(o.Ctx))
		}
		v, err := fn(s)
		if err != nil {
			return stats.Summary{}, err
		}
		vals = append(vals, v)
	}
	return stats.Summarize(vals), nil
}

const gb = int64(1) << 30
