package experiments

import (
	"fmt"

	"metadataflow/internal/workload/kde"
)

func fig6Params(o Options, seed, totalBytes int64) kde.Params {
	p := kde.Defaults()
	p.Seed = seed
	p.VirtualBytes = totalBytes
	if o.Quick {
		p.Rows = 2000
		p.KernelNames = []string{"gaussian", "top-hat", "epanechnikov"}
		p.Bandwidths = []float64{0.1, 0.3}
		p.FitSample = 120
	}
	return p
}

// Fig6 regenerates the data profiling comparison: KDE completion time as the
// input dataset grows, under sequential, 4-parallel, 8-parallel and MDF
// execution. The MDF advantage grows with input size because the
// pre-processing scan over the input happens once instead of per job.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Data profiling (KDE) job completion time",
		XLabel:  "input size",
		Unit:    "virtual seconds",
		Columns: []string{"sequential", "4-parallel", "8-parallel", "MDF"},
	}
	ccfg := clusterConfig(8, 10*gb)
	seeds := o.seeds()
	// Sized so even an eighth of worker memory holds a job's input share
	// (the paper's 100 M-value dataset is small relative to its 16 GB
	// nodes); what grows with size is the repeated pre-processing scan.
	sizes := []int64{1 * gb, 2 * gb, 4 * gb, 8 * gb}
	if o.Quick {
		sizes = []int64{1 * gb, 4 * gb}
	}
	for _, size := range sizes {
		row := Row{X: fmt.Sprintf("%dGB", size/gb)}
		for _, k := range []int{1, 4, 8} {
			k := k
			size := size
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				g, err := kde.BuildMDF(fig6Params(o, seed, size))
				if err != nil {
					return 0, err
				}
				if k == 1 {
					return seqRun(g, ccfg)
				}
				return parRun(g, k, ccfg)
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		size := size
		sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
			g, err := kde.BuildMDF(fig6Params(o, seed, size))
			if err != nil {
				return 0, err
			}
			res, err := mdfRun(g, ccfg)
			if err != nil {
				return 0, err
			}
			return res.CompletionTime().Seconds(), nil
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
