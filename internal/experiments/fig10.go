package experiments

import (
	"fmt"

	"metadataflow/internal/workload/synthetic"
)

// scalabilityParams keeps the input per worker constant at 2 GB (§6.2).
func scalabilityParams(o Options, workers int, seed int64) synthetic.Params {
	p := synthetic.Defaults()
	p.Seed = seed
	p.Partitions = workers
	p.VirtualBytes = int64(workers) * 2 * gb
	p.Rows = 250 * workers
	if o.Quick {
		p.Rows = 80 * workers
	}
	return p
}

func workerCounts(o Options) []int {
	if o.Quick {
		return []int{2, 4}
	}
	return []int{2, 4, 6, 8, 10, 12}
}

// Fig10 regenerates the worker-scalability experiment: the rate at which
// the aggregate input is processed as workers grow from 2 to 12, for the
// four {LRU, AMM} × {incremental} ablations. Input per worker is constant.
func Fig10(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Processing rate vs number of workers",
		XLabel: "workers",
		Unit:   "MB/s",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, w := range workerCounts(o) {
		w := w
		row := Row{X: fmt.Sprintf("%d", w)}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				p := scalabilityParams(o, w, seed)
				res, err := runVariant(p, clusterConfig(w, 4*gb), v)
				if err != nil {
					return 0, err
				}
				return float64(p.VirtualBytes) / 1e6 / res.CompletionTime().Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 regenerates the memory-hit-ratio companion of Fig10: the ratio is
// unaffected by the worker count because the input per worker is constant.
func Fig13(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Memory hit ratio vs number of workers",
		XLabel: "workers",
		Unit:   "ratio",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, w := range workerCounts(o) {
		w := w
		row := Row{X: fmt.Sprintf("%d", w)}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				p := scalabilityParams(o, w, seed)
				res, err := runVariant(p, clusterConfig(w, 4*gb), v)
				if err != nil {
					return 0, err
				}
				return res.Metrics.Mem.HitRatio(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func dataSizes(o Options) []int64 {
	if o.Quick {
		return []int64{2, 6}
	}
	return []int64{2, 3, 4, 5, 6, 7, 8, 9}
}

// dataSizeParams varies the input per worker from 2 to 9 GB with 10 GB of
// memory per worker (§6.2).
func dataSizeParams(o Options, perWorkerGB int64, seed int64) synthetic.Params {
	p := synthetic.Defaults()
	p.Seed = seed
	p.Partitions = 8
	p.VirtualBytes = perWorkerGB * 8 * gb
	p.Rows = 2000
	if o.Quick {
		p.Rows = 600
	}
	return p
}

// Fig11 regenerates the dataset-size scalability experiment: completion
// time as the input grows from 2 to 9 GB per worker with 10 GB of memory.
func Fig11(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Completion time vs dataset size per worker",
		XLabel: "GB/worker",
		Unit:   "virtual seconds",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, s := range dataSizes(o) {
		s := s
		row := Row{X: fmt.Sprintf("%d", s)}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				res, err := runVariant(dataSizeParams(o, s, seed), clusterConfig(8, 10*gb), v)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig14 regenerates the memory-hit-ratio companion of Fig11.
func Fig14(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Memory hit ratio vs dataset size per worker",
		XLabel: "GB/worker",
		Unit:   "ratio",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, s := range dataSizes(o) {
		s := s
		row := Row{X: fmt.Sprintf("%d", s)}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				res, err := runVariant(dataSizeParams(o, s, seed), clusterConfig(8, 10*gb), v)
				if err != nil {
					return 0, err
				}
				return res.Metrics.Mem.HitRatio(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
