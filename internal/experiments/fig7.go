package experiments

import (
	"fmt"
	"math"

	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/timeseries"
)

// selectorFor maps a Fig. 8 variant name to its selection function. The
// baseline "all" keeps every branch result (the Fig. 7 MDF exploring all
// branches to completion), so nothing is discarded before the choose.
func selectorFor(kind string, passRatio float64, total int) mdf.Selector {
	switch kind {
	case "top4":
		return mdf.TopK(4)
	case "first4":
		return mdf.KThreshold(4, passRatio, false)
	default: // "all": keep every branch result
		return mdf.TopK(total)
	}
}

// fig7Configs returns the explorable granularities producing the paper's
// branch counts between 16 and 1024 (inner W×T masking branches × outer
// L×M×D analysis branches).
func fig7Configs(o Options) []timeseries.Params {
	base := func(seedless timeseries.Params) timeseries.Params {
		p := seedless
		p.Rows = 4000
		p.Partitions = 8
		p.VirtualBytes = 8 * gb
		// Select maskings that remove something but not too much; most
		// (W, T) settings fall outside the band and are discarded early.
		p.MaskKeepRatio = 0.3
		p.MaskKeepUpper = 0.9
		if o.Quick {
			p.Rows = 1200
		}
		return p
	}
	ws := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = 2 + i
		}
		return out
	}
	ts := func(n int) []float64 {
		steps := []float64{1.0001, 1.0005, 1.001, 1.005, 1.01, 1.05, 1.1, 1.5}
		return steps[:n]
	}
	ls := ws
	ms := func(n int) []float64 {
		steps := []float64{0.1, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0}
		return steps[:n]
	}
	ds := func(n int) []int {
		steps := []int{50, 100, 200, 500, 1000, 2000, 5000, 10000}
		return steps[:n]
	}
	configs := []timeseries.Params{
		// 16 = (2×2) inner × (2×2×1) outer
		base(timeseries.Params{WindowLengths: ws(2), Thresholds: ts(2),
			MarkWindows: ls(2), MagDiffs: ms(2), Durations: ds(1)}),
		// 64 = (2×2) × (2×2×4)
		base(timeseries.Params{WindowLengths: ws(2), Thresholds: ts(2),
			MarkWindows: ls(2), MagDiffs: ms(2), Durations: ds(4)}),
		// 256 = (4×4) × (2×2×4)
		base(timeseries.Params{WindowLengths: ws(4), Thresholds: ts(4),
			MarkWindows: ls(2), MagDiffs: ms(2), Durations: ds(4)}),
		// 1024 = (4×4) × (4×4×4)
		base(timeseries.Params{WindowLengths: ws(4), Thresholds: ts(4),
			MarkWindows: ls(4), MagDiffs: ms(4), Durations: ds(4)}),
	}
	if o.Quick {
		return configs[:2]
	}
	return configs
}

// Fig7 regenerates the time series comparison: completion time as the
// explored branch count grows from 16 to 1024. Sequential grows linearly;
// the MDF terminates underperforming masking branches at the scoped choose.
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Time series job completion time",
		XLabel:  "branches",
		Unit:    "virtual seconds",
		Columns: []string{"sequential", "4-parallel", "8-parallel", "MDF"},
	}
	ccfg := clusterConfig(8, 10*gb)
	seeds := o.seeds()
	for _, cfg := range fig7Configs(o) {
		cfg := cfg
		row := Row{X: fmt.Sprintf("%d", cfg.Branches())}
		for _, k := range []int{1, 4, 8} {
			k := k
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				p := cfg
				p.Seed = seed
				g, err := timeseries.BuildMDF(p)
				if err != nil {
					return 0, err
				}
				if k == 1 {
					return seqRun(g, ccfg)
				}
				return parRun(g, k, ccfg)
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
			p := cfg
			p.Seed = seed
			g, err := timeseries.BuildMDF(p)
			if err != nil {
				return 0, err
			}
			res, err := mdfRun(g, ccfg)
			if err != nil {
				return 0, err
			}
			return res.CompletionTime().Seconds(), nil
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig8Params builds the flat masking-only configurations for the
// choose-function comparison.
func fig8Params(o Options, branches int, seed int64) timeseries.Params {
	p := timeseries.Defaults()
	p.Seed = seed
	p.Rows = 4000
	p.VirtualBytes = 8 * gb
	if o.Quick {
		p.Rows = 1200
	}
	p.MarkWindows = []int{3}
	p.MagDiffs = []float64{1.0}
	p.Durations = []int{200}
	side := 4
	switch branches {
	case 16:
		side = 4
	case 64:
		side = 8
	case 256:
		side = 16
	case 1024:
		side = 32
	}
	ws := make([]int, side)
	for i := range ws {
		ws[i] = 2 + i
	}
	// The masking kept-ratio is sensitive for thresholds in roughly
	// [1.0001, 1.02] on the synthetic well series; a geometric grid over
	// that band yields a smooth spread of branch result sizes.
	ts := make([]float64, side)
	for i := range ts {
		exp := float64(i) / float64(side-1)
		ts[i] = 1 + 0.0001*math.Pow(200, exp)
	}
	p.WindowLengths = ws
	p.Thresholds = ts
	return p
}

// Fig8 regenerates the optimisation comparison on the time series job: the
// full MDF, top-4 selection (incremental discard), first-4 threshold
// selection (superfluous-branch pruning), first-4 in random branch order
// (12 runs, min-avg-max) and first-4 in hint-sorted order.
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Time series job: choose functions and scheduling hints",
		XLabel: "branches",
		Unit:   "virtual seconds",
		Columns: []string{
			"MDF", "MDF (top-4)", "MDF (first-4)",
			"MDF (first-4, random)", "MDF (first-4, sorted)",
		},
	}
	ccfg := clusterConfig(8, 2*gb)
	seeds := o.seeds()
	branchCounts := []int{16, 64, 256}
	if o.Quick {
		branchCounts = []int{16}
	}
	const passRatio = 0.5 // threshold calibrated so about half the branches qualify

	for _, branches := range branchCounts {
		row := Row{X: fmt.Sprintf("%d", branches)}

		run := func(seed int64, selKind string, sched scheduler.Policy, monotone bool) (float64, error) {
			p := fig8Params(o, branches, seed)
			sel := selectorFor(selKind, passRatio, branches)
			g, err := timeseries.BuildFlatMDF(p, sel, monotone)
			if err != nil {
				return 0, err
			}
			res, err := configuredRun(g, ccfg, memorymgr.AMM,
				func() scheduler.Policy { return sched }, true, false)
			if err != nil {
				return 0, err
			}
			return res.CompletionTime().Seconds(), nil
		}

		// MDF: threshold over all branches (explores everything).
		sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
			return run(seed, "all", scheduler.BAS(nil), false)
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)

		// MDF (top-4): incremental discard only.
		sum, err = summarize(o, seeds, func(seed int64) (float64, error) {
			return run(seed, "top4", scheduler.BAS(nil), false)
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)

		// MDF (first-4): non-exhaustive threshold, definition order.
		sum, err = summarize(o, seeds, func(seed int64) (float64, error) {
			return run(seed, "first4", scheduler.BAS(nil), false)
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)

		// MDF (first-4, random): 12 random orders, min-avg-max.
		randSeeds := make([]int64, 12)
		for i := range randSeeds {
			randSeeds[i] = int64(i + 1)
		}
		sum, err = summarize(o, randSeeds, func(seed int64) (float64, error) {
			return run(1, "first4", scheduler.BAS(scheduler.RandomHint(seed)), false)
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)

		// MDF (first-4, sorted): monotone evaluator + sorted hint.
		sum, err = summarize(o, seeds, func(seed int64) (float64, error) {
			return run(seed, "first4", scheduler.BAS(scheduler.SortedHint(false)), true)
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)

		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
