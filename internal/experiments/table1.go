package experiments

import (
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/stats"
)

// Table1 verifies the optimisation matrix of Tab. 1 by construction: for
// each combination of evaluator properties (monotone / convex / none) and
// selection properties (associative, non-exhaustive), it executes a
// controlled MDF and reports whether datasets of discarded branches were
// dropped incrementally and whether superfluous branches were pruned.
// Cells hold 1 (observed) or 0 (not observed).
func Table1(o Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Observed optimisations by choose function properties",
		XLabel:  "evaluator/selection",
		Unit:    "1=observed",
		Columns: []string{"discard incrementally", "discard superfluous"},
	}

	const branches = 8
	rows := []struct {
		name string
		eval mdf.Evaluator
		sel  mdf.Selector
	}{
		{
			name: "monotone / associative (top-1, sorted)",
			eval: mdf.Evaluator{Name: "rows", Monotone: true,
				Fn: func(d *dataset.Dataset) float64 { return float64(d.NumRows()) }},
			sel: mdf.TopK(1),
		},
		{
			name: "convex / associative (min, sorted)",
			eval: mdf.Evaluator{Name: "dist", Convex: true,
				Fn: func(d *dataset.Dataset) float64 { return float64(d.NumRows()) }},
			sel: mdf.Min(),
		},
		{
			name: "none / associative & non-exhaustive (k-threshold)",
			eval: mdf.SizeEvaluator(),
			sel:  mdf.KThreshold(2, 100, false),
		},
		{
			name: "none / associative (top-k)",
			eval: mdf.SizeEvaluator(),
			sel:  mdf.TopK(2),
		},
		{
			name: "none / none (mode)",
			eval: mdf.SizeEvaluator(),
			sel:  mdf.Mode(),
		},
	}
	for i, rc := range rows {
		g, err := table1MDF(rc.eval, rc.sel, branches, i)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(clusterConfig(4, gb))
		if err != nil {
			return nil, err
		}
		res, err := engine.Execute(g, engine.Options{
			Cluster:     cl,
			Policy:      memorymgr.AMM,
			Scheduler:   scheduler.BAS(scheduler.SortedHint(false)),
			Incremental: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 row %q: %w", rc.name, err)
		}
		discard := 0.0
		if res.Metrics.BranchesDiscarded > 0 {
			discard = 1
		}
		prune := 0.0
		if res.Metrics.BranchesPruned > 0 {
			prune = 1
		}
		t.Rows = append(t.Rows, Row{
			X: rc.name,
			Cells: []stats.Summary{
				{Min: discard, Avg: discard, Max: discard},
				{Min: prune, Avg: prune, Max: prune},
			},
		})
	}
	return t, nil
}

// table1MDF builds a controlled MDF whose branch scores vary with the
// explorable hint. For the monotone row, scores fall with the hint; for the
// convex row, scores fall then rise; otherwise scores alternate.
func table1MDF(eval mdf.Evaluator, sel mdf.Selector, branches, shape int) (*graph.Graph, error) {
	rows := make([]dataset.Row, 256)
	for i := range rows {
		rows[i] = i
	}
	input := dataset.FromRows("input", rows, 4, 1<<16)
	specs := make([]mdf.BranchSpec, branches)
	for i := range specs {
		specs[i] = mdf.BranchSpec{Label: fmt.Sprintf("b%d", i), Hint: float64(i)}
	}
	// keepCount determines each branch's output size (and thus score).
	keepCount := func(hint int) int {
		switch shape {
		case 0: // monotone decreasing in the hint
			return 256 - 28*hint
		case 1: // convex: valley at the middle hint
			mid := branches / 2
			d := hint - mid
			return 32 + 16*d*d
		default: // varied sizes
			return 64 + 24*((hint*5)%branches)
		}
	}
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.001)
	out := src.Explore("explore", specs, mdf.NewChooser(eval, sel),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			keep := keepCount(int(spec.Hint))
			return start.Then("take"+spec.Label, mdf.FilterRows("taken", func(r dataset.Row) bool {
				return r.(int) < keep
			}), 0.002)
		})
	out.Then("sink", mdf.Identity("result"), 0.0001)
	return b.Build()
}
