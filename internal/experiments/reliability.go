package experiments

import (
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/stats"
	"metadataflow/internal/workload/synthetic"
)

// Stragglers quantifies the §5 discussion of straggling workers: without
// mitigation a straggler gates every stage it participates in, slowing the
// job by about its slow factor; with speculative re-execution (the
// "existing mechanisms" the paper leverages, modelled as capacity-weighted
// compute rebalancing) the job degrades only by the lost capacity share.
func Stragglers(o Options) (*Table, error) {
	t := &Table{
		ID:      "stragglers",
		Title:   "MDF completion time with one straggling worker",
		XLabel:  "slow factor",
		Unit:    "virtual seconds",
		Columns: []string{"SEEP (MDF)", "relative", "MDF + speculation", "relative (spec.)"},
	}
	factors := []float64{1, 1.5, 2, 4, 8}
	if o.Quick {
		factors = []float64{1, 4}
	}
	seeds := o.seeds()
	params := func(seed int64) synthetic.Params {
		p := synthetic.Defaults()
		p.Seed = seed
		p.Rows = 1200
		p.VirtualBytes = 8 * gb
		if o.Quick {
			p.Rows = 500
		}
		return p
	}
	run := func(seed int64, slow float64, speculative bool) (float64, error) {
		g, err := synthetic.BuildMDF(params(seed))
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(clusterConfig(8, 10*gb))
		if err != nil {
			return 0, err
		}
		cl.Nodes[0].SlowFactor = slow
		plan, err := graph.BuildPlan(g)
		if err != nil {
			return 0, err
		}
		r, err := engine.NewRun(plan, engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
			Speculative: speculative,
		}, 0)
		if err != nil {
			return 0, err
		}
		res, err := r.RunToCompletion()
		if err != nil {
			return 0, err
		}
		return res.CompletionTime().Seconds(), nil
	}
	base, err := summarize(o, seeds, func(seed int64) (float64, error) { return run(seed, 1, false) })
	if err != nil {
		return nil, err
	}
	for _, f := range factors {
		f := f
		plain, err := summarize(o, seeds, func(seed int64) (float64, error) { return run(seed, f, false) })
		if err != nil {
			return nil, err
		}
		spec, err := summarize(o, seeds, func(seed int64) (float64, error) { return run(seed, f, true) })
		if err != nil {
			return nil, err
		}
		relOf := func(s stats.Summary) stats.Summary {
			s.Min /= base.Avg
			s.Avg /= base.Avg
			s.Max /= base.Avg
			return s
		}
		t.Rows = append(t.Rows, Row{
			X:     fmt.Sprintf("%gx", f),
			Cells: []stats.Summary{plain, relOf(plain), spec, relOf(spec)},
		})
	}
	return t, nil
}

// Recovery quantifies the §5 fault-tolerance mechanism: a node failure
// mid-exploration loses the node's resident partitions, but the choose
// scores checkpointed at the master avoid re-executing branches — only
// re-reads from the checkpoints on disk are charged, and on CPU-bound
// stages those reads hide under computation entirely ("the result can be
// recovered from the master rather than executing entire branches").
func Recovery(o Options) (*Table, error) {
	t := &Table{
		ID:      "recovery",
		Title:   "MDF completion time with a node failure mid-exploration",
		XLabel:  "failure point (stages executed)",
		Unit:    "virtual seconds",
		Columns: []string{"clean run", "with failure", "overhead"},
	}
	seeds := o.seeds()
	params := func(seed int64) synthetic.Params {
		p := synthetic.Defaults()
		p.Seed = seed
		p.Rows = 1200
		p.VirtualBytes = 8 * gb
		if o.Quick {
			p.Rows = 500
		}
		return p
	}
	run := func(seed int64, failAfter int) (float64, error) {
		g, err := synthetic.BuildMDF(params(seed))
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(clusterConfig(8, 10*gb))
		if err != nil {
			return 0, err
		}
		plan, err := graph.BuildPlan(g)
		if err != nil {
			return 0, err
		}
		opts := engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
			Checkpoint: true,
		}
		if failAfter > 0 {
			opts.Faults = &faults.Plan{Crashes: []faults.Crash{{Node: 0, AfterStages: failAfter}}}
		}
		r, err := engine.NewRun(plan, opts, 0)
		if err != nil {
			return 0, err
		}
		res, err := r.RunToCompletion()
		if err != nil {
			return 0, err
		}
		return res.CompletionTime().Seconds(), nil
	}
	points := []int{5, 15, 25}
	if o.Quick {
		points = []int{5}
	}
	clean, err := summarize(o, seeds, func(seed int64) (float64, error) { return run(seed, 0) })
	if err != nil {
		return nil, err
	}
	for _, fp := range points {
		fp := fp
		failed, err := summarize(o, seeds, func(seed int64) (float64, error) { return run(seed, fp) })
		if err != nil {
			return nil, err
		}
		overhead := failed
		overhead.Min = failed.Min - clean.Avg
		overhead.Avg = failed.Avg - clean.Avg
		overhead.Max = failed.Max - clean.Avg
		t.Rows = append(t.Rows, Row{
			X:     fmt.Sprintf("%d", fp),
			Cells: []stats.Summary{clean, failed, overhead},
		})
	}
	return t, nil
}

// checkFaultSnapshot validates a faulty run against its telemetry snapshot:
// the injected-fault counters must show the plan actually fired, and the
// recovery counters must be self-consistent (re-derived partitions carry
// re-derived bytes; every node crash appears in the fault history).
func checkFaultSnapshot(s *obs.Snapshot, plan *faults.Plan) error {
	counter := func(name string) int64 {
		v, _ := s.CounterValue(name)
		return v
	}
	if counter("faults.injected") == 0 {
		return fmt.Errorf("fault plan fired no faults (snapshot faults.injected = 0)")
	}
	crashes := counter("faults.node_crashes")
	if len(plan.Crashes) > 0 && crashes == 0 {
		return fmt.Errorf("fault plan has %d crashes but snapshot faults.node_crashes = 0", len(plan.Crashes))
	}
	if rederived := counter("faults.partitions_rederived"); rederived > 0 && counter("faults.rederived_bytes") == 0 {
		return fmt.Errorf("snapshot re-derived %d partitions but faults.rederived_bytes = 0", rederived)
	}
	var history int64
	for _, ev := range s.Faults {
		if ev.Kind == "crash" {
			history++
		}
	}
	if history != crashes {
		return fmt.Errorf("snapshot fault history records %d crashes, counter says %d", history, crashes)
	}
	return nil
}

// Reliability sweeps a seeded fault plan — repeated node crashes plus one
// panicking evaluator — against the fault rate, for every combination of
// eviction policy (LRU vs AMM) and scheduler (BFS vs BAS). Each cell is the
// recovery overhead: the completion time of the faulty run minus that of a
// fault-free run of the same configuration (both with durable-copy
// awareness enabled). AMM's anticipatory checkpointing writes durable
// copies of consumed intermediates in the background, so a crash only costs
// checkpoint re-reads; LRU keeps everything in volatile memory and must
// re-derive the lost partitions by re-executing their producing stages,
// which makes its recovery strictly more expensive at every fault rate.
func Reliability(o Options) (*Table, error) {
	t := &Table{
		ID:      "reliability",
		Title:   "Recovery overhead under repeated node crashes + evaluator panics",
		XLabel:  "node crashes",
		Unit:    "virtual seconds of overhead",
		Columns: []string{"LRU+BFS", "AMM+BFS", "LRU+BAS", "AMM+BAS"},
	}
	rates := []int{1, 2, 3}
	if o.Quick {
		rates = []int{1, 2}
	}
	seeds := o.seeds()
	params := func(seed int64) synthetic.Params {
		p := synthetic.Defaults()
		p.Seed = seed
		p.Rows = 1200
		p.VirtualBytes = 8 * gb
		// Compute-dominant stages (§5): re-executing a producing stage must
		// cost more than re-reading its checkpoint from disk, which is what
		// makes anticipatory checkpoints pay off.
		p.OpsPerItem = 16
		if o.Quick {
			p.Rows = 500
		}
		return p
	}
	type config struct {
		policy   memorymgr.PolicyKind
		newSched func() scheduler.Policy
	}
	configs := []config{
		{memorymgr.LRU, func() scheduler.Policy { return scheduler.BFS() }},
		{memorymgr.AMM, func() scheduler.Policy { return scheduler.BFS() }},
		{memorymgr.LRU, func() scheduler.Policy { return scheduler.BAS(nil) }},
		{memorymgr.AMM, func() scheduler.Policy { return scheduler.BAS(nil) }},
	}
	run := func(seed int64, cfg config, plan *faults.Plan) (float64, error) {
		g, err := synthetic.BuildMDF(params(seed))
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(clusterConfig(8, 10*gb))
		if err != nil {
			return 0, err
		}
		gp, err := graph.BuildPlan(g)
		if err != nil {
			return 0, err
		}
		r, err := engine.NewRun(gp, engine.Options{
			Cluster: cl, Policy: cfg.policy,
			Scheduler: cfg.newSched(), Incremental: true,
			Checkpoint: true, Faults: plan,
		}, 0)
		if err != nil {
			return 0, err
		}
		res, err := r.RunToCompletion()
		if err != nil {
			return 0, err
		}
		if plan != nil {
			// A fault plan that silently fails to fire would make the
			// overhead column measure noise. The telemetry snapshot is the
			// supported surface for this check — the same counters mdfrun
			// -metrics emits — so validate through it rather than reaching
			// into engine internals.
			if err := checkFaultSnapshot(r.Snapshot(), plan); err != nil {
				return 0, fmt.Errorf("reliability: seed %d: %w", seed, err)
			}
		}
		return res.CompletionTime().Seconds(), nil
	}
	for _, rate := range rates {
		rate := rate
		var cells []stats.Summary
		for _, cfg := range configs {
			cfg := cfg
			overhead, err := summarize(o, seeds, func(seed int64) (float64, error) {
				clean, err := run(seed, cfg, nil)
				if err != nil {
					return 0, err
				}
				plan, err := faults.Generate(faults.GenConfig{
					Seed: seed, Workers: 8, Crashes: rate, EvalPanics: 1, MaxStage: 4,
				})
				if err != nil {
					return 0, err
				}
				faulty, err := run(seed, cfg, plan)
				if err != nil {
					return 0, err
				}
				return faulty - clean, nil
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, overhead)
		}
		t.Rows = append(t.Rows, Row{X: fmt.Sprintf("%d", rate), Cells: cells})
	}
	return t, nil
}
