package experiments

import (
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/stats"
	"metadataflow/internal/workload/synthetic"
)

// Stragglers quantifies the §5 discussion of straggling workers: without
// mitigation a straggler gates every stage it participates in, slowing the
// job by about its slow factor; with speculative re-execution (the
// "existing mechanisms" the paper leverages, modelled as capacity-weighted
// compute rebalancing) the job degrades only by the lost capacity share.
func Stragglers(o Options) (*Table, error) {
	t := &Table{
		ID:      "stragglers",
		Title:   "MDF completion time with one straggling worker",
		XLabel:  "slow factor",
		Unit:    "virtual seconds",
		Columns: []string{"SEEP (MDF)", "relative", "MDF + speculation", "relative (spec.)"},
	}
	factors := []float64{1, 1.5, 2, 4, 8}
	if o.Quick {
		factors = []float64{1, 4}
	}
	seeds := o.seeds()
	params := func(seed int64) synthetic.Params {
		p := synthetic.Defaults()
		p.Seed = seed
		p.Rows = 1200
		p.VirtualBytes = 8 * gb
		if o.Quick {
			p.Rows = 500
		}
		return p
	}
	run := func(seed int64, slow float64, speculative bool) (float64, error) {
		g, err := synthetic.BuildMDF(params(seed))
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(clusterConfig(8, 10*gb))
		if err != nil {
			return 0, err
		}
		cl.Nodes[0].SlowFactor = slow
		plan, err := graph.BuildPlan(g)
		if err != nil {
			return 0, err
		}
		r, err := engine.NewRun(plan, engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
			Speculative: speculative,
		}, 0)
		if err != nil {
			return 0, err
		}
		res, err := r.RunToCompletion()
		if err != nil {
			return 0, err
		}
		return res.CompletionTime(), nil
	}
	base, err := summarize(seeds, func(seed int64) (float64, error) { return run(seed, 1, false) })
	if err != nil {
		return nil, err
	}
	for _, f := range factors {
		f := f
		plain, err := summarize(seeds, func(seed int64) (float64, error) { return run(seed, f, false) })
		if err != nil {
			return nil, err
		}
		spec, err := summarize(seeds, func(seed int64) (float64, error) { return run(seed, f, true) })
		if err != nil {
			return nil, err
		}
		relOf := func(s stats.Summary) stats.Summary {
			s.Min /= base.Avg
			s.Avg /= base.Avg
			s.Max /= base.Avg
			return s
		}
		t.Rows = append(t.Rows, Row{
			X:     fmt.Sprintf("%gx", f),
			Cells: []stats.Summary{plain, relOf(plain), spec, relOf(spec)},
		})
	}
	return t, nil
}

// Recovery quantifies the §5 fault-tolerance mechanism: a node failure
// mid-exploration loses the node's resident partitions, but the choose
// scores checkpointed at the master avoid re-executing branches — only
// re-reads from the checkpoints on disk are charged, and on CPU-bound
// stages those reads hide under computation entirely ("the result can be
// recovered from the master rather than executing entire branches").
func Recovery(o Options) (*Table, error) {
	t := &Table{
		ID:      "recovery",
		Title:   "MDF completion time with a node failure mid-exploration",
		XLabel:  "failure point (stages executed)",
		Unit:    "virtual seconds",
		Columns: []string{"clean run", "with failure", "overhead"},
	}
	seeds := o.seeds()
	params := func(seed int64) synthetic.Params {
		p := synthetic.Defaults()
		p.Seed = seed
		p.Rows = 1200
		p.VirtualBytes = 8 * gb
		if o.Quick {
			p.Rows = 500
		}
		return p
	}
	run := func(seed int64, failAfter int) (float64, error) {
		g, err := synthetic.BuildMDF(params(seed))
		if err != nil {
			return 0, err
		}
		cl, err := cluster.New(clusterConfig(8, 10*gb))
		if err != nil {
			return 0, err
		}
		plan, err := graph.BuildPlan(g)
		if err != nil {
			return 0, err
		}
		opts := engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
			FailAfterStage: failAfter, FailNode: 0,
		}
		if failAfter <= 0 {
			opts.FailAfterStage = -1
			opts.FailNode = -1
		}
		r, err := engine.NewRun(plan, opts, 0)
		if err != nil {
			return 0, err
		}
		res, err := r.RunToCompletion()
		if err != nil {
			return 0, err
		}
		return res.CompletionTime(), nil
	}
	points := []int{5, 15, 25}
	if o.Quick {
		points = []int{5}
	}
	clean, err := summarize(seeds, func(seed int64) (float64, error) { return run(seed, 0) })
	if err != nil {
		return nil, err
	}
	for _, fp := range points {
		fp := fp
		failed, err := summarize(seeds, func(seed int64) (float64, error) { return run(seed, fp) })
		if err != nil {
			return nil, err
		}
		overhead := failed
		overhead.Min = failed.Min - clean.Avg
		overhead.Avg = failed.Avg - clean.Avg
		overhead.Max = failed.Max - clean.Avg
		t.Rows = append(t.Rows, Row{
			X:     fmt.Sprintf("%d", fp),
			Cells: []stats.Summary{clean, failed, overhead},
		})
	}
	return t, nil
}
