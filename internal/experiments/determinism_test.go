package experiments

import (
	"fmt"
	"strings"
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/synthetic"
)

// TestReliabilityDeterministic is the determinism regression test backing
// the mdflint rules: the full reliability sweep (fault injection, recovery,
// both schedulers) must replay bit-identically for a given seed. A diff
// here means wall-clock time, unseeded randomness or map-iteration order
// leaked into the simulator — exactly what the linter exists to keep out.
func TestReliabilityDeterministic(t *testing.T) {
	run := func() string {
		tab, err := Reliability(Options{Seeds: 1, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return tab.CSV()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("reliability sweep is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if strings.Count(first, "\n") < 2 {
		t.Fatalf("suspiciously small sweep output:\n%s", first)
	}
}

// TestTracedFaultRunDeterministic replays one fault-injected, traced MDF
// run twice and compares the complete observable output byte for byte:
// the execution timeline (every stage's virtual start and end), every
// metrics field, and the quarantine records.
func TestTracedFaultRunDeterministic(t *testing.T) {
	run := func() string {
		p := synthetic.Defaults()
		p.Seed = 7
		p.Rows = 400
		g, err := synthetic.BuildMDF(p)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(clusterConfig(4, 10*gb))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := graph.BuildPlan(g)
		if err != nil {
			t.Fatal(err)
		}
		r, err := engine.NewRun(plan, engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true, Trace: true,
			Faults: &faults.Plan{Crashes: []faults.Crash{{Node: 1, AfterStages: 3}}},
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunToCompletion()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := engine.WriteText(&b, res.Timeline); err != nil {
			t.Fatal(err)
		}
		b.WriteString(engine.SummarizeTimeline(res.Timeline))
		// %+v over the whole structs: every field participates, including
		// ones added after this test was written.
		fmt.Fprintf(&b, "completion=%v\nmetrics=%+v\nquarantined=%+v\n",
			res.CompletionTime(), res.Metrics, res.Quarantined)
		return b.String()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("traced fault run is not deterministic:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !strings.Contains(first, "metrics=") {
		t.Fatalf("missing metrics section:\n%s", first)
	}
}
