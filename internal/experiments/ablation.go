package experiments

import (
	"fmt"

	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/synthetic"
)

// Ablation isolates the contribution of each MDF mechanism on the synthetic
// job: branch-aware scheduling (BAS vs BFS), anticipatory memory management
// (AMM vs LRU), and incremental choose evaluation — the design choices
// DESIGN.md calls out, measured independently rather than only in the
// paper's {LRU, AMM} × {incremental} grid.
func Ablation(o Options) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  "Mechanism ablation on the synthetic job",
		XLabel: "branches (|B1|=|B2|)",
		Unit:   "virtual seconds",
		Columns: []string{
			"BFS+LRU", "BAS+LRU", "BFS+AMM", "BAS+AMM", "BAS+AMM+incremental",
		},
	}
	type config struct {
		sched       func() scheduler.Policy
		policy      memorymgr.PolicyKind
		incremental bool
	}
	configs := []config{
		{func() scheduler.Policy { return scheduler.BFS() }, memorymgr.LRU, false},
		{func() scheduler.Policy { return scheduler.BAS(nil) }, memorymgr.LRU, false},
		{func() scheduler.Policy { return scheduler.BFS() }, memorymgr.AMM, false},
		{func() scheduler.Policy { return scheduler.BAS(nil) }, memorymgr.AMM, false},
		{func() scheduler.Policy { return scheduler.BAS(nil) }, memorymgr.AMM, true},
	}
	factors := []int{5, 8, 10}
	if o.Quick {
		factors = []int{5}
	}
	seeds := o.seeds()
	for _, b := range factors {
		b := b
		row := Row{X: fmt.Sprintf("%d (%d)", b, b*b)}
		for _, cfg := range configs {
			cfg := cfg
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				p := synthetic.Defaults()
				p.Seed = seed
				p.OuterBranches, p.InnerBranches = b, b
				p.Rows = 1200
				p.VirtualBytes = 8 * gb
				if o.Quick {
					p.Rows = 500
				}
				g, err := synthetic.BuildMDF(p)
				if err != nil {
					return 0, err
				}
				res, err := configuredRun(g, clusterConfig(8, 6*gb), cfg.policy, cfg.sched, cfg.incremental, false)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
