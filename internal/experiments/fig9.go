package experiments

import (
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/synthetic"
)

func fig9Params(o Options, b int, seed int64) synthetic.Params {
	p := synthetic.Defaults()
	p.Seed = seed
	p.OuterBranches = b
	p.InnerBranches = b
	p.Rows = 2000
	// Sized so each job's working set fits its memory share even under
	// 8-way parallelism (500 MB/worker per dataset vs a 10/8 GB share),
	// while the single-job BFS/cache configurations overflow worker memory
	// once the B + B^2 branch datasets are live at once, which is the
	// memory-pressure effect Fig. 9 measures.
	p.VirtualBytes = 4 * gb
	// Inner operators aggregate: their outputs are a quarter of the input,
	// so a parallel job's working set fits its memory share while the
	// single-job configurations still contend for memory across branches.
	p.InnerSizeScale = 0.25
	if o.Quick {
		p.Rows = 600
	}
	return p
}

// Fig9 regenerates the system comparison on the synthetic job: Spark-style
// sequential jobs, Spark-on-YARN parallel jobs, a single Spark job with
// explicit cache() designations under LRU, SEEP with breadth-first
// scheduling, and SEEP with the full MDF machinery (BAS + AMM).
func Fig9(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Synthetic job completion time by system configuration",
		XLabel: "branches (|B1|=|B2|)",
		Unit:   "virtual seconds",
		Columns: []string{
			"Spark (sequential)", "Spark (YARN)", "Spark (cache)",
			"SEEP (BFS)", "SEEP (MDF)",
		},
	}
	ccfg := clusterConfig(8, 10*gb)
	seeds := o.seeds()
	factors := []int{2, 3, 5, 7, 10}
	if o.Quick {
		factors = []int{2, 5}
	}
	for _, b := range factors {
		b := b
		row := Row{X: fmt.Sprintf("%d (%d)", b, b*b)}

		cells := []func(seed int64) (float64, error){
			// Spark (sequential): separate jobs, no reuse.
			func(seed int64) (float64, error) {
				g, err := synthetic.BuildMDF(fig9Params(o, b, seed))
				if err != nil {
					return 0, err
				}
				return seqRun(g, ccfg)
			},
			// Spark (YARN): eight parallel jobs.
			func(seed int64) (float64, error) {
				g, err := synthetic.BuildMDF(fig9Params(o, b, seed))
				if err != nil {
					return 0, err
				}
				return parRun(g, 8, ccfg)
			},
			// Spark (cache): one job, BFS, LRU, reused datasets pinned.
			func(seed int64) (float64, error) {
				g, err := synthetic.BuildMDF(fig9Params(o, b, seed))
				if err != nil {
					return 0, err
				}
				res, err := configuredRun(g, ccfg, memorymgr.LRU,
					func() scheduler.Policy { return scheduler.BFS() }, false, true)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			},
			// SEEP (BFS): one job, BFS, LRU, no pinning, no incremental.
			func(seed int64) (float64, error) {
				g, err := synthetic.BuildMDF(fig9Params(o, b, seed))
				if err != nil {
					return 0, err
				}
				res, err := configuredRun(g, ccfg, memorymgr.LRU,
					func() scheduler.Policy { return scheduler.BFS() }, false, false)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			},
			// SEEP (MDF): BAS + AMM + incremental choose.
			func(seed int64) (float64, error) {
				g, err := synthetic.BuildMDF(fig9Params(o, b, seed))
				if err != nil {
					return 0, err
				}
				res, err := mdfRun(g, ccfg)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			},
		}
		for _, fn := range cells {
			sum, err := summarize(o, seeds, fn)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// policyVariant identifies one of the four MDF ablations used by
// Figs. 10–18: {LRU, AMM} × {incremental on, off}.
type policyVariant struct {
	name        string
	policy      memorymgr.PolicyKind
	incremental bool
}

func policyVariants() []policyVariant {
	return []policyVariant{
		{"LRU", memorymgr.LRU, false},
		{"AMM", memorymgr.AMM, false},
		{"LRU+incremental", memorymgr.LRU, true},
		{"AMM+incremental", memorymgr.AMM, true},
	}
}

// runVariant executes the synthetic MDF under one ablation and returns the
// full result.
func runVariant(p synthetic.Params, ccfg cluster.Config, v policyVariant) (*engine.Result, error) {
	g, err := synthetic.BuildMDF(p)
	if err != nil {
		return nil, err
	}
	return configuredRun(g, ccfg, v.policy,
		func() scheduler.Policy { return scheduler.BAS(nil) }, v.incremental, false)
}
